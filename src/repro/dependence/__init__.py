"""Dependence analysis (systems S5/S6, paper §3)."""

from repro.dependence.analyze import (
    AccessInfo, analyze_dependences, iter_conflicting_pairs, statement_domain,
)
from repro.dependence.classic import (
    SubscriptPair, banerjee_test, exact_test, gcd_test,
)
from repro.dependence.depvector import DepKind, DependenceMatrix, DepVector
from repro.dependence.entry import NEG_INF, POS_INF, DepEntry
from repro.dependence.refine import (
    ground_truth_kinded, observed_hulls, refine_dependences,
)

__all__ = [
    "DepEntry", "NEG_INF", "POS_INF",
    "DepVector", "DependenceMatrix", "DepKind",
    "analyze_dependences", "AccessInfo", "statement_domain",
    "iter_conflicting_pairs",
    "refine_dependences", "observed_hulls", "ground_truth_kinded",
    "SubscriptPair", "gcd_test", "banerjee_test", "exact_test",
]
