"""Classical fast dependence tests (system S6): GCD and Banerjee.

These are the textbook filters that predate exact polyhedral tests:
cheap, conservative, and useful both as a historical baseline and as a
fast pre-screen before the Fourier–Motzkin machinery.  They answer the
single-subscript question "can ``a·i⃗ + a0 == b·j⃗ + b0`` hold within
the loop bounds?":

* **GCD test** — a solution over ℤ (ignoring bounds) requires
  ``gcd(coefficients) | (b0 - a0)``.
* **Banerjee test** — a solution over ℝ *within* rectangular bounds
  requires the constant difference to lie between the extreme values
  of the linear form.

Both may report a dependence that the exact test rules out, never the
reverse; :func:`tests_agree_with_exact` (used by the test suite)
verifies that containment against the omega-lite oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import Mapping, Sequence

from repro.polyhedra.affine import LinExpr, var
from repro.polyhedra.constraint import eq, ge, le
from repro.polyhedra.system import Feasibility, System
from repro.util.errors import DependenceError

__all__ = ["SubscriptPair", "gcd_test", "banerjee_test", "exact_test"]


@dataclass(frozen=True)
class SubscriptPair:
    """One dimension of a potential dependence between two references.

    ``a``/``b`` map loop variables to integer coefficients for the
    writing and reading reference respectively (over *independent*
    index variables, as in the classical formulation); ``a0``/``b0``
    are the constant terms; ``bounds`` gives the inclusive rectangular
    range of every loop variable.
    """

    a: Mapping[str, int]
    a0: int
    b: Mapping[str, int]
    b0: int
    bounds: Mapping[str, tuple[int, int]]

    def __post_init__(self):
        for v in set(self.a) | set(self.b):
            if v not in self.bounds:
                raise DependenceError(f"no bounds for loop variable {v!r}")
        for v, (lo, hi) in self.bounds.items():
            if lo > hi:
                raise DependenceError(f"empty bounds for {v!r}: {lo}..{hi}")


def gcd_test(pair: SubscriptPair) -> bool:
    """True when a dependence is *possible* (the GCD divides the
    constant difference); False proves independence."""
    g = 0
    for c in pair.a.values():
        g = gcd(g, abs(c))
    for c in pair.b.values():
        g = gcd(g, abs(c))
    diff = pair.b0 - pair.a0
    if g == 0:
        return diff == 0
    return diff % g == 0


def banerjee_test(pair: SubscriptPair) -> bool:
    """True when a dependence is *possible* (the constant difference
    lies within the real-valued extremes of ``a·i⃗ - b·j⃗``); False
    proves independence under rectangular bounds."""
    # We need  sum(a_v * i_v) - sum(b_v * j_v) == b0 - a0  for some
    # i, j within bounds; i and j range independently.
    lo = hi = 0
    for v, c in pair.a.items():
        l, h = pair.bounds[v]
        lo += min(c * l, c * h)
        hi += max(c * l, c * h)
    for v, c in pair.b.items():
        l, h = pair.bounds[v]
        lo += min(-c * l, -c * h)
        hi += max(-c * l, -c * h)
    diff = pair.b0 - pair.a0
    return lo <= diff <= hi


def exact_test(pair: SubscriptPair) -> bool:
    """The omega-lite oracle for the same question: integer feasibility
    of the subscript equation within bounds (source/sink variables are
    renamed apart, matching the classical independent-ranges model)."""
    lhs = LinExpr({f"w_{v}": c for v, c in pair.a.items()}, pair.a0)
    rhs = LinExpr({f"r_{v}": c for v, c in pair.b.items()}, pair.b0)
    cs = [eq(lhs, rhs)]
    for v, c in pair.a.items():
        lo, hi = pair.bounds[v]
        cs += [ge(var(f"w_{v}"), lo), le(var(f"w_{v}"), hi)]
    for v, c in pair.b.items():
        lo, hi = pair.bounds[v]
        cs += [ge(var(f"r_{v}"), lo), le(var(f"r_{v}"), hi)]
    s = System(cs)
    verdict = s.feasible()
    if verdict is Feasibility.UNKNOWN:
        return s.find_point(clip=128) is not None
    return verdict is Feasibility.FEASIBLE


def screen(pairs: Sequence[SubscriptPair]) -> bool:
    """Combined fast screen over all dimensions of an array reference
    pair: independence in ANY dimension proves independence overall."""
    for p in pairs:
        if not gcd_test(p) or not banerjee_test(p):
            return False
    return True
