"""Dependence vectors in instance-vector space and their matrix."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.dependence.entry import DepEntry
from repro.instance.layout import Layout
from repro.util.errors import DependenceError

__all__ = ["DepVector", "DependenceMatrix", "DepKind"]


class DepKind:
    FLOW = "flow"
    ANTI = "anti"
    OUTPUT = "output"


@dataclass(frozen=True)
class DepVector:
    """One dependence, summarized over the instance-vector coordinates.

    ``entries[i]`` is the interval of possible values of
    ``L(dst) - L(src)`` at layout coordinate ``i``.  ``src``/``dst`` are
    statement labels; ``kind`` is flow/anti/output; ``level`` names the
    common loop carrying the dependence (None = loop-independent).
    """

    src: str
    dst: str
    entries: tuple[DepEntry, ...]
    kind: str = DepKind.FLOW
    level: str | None = None
    array: str = ""

    def __post_init__(self):
        if not isinstance(self.entries, tuple):
            object.__setattr__(self, "entries", tuple(self.entries))

    @staticmethod
    def parse(src: str, dst: str, tokens: Sequence, **kw) -> "DepVector":
        """Build from paper notation, e.g. ``parse("S1","S2",[0,1,-1,"+"])``."""
        return DepVector(src, dst, tuple(DepEntry.parse(t) for t in tokens), **kw)

    def is_self(self) -> bool:
        return self.src == self.dst

    def entry_strs(self) -> tuple[str, ...]:
        return tuple(str(e) for e in self.entries)

    def project(self, positions: Sequence[int]) -> tuple[DepEntry, ...]:
        """Entries at the given coordinate positions, in the given order."""
        return tuple(self.entries[i] for i in positions)

    def __str__(self) -> str:
        body = ", ".join(self.entry_strs())
        lvl = f" @{self.level}" if self.level else " @indep"
        return f"{self.kind} {self.src}->{self.dst}{lvl}: [{body}]"


@dataclass
class DependenceMatrix:
    """All dependences of a program, as columns over a shared layout."""

    layout: Layout
    deps: list[DepVector] = field(default_factory=list)

    def __post_init__(self):
        for d in self.deps:
            self._check(d)

    def _check(self, d: DepVector) -> None:
        if len(d.entries) != self.layout.dimension:
            raise DependenceError(
                f"dependence vector length {len(d.entries)} does not match "
                f"layout dimension {self.layout.dimension}"
            )

    def add(self, d: DepVector) -> None:
        self._check(d)
        if not any(
            e.src == d.src and e.dst == d.dst and e.kind == d.kind
            and e.entries == d.entries
            for e in self.deps
        ):
            self.deps.append(d)

    def extend(self, ds: Iterable[DepVector]) -> None:
        for d in ds:
            self.add(d)

    def __len__(self) -> int:
        return len(self.deps)

    def __iter__(self):
        return iter(self.deps)

    def columns(self) -> list[tuple[DepEntry, ...]]:
        return [d.entries for d in self.deps]

    def between(self, src: str, dst: str) -> list[DepVector]:
        return [d for d in self.deps if d.src == src and d.dst == dst]

    def self_deps(self, label: str) -> list[DepVector]:
        return self.between(label, label)

    def to_str(self) -> str:
        """Paper-style rendering: one column per dependence."""
        if not self.deps:
            return "(no dependences)"
        cols = [d.entry_strs() for d in self.deps]
        widths = [max(len(entry) for entry in c) for c in cols]
        lines = []
        for i in range(self.layout.dimension):
            row = "  ".join(c[i].rjust(w) for c, w in zip(cols, widths))
            lines.append(f"[ {row} ]")
        return "\n".join(lines)

    def summary(self) -> str:
        return "\n".join(str(d) for d in self.deps)
