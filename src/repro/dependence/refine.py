"""Value-based (dynamic) refinement of dependence vectors.

The paper's displayed matrices contain exact distances (e.g. the ``1``
leading its simplified-Cholesky column ``[1,-1,1,0]``) where sound
memory-based analysis can only report ``+``: the paper's number is the
*value-based* distance — the gap to the **last** write of the location,
not to every earlier write.  Full static value-based analysis is
Feautrier's array dataflow; this module provides the dynamic analogue:
run the program on sample parameter values, read the value-based
dependences (last-writer flow, readers-to-next-write anti, consecutive
output) off the trace, and intersect the per-coordinate hulls with the
static intervals.

The refined matrix is for *reporting and comparison against the paper*;
it is exact for the sampled sizes and a heuristic beyond them, so
legality checking keeps using the conservative static matrix.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Mapping, Sequence

from repro.dependence.depvector import DependenceMatrix, DepKind, DepVector
from repro.dependence.entry import NEG_INF, POS_INF, DepEntry
from repro.instance.layout import Layout
from repro.instance.vectors import DynamicInstance, instance_vector
from repro.interp.executor import Trace, execute
from repro.ir.ast import Program
from repro.obs import timed

__all__ = ["ground_truth_kinded", "observed_hulls", "refine_dependences"]


def ground_truth_kinded(t: Trace) -> list[tuple[int, int, str]]:
    """Value-based dependences of a trace, with kinds.

    flow: last write of a cell → each subsequent read (until rewritten);
    anti: each read → the next write of the cell;
    output: consecutive writes of the cell.
    """
    last_write: dict[tuple, int] = {}
    readers: dict[tuple, list[int]] = defaultdict(list)
    deps: list[tuple[int, int, str]] = []
    for pos, rec in enumerate(t.records):
        for cell in {(a, i) for a, i in rec.reads}:
            if cell in last_write:
                deps.append((last_write[cell], pos, DepKind.FLOW))
            readers[cell].append(pos)
        for cell in {(a, i) for a, i in rec.writes}:
            if cell in last_write:
                deps.append((last_write[cell], pos, DepKind.OUTPUT))
            for rd in readers[cell]:
                if rd != pos:
                    deps.append((rd, pos, DepKind.ANTI))
            readers[cell] = []
            last_write[cell] = pos
    return sorted(set(deps))


def observed_diffs(
    program: Program, params: Mapping[str, int], layout: Layout | None = None
) -> dict[tuple[str, str, str], list[tuple[int, ...]]]:
    """Per-(src,dst,kind) instance-vector differences of the observed
    value-based dependences for one program run."""
    layout = layout or Layout(program)
    _, trace = execute(program, params, trace=True)
    assert trace is not None

    def as_vec(rec):
        order = [c.var for c in layout.surrounding_loop_coords(rec.label)]
        d = DynamicInstance(rec.label, tuple(rec.env[v] for v in order))
        return instance_vector(layout, d)

    vec_cache: dict[int, tuple[int, ...]] = {}
    out: dict[tuple[str, str, str], list[tuple[int, ...]]] = defaultdict(list)
    for a, b, kind in ground_truth_kinded(trace):
        ra, rb = trace.records[a], trace.records[b]
        va = vec_cache.get(a)
        if va is None:
            va = vec_cache[a] = as_vec(ra)
        vb = vec_cache.get(b)
        if vb is None:
            vb = vec_cache[b] = as_vec(rb)
        out[(ra.label, rb.label, kind)].append(
            tuple(y - x for x, y in zip(va, vb))
        )
    return dict(out)


def observed_hulls(
    program: Program, params: Mapping[str, int], layout: Layout | None = None
) -> dict[tuple[str, str, str], list[DepEntry]]:
    """Per-(src,dst,kind) coordinate hulls of the observed value-based
    dependence differences for one program run."""
    hulls: dict[tuple[str, str, str], list[DepEntry]] = {}
    for key, diffs in observed_diffs(program, params, layout).items():
        for diff in diffs:
            if key not in hulls:
                hulls[key] = [DepEntry.const(x) for x in diff]
            else:
                hulls[key] = [
                    h.hull(DepEntry.const(x)) for h, x in zip(hulls[key], diff)
                ]
    return hulls


def _intersect(a: DepEntry, b: DepEntry) -> DepEntry:
    lo = b.lo if a.lo == NEG_INF else (a.lo if b.lo == NEG_INF else max(a.lo, b.lo))
    hi = b.hi if a.hi == POS_INF else (a.hi if b.hi == POS_INF else min(a.hi, b.hi))
    return DepEntry(lo, hi)


@timed("dependence.refine", attr_fn=lambda program, *a, **kw: {"program": program.name})
def refine_dependences(
    program: Program,
    deps: DependenceMatrix,
    samples: Sequence[Mapping[str, int]] = ({"N": 6}, {"N": 9}),
) -> DependenceMatrix:
    """Intersect static intervals with the union of observed value-based
    hulls over the sample runs.

    Dependences never observed in any sample keep their static entries;
    distinct kinds refine independently, so the paper's value-based flow
    distances surface even when a wider anti dependence shares the same
    statement pair.
    """
    layout = deps.layout
    merged: dict[tuple[str, str, str], list[tuple[int, ...]]] = defaultdict(list)
    for params in samples:
        for key, diffs in observed_diffs(program, params, layout).items():
            merged[key].extend(diffs)

    refined = DependenceMatrix(layout)
    for d in deps:
        key = (d.src, d.dst, d.kind)
        # only diffs this column actually summarizes refine it
        covered = [
            diff
            for diff in merged.get(key, ())
            if all(e.contains(x) for e, x in zip(d.entries, diff))
        ]
        if not covered:
            refined.add(d)
            continue
        hull = [DepEntry.const(x) for x in covered[0]]
        for diff in covered[1:]:
            hull = [h.hull(DepEntry.const(x)) for h, x in zip(hull, diff)]
        # Only sample-invariant constants are trustworthy beyond the
        # sampled sizes; anything else keeps the sound static interval.
        entries = tuple(
            h if h.is_constant() else a for a, h in zip(d.entries, hull)
        )
        refined.add(DepVector(d.src, d.dst, entries, d.kind, d.level, d.array))
    return refined
