"""Dependence-vector entries: integer intervals with ±∞ ends.

The paper's dependence vectors mix exact distances (integers) with
directions (``+``, ``-``).  We represent every entry uniformly as an
integer interval ``[lo, hi]`` over ℤ ∪ {±∞}: a constant distance ``c``
is ``[c, c]``, the direction ``+`` is ``[1, +∞)``, ``-`` is
``(-∞, -1]``, and ``*`` is ``(-∞, +∞)``.  Interval arithmetic then gives
a sound ``M · d`` for the legality test even when ``d`` has directions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import DependenceError

__all__ = ["DepEntry", "NEG_INF", "POS_INF"]

# Compare against these with ``==``, never ``is``: entries cross process
# boundaries in the ``--jobs`` fan-out, and unpickled floats are distinct
# objects (equality on ±inf is exact either way).
NEG_INF = float("-inf")
POS_INF = float("inf")


def _add(a, b):
    if a in (NEG_INF, POS_INF):
        if b in (NEG_INF, POS_INF) and a != b:
            raise DependenceError("indeterminate infinity sum in interval arithmetic")
        return a
    if b in (NEG_INF, POS_INF):
        return b
    return a + b


def _mul(a, s: int):
    if s == 0:
        return 0
    if a in (NEG_INF, POS_INF):
        return a if s > 0 else (NEG_INF if a == POS_INF else POS_INF)
    return a * s


@dataclass(frozen=True)
class DepEntry:
    """A closed integer interval ``[lo, hi]``; ends may be ±∞."""

    lo: object
    hi: object

    def __post_init__(self):
        lo, hi = self.lo, self.hi
        for v, name in ((lo, "lo"), (hi, "hi")):
            if not (isinstance(v, int) or v in (NEG_INF, POS_INF)):
                raise DependenceError(f"{name} must be an int or ±inf, got {v!r}")
        if lo == POS_INF or hi == NEG_INF or (isinstance(lo, int) and isinstance(hi, int) and lo > hi):
            raise DependenceError(f"empty interval [{lo}, {hi}]")

    # -- constructors ---------------------------------------------------

    @staticmethod
    def const(c: int) -> "DepEntry":
        return DepEntry(c, c)

    @staticmethod
    def plus() -> "DepEntry":
        """The '+' direction: at least 1."""
        return DepEntry(1, POS_INF)

    @staticmethod
    def minus() -> "DepEntry":
        """The '-' direction: at most -1."""
        return DepEntry(NEG_INF, -1)

    @staticmethod
    def star() -> "DepEntry":
        """Unknown direction."""
        return DepEntry(NEG_INF, POS_INF)

    @staticmethod
    def parse(token) -> "DepEntry":
        """Parse paper notation: int, '+', '-', '0+', '-0', '*'."""
        if isinstance(token, int):
            return DepEntry.const(token)
        t = str(token)
        table = {
            "+": DepEntry.plus(),
            "-": DepEntry.minus(),
            "*": DepEntry.star(),
            "0+": DepEntry(0, POS_INF),
            "+0": DepEntry(0, POS_INF),
            "-0": DepEntry(NEG_INF, 0),
            "0-": DepEntry(NEG_INF, 0),
        }
        if t in table:
            return table[t]
        try:
            return DepEntry.const(int(t))
        except ValueError:
            raise DependenceError(f"cannot parse dependence entry {token!r}") from None

    # -- queries ------------------------------------------------------------

    def is_constant(self) -> bool:
        return self.lo == self.hi and isinstance(self.lo, int)

    def constant(self) -> int:
        if not self.is_constant():
            raise DependenceError(f"{self} is not a constant entry")
        return self.lo

    def is_zero(self) -> bool:
        return self.lo == 0 and self.hi == 0

    def definitely_positive(self) -> bool:
        return self.lo != NEG_INF and self.lo >= 1

    def definitely_negative(self) -> bool:
        return self.hi != POS_INF and self.hi <= -1

    def definitely_nonnegative(self) -> bool:
        return self.lo != NEG_INF and self.lo >= 0

    def may_be_positive(self) -> bool:
        return self.hi == POS_INF or self.hi >= 1

    def may_be_negative(self) -> bool:
        return self.lo == NEG_INF or self.lo <= -1

    def may_be_zero(self) -> bool:
        return (self.lo == NEG_INF or self.lo <= 0) and (self.hi == POS_INF or self.hi >= 0)

    def contains(self, v: int) -> bool:
        lo_ok = self.lo == NEG_INF or self.lo <= v
        hi_ok = self.hi == POS_INF or v <= self.hi
        return lo_ok and hi_ok

    # -- arithmetic -----------------------------------------------------------

    def __add__(self, other: "DepEntry") -> "DepEntry":
        if not isinstance(other, DepEntry):
            return NotImplemented
        return DepEntry(_add(self.lo, other.lo), _add(self.hi, other.hi))

    def __neg__(self) -> "DepEntry":
        return DepEntry(_mul(self.hi, -1), _mul(self.lo, -1))

    def scale(self, s: int) -> "DepEntry":
        if s >= 0:
            return DepEntry(_mul(self.lo, s), _mul(self.hi, s))
        return DepEntry(_mul(self.hi, s), _mul(self.lo, s))

    def hull(self, other: "DepEntry") -> "DepEntry":
        """Smallest interval containing both."""
        lo = NEG_INF if NEG_INF in (self.lo, other.lo) else min(self.lo, other.lo)
        hi = POS_INF if POS_INF in (self.hi, other.hi) else max(self.hi, other.hi)
        return DepEntry(lo, hi)

    # -- rendering ---------------------------------------------------------------

    def __str__(self) -> str:
        if self.is_constant():
            return str(self.lo)
        if self == DepEntry.plus():
            return "+"
        if self == DepEntry.minus():
            return "-"
        if self == DepEntry.star():
            return "*"
        if self == DepEntry(0, POS_INF):
            return "0+"
        if self == DepEntry(NEG_INF, 0):
            return "-0"
        lo = "-inf" if self.lo == NEG_INF else str(self.lo)
        hi = "+inf" if self.hi == POS_INF else str(self.hi)
        return f"[{lo},{hi}]"

    def __repr__(self) -> str:
        return f"DepEntry({self})"


def zip_dot(row: tuple[int, ...], entries: tuple[DepEntry, ...]) -> DepEntry:
    """Interval dot product of an integer row with dependence entries."""
    if len(row) != len(entries):
        raise DependenceError("dimension mismatch in interval dot product")
    total = DepEntry.const(0)
    for c, e in zip(row, entries):
        if c != 0:
            total = total + e.scale(c)
    return total
