"""Dependence analysis for imperfectly nested loops (paper §3).

For every ordered pair of conflicting references (at least one a write
to the same array), the analyzer builds the affine system of §3 —
source/destination loop bounds, subscript equality, and the
per-common-loop-level precedence cases — decides integer feasibility
with the omega-lite substrate, and summarizes each feasible case as a
:class:`DepVector` of distance/direction intervals over the program's
instance-vector layout.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from repro.util.parallel_exec import (
    capture_counters, chunk_round_robin, map_in_processes, merge_metrics, resolve_jobs,
)
from repro.dependence.depvector import DepKind, DependenceMatrix, DepVector
from repro.dependence.entry import NEG_INF, POS_INF, DepEntry
from repro.instance.layout import EdgeCoord, Layout, LoopCoord
from repro.instance.vectors import symbolic_vector
from repro.ir.ast import BoundSet, Program, Statement
from repro.ir.expr import ArrayRef, VarRef
from repro.obs import counter, timed
from repro.polyhedra.affine import LinExpr, var
from repro.polyhedra.constraint import eq, ge, le
from repro.polyhedra.system import Feasibility, System
from repro.util.errors import DependenceError

__all__ = ["analyze_dependences", "AccessInfo", "statement_domain", "iter_conflicting_pairs"]

_SRC = "__s_"
_DST = "__d_"
_DELTA = "__delta"


class AccessInfo:
    """One array access of a statement: the ref plus read/write role."""

    __slots__ = ("stmt", "ref", "is_write")

    def __init__(self, stmt: Statement, ref: ArrayRef | VarRef, is_write: bool):
        self.stmt = stmt
        self.ref = ref
        self.is_write = is_write

    @property
    def array(self) -> str:
        return self.ref.array if isinstance(self.ref, ArrayRef) else self.ref.name

    def subscripts(self) -> tuple[LinExpr, ...]:
        if isinstance(self.ref, ArrayRef):
            return self.ref.affine_subscripts()
        return ()

    def __repr__(self) -> str:
        role = "W" if self.is_write else "R"
        return f"<{role} {self.ref} in {self.stmt.label}>"


def statement_accesses(program: Program) -> list[AccessInfo]:
    """All array/scalar accesses in the program, in syntactic order.

    Scalar reads are identified as right-hand-side variables that are
    neither enclosing loop variables nor parameters.
    """
    out: list[AccessInfo] = []
    params = set(program.params)
    for s in program.statements():
        loop_vars = set(program.loop_vars(s.label))
        for r in s.reads():
            out.append(AccessInfo(s, r, False))
        scalar_candidates = s.rhs.variables() - loop_vars - params
        for ref in s.reads():
            scalar_candidates -= {ref.array} if isinstance(ref, ArrayRef) else set()
        for v in sorted(scalar_candidates):
            if not _is_array_name(program, v):
                out.append(AccessInfo(s, VarRef(v), False))
        if isinstance(s.lhs, (ArrayRef, VarRef)):
            out.append(AccessInfo(s, s.lhs, True))
    return out


def _is_array_name(program: Program, name: str) -> bool:
    return any(a.name == name for a in program.arrays)


def statement_domain(program: Program, label: str, prefix: str = "") -> System:
    """The iteration-space constraints of a statement's surrounding
    loops, with loop variables optionally renamed by ``prefix``.

    Bounds may be max/min sets of ceil/floor-divided affine terms
    (:class:`~repro.ir.ast.BoundSet`) — e.g. the bounds strip-mining
    produces.  Each term translates *exactly* into a linear constraint:
    a lower term ``ceil(e/d)`` becomes ``d*v >= e`` and an upper term
    ``floor(e/d)`` becomes ``d*v <= e``, and max-lower / min-upper sets
    are conjunctions of their terms.  Hull bounds (disjunctive unions
    from code generation) stay out of scope.
    """
    constraints = []
    rename: dict[str, str] = {}
    for loop in program.enclosing_loops(label):
        if loop.step != 1:
            raise DependenceError(
                f"dependence analysis requires unit steps (loop {loop.var} has {loop.step})"
            )
        if not isinstance(loop.lower, BoundSet) or not isinstance(loop.upper, BoundSet):
            raise DependenceError(
                f"loop {loop.var} has hull bounds; dependence analysis needs "
                "per-statement (BoundSet) bounds"
            )
        v = prefix + loop.var
        vv = var(v)
        for term in loop.lower.terms:
            # v >= ceil(e/d)  <=>  d*v >= e  (d >= 1, integer v)
            lhs = vv if term.div == 1 else vv * term.div
            constraints.append(ge(lhs, term.expr.rename(rename)))
        for term in loop.upper.terms:
            # v <= floor(e/d)  <=>  d*v <= e
            lhs = vv if term.div == 1 else vv * term.div
            constraints.append(le(lhs, term.expr.rename(rename)))
        rename[loop.var] = v
    return System(constraints)


def iter_conflicting_pairs(program: Program) -> Iterator[tuple[AccessInfo, AccessInfo, str]]:
    """Ordered access pairs (src, dst, kind) with at least one write on
    the same array; src is the earlier access role-wise."""
    accesses = statement_accesses(program)
    for a, b in itertools.product(accesses, repeat=2):
        if a.array != b.array:
            continue
        if not (a.is_write or b.is_write):
            continue
        if a.is_write and b.is_write:
            kind = DepKind.OUTPUT
        elif a.is_write:
            kind = DepKind.FLOW
        else:
            kind = DepKind.ANTI
        yield a, b, kind


@timed("dependence.analyze", attr_fn=lambda program, **kw: {"program": program.name})
def analyze_dependences(
    program: Program,
    *,
    layout: Layout | None = None,
    include_unknown: bool = True,
    param_assumptions: System | None = None,
    jobs: int | None = None,
) -> DependenceMatrix:
    """Compute the dependence matrix of a program.

    ``include_unknown`` controls whether cases the feasibility test
    cannot decide are (soundly) included.  ``param_assumptions`` may add
    constraints on symbolic parameters (e.g. ``N >= 2``).

    ``jobs`` fans the statement-pair × depth case matrix out across a
    process pool (``0`` = one worker per CPU); the merge preserves pair
    order, so the result is bit-identical to the serial analysis.  Small
    programs and ``jobs=1`` stay serial.
    """
    layout = layout or Layout(program)
    matrix = DependenceMatrix(layout)
    base_assume = param_assumptions or System()
    pairs = list(iter_conflicting_pairs(program))
    njobs = resolve_jobs(jobs)

    if njobs > 1 and len(pairs) >= _MIN_PAIRS_FOR_POOL:
        per_pair: dict[int, list[DepVector]] = {}
        payloads = [
            (program, base_assume, include_unknown, indices)
            for indices in chunk_round_robin(len(pairs), njobs)
        ]
        for results, metrics in map_in_processes(
            _analyze_pairs_task, payloads, jobs=njobs
        ):
            merge_metrics(metrics)
            for i, vectors in results:
                per_pair[i] = vectors
        for i in range(len(pairs)):
            for dep in per_pair.get(i, ()):
                matrix.add(dep)
        return matrix

    for src_acc, dst_acc, kind in pairs:
        for dep in _pair_vectors(
            program, layout, src_acc, dst_acc, kind, base_assume, include_unknown
        ):
            matrix.add(dep)
    return matrix


#: Below this many conflicting pairs the pool costs more than it saves.
_MIN_PAIRS_FOR_POOL = 4


def _analyze_pairs_task(payload) -> tuple[list[tuple[int, list[DepVector]]], dict[str, int]]:
    """Process-pool task: evaluate the cases of a chunk of conflicting
    pairs, identified by index into the (deterministic) pair enumeration.

    The payload carries only picklable values (the Program, the
    assumption System, the pair indices); the worker re-derives layout
    and pair list, evaluates its chunk, and returns the dependence
    vectors together with its observability-counter delta.
    """
    program, base_assume, include_unknown, indices = payload
    with capture_counters() as cap:
        layout = Layout(program)
        pairs = list(iter_conflicting_pairs(program))
        results = []
        for i in indices:
            src_acc, dst_acc, kind = pairs[i]
            results.append(
                (
                    i,
                    _pair_vectors(
                        program, layout, src_acc, dst_acc, kind, base_assume, include_unknown
                    ),
                )
            )
    return results, cap.metrics


def _pair_vectors(
    program: Program,
    layout: Layout,
    src_acc: AccessInfo,
    dst_acc: AccessInfo,
    kind: str,
    base_assume: System,
    include_unknown: bool,
) -> list[DepVector]:
    """All dependence vectors of one conflicting access pair: build the
    §3 affine system per precedence case, decide feasibility, summarize."""
    counter("dependence.pairs_tested")
    s_label = src_acc.stmt.label
    d_label = dst_acc.stmt.label
    base = (
        statement_domain(program, s_label, _SRC)
        .conjoin(statement_domain(program, d_label, _DST))
        .conjoin(base_assume)
    )
    # subscript equality (same array location)
    subs_s = src_acc.subscripts()
    subs_d = dst_acc.subscripts()
    if len(subs_s) != len(subs_d):
        raise DependenceError(
            f"rank mismatch on array {src_acc.array}: {len(subs_s)} vs {len(subs_d)}"
        )
    s_rename = {l.var: _SRC + l.var for l in program.enclosing_loops(s_label)}
    d_rename = {l.var: _DST + l.var for l in program.enclosing_loops(d_label)}
    for es, ed in zip(subs_s, subs_d):
        base = base.and_(eq(es.rename(s_rename), ed.rename(d_rename)))
    if base.is_trivially_false():
        counter("dependence.pairs_pruned")
        return []

    out: list[DepVector] = []
    common = layout.common_loop_coords(s_label, d_label)
    for case in _precedence_cases(program, s_label, d_label, common):
        if case is None:
            continue
        counter("dependence.cases_tested")
        level_var, case_sys = case
        system = base.conjoin(case_sys)
        feas = system.feasible()
        if feas is Feasibility.INFEASIBLE:
            counter("dependence.cases_infeasible")
            continue
        if feas is Feasibility.UNKNOWN:
            counter("dependence.cases_unknown")
            if not include_unknown:
                continue
            if system.find_point(clip=16) is None and _probably_empty(system):
                continue
        dep = _summarize(
            layout, s_label, d_label, system, kind, level_var, src_acc.array
        )
        if dep is not None:
            counter("dependence.vectors")
            out.append(dep)
    return out


def _precedence_cases(
    program: Program, s_label: str, d_label: str, common: list[LoopCoord]
):
    """Yield (level_name, constraints) for each carried level, plus the
    loop-independent case when syntactic order allows it."""
    vars_ = [c.var for c in common]
    for k, ck in enumerate(vars_):
        cs = [eq(var(_SRC + v), var(_DST + v)) for v in vars_[:k]]
        cs.append(le(var(_SRC + ck) + 1, var(_DST + ck)))
        yield ck, System(cs)
    # loop-independent: same common iteration; requires strict syntactic order
    if s_label != d_label and program.syntactically_before(s_label, d_label):
        cs = [eq(var(_SRC + v), var(_DST + v)) for v in vars_]
        yield None, System(cs)


def _summarize(
    layout: Layout,
    s_label: str,
    d_label: str,
    system: System,
    kind: str,
    level: str | None,
    array: str,
) -> DepVector | None:
    """Summarize ``L(dst) - L(src)`` per coordinate over the system."""
    s_sym = symbolic_vector(layout, s_label)
    d_sym = symbolic_vector(layout, d_label)
    s_rename = {c.var: _SRC + c.var for c in layout.surrounding_loop_coords(s_label)}
    d_rename = {c.var: _DST + c.var for c in layout.surrounding_loop_coords(d_label)}

    entries: list[DepEntry] = []
    for i, coord in enumerate(layout.coords):
        diff = d_sym[i].rename(d_rename) - s_sym[i].rename(s_rename)
        if diff.is_constant():
            entries.append(DepEntry.const(diff.constant))
            continue
        if isinstance(coord, EdgeCoord):  # pragma: no cover - edges are constants
            raise DependenceError("edge coordinate difference should be constant")
        probe = system.and_(eq(var(_DELTA), diff))
        try:
            lo, hi = probe.var_range(_DELTA)
        except Exception:
            lo, hi = None, None
        entries.append(DepEntry(NEG_INF if lo is None else lo, POS_INF if hi is None else hi))
    return DepVector(s_label, d_label, tuple(entries), kind, level, array)


def _probably_empty(system: System) -> bool:
    """Last-resort emptiness heuristic for UNKNOWN systems: sample a few
    larger clip boxes.  Returning False keeps the dependence (sound)."""
    return system.find_point(clip=48) is None
