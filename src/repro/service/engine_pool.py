"""Per-program shards over one warm engine: locks, caches, coalescing.

The daemon's expensive state is process-global and already thread-safe —
the memoized Fourier–Motzkin engine (:mod:`repro.polyhedra.engine`) and
the persistent tune store (:mod:`repro.tune.store`) are shared by every
request for free.  What the pool adds is *per-program* structure:

* each distinct program (keyed by :func:`repro.api.program_key`, the
  SHA-256 of its canonical parse→print text) gets a
  :class:`ProgramShard` holding the parsed canonical program, a shard
  lock, and a bounded LRU cache of finished result payloads, so
  concurrent clients working on unrelated programs never contend;
* the shard map itself is a bounded LRU (``max_shards``, default 64 or
  ``$REPRO_SERVICE_SHARDS``) — a daemon that has seen a million distinct
  programs holds warm state for only the most recent ones;
* identical requests that arrive while the first one is still computing
  are *coalesced*: followers block on the leader's flight and share its
  payload (or its exception) instead of recomputing.

Counters (visible on ``/metrics``): ``service.shard.hits`` / ``.misses``
/ ``.evictions``, ``service.cache.hits`` / ``.misses``,
``service.batch.coalesced``; gauge ``service.shards``.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Callable

from repro.api import canonical_text, program_key
from repro.ir import Program, parse_program
from repro.obs import counter, gauge

__all__ = ["ProgramShard", "EnginePool", "DEFAULT_MAX_SHARDS"]

DEFAULT_MAX_SHARDS = 64
DEFAULT_MAX_RESULTS = 64


class ProgramShard:
    """Warm state for one canonical program."""

    def __init__(self, key: str, program: Program, max_results: int):
        self.key = key
        self.program = program
        #: serializes *computation* on this shard; held for the whole fn()
        self.lock = threading.RLock()
        #: guards only the result map — never held while computing, so a
        #: follower can miss the cache and coalesce while the leader runs
        self._cache_lock = threading.Lock()
        self._max_results = max(1, max_results)
        self._results: OrderedDict[tuple, dict] = OrderedDict()

    def cached(self, sig: tuple) -> dict | None:
        with self._cache_lock:
            payload = self._results.get(sig)
            if payload is not None:
                self._results.move_to_end(sig)
            return payload

    def store(self, sig: tuple, payload: dict) -> None:
        with self._cache_lock:
            self._results[sig] = payload
            self._results.move_to_end(sig)
            while len(self._results) > self._max_results:
                self._results.popitem(last=False)

    def cache_len(self) -> int:
        with self._cache_lock:
            return len(self._results)


class _Flight:
    """One in-progress computation followers can wait on."""

    __slots__ = ("done", "payload", "error")

    def __init__(self):
        self.done = threading.Event()
        self.payload: dict | None = None
        self.error: BaseException | None = None


class EnginePool:
    """The shard map plus the in-flight coalescing table."""

    def __init__(
        self,
        max_shards: int | None = None,
        max_results_per_shard: int = DEFAULT_MAX_RESULTS,
    ):
        if max_shards is None:
            max_shards = int(
                os.environ.get("REPRO_SERVICE_SHARDS", DEFAULT_MAX_SHARDS)
            )
        self.max_shards = max(1, max_shards)
        self.max_results_per_shard = max_results_per_shard
        self._lock = threading.Lock()
        self._shards: OrderedDict[str, ProgramShard] = OrderedDict()
        self._inflight_lock = threading.Lock()
        self._inflight: dict[tuple, _Flight] = {}
        self.stats_lock = threading.Lock()
        self.stats: dict[str, int] = {
            "shard_hits": 0, "shard_misses": 0, "shard_evictions": 0,
            "cache_hits": 0, "cache_misses": 0, "coalesced": 0,
        }

    def _bump(self, name: str, obs_name: str) -> None:
        with self.stats_lock:
            self.stats[name] += 1
        counter(obs_name)

    def shard_for(self, program_text: str) -> ProgramShard:
        """The (possibly new) shard for a program's canonical text.

        Parsing happens at most once per warm program; eviction drops
        the least-recently-used shard but never disturbs a request that
        already holds a reference to it.
        """
        text = canonical_text(program_text)
        key = program_key(text)
        with self._lock:
            shard = self._shards.get(key)
            if shard is not None:
                self._shards.move_to_end(key)
        if shard is not None:
            self._bump("shard_hits", "service.shard.hits")
            return shard
        # parse outside the map lock: parsing is pure and a duplicate
        # parse on a race is cheaper than serializing all misses
        program = parse_program(text, "service")
        with self._lock:
            shard = self._shards.get(key)
            if shard is None:
                shard = ProgramShard(key, program, self.max_results_per_shard)
                self._shards[key] = shard
            self._shards.move_to_end(key)
            evicted = 0
            while len(self._shards) > self.max_shards:
                self._shards.popitem(last=False)
                evicted += 1
            n = len(self._shards)
        self._bump("shard_misses", "service.shard.misses")
        for _ in range(evicted):
            self._bump("shard_evictions", "service.shard.evictions")
        gauge("service.shards", n)
        return shard

    def shard_count(self) -> int:
        with self._lock:
            return len(self._shards)

    def compute(
        self, shard: ProgramShard, sig: tuple, fn: Callable[[], dict]
    ) -> tuple[dict, bool, bool]:
        """Serve ``sig`` from the shard cache, a shared in-flight
        computation, or a fresh ``fn()`` under the shard lock.

        Returns ``(payload, cached, coalesced)``.
        """
        payload = shard.cached(sig)
        if payload is not None:
            self._bump("cache_hits", "service.cache.hits")
            return payload, True, False
        key = (shard.key, sig)
        with self._inflight_lock:
            flight = self._inflight.get(key)
            leader = flight is None
            if leader:
                flight = _Flight()
                self._inflight[key] = flight
        if not leader:
            self._bump("coalesced", "service.batch.coalesced")
            flight.done.wait()
            if flight.error is not None:
                raise flight.error
            return flight.payload or {}, False, True
        try:
            self._bump("cache_misses", "service.cache.misses")
            with shard.lock:
                payload = fn()
            shard.store(sig, payload)
            flight.payload = payload
            return payload, False, False
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            with self._inflight_lock:
                self._inflight.pop(key, None)
            flight.done.set()

    def snapshot(self) -> dict:
        """Pool statistics for the ``/metrics`` endpoint."""
        with self._lock:
            shards = [
                {"key": s.key[:12], "program": s.program.name,
                 "results": s.cache_len()}
                for s in self._shards.values()
            ]
        with self.stats_lock:
            stats = dict(self.stats)
        return {
            "max_shards": self.max_shards,
            "shard_count": len(shards),
            "shards": shards,
            **stats,
        }
