"""HTTP client for the transformation service.

Built on ``http.client`` (stdlib only, like the rest of the repo); one
connection per request keeps the client trivially thread-safe — the
daemon lives on a local socket, so connection setup is noise next to
any pipeline op.  All transport failures surface as
:class:`~repro.util.errors.ServiceError`; remote pipeline failures are
relayed with the remote error class name in ``.kind``, so
``repro --remote`` prints the same ``error: ...`` line a local run
would.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.parse
from typing import Any, Mapping, Sequence

from repro.service.protocol import (
    PROTOCOL_VERSION, REQUEST_TYPES, Response, encode_request,
)
from repro.util.errors import ServiceError

__all__ = ["ServiceClient"]


class ServiceClient:
    """Talks to one ``repro serve`` daemon.

    ``url`` accepts ``http://host:port`` or bare ``host:port``.
    """

    def __init__(self, url: str, timeout: float = 300.0):
        if "//" not in url:
            url = "http://" + url
        parsed = urllib.parse.urlparse(url)
        if parsed.scheme != "http" or not parsed.hostname:
            raise ServiceError(
                f"service URL must be http://host:port, got {url!r}"
            )
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.timeout = timeout

    # -- transport -------------------------------------------------------

    def _http(self, method: str, path: str, body: bytes | None = None) -> dict:
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            headers = {"Content-Type": "application/json"} if body else {}
            conn.request(method, path, body=body, headers=headers)
            raw = conn.getresponse().read()
        except (OSError, http.client.HTTPException) as exc:
            raise ServiceError(
                f"cannot reach service at {self.host}:{self.port}: {exc}",
                kind="ServiceUnreachable",
            ) from None
        finally:
            conn.close()
        try:
            return json.loads(raw)
        except json.JSONDecodeError:
            raise ServiceError(
                f"service at {self.host}:{self.port} answered non-JSON"
            ) from None

    def request_full(self, op: str, **args: Any) -> Response:
        """One protocol round trip; returns the full :class:`Response`
        (tests assert on ``cached`` / ``coalesced``)."""
        cls = REQUEST_TYPES.get(op)
        if cls is None:
            raise ServiceError(f"unknown op {op!r}")
        wire = encode_request(cls(**args))
        return Response.from_wire(self._http("POST", "/v1", json.dumps(wire).encode()))

    def request(self, op: str, **args: Any) -> dict:
        """One round trip; the result payload or a raised ServiceError."""
        return self.request_full(op, **args).unwrap()

    # -- pipeline ops ----------------------------------------------------

    def analyze(
        self,
        program: str,
        *,
        refine: bool = False,
        sample_params: Sequence[str] | None = None,
        jobs: int | None = None,
    ) -> dict:
        return self.request(
            "analyze", program=program, refine=refine,
            sample_params=tuple(sample_params or ()), jobs=jobs,
        )

    def check(self, program: str, spec: str, symbolic: bool = False) -> dict:
        return self.request("check", program=program, spec=spec, symbolic=symbolic)

    def transform(self, program: str, spec: str, *, simplify: bool = False) -> dict:
        return self.request(
            "transform", program=program, spec=spec, simplify=simplify
        )

    def complete(self, program: str, lead: str) -> dict:
        return self.request("complete", program=program, lead=lead)

    def run(
        self,
        program: str,
        params: Mapping[str, int] | None = None,
        *,
        backend: str = "reference",
        par_jobs: int | None = None,
        trace: bool = False,
    ) -> dict:
        return self.request(
            "run", program=program, params=dict(params or {}),
            backend=backend, par_jobs=par_jobs, trace=trace,
        )

    def tune(
        self,
        program: str,
        params: Mapping[str, int] | None = None,
        *,
        name: str = "",
        **opts: Any,
    ) -> dict:
        return self.request(
            "tune", program=program, name=name,
            params=dict(params) if params else None, **opts,
        )

    def explain(
        self,
        program: str,
        *,
        name: str = "",
        phase: str | None = None,
        spec: str | None = None,
        lead: str | None = None,
        params: Mapping[str, int] | None = None,
        as_json: bool = False,
        verbose: bool = False,
    ) -> dict:
        return self.request(
            "explain", program=program, name=name, phase=phase, spec=spec,
            lead=lead, params=dict(params or {}), as_json=as_json,
            verbose=verbose,
        )

    # -- jobs ------------------------------------------------------------

    def submit(self, op: str, **args: Any) -> str:
        return self.request("submit", submit_op=op, args=args)["job_id"]

    def job_poll(self, job_id: str) -> dict:
        return self.request("job_poll", job_id=job_id)

    def job_result(self, job_id: str) -> dict:
        return self.request("job_result", job_id=job_id)

    def job_cancel(self, job_id: str) -> bool:
        return bool(self.request("job_cancel", job_id=job_id)["cancelled"])

    def job_wait(
        self, job_id: str, timeout: float = 300.0, interval: float = 0.05
    ) -> dict:
        """Poll until the job leaves pending/running, then fetch its
        result (raising the relayed failure for error/cancelled jobs)."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.job_poll(job_id)["status"]
            if status not in ("pending", "running"):
                return self.job_result(job_id)
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {status} after {timeout:.0f}s",
                    kind="JobTimeout",
                )
            time.sleep(interval)

    # -- daemon management ----------------------------------------------

    def ping(self) -> dict:
        return self.request("ping")

    def metrics(self) -> dict:
        return Response.from_wire(
            {"protocol": PROTOCOL_VERSION, "ok": True,
             "result": self._http("GET", "/metrics")}
        ).unwrap()

    def healthz(self) -> bool:
        try:
            return bool(self._http("GET", "/healthz").get("ok"))
        except ServiceError:
            return False

    def shutdown(self) -> None:
        self.request("shutdown")

    def wait_ready(self, timeout: float = 30.0, interval: float = 0.05) -> None:
        """Block until the daemon answers ``/healthz`` (boot helper)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.healthz():
                return
            time.sleep(interval)
        raise ServiceError(
            f"service at {self.host}:{self.port} not ready after {timeout:.0f}s",
            kind="ServiceUnreachable",
        )
