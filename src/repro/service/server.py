"""The transformation service daemon (``repro serve``).

One ``ThreadingHTTPServer`` where every request thread dispatches into a
shared :class:`ReproService`:

* ``POST /v1`` — one protocol request per call (``protocol.py``); the
  deterministic pipeline ops (analyze / check / transform / complete /
  run / explain) are served through the engine pool's shard caches and
  in-flight coalescing, ``tune`` runs under the program's shard lock
  against the daemon's persistent tune store, and ``submit`` /
  ``job_*`` drive the async job queue;
* ``GET /metrics`` — counters, gauges, ``service.request_ns.<op>``
  latency histograms, shard and job statistics as JSON;
* ``GET /healthz`` — liveness.

Graceful shutdown: SIGTERM/SIGINT (or the ``shutdown`` op) stop the
accept loop, drain in-flight request threads (the handler threads are
non-daemon), drain the job queue, and only then uninstall the
observability session — which flushes and closes the trace sink, so a
killed daemon never leaves a truncated JSONL artifact
(docs/SERVICE.md).
"""

from __future__ import annotations

import dataclasses
import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro import api, obs
from repro.service.engine_pool import EnginePool
from repro.service.jobs import JobQueue
from repro.service.protocol import PROTOCOL_VERSION, Response, decode_request
from repro.util.errors import ReproError, ServiceError

__all__ = ["ReproService", "ServiceServer", "serve"]

#: Retained decision events before the daemon clears the session list
#: (sinks have already streamed them; see ``_explain`` for why clearing
#: happens under the explain lock).
EVENT_HIGH_WATER = 50_000

#: Ops whose result payloads are cached per shard (pure functions of the
#: canonical program and the request args).  ``tune`` is excluded — the
#: persistent tune store is its cache and timings are not deterministic;
#: ``explain`` is excluded because its tune phase reads mutable store
#: state.
CACHEABLE_OPS = ("analyze", "check", "transform", "complete", "run")


class ReproService:
    """Protocol dispatcher: wire dict in, :class:`Response` out.

    HTTP-free by design so tests can drive it directly.
    """

    def __init__(
        self,
        pool: EnginePool | None = None,
        job_workers: int = 2,
        tune_dir: str | None = None,
    ):
        self.pool = pool or EnginePool()
        self.tune_dir = tune_dir
        self.jobs = JobQueue(self._run_submitted, workers=job_workers)
        self._explain_lock = threading.Lock()
        self._metrics_lock = threading.Lock()
        self.started_at = time.time()
        self.shutdown_callback = None  # set by ServiceServer

    # -- dispatch --------------------------------------------------------

    def handle(self, wire: dict) -> Response:
        t0 = time.perf_counter_ns()
        op = wire.get("op") if isinstance(wire, dict) else None
        try:
            req = decode_request(wire)
            payload, cached, coalesced = self._dispatch(req)
            resp = Response(
                ok=True, result=payload, cached=cached, coalesced=coalesced
            )
        except ReproError as exc:
            with self._metrics_lock:
                obs.counter("service.errors")
            # a ServiceError carries a relayed kind (e.g. a job's ParseError)
            kind = getattr(exc, "kind", None) or type(exc).__name__
            resp = Response(ok=False, error=str(exc), error_kind=kind)
        except Exception as exc:  # noqa: BLE001 - relayed, never a 500
            with self._metrics_lock:
                obs.counter("service.errors")
            resp = Response(
                ok=False,
                error=f"internal error: {type(exc).__name__}: {exc}",
                error_kind=type(exc).__name__,
            )
        resp.served_ns = time.perf_counter_ns() - t0
        with self._metrics_lock:
            obs.counter("service.requests")
            if op:
                obs.histogram(f"service.request_ns.{op}", resp.served_ns)
        return resp

    def _dispatch(self, req) -> tuple[dict, bool, bool]:
        op = req.op
        if op == "ping":
            return {
                "pong": True,
                "protocol": PROTOCOL_VERSION,
                "uptime_seconds": time.time() - self.started_at,
            }, False, False
        if op == "metrics":
            return self.metrics_payload(), False, False
        if op == "shutdown":
            if self.shutdown_callback is None:
                raise ServiceError("daemon does not accept remote shutdown")
            self.shutdown_callback()
            return {"shutting_down": True}, False, False
        if op == "submit":
            if req.submit_op not in api.OPS:
                raise ServiceError(
                    f"cannot submit op {req.submit_op!r} "
                    f"(submittable: {', '.join(sorted(api.OPS))})"
                )
            # validate args now so submit fails fast, not at job runtime
            decode_request(
                {"protocol": PROTOCOL_VERSION, "op": req.submit_op,
                 "args": dict(req.args)}
            )
            return {"job_id": self.jobs.submit(req.submit_op, dict(req.args))}, \
                False, False
        if op == "job_poll":
            return self.jobs.poll(req.job_id), False, False
        if op == "job_result":
            return self.jobs.result(req.job_id), False, False
        if op == "job_cancel":
            return {"cancelled": self.jobs.cancel(req.job_id)}, False, False
        if op not in api.OPS:
            raise ServiceError(f"unhandled op {op!r}")

        shard = self.pool.shard_for(req.program)
        if op in CACHEABLE_OPS:
            sig = self._signature(req)
            return self.pool.compute(
                shard, sig, lambda: self._execute(req, shard.program)
            )
        # tune / explain: serialized per shard, never result-cached
        with shard.lock:
            return self._execute(req, shard.program), False, False

    @staticmethod
    def _signature(req) -> tuple:
        items = []
        for f in dataclasses.fields(req):
            if f.name == "program":
                continue
            v = getattr(req, f.name)
            if isinstance(v, dict):
                v = tuple(sorted(v.items()))
            items.append((f.name, v))
        return (req.op, tuple(items))

    def _run_submitted(self, op: str, args: dict) -> dict:
        """Job-queue handler: re-enter the normal dispatch path."""
        req = decode_request(
            {"protocol": PROTOCOL_VERSION, "op": op, "args": args}
        )
        payload, _, _ = self._dispatch(req)
        return payload

    # -- op execution ----------------------------------------------------

    def _execute(self, req, program) -> dict:
        op = req.op
        if op == "analyze":
            return api.analyze_op(
                program,
                refine=req.refine,
                sample_param_texts=list(req.sample_params) or None,
                jobs=req.jobs,
            ).to_payload()
        if op == "check":
            oracle = "symbolic" if getattr(req, "symbolic", False) else "theorem-2"
            return api.check_op(program, req.spec, oracle=oracle).to_payload()
        if op == "transform":
            return api.transform_op(
                program, req.spec, simplify=req.simplify
            ).to_payload()
        if op == "complete":
            return api.complete_op(program, req.lead).to_payload()
        if op == "run":
            return api.run_op(
                program,
                {k: int(v) for k, v in req.params.items()},
                backend=req.backend,
                par_jobs=req.par_jobs,
                trace=req.trace,
            ).to_payload()
        if op == "tune":
            params = (
                {k: int(v) for k, v in req.params.items()}
                if req.params else None
            )
            # tune/explain renderings embed the program name, which is
            # client-side context (not part of canonical program text) —
            # restore it on a copy so remote output matches local output
            if req.name:
                program = dataclasses.replace(program, name=req.name)
            return api.tune_op(
                program,
                params,
                cache_dir=self.tune_dir,
                backend=req.backend,
                beam_width=req.beam_width,
                depth=req.depth,
                top_k=req.top_k,
                repeat=req.repeat,
                use_cache=req.use_cache,
                force=req.force,
                include_structural=req.include_structural,
                tile_sizes=req.tile_sizes,
                max_candidates=req.max_candidates,
                cross_check=req.cross_check,
                symbolic=getattr(req, "symbolic", False),
            ).to_payload()
        if op == "explain":
            return self._explain(req, program)
        raise ServiceError(f"unhandled op {op!r}")

    def _explain(self, req, program) -> dict:
        # Serialized globally: the explain narrative replays the decision
        # events this request emits into the shared daemon session, and
        # the event-start marker (repro.explain._EVENTS_START) scopes the
        # slice per request.  Concurrent *non-explain* requests emitting
        # same-kind events can still interleave — best-effort, documented
        # in docs/SERVICE.md.  The high-water clear keeps a long-lived
        # daemon from saturating the session's MAX_EVENTS cap (events are
        # already streamed to the sinks).
        if req.name:
            program = dataclasses.replace(program, name=req.name)
        with self._explain_lock:
            sess = obs.current_session()
            if sess is not None and len(sess.events) > EVENT_HIGH_WATER:
                sess.events.clear()
            return api.explain_op(
                program,
                phase=req.phase,
                spec=req.spec,
                lead=req.lead,
                params={k: int(v) for k, v in req.params.items()},
                cache_dir=self.tune_dir,
                as_json=req.as_json,
                verbose=req.verbose,
            ).to_payload()

    # -- metrics ---------------------------------------------------------

    def metrics_payload(self) -> dict:
        counters, gauges = obs.snapshot()
        hists = {
            name: {
                "count": h.count, "total": h.total, "max": h.max,
                "p50": h.p50, "p90": h.p90, "p99": h.p99,
            }
            for name, h in obs.snapshot_histograms().items()
        }
        return {
            "uptime_seconds": time.time() - self.started_at,
            "counters": counters,
            "gauges": gauges,
            "histograms": hists,
            "pool": self.pool.snapshot(),
            "jobs": self.jobs.snapshot(),
        }


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/" + str(PROTOCOL_VERSION)
    protocol_version = "HTTP/1.1"

    # BaseHTTPRequestHandler logs to stderr per request; the daemon's
    # observability lives in the obs session instead.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    def _send_json(self, code: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self):  # noqa: N802 - stdlib dispatch name
        service = self.server.service  # type: ignore[attr-defined]
        if self.path == "/healthz":
            self._send_json(200, {"ok": True})
        elif self.path == "/metrics":
            self._send_json(200, service.metrics_payload())
        else:
            self._send_json(404, {"ok": False, "error": f"no route {self.path}"})

    def do_POST(self):  # noqa: N802 - stdlib dispatch name
        service = self.server.service  # type: ignore[attr-defined]
        if self.path not in ("/v1", "/v1/"):
            self._send_json(404, {"ok": False, "error": f"no route {self.path}"})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            wire = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, json.JSONDecodeError) as exc:
            self._send_json(
                400,
                Response(
                    ok=False, error=f"bad request body: {exc}",
                    error_kind="ServiceError",
                ).to_wire(),
            )
            return
        resp = service.handle(wire)
        self._send_json(200 if resp.ok else 422, resp.to_wire())


class _HTTPServer(ThreadingHTTPServer):
    # non-daemon handler threads + block_on_close: server_close() joins
    # every in-flight request — the "drain" half of graceful shutdown
    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True


class ServiceServer:
    """A bound daemon instance; tests run it in a thread, ``serve`` runs
    it in the foreground with signal handling."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_shards: int | None = None,
        job_workers: int = 2,
        tune_dir: str | None = None,
    ):
        self.service = ReproService(
            pool=EnginePool(max_shards=max_shards),
            job_workers=job_workers,
            tune_dir=tune_dir,
        )
        self.httpd = _HTTPServer((host, port), _Handler)
        self.httpd.service = self.service  # type: ignore[attr-defined]
        self.service.shutdown_callback = self.request_shutdown
        self._shutdown_started = threading.Lock()

    @property
    def url(self) -> str:
        host, port = self.httpd.server_address[:2]
        return f"http://{host}:{port}"

    def serve_forever(self) -> None:
        self.httpd.serve_forever(poll_interval=0.1)

    def request_shutdown(self) -> None:
        """Stop the accept loop from any thread (idempotent).

        ``shutdown()`` must not run on a thread currently serving a
        request of this server (deadlock with ``serve_forever``), so it
        is always dispatched to a helper thread.
        """
        if not self._shutdown_started.acquire(blocking=False):
            return
        threading.Thread(
            target=self.httpd.shutdown, name="repro-serve-shutdown", daemon=True
        ).start()

    def close(self, drain_jobs: bool = True) -> None:
        """Drain request threads and the job queue; release the socket."""
        self.httpd.server_close()  # joins in-flight request threads
        self.service.jobs.stop(wait=drain_jobs)


def serve(
    host: str = "127.0.0.1",
    port: int = 7521,
    max_shards: int | None = None,
    job_workers: int = 2,
    trace_json: str | None = None,
    tune_dir: str | None = None,
) -> int:
    """Run the daemon in the foreground until SIGTERM/SIGINT or a
    ``shutdown`` request; returns a CLI exit code."""
    installed = None
    if obs.current_session() is None:
        sinks = [obs.JsonlSink(trace_json)] if trace_json else []
        installed = obs.install(*sinks)

    server = ServiceServer(
        host=host, port=port, max_shards=max_shards,
        job_workers=job_workers, tune_dir=tune_dir,
    )

    def _signal_shutdown(signum, frame):
        obs.counter("service.signals")
        server.request_shutdown()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[signum] = signal.signal(signum, _signal_shutdown)
        except ValueError:  # pragma: no cover - not the main thread
            pass

    print(f"repro service listening on {server.url}", flush=True)
    try:
        server.serve_forever()
    finally:
        server.close(drain_jobs=True)
        for signum, old in previous.items():
            signal.signal(signum, old)
        if installed is not None:
            # flushes and closes the JSONL trace sink — the artifact is
            # complete even when the daemon dies to a signal
            obs.uninstall()
    print("repro service stopped", flush=True)
    return 0
