"""Transformation-as-a-service: a persistent daemon over the pipeline.

The one-shot CLI cold-starts Python, re-parses the program, and rebuilds
the memoized Fourier–Motzkin engine cache on every invocation.  The
service keeps all of that warm in one long-lived process and exposes the
full pipeline — analyze / check / transform / complete / run / tune /
explain — over HTTP on a local socket:

* :mod:`repro.service.protocol` — versioned, typed request/response
  dataclasses and the JSON wire codec;
* :mod:`repro.service.engine_pool` — per-program shards (keyed by
  :func:`repro.api.program_key`) with bounded LRU eviction, per-shard
  locks, per-shard result caches, and in-flight request coalescing;
* :mod:`repro.service.jobs` — an async job queue (submit / poll /
  result / cancel) so long tunes never block a request thread;
* :mod:`repro.service.server` — the threaded daemon (``repro serve``)
  with graceful SIGTERM/SIGINT shutdown and a ``/metrics`` endpoint;
* :mod:`repro.service.client` — the HTTP client the CLI's ``--remote``
  flag (and the fuzzer's ``--service`` oracle) uses.

Warm-path results are byte-identical to cold CLI runs: both front ends
drive :mod:`repro.api` and render through the same result dataclasses.
See docs/SERVICE.md.
"""

from repro.service.client import ServiceClient
from repro.service.protocol import PROTOCOL_VERSION, Response

__all__ = ["ServiceClient", "PROTOCOL_VERSION", "Response"]
