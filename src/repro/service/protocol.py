"""Wire protocol of the transformation service: typed and versioned.

A request on the wire is one JSON object::

    {"protocol": 1, "op": "analyze", "args": {"program": "...", ...}}

and every response is::

    {"protocol": 1, "ok": true,  "result": {...},
     "cached": false, "coalesced": false, "served_ns": 1234567}
    {"protocol": 1, "ok": false, "error": "...", "error_kind": "ParseError"}

Each operation has a frozen request dataclass here; the ``args`` object
is exactly its non-``op`` fields.  :func:`decode_request` validates the
protocol version, the op name, and the argument names/requiredness, and
returns the typed request — the server never touches raw dicts.  The
``result`` payload of a pipeline op is the ``to_payload()`` dict of the
matching :mod:`repro.api` result class (see :data:`repro.api.OPS`), so a
client reconstructs the same dataclass the CLI renders locally.

Programs always travel as source text, never as file paths: the daemon
has no business reading the client's filesystem, and canonical program
text is what the engine pool shards by.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, ClassVar, Mapping

from repro.util.errors import ServiceError

__all__ = [
    "PROTOCOL_VERSION", "REQUEST_TYPES", "Response",
    "AnalyzeRequest", "CheckRequest", "TransformRequest", "CompleteRequest",
    "RunRequest", "TuneRequest", "ExplainRequest",
    "SubmitRequest", "JobPollRequest", "JobResultRequest", "JobCancelRequest",
    "PingRequest", "MetricsRequest", "ShutdownRequest",
    "encode_request", "decode_request",
]

#: Bumped on any incompatible change to request args or result payloads.
PROTOCOL_VERSION = 1


@dataclass(frozen=True)
class AnalyzeRequest:
    """Dependence analysis (``repro deps``)."""

    op: ClassVar[str] = "analyze"
    program: str
    refine: bool = False
    sample_params: tuple[str, ...] = ()
    jobs: int | None = None


@dataclass(frozen=True)
class CheckRequest:
    """Legality verdict for a transformation spec (``repro check``).

    ``symbolic=True`` appeals a Theorem-2 rejection to the fractal
    symbolic oracle (docs/SYMBOLIC.md); the field defaults off so
    pre-symbolic clients keep working unchanged."""

    op: ClassVar[str] = "check"
    program: str
    spec: str = ""
    symbolic: bool = False


@dataclass(frozen=True)
class TransformRequest:
    """Code generation for a legal spec (``repro transform``)."""

    op: ClassVar[str] = "transform"
    program: str
    spec: str = ""
    simplify: bool = False


@dataclass(frozen=True)
class CompleteRequest:
    """Completion of a partial transformation (``repro complete``)."""

    op: ClassVar[str] = "complete"
    program: str
    lead: str = ""


@dataclass(frozen=True)
class RunRequest:
    """Execution with any registered backend (``repro run``)."""

    op: ClassVar[str] = "run"
    program: str
    params: dict[str, int] = dataclasses.field(default_factory=dict)
    backend: str = "reference"
    par_jobs: int | None = None
    trace: bool = False


@dataclass(frozen=True)
class TuneRequest:
    """Autotuning search (``repro tune``).  Served under the program's
    shard lock and never result-cached: the daemon's persistent tune
    store is the cache."""

    op: ClassVar[str] = "tune"
    program: str
    name: str = ""
    params: dict[str, int] | None = None
    backend: str = "source-vec"
    beam_width: int = 4
    depth: int = 2
    top_k: int = 3
    repeat: int = 3
    use_cache: bool = True
    force: bool = False
    include_structural: bool = True
    tile_sizes: tuple[int, ...] | None = None
    max_candidates: int | None = None
    cross_check: str = "full"
    #: Appeal Theorem-2 rejections to the fractal symbolic oracle
    #: (docs/SYMBOLIC.md).  Defaults off, so requests serialized by
    #: older clients keep their exact meaning.
    symbolic: bool = False


@dataclass(frozen=True)
class ExplainRequest:
    """Decision provenance (``repro explain``)."""

    op: ClassVar[str] = "explain"
    program: str
    name: str = ""
    phase: str | None = None
    spec: str | None = None
    lead: str | None = None
    params: dict[str, int] = dataclasses.field(default_factory=dict)
    as_json: bool = False
    verbose: bool = False


@dataclass(frozen=True)
class SubmitRequest:
    """Enqueue a pipeline op on the async job queue; returns a job id
    immediately (docs/SERVICE.md)."""

    op: ClassVar[str] = "submit"
    submit_op: str = ""
    args: dict[str, Any] = dataclasses.field(default_factory=dict)


@dataclass(frozen=True)
class JobPollRequest:
    op: ClassVar[str] = "job_poll"
    job_id: str = ""


@dataclass(frozen=True)
class JobResultRequest:
    op: ClassVar[str] = "job_result"
    job_id: str = ""


@dataclass(frozen=True)
class JobCancelRequest:
    op: ClassVar[str] = "job_cancel"
    job_id: str = ""


@dataclass(frozen=True)
class PingRequest:
    op: ClassVar[str] = "ping"


@dataclass(frozen=True)
class MetricsRequest:
    op: ClassVar[str] = "metrics"


@dataclass(frozen=True)
class ShutdownRequest:
    """Ask the daemon to shut down gracefully (drain, flush, exit) —
    the HTTP twin of SIGTERM, so tests and CI need no signals."""

    op: ClassVar[str] = "shutdown"


REQUEST_TYPES: dict[str, type] = {
    cls.op: cls
    for cls in (
        AnalyzeRequest, CheckRequest, TransformRequest, CompleteRequest,
        RunRequest, TuneRequest, ExplainRequest,
        SubmitRequest, JobPollRequest, JobResultRequest, JobCancelRequest,
        PingRequest, MetricsRequest, ShutdownRequest,
    )
}


def encode_request(req) -> dict:
    """Typed request → wire dict."""
    args = {}
    for f in dataclasses.fields(req):
        v = getattr(req, f.name)
        if isinstance(v, tuple):
            v = list(v)
        args[f.name] = v
    return {"protocol": PROTOCOL_VERSION, "op": req.op, "args": args}


def decode_request(wire: Mapping[str, Any]):
    """Wire dict → typed request, validating version, op and args."""
    if not isinstance(wire, Mapping):
        raise ServiceError("request body must be a JSON object")
    proto = wire.get("protocol")
    if proto != PROTOCOL_VERSION:
        raise ServiceError(
            f"unsupported protocol version {proto!r} (this daemon speaks "
            f"{PROTOCOL_VERSION})"
        )
    op = wire.get("op")
    cls = REQUEST_TYPES.get(op)
    if cls is None:
        raise ServiceError(
            f"unknown op {op!r} (known: {', '.join(sorted(REQUEST_TYPES))})"
        )
    args = wire.get("args") or {}
    if not isinstance(args, Mapping):
        raise ServiceError(f"args for {op!r} must be a JSON object")
    names = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(args) - names)
    if unknown:
        raise ServiceError(f"unknown argument(s) for {op!r}: {', '.join(unknown)}")
    kwargs = dict(args)
    for f in dataclasses.fields(cls):
        if f.name in kwargs and isinstance(kwargs[f.name], list):
            kwargs[f.name] = tuple(kwargs[f.name])
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise ServiceError(f"bad arguments for {op!r}: {exc}") from None


@dataclass
class Response:
    """One service response; ``result`` is the op's payload dict."""

    ok: bool
    result: dict | None = None
    error: str | None = None
    error_kind: str | None = None
    cached: bool = False
    coalesced: bool = False
    served_ns: int | None = None
    protocol: int = PROTOCOL_VERSION

    def to_wire(self) -> dict:
        wire: dict[str, Any] = {"protocol": self.protocol, "ok": self.ok}
        if self.ok:
            wire["result"] = self.result
            wire["cached"] = self.cached
            wire["coalesced"] = self.coalesced
        else:
            wire["error"] = self.error
            wire["error_kind"] = self.error_kind
        if self.served_ns is not None:
            wire["served_ns"] = self.served_ns
        return wire

    @classmethod
    def from_wire(cls, wire: Mapping[str, Any]) -> "Response":
        if not isinstance(wire, Mapping) or "ok" not in wire:
            raise ServiceError("malformed service response")
        proto = wire.get("protocol")
        if proto != PROTOCOL_VERSION:
            raise ServiceError(
                f"service answered with unsupported protocol {proto!r}"
            )
        return cls(
            ok=bool(wire["ok"]),
            result=wire.get("result"),
            error=wire.get("error"),
            error_kind=wire.get("error_kind"),
            cached=bool(wire.get("cached", False)),
            coalesced=bool(wire.get("coalesced", False)),
            served_ns=wire.get("served_ns"),
        )

    def unwrap(self) -> dict:
        """The result payload, or the remote failure as a
        :class:`ServiceError` carrying the remote error class name."""
        if not self.ok:
            raise ServiceError(
                self.error or "service request failed",
                kind=self.error_kind or "ServiceError",
            )
        return self.result or {}
