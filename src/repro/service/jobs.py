"""Async job queue: long operations off the request threads.

A tune over a big search space (or any pipeline op a client chooses to
background) runs for seconds to minutes; holding an HTTP request open
that long wastes a request thread and trips client timeouts.  ``submit``
enqueues the op and returns a job id immediately; ``poll`` reports
status; ``result`` returns the finished payload (or the failure);
``cancel`` withdraws a job that has not started yet — a running pipeline
op has no safe preemption point, so cancelling one only marks it
ignored.

Statuses: ``pending`` → ``running`` → ``done`` | ``error``, or
``pending`` → ``cancelled``.  Finished jobs are kept in a bounded ring
(``MAX_FINISHED``) so a long-lived daemon cannot leak job records.

Counters: ``service.jobs.submitted`` / ``.completed`` / ``.failed`` /
``.cancelled``.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs import counter
from repro.util.errors import ServiceError

__all__ = ["Job", "JobQueue", "MAX_FINISHED"]

#: Finished job records retained before the oldest are dropped.
MAX_FINISHED = 256


@dataclass
class Job:
    id: str
    op: str
    args: dict[str, Any]
    status: str = "pending"
    result: dict | None = None
    error: str | None = None
    error_kind: str | None = None
    submitted_at: float = field(default_factory=time.time)
    finished_at: float | None = None
    done_event: threading.Event = field(default_factory=threading.Event, repr=False)

    def describe(self) -> dict:
        return {
            "job_id": self.id,
            "op": self.op,
            "status": self.status,
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "error_kind": self.error_kind,
        }


class JobQueue:
    """Worker threads draining a FIFO of pipeline ops."""

    def __init__(self, handler: Callable[[str, dict], dict], workers: int = 2):
        self._handler = handler
        self._queue: queue.Queue[str | None] = queue.Queue()
        self._jobs: dict[str, Job] = {}
        self._order: list[str] = []
        self._lock = threading.Lock()
        self._seq = itertools.count(1)
        self._stopping = False
        self._workers = [
            threading.Thread(
                target=self._worker, name=f"repro-job-{i}", daemon=True
            )
            for i in range(max(1, workers))
        ]
        for t in self._workers:
            t.start()

    # -- client-facing operations ---------------------------------------

    def submit(self, op: str, args: dict[str, Any]) -> str:
        with self._lock:
            if self._stopping:
                raise ServiceError("daemon is shutting down; job rejected")
            job_id = f"job-{next(self._seq)}"
            job = Job(id=job_id, op=op, args=dict(args))
            self._jobs[job_id] = job
            self._order.append(job_id)
            self._prune_locked()
        counter("service.jobs.submitted")
        self._queue.put(job_id)
        return job_id

    def poll(self, job_id: str) -> dict:
        return self._get(job_id).describe()

    def result(self, job_id: str) -> dict:
        """The finished payload; raises while pending/running, relays
        the failure for error/cancelled jobs."""
        job = self._get(job_id)
        if job.status in ("pending", "running"):
            raise ServiceError(
                f"job {job_id} is {job.status}; poll until done", kind="JobPending"
            )
        if job.status == "cancelled":
            raise ServiceError(f"job {job_id} was cancelled", kind="JobCancelled")
        if job.status == "error":
            raise ServiceError(
                job.error or f"job {job_id} failed",
                kind=job.error_kind or "ServiceError",
            )
        return job.result or {}

    def cancel(self, job_id: str) -> bool:
        """Withdraw a pending job; returns whether it was cancelled."""
        job = self._get(job_id)
        with self._lock:
            if job.status != "pending":
                return False
            job.status = "cancelled"
            job.finished_at = time.time()
            job.done_event.set()
        counter("service.jobs.cancelled")
        return True

    def wait(self, job_id: str, timeout: float | None = None) -> bool:
        """Block until the job finishes (server-side helper for tests)."""
        return self._get(job_id).done_event.wait(timeout)

    # -- lifecycle -------------------------------------------------------

    def stop(self, wait: bool = True, timeout: float | None = 30.0) -> None:
        """Stop accepting work and (optionally) drain the workers."""
        with self._lock:
            if self._stopping:
                return
            self._stopping = True
        for _ in self._workers:
            self._queue.put(None)
        if wait:
            for t in self._workers:
                t.join(timeout)

    def snapshot(self) -> dict:
        with self._lock:
            jobs = [self._jobs[j].describe() for j in self._order]
        by_status: dict[str, int] = {}
        for j in jobs:
            by_status[j["status"]] = by_status.get(j["status"], 0) + 1
        return {"jobs": len(jobs), "by_status": by_status}

    # -- internals -------------------------------------------------------

    def _get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job id {job_id!r}", kind="JobUnknown")
        return job

    def _prune_locked(self) -> None:
        finished = [
            j for j in self._order
            if self._jobs[j].status in ("done", "error", "cancelled")
        ]
        while len(finished) > MAX_FINISHED:
            victim = finished.pop(0)
            self._order.remove(victim)
            del self._jobs[victim]

    def _worker(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            with self._lock:
                job = self._jobs.get(job_id)
                if job is None or job.status != "pending":
                    continue  # cancelled or pruned while queued
                job.status = "running"
            try:
                result = self._handler(job.op, job.args)
            except Exception as exc:  # noqa: BLE001 - relayed to the client
                with self._lock:
                    job.status = "error"
                    job.error = str(exc)
                    job.error_kind = type(exc).__name__
                    job.finished_at = time.time()
                counter("service.jobs.failed")
            else:
                with self._lock:
                    job.status = "done"
                    job.result = result
                    job.finished_at = time.time()
                counter("service.jobs.completed")
            finally:
                job.done_event.set()
