"""Closure-compiled executor — a faster backend for the interpreter.

The reference executor (:mod:`repro.interp.executor`) dispatches on node
and expression types at every dynamic instance; per the HPC guides'
advice (measure, then speed up the bottleneck), this module compiles a
program **once** into nested Python closures: every expression becomes
a function ``env -> float``, every loop a function that iterates its
pre-compiled body, so the per-instance cost drops to direct calls.

Semantics are identical to the reference executor (same float
operations in the same order); the test suite cross-checks them on
every kernel and on random programs.  Tracing is not supported here —
use the reference executor when a trace is needed.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from repro.interp.executor import ArrayStore
from repro.ir.ast import Guard, Loop, Node, Program, Statement
from repro.ir.expr import (
    BUILTIN_FUNCTIONS, ArrayRef, BinOp, Call, Expr, FloatLit, IntLit, UnaryOp,
    VarRef,
)
from repro.util.errors import InterpError

__all__ = ["compile_program", "execute_compiled"]


def _compile_expr(e: Expr, store: ArrayStore) -> Callable[[dict], float]:
    if isinstance(e, IntLit):
        v = float(e.value)
        return lambda env: v
    if isinstance(e, FloatLit):
        v = e.value
        return lambda env: v
    if isinstance(e, VarRef):
        name = e.name
        scalars = store.scalars

        def var_ref(env):
            if name in env:
                return float(env[name])
            try:
                return scalars[name]
            except KeyError:
                raise InterpError(f"unbound variable {name!r}") from None

        return var_ref
    if isinstance(e, ArrayRef):
        try:
            arr = store.arrays[e.array]
            lows = store.lowers[e.array]
        except KeyError:
            raise InterpError(f"undeclared array {e.array!r}") from None
        subs = [_compile_index(s, store) for s in e.subscripts]
        if len(subs) != arr.ndim:
            raise InterpError(
                f"{e.array} has rank {arr.ndim}, got {len(subs)} subscripts"
            )

        shape = arr.shape
        aname = e.array

        def load(env):
            pos = tuple(f(env) - l for f, l in zip(subs, lows))
            for p, s_ in zip(pos, shape):
                if not (0 <= p < s_):
                    raise InterpError(
                        f"index out of declared range for {aname}"
                    )
            return float(arr[pos])

        return load
    if isinstance(e, UnaryOp):
        inner = _compile_expr(e.operand, store)
        return lambda env: -inner(env)
    if isinstance(e, BinOp):
        lf = _compile_expr(e.left, store)
        rf = _compile_expr(e.right, store)
        op = e.op
        if op == "+":
            return lambda env: lf(env) + rf(env)
        if op == "-":
            return lambda env: lf(env) - rf(env)
        if op == "*":
            return lambda env: lf(env) * rf(env)
        if op == "/":
            def div(env):
                r = rf(env)
                if r == 0:
                    raise InterpError("division by zero during execution")
                return lf(env) / r

            return div
        if op == "%":
            return lambda env: lf(env) % rf(env)
        raise InterpError(f"unknown operator {op}")  # pragma: no cover
    if isinstance(e, Call):
        fn = BUILTIN_FUNCTIONS[e.func]
        args = [_compile_expr(a, store) for a in e.args]
        return lambda env: float(fn(*[a(env) for a in args]))
    raise InterpError(f"cannot compile {e!r}")


def _compile_index(e: Expr, store: ArrayStore) -> Callable[[dict], int]:
    f = _compile_expr(e, store)

    def index(env):
        v = f(env)
        iv = int(round(v))
        if abs(v - iv) > 1e-9:
            raise InterpError(f"non-integer subscript value {v}")
        return iv

    return index


def _compile_node(node: Node, store: ArrayStore) -> Callable[[dict], None]:
    if isinstance(node, Statement):
        rhs = _compile_expr(node.rhs, store)
        if isinstance(node.lhs, ArrayRef):
            arr = store.arrays[node.lhs.array]
            lows = store.lowers[node.lhs.array]
            subs = [_compile_index(s, store) for s in node.lhs.subscripts]

            shape = arr.shape
            aname = node.lhs.array

            def assign(env):
                pos = tuple(f(env) - l for f, l in zip(subs, lows))
                for p, s_ in zip(pos, shape):
                    if not (0 <= p < s_):
                        raise InterpError(
                            f"index out of declared range for {aname}"
                        )
                arr[pos] = rhs(env)

            return assign
        name = node.lhs.name
        scalars = store.scalars

        def assign_scalar(env):
            scalars[name] = rhs(env)

        return assign_scalar
    if isinstance(node, Loop):
        lower, upper, step, var = node.lower, node.upper, node.step, node.var
        body = [_compile_node(c, store) for c in node.body]

        def run_loop(env):
            lo = lower.eval(env)
            hi = upper.eval(env)
            rng = range(lo, hi + 1, step) if step > 0 else range(lo, hi - 1, step)
            for v in rng:
                env[var] = v
                for b in body:
                    b(env)
            env.pop(var, None)

        return run_loop
    if isinstance(node, Guard):
        conds = node.conditions
        body = [_compile_node(c, store) for c in node.body]

        def run_guard(env):
            if all(c.satisfied_by(env) for c in conds):
                for b in body:
                    b(env)

        return run_guard
    raise InterpError(f"cannot compile node of type {type(node).__name__}")


def compile_program(program: Program, store: ArrayStore) -> Callable[[dict], None]:
    """Compile a program against a concrete store; returns ``run(env)``.

    The closures capture the store's arrays, so the same compiled
    object must not be reused with a different store.
    """
    body = [_compile_node(n, store) for n in program.body]

    def run(env: dict) -> None:
        for b in body:
            b(env)

    return run


def execute_compiled(
    program: Program,
    params: Mapping[str, int] | None = None,
    arrays: Mapping[str, np.ndarray] | None = None,
    *,
    init=None,
) -> ArrayStore:
    """Drop-in (traceless) fast variant of :func:`repro.interp.execute`."""
    params = dict(params or {})
    store = ArrayStore(program, params, init)
    if arrays:
        for k, v in arrays.items():
            if k not in store.arrays:
                raise InterpError(f"unknown array {k!r} in initial values")
            if store.arrays[k].shape != v.shape:
                raise InterpError(
                    f"shape mismatch for {k}: {store.arrays[k].shape} vs {v.shape}"
                )
            store.arrays[k][...] = np.asarray(v, dtype=float)
    run = compile_program(program, store)
    run(dict(params))
    return store
