"""Set-associative LRU cache simulator (system S13).

Stands in for 1996 hardware when evaluating the paper's motivating
claim that different loop orders of the *same* computation (e.g. the
six Cholesky permutations) differ materially in performance.  The
simulator replays an execution trace's array accesses against a
parameterized cache and reports hit/miss counts.

The address stream is derived by laying arrays out contiguously in
row-major order at 8 bytes per element.  The hot loop is vectorized
with numpy per the HPC guides: set indices and tags are computed for
the whole trace at once, and only the per-set LRU update runs in
Python.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.interp.executor import ArrayStore, Trace
from repro.obs import counter, timed
from repro.util.errors import InterpError

__all__ = ["CacheConfig", "CacheStats", "simulate_cache", "trace_addresses"]


@dataclass(frozen=True)
class CacheConfig:
    """Cache geometry.  Defaults: 32 KiB, 4-way, 64-byte lines."""

    size_bytes: int = 32 * 1024
    line_bytes: int = 64
    ways: int = 4
    element_bytes: int = 8

    def __post_init__(self):
        if self.size_bytes % (self.line_bytes * self.ways) != 0:
            raise InterpError("cache size must be a multiple of line_bytes * ways")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.ways)


@dataclass
class CacheStats:
    accesses: int
    misses: int

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def __str__(self) -> str:
        return f"{self.accesses} accesses, {self.misses} misses ({self.miss_rate:.2%})"


@timed("interp.trace_addresses")
def trace_addresses(trace: Trace, store: ArrayStore, element_bytes: int = 8) -> np.ndarray:
    """Byte addresses of every array access in the trace, in order."""
    bases: dict[str, int] = {}
    strides: dict[str, tuple[int, ...]] = {}
    cursor = 0
    for name, arr in store.arrays.items():
        bases[name] = cursor
        # row-major strides in elements
        s = []
        acc = 1
        for dim in reversed(arr.shape):
            s.append(acc)
            acc *= dim
        strides[name] = tuple(reversed(s))
        cursor += arr.size * element_bytes
        # pad to a fresh 4 KiB page per array to avoid accidental aliasing
        cursor = (cursor + 4095) // 4096 * 4096

    lowers = store.lowers
    out = np.empty(sum(len(r.reads) + len(r.writes) for r in trace.records), dtype=np.int64)
    k = 0
    for rec in trace.records:
        for name, idx in rec.reads + rec.writes:
            if name not in bases:
                continue  # scalar
            lo = lowers[name]
            flat = sum((i - l) * st for i, l, st in zip(idx, lo, strides[name]))
            out[k] = bases[name] + flat * element_bytes
            k += 1
    return out[:k]


@timed("interp.cache_sim")
def simulate_cache(addresses: np.ndarray, config: CacheConfig = CacheConfig()) -> CacheStats:
    """Replay an address stream through a set-associative LRU cache."""
    if addresses.size == 0:
        return CacheStats(0, 0)
    lines = addresses // config.line_bytes
    sets = (lines % config.num_sets).astype(np.int64)
    tags = (lines // config.num_sets).astype(np.int64)

    ways = config.ways
    misses = 0
    # per-set LRU as ordered lists (most recent last)
    state: list[list[int]] = [[] for _ in range(config.num_sets)]
    for s, t in zip(sets.tolist(), tags.tolist()):
        entry = state[s]
        try:
            entry.remove(t)
            entry.append(t)
        except ValueError:
            misses += 1
            entry.append(t)
            if len(entry) > ways:
                entry.pop(0)
    counter("cache.accesses", int(addresses.size))
    counter("cache.misses", misses)
    return CacheStats(int(addresses.size), misses)
