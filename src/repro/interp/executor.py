"""Loop-nest interpreter (system S12).

Executes IR programs over numpy arrays.  This is the substrate that
stands in for the paper's compiler test-bed: every transformation in
the library is validated by running the source and transformed programs
on identical inputs and comparing results (and traces).

Arrays are Fortran-style with per-dimension declared ranges ``lo:hi``;
values are float64.  The interpreter optionally records an execution
trace (statement instances and the array cells they touch) used by the
trace-based dependence oracle and the cache simulator.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from repro.ir.ast import Guard, Loop, Node, Program, Statement
from repro.ir.expr import (
    BUILTIN_FUNCTIONS, ArrayRef, BinOp, Call, Expr, FloatLit, IntLit, UnaryOp,
    VarRef,
)
from repro.obs import counter, timed
from repro.util.errors import InterpError

__all__ = ["ArrayStore", "ExecRecord", "Trace", "execute", "default_init"]


@dataclass
class ExecRecord:
    """One executed statement instance and the cells it touched."""

    label: str
    env: dict[str, int]
    reads: list[tuple[str, tuple[int, ...]]] = field(default_factory=list)
    writes: list[tuple[str, tuple[int, ...]]] = field(default_factory=list)


@dataclass
class Trace:
    """An execution trace: the sequence of statement instances."""

    records: list[ExecRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def instances(self) -> list[tuple[str, tuple[int, ...]]]:
        """(label, sorted-env-values) pairs in execution order."""
        return [(r.label, tuple(v for _, v in sorted(r.env.items()))) for r in self.records]

    def accesses(self) -> list[tuple[str, tuple[int, ...], bool]]:
        """Flat (array, index, is_write) sequence in execution order,
        reads before the write within each statement instance."""
        out = []
        for r in self.records:
            for a in r.reads:
                out.append((a[0], a[1], False))
            for a in r.writes:
                out.append((a[0], a[1], True))
        return out


class ArrayStore:
    """Named arrays with declared index ranges."""

    def __init__(self, program: Program, params: Mapping[str, int], init: Callable | None = None):
        self.params = dict(params)
        self.arrays: dict[str, np.ndarray] = {}
        self.lowers: dict[str, tuple[int, ...]] = {}
        init = init or default_init
        for decl in program.arrays:
            los, his = [], []
            for lo, hi in decl.dims:
                los.append(lo.eval(self.params))
                his.append(hi.eval(self.params))
            shape = tuple(h - l + 1 for l, h in zip(los, his))
            if any(s <= 0 for s in shape):
                raise InterpError(f"array {decl.name} has empty shape {shape}")
            self.lowers[decl.name] = tuple(los)
            self.arrays[decl.name] = init(decl.name, shape)
        self.scalars: dict[str, float] = {}

    def _locate(self, name: str, idx: tuple[int, ...]) -> tuple[np.ndarray, tuple[int, ...]]:
        try:
            arr = self.arrays[name]
        except KeyError:
            raise InterpError(f"undeclared array {name!r}") from None
        lows = self.lowers[name]
        if len(idx) != arr.ndim:
            raise InterpError(f"{name} has rank {arr.ndim}, got {len(idx)} subscripts")
        pos = tuple(i - l for i, l in zip(idx, lows))
        for p, s in zip(pos, arr.shape):
            if not (0 <= p < s):
                raise InterpError(f"index {idx} out of declared range for {name}")
        return arr, pos

    def load(self, name: str, idx: tuple[int, ...]) -> float:
        arr, pos = self._locate(name, idx)
        return float(arr[pos])

    def store(self, name: str, idx: tuple[int, ...], value: float) -> None:
        arr, pos = self._locate(name, idx)
        arr[pos] = value

    def snapshot(self) -> dict[str, np.ndarray]:
        return {k: v.copy() for k, v in self.arrays.items()}


def default_init(name: str, shape: tuple[int, ...]) -> np.ndarray:
    """Deterministic, name-dependent initial array contents.

    Values are positive and O(1)-scaled so sqrt/division kernels stay
    well conditioned (important for the Cholesky workloads)."""
    # crc32, not hash(): str hashing is salted per-process (PYTHONHASHSEED),
    # which would give every worker of a --jobs fuzz run different inputs.
    rng = np.random.default_rng(zlib.crc32(name.encode("utf-8")))
    data = rng.uniform(0.5, 1.5, size=shape)
    if len(shape) == 2 and shape[0] == shape[1]:
        # make square arrays symmetric positive definite-ish
        data = (data + data.T) / 2 + np.eye(shape[0]) * (2.0 * shape[0])
    return data


@timed("interp.execute", attr_fn=lambda program, *a, **kw: {"program": program.name})
def execute(
    program: Program,
    params: Mapping[str, int] | None = None,
    arrays: Mapping[str, np.ndarray] | None = None,
    *,
    trace: bool = False,
    init: Callable | None = None,
    max_instances: int = 5_000_000,
) -> tuple[ArrayStore, Trace | None]:
    """Run a program; returns the final store and (optionally) a trace.

    ``arrays`` overrides initial contents (copied, never mutated).
    """
    params = dict(params or {})
    store = ArrayStore(program, params, init)
    if arrays:
        for k, v in arrays.items():
            if k not in store.arrays:
                raise InterpError(f"unknown array {k!r} in initial values")
            if store.arrays[k].shape != v.shape:
                raise InterpError(
                    f"shape mismatch for {k}: {store.arrays[k].shape} vs {v.shape}"
                )
            store.arrays[k] = np.array(v, dtype=float)
    t = Trace() if trace else None
    budget = [max_instances]

    env: dict[str, int] = dict(params)
    for node in program.body:
        _run(node, env, store, t, budget)
    counter("interp.instances", max_instances - budget[0])
    return store, t


def _run(node: Node, env: dict[str, int], store: ArrayStore, t: Trace | None, budget: list[int]) -> None:
    if isinstance(node, Statement):
        budget[0] -= 1
        if budget[0] < 0:
            raise InterpError("instance budget exhausted (runaway loop?)")
        record = ExecRecord(node.label, {k: v for k, v in env.items() if k not in store.params}) if t is not None else None
        value = _eval(node.rhs, env, store, record)
        if isinstance(node.lhs, ArrayRef):
            idx = tuple(_eval_int(s, env, store, record) for s in node.lhs.subscripts)
            store.store(node.lhs.array, idx, value)
            if record is not None:
                record.writes.append((node.lhs.array, idx))
        else:
            store.scalars[node.lhs.name] = value
            if record is not None:
                record.writes.append((node.lhs.name, ()))
        if t is not None:
            t.records.append(record)
        return
    if isinstance(node, Loop):
        lo = node.lower.eval(env)
        hi = node.upper.eval(env)
        rng = range(lo, hi + 1, node.step) if node.step > 0 else range(lo, hi - 1, node.step)
        saved = env.get(node.var, _MISSING)
        for v in rng:
            env[node.var] = v
            for child in node.body:
                _run(child, env, store, t, budget)
        if saved is _MISSING:
            env.pop(node.var, None)
        else:
            env[node.var] = saved
        return
    if isinstance(node, Guard):
        if all(c.satisfied_by(env) for c in node.conditions):
            for child in node.body:
                _run(child, env, store, t, budget)
        return
    raise InterpError(f"cannot execute node of type {type(node).__name__}")


_MISSING = object()


def _eval(e: Expr, env: Mapping[str, int], store: ArrayStore, record: ExecRecord | None) -> float:
    if isinstance(e, IntLit):
        return float(e.value)
    if isinstance(e, FloatLit):
        return e.value
    if isinstance(e, VarRef):
        if e.name in env:
            return float(env[e.name])
        if e.name in store.scalars:
            return store.scalars[e.name]
        raise InterpError(f"unbound variable {e.name!r}")
    if isinstance(e, ArrayRef):
        idx = tuple(_eval_int(s, env, store, record) for s in e.subscripts)
        if record is not None:
            record.reads.append((e.array, idx))
        return store.load(e.array, idx)
    if isinstance(e, UnaryOp):
        return -_eval(e.operand, env, store, record)
    if isinstance(e, BinOp):
        l = _eval(e.left, env, store, record)
        r = _eval(e.right, env, store, record)
        if e.op == "+":
            return l + r
        if e.op == "-":
            return l - r
        if e.op == "*":
            return l * r
        if e.op == "/":
            if r == 0:
                raise InterpError("division by zero during execution")
            return l / r
        if e.op == "%":
            return l % r
        raise InterpError(f"unknown operator {e.op}")  # pragma: no cover
    if isinstance(e, Call):
        args = [_eval(a, env, store, record) for a in e.args]
        return float(BUILTIN_FUNCTIONS[e.func](*args))
    raise InterpError(f"cannot evaluate {e!r}")


def _eval_int(e: Expr, env: Mapping[str, int], store: ArrayStore, record: ExecRecord | None) -> int:
    v = _eval(e, env, store, record)
    iv = int(round(v))
    if abs(v - iv) > 1e-9:
        raise InterpError(f"non-integer subscript value {v}")
    return iv
