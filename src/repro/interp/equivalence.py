"""Semantic-equivalence oracles between source and transformed programs.

Three increasingly strict checks:

* :func:`same_instances` — both programs execute the same multiset of
  dynamic statement instances (the transformation is a bijection on
  instances);
* :func:`dependences_preserved` — every conflicting pair of memory
  accesses (the *ground-truth* dependences, read off the source trace)
  executes in the same relative order in the transformed trace;
* :func:`outputs_close` — final array contents agree numerically
  (allclose, because reassociation of float reductions is expected
  under reordering).

Transformed programs rename and re-index loops, so instances are
compared in *source iteration space*: the transformed trace is pulled
back through an ``env_map`` (provided by
:class:`~repro.codegen.generate.GeneratedProgram.env_map`) that inverts
the per-statement transformation.

A transformation passing all three checks on representative inputs is
semantically correct on those inputs; tests use this as the executable
form of the paper's Theorem 2.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Callable, Mapping

import numpy as np

from repro.interp.executor import ArrayStore, Trace, execute
from repro.ir.ast import Program
from repro.obs import timed

__all__ = [
    "same_instances",
    "dependences_preserved",
    "outputs_close",
    "check_equivalence",
    "ground_truth_dependences",
    "instance_keys",
]

EnvMap = Callable[[str, Mapping[str, int]], tuple[int, ...]]


def instance_keys(program: Program, trace: Trace, env_map: EnvMap | None = None) -> list[tuple]:
    """Canonical (label, source-iteration-values) keys for a trace.

    Without ``env_map``, iteration values are read from the program's
    own surrounding loops; with it, each record's environment is mapped
    back to source iteration space first.
    """
    if env_map is None:
        order = {s.label: program.loop_vars(s.label) for s in program.statements()}
        return [(r.label, tuple(r.env[v] for v in order[r.label])) for r in trace.records]
    return [(r.label, tuple(env_map(r.label, r.env))) for r in trace.records]


def same_instances(keys1: list[tuple], keys2: list[tuple]) -> bool:
    """Multisets of canonical instance keys agree."""
    return Counter(keys1) == Counter(keys2)


def ground_truth_dependences(t: Trace) -> list[tuple[int, int]]:
    """Pairs (i, j), i<j, of trace positions with a memory conflict
    (same cell, at least one write) — the exact dependences of this run."""
    last_write: dict[tuple[str, tuple[int, ...]], int] = {}
    readers: dict[tuple[str, tuple[int, ...]], list[int]] = defaultdict(list)
    deps: list[tuple[int, int]] = []
    for pos, rec in enumerate(t.records):
        for cell in {(a, i) for a, i in rec.reads}:
            if cell in last_write:
                deps.append((last_write[cell], pos))  # flow
            readers[cell].append(pos)
        for cell in {(a, i) for a, i in rec.writes}:
            if cell in last_write:
                deps.append((last_write[cell], pos))  # output
            for rd in readers[cell]:
                if rd != pos:
                    deps.append((rd, pos))  # anti
            readers[cell] = []
            last_write[cell] = pos
    return sorted(set(deps))


def dependences_preserved(
    src_trace: Trace, src_keys: list[tuple], dst_keys: list[tuple]
) -> list[tuple]:
    """Violated ground-truth dependences: source-ordered pairs whose
    instances run in the opposite order in the transformed trace.
    Empty list = all dependences preserved."""
    pos_in_dst: dict[tuple, int] = {}
    for i, key in enumerate(dst_keys):
        pos_in_dst.setdefault(key, i)
    violations = []
    for a, b in ground_truth_dependences(src_trace):
        ka, kb = src_keys[a], src_keys[b]
        if ka == kb:
            continue
        if pos_in_dst[ka] > pos_in_dst[kb]:
            violations.append((ka, kb))
    return violations


def outputs_close(
    out1: Mapping[str, np.ndarray], out2: Mapping[str, np.ndarray], rtol: float = 1e-9
) -> bool:
    if set(out1) != set(out2):
        return False
    return all(np.allclose(out1[k], out2[k], rtol=rtol, atol=1e-12) for k in out1)


@timed("interp.equivalence", attr_fn=lambda source, *a, **kw: {"program": source.name})
def check_equivalence(
    source: Program,
    transformed: Program,
    params: Mapping[str, int],
    *,
    env_map: EnvMap | None = None,
    rtol: float = 1e-9,
) -> dict:
    """Run both programs on identical inputs and apply all three oracles.

    Returns a report dict with keys ``same_instances``,
    ``dependence_violations``, ``outputs_close`` and ``ok``.
    """
    initial = ArrayStore(source, dict(params)).snapshot()
    store1, t1 = execute(source, params, arrays=initial, trace=True)
    store2, t2 = execute(transformed, params, arrays=initial, trace=True)
    k1 = instance_keys(source, t1)
    k2 = instance_keys(transformed, t2, env_map)
    si = same_instances(k1, k2)
    viol = dependences_preserved(t1, k1, k2) if si else None
    oc = outputs_close(store1.snapshot(), store2.snapshot(), rtol)
    return {
        "same_instances": si,
        "dependence_violations": viol,
        "outputs_close": oc,
        "ok": si and (viol == []) and oc,
        "instances": len(t1),
    }
