"""Interpreter, trace oracles and cache model (systems S12/S13)."""

from repro.interp.cache import CacheConfig, CacheStats, simulate_cache, trace_addresses
from repro.interp.equivalence import (
    check_equivalence, dependences_preserved, ground_truth_dependences,
    outputs_close, same_instances,
)
from repro.interp.compiled import compile_program, execute_compiled
from repro.interp.executor import ArrayStore, ExecRecord, Trace, default_init, execute

__all__ = [
    "execute", "ArrayStore", "Trace", "ExecRecord", "default_init",
    "check_equivalence", "same_instances", "dependences_preserved",
    "outputs_close", "ground_truth_dependences",
    "CacheConfig", "CacheStats", "simulate_cache", "trace_addresses",
    "execute_compiled", "compile_program",
]
