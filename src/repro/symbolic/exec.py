"""Bounded symbolic executor for straight-line and bounded-loop code.

Mirrors the concrete interpreter (:mod:`repro.interp.executor`) with the
array store replaced by a :class:`~repro.symbolic.state.SymState`:
parameters are bound to small concrete integers, so loop bounds, guard
conditions and subscripts all evaluate concretely and the nest unrolls
fully, while array contents remain uninterpreted atoms combined through
the AC-normalizing constructors of :mod:`repro.symbolic.normalize`.

The executor is *bounded* on purpose: ``max_instances`` caps the number
of statement instances and ``max_nodes`` caps the size of any one stored
value and of the whole store.  Exceeding either raises
:class:`~repro.util.errors.SymbolicBlowupError`, which the fractal
driver treats as "simplify further" (smaller size, deeper level), never
as a verdict.
"""

from __future__ import annotations

from typing import Mapping

from repro.ir.ast import Guard, Loop, Node, Program, Statement
from repro.ir.expr import (
    ArrayRef, BinOp, Call, Expr, FloatLit, IntLit, UnaryOp, VarRef,
)
from repro.obs import counter
from repro.symbolic.normalize import (
    SymVal, num, s_add, s_call, s_div, s_mod, s_mul, s_neg, s_sub, size,
)
from repro.symbolic.state import SymState
from repro.util.errors import SymbolicBlowupError, SymbolicError

__all__ = ["symbolic_execute", "Limits"]


class Limits:
    """Blowup bounds for one symbolic execution."""

    def __init__(self, max_instances: int = 20_000, max_nodes: int = 20_000,
                 max_value_nodes: int = 4_000):
        self.max_instances = max_instances
        self.max_nodes = max_nodes
        self.max_value_nodes = max_value_nodes
        self.instances = 0


def symbolic_execute(
    program: Program,
    params: Mapping[str, int],
    *,
    limits: Limits | None = None,
) -> SymState:
    """Symbolically run ``program`` with every parameter bound to the
    concrete integers in ``params``; returns the final symbolic store."""
    limits = limits or Limits()
    missing = [p for p in program.params if p not in params]
    if missing:
        raise SymbolicError(f"unbound parameters for symbolic execution: {missing}")
    state = SymState()
    env: dict[str, int] = {p: int(params[p]) for p in params}
    for node in program.body:
        _run(node, env, state, limits)
    counter("symbolic.instances", limits.instances)
    return state


def _run(node: Node, env: dict[str, int], state: SymState, limits: Limits) -> None:
    if isinstance(node, Statement):
        limits.instances += 1
        if limits.instances > limits.max_instances:
            raise SymbolicBlowupError(
                f"symbolic instance budget {limits.max_instances} exhausted"
            )
        value = _eval(node.rhs, env, state)
        if size(value) > limits.max_value_nodes:
            raise SymbolicBlowupError(
                f"symbolic value exceeds {limits.max_value_nodes} nodes"
            )
        if isinstance(node.lhs, ArrayRef):
            idx = tuple(_eval_int(s, env) for s in node.lhs.subscripts)
            state.store_array(node.lhs.array, idx, value)
        else:
            state.store_scalar(node.lhs.name, value)
        if state.nodes > limits.max_nodes:
            raise SymbolicBlowupError(
                f"symbolic store exceeds {limits.max_nodes} nodes"
            )
        return
    if isinstance(node, Loop):
        lo = node.lower.eval(env)
        hi = node.upper.eval(env)
        rng = range(lo, hi + 1, node.step) if node.step > 0 else range(lo, hi - 1, node.step)
        saved = env.get(node.var, _MISSING)
        for v in rng:
            env[node.var] = v
            for child in node.body:
                _run(child, env, state, limits)
        if saved is _MISSING:
            env.pop(node.var, None)
        else:
            env[node.var] = saved
        return
    if isinstance(node, Guard):
        if all(c.satisfied_by(env) for c in node.conditions):
            for child in node.body:
                _run(child, env, state, limits)
        return
    raise SymbolicError(f"cannot symbolically execute {type(node).__name__}")


_MISSING = object()


def _eval(e: Expr, env: Mapping[str, int], state: SymState) -> SymVal:
    if isinstance(e, IntLit):
        return num(e.value)
    if isinstance(e, FloatLit):
        return num(e.value)
    if isinstance(e, VarRef):
        if e.name in env:
            return num(env[e.name])
        got = state.load_scalar(e.name)
        if got is None:
            raise SymbolicError(f"unbound variable {e.name!r} in symbolic execution")
        return got
    if isinstance(e, ArrayRef):
        idx = tuple(_eval_int(s, env) for s in e.subscripts)
        return state.load_array(e.array, idx)
    if isinstance(e, UnaryOp):
        return s_neg(_eval(e.operand, env, state))
    if isinstance(e, BinOp):
        left = _eval(e.left, env, state)
        right = _eval(e.right, env, state)
        if e.op == "+":
            return s_add(left, right)
        if e.op == "-":
            return s_sub(left, right)
        if e.op == "*":
            return s_mul(left, right)
        if e.op == "/":
            try:
                return s_div(left, right)
            except ZeroDivisionError:
                raise SymbolicError("symbolic division by constant zero") from None
        if e.op == "%":
            return s_mod(left, right)
        raise SymbolicError(f"unknown operator {e.op!r}")  # pragma: no cover
    if isinstance(e, Call):
        return s_call(e.func, tuple(_eval(a, env, state) for a in e.args))
    raise SymbolicError(f"cannot symbolically evaluate {e!r}")


def _eval_int(e: Expr, env: Mapping[str, int]) -> int:
    """Subscripts must be concrete during symbolic execution: a
    data-dependent subscript (array read inside a subscript) makes the
    touched cell set symbolic, which this oracle does not model."""
    if isinstance(e, IntLit):
        return e.value
    if isinstance(e, VarRef):
        if e.name in env:
            return env[e.name]
        raise SymbolicError(f"symbolic subscript variable {e.name!r}")
    if isinstance(e, UnaryOp):
        return -_eval_int(e.operand, env)
    if isinstance(e, BinOp):
        left = _eval_int(e.left, env)
        right = _eval_int(e.right, env)
        if e.op == "+":
            return left + right
        if e.op == "-":
            return left - right
        if e.op == "*":
            return left * right
        if e.op == "/":
            if right == 0 or left % right:
                raise SymbolicError(f"non-integer subscript division {e}")
            return left // right
        if e.op == "%":
            return left % right
    raise SymbolicError(f"data-dependent or non-integer subscript {e}")
