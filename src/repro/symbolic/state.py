"""Symbolic store and state over the loop-nest IR.

A :class:`SymState` maps *locations* — concrete array cells and scalar
names — to normalized symbolic values (:mod:`repro.symbolic.normalize`).
Loop variables and parameters are always concrete integers during
symbolic execution (the executor binds parameters to small sizes), so
every subscript resolves to a concrete cell; only the *data* flowing
through the nest stays symbolic.

Reading a cell that was never written yields its uninterpreted initial
atom ``name₀(idx)``.  Two states are equivalent iff every location they
jointly mention holds the same normalized value — a claim that, because
the atoms are uninterpreted, holds for **all** initial array contents at
the executed size, not just sampled ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.symbolic.normalize import SymVal, init_cell, render, size

__all__ = ["SymState", "StateDiff"]

#: A location: ("arr", name, idx-tuple) or ("scalar", name).
Loc = tuple


@dataclass
class StateDiff:
    """First divergence between two symbolic states, for diagnostics."""

    loc: Loc
    left: SymVal
    right: SymVal

    def describe(self) -> str:
        if self.loc[0] == "arr":
            where = f"{self.loc[1]}({', '.join(map(str, self.loc[2]))})"
        else:
            where = self.loc[1]
        return f"{where}: {render(self.left)} ≠ {render(self.right)}"


@dataclass
class SymState:
    """Mutable symbolic store produced by one symbolic execution."""

    values: dict[Loc, SymVal] = field(default_factory=dict)
    #: running node total across all stored values (blowup accounting)
    nodes: int = 0

    def load_array(self, name: str, idx: tuple[int, ...]) -> SymVal:
        loc = ("arr", name, idx)
        got = self.values.get(loc)
        return got if got is not None else init_cell(name, idx)

    def store_array(self, name: str, idx: tuple[int, ...], value: SymVal) -> None:
        self._store(("arr", name, idx), value)

    def load_scalar(self, name: str) -> SymVal | None:
        return self.values.get(("scalar", name))

    def store_scalar(self, name: str, value: SymVal) -> None:
        self._store(("scalar", name), value)

    def _store(self, loc: Loc, value: SymVal) -> None:
        old = self.values.get(loc)
        if old is not None:
            self.nodes -= size(old)
        self.values[loc] = value
        self.nodes += size(value)

    def __len__(self) -> int:
        return len(self.values)

    def locations(self) -> Iterator[Loc]:
        return iter(self.values)

    def diff(self, other: "SymState") -> StateDiff | None:
        """First location where the two states disagree, or ``None`` if
        they are equivalent.  A location written by only one side is
        compared against its uninterpreted initial atom, so a redundant
        self-assignment never counts as a divergence."""
        for loc in sorted(set(self.values) | set(other.values), key=repr):
            left = self._value_at(loc)
            right = other._value_at(loc)
            if left != right:
                return StateDiff(loc, left, right)
        return None

    def _value_at(self, loc: Loc) -> SymVal:
        got = self.values.get(loc)
        if got is not None:
            return got
        if loc[0] == "arr":
            return init_cell(loc[1], loc[2])
        return ("init", "$scalar:" + loc[1], ())
