"""Fractal symbolic legality oracle (system S21).

A second legality oracle consulted when the Theorem-2 projection test
rejects a transformation: it symbolically executes the original and
transformed programs at small bound sizes over *uninterpreted* initial
array contents, normalizes every value under associativity/
commutativity/distributivity, and compares final stores — simplifying
the pair fractally (shrinking bounds, one level per blowup) until the
comparison is direct.  A success is a checkable :class:`Certificate`;
anything else is a definitive mismatch or an honest "unknown", never a
guess.  See docs/SYMBOLIC.md; the approach follows Mateev, Menon &
Pingali, *Fractal Symbolic Analysis* (PAPERS.md).

Entry points: ``repro check FILE SPEC --symbolic`` on the CLI,
:func:`repro.legality.check` with ``oracle="symbolic"`` in code, and
:func:`prove_schedule` directly.
"""

from repro.symbolic.exec import Limits, symbolic_execute
from repro.symbolic.fractal import (
    DEFAULT_SIZES, MIN_SIZES, SIZE_FLOOR, Certificate, SymbolicOutcome,
    prove_equivalent, prove_schedule, verify_certificate,
)
from repro.symbolic.normalize import RULES, SymVal, render, rule_log, size
from repro.symbolic.state import StateDiff, SymState

__all__ = [
    "Certificate", "SymbolicOutcome", "prove_equivalent", "prove_schedule",
    "verify_certificate", "symbolic_execute", "Limits",
    "SymState", "StateDiff", "SymVal", "render", "size", "rule_log", "RULES",
    "DEFAULT_SIZES", "MIN_SIZES", "SIZE_FLOOR",
]
