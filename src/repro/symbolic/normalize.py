"""Commutativity/associativity-aware normal form for symbolic values.

The fractal oracle (docs/SYMBOLIC.md) decides "are these two programs
equivalent?" by symbolically executing both and comparing final stores.
For that comparison to see through legal-but-reordering schedules —
reversed or blocked reductions, interchanged accumulation loops — the
symbolic values must be *canonical under the ring axioms* the oracle is
allowed to assume:

* associativity and commutativity of ``+`` and ``*``;
* distribution of ``*`` over ``+``;
* exact folding of numeric constants;
* additive/multiplicative identities and the zero annihilator.

Values are immutable nested tuples (hashable, directly comparable):

``("num", v)``
    a numeric constant (float).
``("init", name, idx)``
    the uninterpreted initial content of array cell ``name[idx]`` —
    the atoms of the algebra.  Symbolic equality of two stores over
    these atoms therefore holds for *every* initial array content.
``("sum", c0, ((t1, c1), (t2, c2), ...))``
    ``c0 + Σ ci·ti`` with non-zero coefficients and canonically sorted,
    pairwise-distinct terms ``ti`` (never themselves sums or numbers).
``("prod", ((f1, e1), ...))``
    ``Π fi^ei`` with positive integer exponents and sorted, distinct
    factors (never prods, sums with one term, or numbers).
``("div", num, den)`` / ``("mod", a, b)``
    division and modulus are *not* reassociated: they stay opaque
    binary atoms (den never a number — those fold into coefficients).
``("call", fn, (a1, ...))``
    an uninterpreted intrinsic application (sqrt, f, g, ...): equal
    iff the normalized arguments are equal.

Every rewrite the normalizer actually fires is recorded in the ambient
rule log (:func:`rule_log`), which the fractal driver snapshots into the
certificate — the "accepted rewrite steps" of Mateev/Menon/Pingali.
"""

from __future__ import annotations

from contextvars import ContextVar
from typing import Iterable

__all__ = [
    "SymVal", "num", "init_cell", "s_add", "s_neg", "s_sub", "s_mul",
    "s_div", "s_mod", "s_call", "size", "render", "rule_log", "RULES",
]

SymVal = tuple  # nested tuples; see module docstring

#: Every rewrite rule the normalizer can apply, for documentation and
#: for validating certificates that claim a subset.
RULES: tuple[str, ...] = (
    "flatten-assoc-add", "sort-comm-add", "fold-const-add",
    "drop-zero-term", "flatten-assoc-mul", "sort-comm-mul",
    "fold-const-mul", "mul-by-zero", "drop-unit-factor",
    "distribute-mul-over-add", "combine-like-terms", "combine-exponents",
    "div-by-const", "neg-as-scale",
)

#: Ambient log of rules fired since :func:`rule_log` installed it.
_RULELOG: ContextVar[set | None] = ContextVar("symbolic_rulelog", default=None)


class rule_log:
    """Context manager installing a fresh rule log; ``.rules`` afterwards
    holds the sorted tuple of rewrite rules that actually fired."""

    def __init__(self):
        self.rules: tuple[str, ...] = ()
        self._set: set[str] = set()
        self._token = None

    def __enter__(self) -> "rule_log":
        self._token = _RULELOG.set(self._set)
        return self

    def __exit__(self, *exc) -> None:
        _RULELOG.reset(self._token)
        self.rules = tuple(sorted(self._set))


def _fired(rule: str) -> None:
    log = _RULELOG.get()
    if log is not None:
        log.add(rule)


# ---------------------------------------------------------------------------
# constructors
# ---------------------------------------------------------------------------

def num(v: float) -> SymVal:
    return ("num", float(v))


def init_cell(name: str, idx: tuple[int, ...]) -> SymVal:
    """The uninterpreted initial value of one array cell."""
    return ("init", name, tuple(int(i) for i in idx))


def _is_num(v: SymVal) -> bool:
    return v[0] == "num"


def _term_key(t: SymVal):
    # canonical tuples repr deterministically; a string key gives a
    # total order across heterogeneous nested shapes
    return repr(t)


def _as_terms(v: SymVal) -> tuple[float, list[tuple[SymVal, float]]]:
    """Decompose a value into (constant, [(term, coeff), ...])."""
    if _is_num(v):
        return v[1], []
    if v[0] == "sum":
        return v[1], list(v[2])
    return 0.0, [(v, 1.0)]


def _make_sum(const: float, terms: Iterable[tuple[SymVal, float]]) -> SymVal:
    merged: dict[str, tuple[SymVal, float]] = {}
    for t, c in terms:
        k = _term_key(t)
        if k in merged:
            _fired("combine-like-terms")
            merged[k] = (t, merged[k][1] + c)
        else:
            merged[k] = (t, c)
    kept = [(t, c) for t, c in merged.values() if c != 0.0]
    if len(kept) < len(merged):
        _fired("drop-zero-term")
    kept.sort(key=lambda tc: _term_key(tc[0]))
    if not kept:
        return num(const)
    if const == 0.0 and len(kept) == 1 and kept[0][1] == 1.0:
        return kept[0][0]
    return ("sum", float(const), tuple(kept))


def s_add(a: SymVal, b: SymVal) -> SymVal:
    if _is_num(a) and _is_num(b):
        _fired("fold-const-add")
        return num(a[1] + b[1])
    ca, ta = _as_terms(a)
    cb, tb = _as_terms(b)
    if a[0] == "sum" or b[0] == "sum":
        _fired("flatten-assoc-add")
    _fired("sort-comm-add")
    return _make_sum(ca + cb, ta + tb)


def s_neg(a: SymVal) -> SymVal:
    _fired("neg-as-scale")
    return s_mul(num(-1.0), a)


def s_sub(a: SymVal, b: SymVal) -> SymVal:
    return s_add(a, s_neg(b))


def _as_factors(v: SymVal) -> list[tuple[SymVal, int]]:
    if v[0] == "prod":
        return list(v[1])
    return [(v, 1)]


def _make_prod(coeff: float, factors: Iterable[tuple[SymVal, int]]) -> SymVal:
    merged: dict[str, tuple[SymVal, int]] = {}
    for f, e in factors:
        k = _term_key(f)
        if k in merged:
            _fired("combine-exponents")
            merged[k] = (f, merged[k][1] + e)
        else:
            merged[k] = (f, e)
    kept = sorted(
        ((f, e) for f, e in merged.values() if e != 0),
        key=lambda fe: _term_key(fe[0]),
    )
    if not kept:
        return num(coeff)
    if len(kept) == 1 and kept[0][1] == 1:
        bare: SymVal = kept[0][0]
    else:
        bare = ("prod", tuple(kept))
    if coeff == 1.0:
        return bare
    if coeff == 0.0:
        _fired("mul-by-zero")
        return num(0.0)
    return ("sum", 0.0, ((bare, float(coeff)),))


def s_mul(a: SymVal, b: SymVal) -> SymVal:
    if _is_num(a) and _is_num(b):
        _fired("fold-const-mul")
        return num(a[1] * b[1])
    if _is_num(a) or _is_num(b):
        c, x = (a[1], b) if _is_num(a) else (b[1], a)
        if c == 0.0:
            _fired("mul-by-zero")
            return num(0.0)
        if c == 1.0:
            _fired("drop-unit-factor")
            return x
        const, terms = _as_terms(x)
        _fired("fold-const-mul")
        return _make_sum(const * c, [(t, tc * c) for t, tc in terms])
    if a[0] == "sum" or b[0] == "sum":
        # distribute (c0 + Σ ci·ti)(d0 + Σ dj·uj) term by term
        _fired("distribute-mul-over-add")
        ca, ta = _as_terms(a)
        cb, tb = _as_terms(b)
        acc = num(ca * cb)
        for t, c in ta:
            acc = s_add(acc, s_mul(num(c * cb), t) if cb != 0.0 else num(0.0))
        for u, d in tb:
            acc = s_add(acc, s_mul(num(ca * d), u) if ca != 0.0 else num(0.0))
        for t, c in ta:
            for u, d in tb:
                prod = _make_prod(1.0, _as_factors(t) + _as_factors(u))
                acc = s_add(acc, s_mul(num(c * d), prod))
        return acc
    if a[0] == "prod" or b[0] == "prod":
        _fired("flatten-assoc-mul")
    _fired("sort-comm-mul")
    return _make_prod(1.0, _as_factors(a) + _as_factors(b))


def s_div(a: SymVal, b: SymVal) -> SymVal:
    if _is_num(b):
        if b[1] == 0.0:
            raise ZeroDivisionError("symbolic division by constant zero")
        _fired("div-by-const")
        return s_mul(num(1.0 / b[1]), a)
    if _is_num(a) and a[1] == 0.0:
        return num(0.0)
    return ("div", a, b)


def s_mod(a: SymVal, b: SymVal) -> SymVal:
    if _is_num(a) and _is_num(b) and b[1] != 0.0:
        return num(a[1] % b[1])
    return ("mod", a, b)


def s_call(fn: str, args: tuple[SymVal, ...]) -> SymVal:
    if all(_is_num(a) for a in args):
        from repro.ir.expr import BUILTIN_FUNCTIONS

        try:
            return num(float(BUILTIN_FUNCTIONS[fn](*(a[1] for a in args))))
        except (ValueError, KeyError, ZeroDivisionError):
            pass
    return ("call", fn, tuple(args))


# ---------------------------------------------------------------------------
# measurement and rendering
# ---------------------------------------------------------------------------

def size(v: SymVal) -> int:
    """Node count of a normalized value (the blowup metric)."""
    tag = v[0]
    if tag in ("num", "init"):
        return 1
    if tag == "sum":
        return 1 + sum(size(t) for t, _ in v[2])
    if tag == "prod":
        return 1 + sum(size(f) for f, _ in v[1])
    if tag in ("div", "mod"):
        return 1 + size(v[1]) + size(v[2])
    if tag == "call":
        return 1 + sum(size(a) for a in v[2])
    raise ValueError(f"unknown symbolic tag {tag!r}")


def render(v: SymVal, limit: int = 120) -> str:
    """Human-readable rendering, truncated for certificates/events."""
    s = _render(v)
    return s if len(s) <= limit else s[: limit - 1] + "…"


def _fmt_num(x: float) -> str:
    return str(int(x)) if float(x).is_integer() else f"{x:g}"


def _render(v: SymVal) -> str:
    tag = v[0]
    if tag == "num":
        return _fmt_num(v[1])
    if tag == "init":
        return f"{v[1]}₀({', '.join(map(str, v[2]))})"
    if tag == "sum":
        parts = [] if v[1] == 0.0 else [_fmt_num(v[1])]
        for t, c in v[2]:
            parts.append(_render(t) if c == 1.0 else f"{_fmt_num(c)}·{_render(t)}")
        return "(" + " + ".join(parts) + ")"
    if tag == "prod":
        return "·".join(
            _render(f) if e == 1 else f"{_render(f)}^{e}" for f, e in v[1]
        )
    if tag == "div":
        return f"({_render(v[1])} / {_render(v[2])})"
    if tag == "mod":
        return f"({_render(v[1])} % {_render(v[2])})"
    if tag == "call":
        return f"{v[1]}({', '.join(_render(a) for a in v[2])})"
    return repr(v)
