"""The fractal simplification loop and its certificates.

Strategy (after Mateev/Menon/Pingali, *Fractal Symbolic Analysis*): to
decide whether a transformed program is equivalent to its original, try
to compare the two **directly** — symbolically execute both at a small
concrete size and compare final stores up to AC-normalization.  When
the direct comparison is too hard (the symbolic store blows past its
budget), *simplify the pair* and recurse: shrink the loop bounds one
step (a bounded form of the paper's peeling/splitting — every loop
loses its last iterations, yielding a strictly simpler program pair)
and try again, one level deeper.  The loop terminates because sizes
shrink toward the floor; the result is either

* a :class:`Certificate` — the sizes proved equivalent, the store
  locations matched, the rewrite rules the normalizer fired, and how
  deep the simplification had to go; or
* a **mismatch** — a concrete location whose symbolic values differ
  (definitive: the atoms are uninterpreted, so the programs compute
  different functions of the initial arrays at that size); or
* a definitive **unknown** — the pair never became simple enough, or
  uses features the executor cannot model.

Because array atoms are uninterpreted, a certificate at size *s* covers
*every* initial array content at that size.  Generalizing from the
certified sizes to all sizes is the oracle's documented leap of faith
(docs/SYMBOLIC.md); the differential fuzzer re-checks every certificate
numerically at other sizes, and the forced-unsound injection mode
asserts that a lying certificate would be caught.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.ir import Program
from repro.obs import counter, event, gauge, histogram, span
from repro.symbolic.exec import Limits, symbolic_execute
from repro.symbolic.normalize import rule_log
from repro.util.errors import ReproError, SymbolicBlowupError, SymbolicError

__all__ = [
    "Certificate", "SymbolicOutcome", "prove_equivalent", "prove_schedule",
    "verify_certificate", "DEFAULT_SIZES", "MIN_SIZES", "SIZE_FLOOR",
]

#: Bound sizes tried, largest first; the fractal descent moves right.
DEFAULT_SIZES: tuple[int, ...] = (5, 4, 3, 2)
#: A certificate needs at least this many distinct sizes proved equal.
MIN_SIZES = 2
#: Never shrink below this (size-1 nests degenerate too far to say much).
SIZE_FLOOR = 2

#: Note marker carried by fabricated certificates (fuzz hardening mode).
UNSOUND_NOTE = "UNSOUND-INJECTION: fabricated certificate, no comparison ran"


@dataclass(frozen=True)
class Certificate:
    """A checkable record of one successful symbolic-equivalence proof."""

    program: str
    spec: str
    sizes: tuple[int, ...]        #: bound sizes proved equivalent
    cells: int                    #: store locations matched at the largest size
    rules: tuple[str, ...]        #: normalizer rewrite rules that fired
    depth: int                    #: fractal simplification levels descended
    attempts: int                 #: symbolic executions performed
    store_nodes: int              #: largest symbolic store seen (node count)
    note: str = ""

    @property
    def unsound_injection(self) -> bool:
        return self.note.startswith("UNSOUND-INJECTION")

    def summary(self) -> str:
        head = (
            f"certified at sizes {list(self.sizes)}: {self.cells} store "
            f"locations matched, fractal depth {self.depth}, "
            f"{self.attempts} symbolic executions"
        )
        rules = f"; rules: {', '.join(self.rules)}" if self.rules else ""
        note = f"; {self.note}" if self.note else ""
        return head + rules + note

    def to_payload(self) -> dict:
        return {
            "program": self.program, "spec": self.spec,
            "sizes": list(self.sizes), "cells": self.cells,
            "rules": list(self.rules), "depth": self.depth,
            "attempts": self.attempts, "store_nodes": self.store_nodes,
            "note": self.note,
        }

    @classmethod
    def from_payload(cls, p: Mapping[str, Any]) -> "Certificate":
        return cls(
            program=p["program"], spec=p["spec"],
            sizes=tuple(int(s) for s in p["sizes"]), cells=int(p["cells"]),
            rules=tuple(p["rules"]), depth=int(p["depth"]),
            attempts=int(p["attempts"]),
            store_nodes=int(p.get("store_nodes", 0)), note=p.get("note", ""),
        )


@dataclass
class SymbolicOutcome:
    """Verdict of one oracle consultation."""

    verdict: str                      #: "symbolic-legal" | "mismatch" | "unknown"
    reason: str
    certificate: Certificate | None = None
    diff: str = ""                    #: first diverging location (mismatch only)
    sizes_tried: list[int] = field(default_factory=list)

    @property
    def legal(self) -> bool:
        return self.verdict == "symbolic-legal"


def _params_at(program: Program, s: int) -> dict[str, int]:
    """Bind every parameter near ``s`` (staggered so multi-parameter
    nests are not checked only on the degenerate square case)."""
    return {p: s + i for i, p in enumerate(sorted(program.params))}


def prove_equivalent(
    original: Program,
    transformed: Program,
    *,
    sizes: Sequence[int] | None = None,
    min_sizes: int = MIN_SIZES,
    limits: Limits | None = None,
    spec: str = "",
) -> SymbolicOutcome:
    """Run the fractal loop on a matched program pair."""
    plan = sorted(set(sizes or DEFAULT_SIZES), reverse=True)
    if any(s < SIZE_FLOOR for s in plan):
        raise SymbolicError(f"sizes below the floor {SIZE_FLOOR}: {plan}")
    certified: list[int] = []
    tried: list[int] = []
    depth = 0
    attempts = 0
    peak_nodes = 0
    cells = 0
    rules: set[str] = set()
    for s in plan:
        tried.append(s)
        attempts += 2
        try:
            with rule_log() as log:
                a = symbolic_execute(original, _params_at(original, s),
                                     limits=limits or Limits())
                b = symbolic_execute(transformed, _params_at(original, s),
                                     limits=limits or Limits())
            rules.update(log.rules)
            peak_nodes = max(peak_nodes, a.nodes, b.nodes)
        except SymbolicBlowupError as exc:
            # too hard at this size: descend a level and try the next,
            # strictly simpler pair (the bounded peel/split step)
            depth += 1
            counter("symbolic.blowups")
            event("symbolic", "info", f"size {s} blew up; simplifying",
                  size=s, detail=str(exc), depth=depth)
            continue
        except SymbolicError as exc:
            return SymbolicOutcome(
                "unknown", f"not symbolically executable: {exc}",
                sizes_tried=tried,
            )
        diff = a.diff(b)
        if diff is not None:
            event("symbolic", "reject",
                  "symbolic stores diverge (definitive mismatch)",
                  size=s, location=diff.describe())
            return SymbolicOutcome(
                "mismatch",
                f"symbolic stores diverge at size {s}: {diff.describe()}",
                diff=diff.describe(), sizes_tried=tried,
            )
        if not certified:
            cells = len(a)
        certified.append(s)
        event("symbolic", "accept", "symbolic stores match",
              size=s, cells=len(a), nodes=a.nodes)
    if len(certified) >= min_sizes:
        cert = Certificate(
            program=original.name, spec=spec, sizes=tuple(certified),
            cells=cells, rules=tuple(sorted(rules)), depth=depth,
            attempts=attempts, store_nodes=peak_nodes,
        )
        return SymbolicOutcome(
            "symbolic-legal", "all compared sizes match", certificate=cert,
            sizes_tried=tried,
        )
    return SymbolicOutcome(
        "unknown",
        f"only {len(certified)} of the required {min_sizes} sizes became "
        "simple enough for direct comparison",
        sizes_tried=tried,
    )


def _realize_pair(program: Program, spec: str) -> tuple[Program, Program]:
    """The matched pair for a schedule: the user's program and the code
    the pipeline would generate for ``spec`` with the legality gate off."""
    from repro.codegen import generate_code
    from repro.transform.spec import parse_schedule

    schedule = parse_schedule(program, spec)
    g = generate_code(
        schedule.program, schedule.matrix, schedule.deps, require_legal=False
    )
    return program, g.program


def prove_schedule(
    program: Program,
    spec: str,
    *,
    sizes: Sequence[int] | None = None,
    unsound: bool = False,
) -> SymbolicOutcome:
    """Consult the oracle for one transformation spec.

    ``unsound=True`` is the fuzz-hardening mode: it fabricates a lying
    certificate without comparing anything, so the differential fuzzer
    can assert it would catch an oracle that cheats.  Never set it
    outside fuzzing/tests.
    """
    counter("symbolic.attempts")
    t0 = time.perf_counter_ns()
    try:
        with span("symbolic.check", program=program.name, spec=spec):
            if unsound:
                counter("symbolic.unsound_injections")
                cert = Certificate(
                    program=program.name, spec=spec, sizes=(0,), cells=0,
                    rules=(), depth=0, attempts=0, store_nodes=0,
                    note=UNSOUND_NOTE,
                )
                return SymbolicOutcome(
                    "symbolic-legal", "forced-unsound injection",
                    certificate=cert,
                )
            try:
                original, transformed = _realize_pair(program, spec)
            except ReproError as exc:
                return SymbolicOutcome(
                    "unknown", f"cannot realize transformed program: {exc}"
                )
            outcome = prove_equivalent(
                original, transformed, sizes=sizes, spec=spec
            )
            if outcome.legal:
                counter("symbolic.certificates")
                gauge("symbolic.last_depth", outcome.certificate.depth)
                histogram("symbolic.fallback_depth", outcome.certificate.depth)
            elif outcome.verdict == "mismatch":
                counter("symbolic.mismatches")
            else:
                counter("symbolic.unknowns")
            return outcome
    finally:
        histogram("symbolic.check_ns", time.perf_counter_ns() - t0)


def verify_certificate(
    program: Program, cert: Certificate, *, spec: str | None = None
) -> bool:
    """Re-run the comparison a certificate claims.  A genuine
    certificate reproduces; a fabricated one (forced-unsound mode) does
    not — this is what makes certificates *checkable* artifacts rather
    than trust-me booleans."""
    if cert.unsound_injection or not cert.sizes or min(cert.sizes) < SIZE_FLOOR:
        return False
    use_spec = cert.spec if spec is None else spec
    try:
        original, transformed = _realize_pair(program, use_spec)
        outcome = prove_equivalent(
            original, transformed,
            sizes=cert.sizes, min_sizes=len(cert.sizes), spec=use_spec,
        )
    except ReproError:
        return False
    return outcome.legal and set(outcome.certificate.sizes) >= set(cert.sizes)
