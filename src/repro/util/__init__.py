"""Shared utilities: the exception hierarchy."""

from repro.util.errors import (
    CodegenError, CompletionError, DependenceError, InterpError, IRError,
    LayoutError, LegalityError, LinalgError, ParseError, PolyhedronError,
    ReproError, TransformError,
)

__all__ = [
    "ReproError", "LinalgError", "PolyhedronError", "ParseError", "IRError",
    "LayoutError", "DependenceError", "TransformError", "LegalityError",
    "CodegenError", "CompletionError", "InterpError",
]
