"""Fan-out helpers for the parallel pipeline paths (``--jobs N``).

Two executors, two policies:

* :func:`map_in_processes` — CPU-bound fan-out across *processes* with a
  picklable task encoding.  Used by
  :func:`repro.dependence.analyze.analyze_dependences` to split its
  statement-pair × depth case matrix.  Each worker process captures its
  observability counters and returns them alongside the results so the
  parent can merge the deltas (spans stay parent-side; counters stay
  exact).
* :func:`map_in_threads` — concurrency across *threads* sharing one
  address space.  Used by :func:`repro.analysis.search.search_loop_orders`
  so every lead variant shares the same dependence matrix and the same
  (thread-safe) polyhedral query-engine cache.

Both fall back to plain serial iteration when ``jobs`` resolves to 1,
when the task list is too small to amortize pool startup, or when a
pool cannot be created at all (restricted environments); results are
always returned in task order, so parallel output is bit-identical to
serial output.
"""

from __future__ import annotations

import os
from typing import Callable, Sequence, TypeVar

from repro.obs import (
    counter, current_session, gauge, install, snapshot, snapshot_histograms,
    uninstall,
)

__all__ = [
    "resolve_jobs",
    "chunk_round_robin",
    "map_in_processes",
    "map_in_threads",
    "capture_counters",
    "merge_counters",
    "merge_metrics",
]

T = TypeVar("T")
R = TypeVar("R")

#: Below this many tasks a pool costs more than it saves.
MIN_TASKS_FOR_POOL = 2


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: ``None``/1 → serial, ``0`` or a
    negative count → one worker per CPU, otherwise the given count."""
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs <= 0:
        return max(1, os.cpu_count() or 1)
    return jobs


def chunk_round_robin(n_tasks: int, n_chunks: int) -> list[list[int]]:
    """Deal task indices ``0..n_tasks-1`` into ``n_chunks`` round-robin
    hands (adjacent tasks often have correlated cost, so dealing spreads
    the expensive ones).  Empty hands are dropped."""
    hands = [list(range(k, n_tasks, n_chunks)) for k in range(n_chunks)]
    return [h for h in hands if h]


class capture_counters:
    """Context manager that measures the obs-metric delta of its body.

    Works whether or not a session is already installed (a private,
    sink-less session is installed if needed).  After exit:

    * ``.delta`` — the counter delta (kept under this name for
      backwards compatibility with older worker payloads);
    * ``.gauges`` — gauges written or changed inside the body
      (last-write-wins, like gauges themselves: when several workers
      set the same gauge the merge order decides, exactly as serial
      execution order would);
    * ``.histograms`` — bucket-wise histogram deltas, serialized with
      :meth:`Histogram.to_dict` so they pickle across processes;
    * ``.metrics`` — the three bundled into one picklable payload for
      :func:`merge_metrics`.

    Workers use this to ship their metrics back to the parent process;
    merging every worker's payload makes a ``--jobs`` run report the
    same counters, gauges and histogram buckets as a serial run.
    """

    def __init__(self):
        self.delta: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, dict] = {}
        self._installed = False
        self._before: dict[str, int] = {}
        self._before_gauges: dict[str, float] = {}
        self._before_hists: dict = {}

    @property
    def metrics(self) -> dict:
        return {
            "counters": self.delta,
            "gauges": self.gauges,
            "histograms": self.histograms,
        }

    def __enter__(self) -> "capture_counters":
        if current_session() is None:
            install()
            self._installed = True
        counters, gauges = snapshot()
        self._before = dict(counters)
        self._before_gauges = dict(gauges)
        self._before_hists = snapshot_histograms()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        after, after_gauges = snapshot()
        before = self._before
        self.delta = {
            k: v - before.get(k, 0) for k, v in after.items() if v != before.get(k, 0)
        }
        self.gauges = {
            k: v
            for k, v in after_gauges.items()
            if k not in self._before_gauges or self._before_gauges[k] != v
        }
        self.histograms = {}
        for name, h in snapshot_histograms().items():
            prev = self._before_hists.get(name)
            if prev is None:
                if h.count:
                    self.histograms[name] = h.to_dict()
                continue
            if h.count == prev.count:
                continue
            # bucket-wise subtraction; ``max`` keeps the after-value (the
            # worker path always starts from a fresh session, where this
            # is exact)
            diff = {
                "count": h.count - prev.count,
                "total": h.total - prev.total,
                "max": h.max,
                "buckets": {
                    str(k): n - prev.buckets.get(k, 0)
                    for k, n in h.buckets.items()
                    if n != prev.buckets.get(k, 0)
                },
            }
            self.histograms[name] = diff
        if self._installed:
            uninstall()
        return False


def merge_counters(delta: dict[str, int]) -> None:
    """Add a worker's counter delta into the current session (no-op when
    observability is off)."""
    for name, n in delta.items():
        counter(name, n)


def merge_metrics(payload: dict) -> None:
    """Merge a worker's full :attr:`capture_counters.metrics` payload —
    counters, gauges and histograms — into the current session (no-op
    when observability is off)."""
    sess = current_session()
    if sess is None:
        return
    merge_counters(payload.get("counters", {}))
    for name, value in payload.get("gauges", {}).items():
        gauge(name, value)
    if payload.get("histograms"):
        from repro.obs import Histogram

        for name, hdict in payload["histograms"].items():
            h = sess.histograms.get(name)
            if h is None:
                h = sess.histograms[name] = Histogram()
            h.merge(hdict)


def map_in_processes(
    fn: Callable[[T], R],
    tasks: Sequence[T],
    *,
    jobs: int,
    min_tasks: int = MIN_TASKS_FOR_POOL,
) -> list[R]:
    """Apply a picklable ``fn`` to picklable ``tasks`` across a process
    pool; results come back in task order.  Serial fallback when the
    fan-out would not pay for itself or a pool is unavailable."""
    jobs = min(jobs, len(tasks))
    if jobs <= 1 or len(tasks) < min_tasks:
        return [fn(t) for t in tasks]
    try:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=jobs) as pool:
            return list(pool.map(fn, tasks))
    except Exception:
        # pool creation or pickling failed (sandboxed env, nested pools,
        # unpicklable payload): the serial path is always correct.
        counter("parallel.process_pool_fallbacks")
        return [fn(t) for t in tasks]


def map_in_threads(
    fn: Callable[[T], R],
    tasks: Sequence[T],
    *,
    jobs: int,
    min_tasks: int = MIN_TASKS_FOR_POOL,
) -> list[R]:
    """Apply ``fn`` to ``tasks`` across a thread pool; results come back
    in task order.  Tasks share the process state (dependence matrix,
    query-engine cache), so ``fn`` must only read shared structures."""
    jobs = min(jobs, len(tasks))
    if jobs <= 1 or len(tasks) < min_tasks:
        return [fn(t) for t in tasks]
    try:
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=jobs) as pool:
            return list(pool.map(fn, tasks))
    except Exception:
        counter("parallel.thread_pool_fallbacks")
        return [fn(t) for t in tasks]
