"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so callers can catch
library failures with a single ``except`` clause while still
distinguishing the subsystem that raised them.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class LinalgError(ReproError):
    """Raised for exact integer linear algebra failures (singular matrix,
    dimension mismatch, non-integral solution, ...)."""


class PolyhedronError(ReproError):
    """Raised for malformed or unusable constraint systems."""


class ParseError(ReproError):
    """Raised when the mini loop language cannot be parsed.

    Attributes
    ----------
    line, column:
        1-based source position of the offending token, when known.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"line {line}" + (f", col {column}" if column is not None else "") + f": {message}"
        super().__init__(message)


class IRError(ReproError):
    """Raised for malformed loop-nest IR (bad bounds, duplicate loop
    variables, statements outside loops, ...)."""


class LayoutError(ReproError):
    """Raised when an instance-vector layout query cannot be answered
    (unknown coordinate, statement not in the AST, ...)."""


class DependenceError(ReproError):
    """Raised when dependence analysis cannot summarize a dependence."""


class TransformError(ReproError):
    """Raised when a transformation matrix cannot be constructed or is
    malformed for the given program."""


class LegalityError(TransformError):
    """Raised when a transformation is rejected by the legality test and
    the caller asked for an exception rather than a verdict."""


class SymbolicError(ReproError):
    """Raised by the fractal symbolic oracle when a program cannot be
    symbolically executed at all (unbound scalar, data-dependent
    subscript, constant division by zero, ...)."""


class SymbolicBlowupError(SymbolicError):
    """Raised when a symbolic execution exceeds its instance or
    expression-size budget; the fractal driver responds by simplifying
    (smaller bound sizes, deeper level) rather than giving a verdict."""


class CodegenError(ReproError):
    """Raised when code generation fails (non-block-structured matrix,
    unbounded loop after transformation, ...)."""


class CompletionError(ReproError):
    """Raised when the completion procedure cannot extend a partial
    transformation to a full legal one."""


class ObsError(ReproError):
    """Raised by the observability subsystem (session misuse, unwritable
    trace sink, ...)."""


class InterpError(ReproError):
    """Raised by the loop-nest interpreter (unbound variable, bad array
    access, non-affine expression where one is required, ...)."""


class BackendError(ReproError):
    """Raised by the source-lowering backend (unloweable program,
    reserved identifier, unknown backend name, ...)."""


class TuneError(ReproError):
    """Raised by the schedule autotuner (no cached entry for --tuned,
    no measurable candidate survived, ...)."""


class ServiceError(ReproError):
    """Raised by the transformation service (protocol violation, daemon
    unreachable, remote pipeline failure surfaced to the client, ...).

    Attributes
    ----------
    kind:
        The remote error class name (e.g. ``"ParseError"``) when the
        error is a relayed pipeline failure, else ``"ServiceError"``.
    """

    def __init__(self, message: str, kind: str = "ServiceError"):
        self.kind = kind
        super().__init__(message)
