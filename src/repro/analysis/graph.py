"""Statement-level dependence graphs and maximal loop distribution.

The paper's §1 observes that *some* imperfect nests can be converted to
perfect ones by loop distribution, and that factorization codes cannot.
This module makes that observation algorithmic in the classical
Allen–Kennedy style:

* :func:`dependence_graph` — statements as nodes, dependences as edges
  (networkx DiGraph), optionally restricted to the dependences *not*
  carried outside a given loop;
* :func:`maximal_distribution` — recursively split every multi-child
  loop around the strongly connected components of its level-restricted
  dependence graph, in topological order.  Factorization codes collapse
  into one SCC (no split — matching the paper); pipelines split fully.
"""

from __future__ import annotations

import networkx as nx

from repro.dependence.analyze import analyze_dependences
from repro.dependence.depvector import DependenceMatrix
from repro.instance.layout import Layout, Path
from repro.ir.ast import Loop, Program
from repro.util.errors import TransformError

__all__ = ["dependence_graph", "maximal_distribution", "distribution_plan"]


def dependence_graph(
    deps: DependenceMatrix, *, at_loop: Path | None = None
) -> "nx.DiGraph":
    """Statement-level dependence graph.

    With ``at_loop``, only dependences relevant to distributing that
    loop are kept: both endpoints inside the loop, and the dependence
    not already carried by a loop *enclosing* it (those are satisfied
    regardless of how the body is split).
    """
    layout = deps.layout
    g = nx.DiGraph()
    for label in layout.statement_labels():
        if at_loop is None or _inside(layout, label, at_loop):
            g.add_node(label)
    outer_positions: list[int] = []
    if at_loop is not None:
        outer_positions = [
            layout.index(c)
            for c in layout.loop_coords()
            if len(c.path) < len(at_loop) and at_loop[: len(c.path)] == c.path
        ]
    for d in deps:
        if at_loop is not None:
            if not (_inside(layout, d.src, at_loop) and _inside(layout, d.dst, at_loop)):
                continue
            if _definitely_carried(d, outer_positions):
                continue
        if g.has_edge(d.src, d.dst):
            g[d.src][d.dst]["deps"].append(d)
        else:
            g.add_edge(d.src, d.dst, deps=[d])
    return g


def _inside(layout: Layout, label: str, path: Path) -> bool:
    sp = layout.statement_path(label)
    return sp[: len(path)] == path and len(sp) > len(path)


def _definitely_carried(d, outer_positions: list[int]) -> bool:
    for i in outer_positions:
        e = d.entries[i]
        if e.definitely_positive():
            return True
        if not e.is_zero():
            return False
    return False


def distribution_plan(
    program: Program, deps: DependenceMatrix | None = None
) -> dict[Path, list[list[int]]]:
    """For every multi-child loop, the finest legal grouping of its
    children: SCCs of the level dependence graph, condensed and
    topologically ordered, mapped back to child indices.

    A grouping ``[[0], [1, 2]]`` means the loop can be distributed into
    a copy with child 0 followed by a copy with children 1 and 2.
    """
    layout = Layout(program)
    if deps is None:
        deps = analyze_dependences(program)

    plan: dict[Path, list[list[int]]] = {}
    for coord in layout.loop_coords():
        node = layout.node_at(coord.path)
        assert isinstance(node, Loop)
        if len(node.body) < 2:
            continue
        g = dependence_graph(deps, at_loop=coord.path)
        # map statements to the child of this loop they live under
        child_of: dict[str, int] = {}
        for label in g.nodes:
            child_of[label] = layout.statement_path(label)[len(coord.path)]
        # collapse statements to children, keeping edges
        cg = nx.DiGraph()
        cg.add_nodes_from(range(len(node.body)))
        for u, v in g.edges:
            cu, cv = child_of[u], child_of[v]
            if cu != cv:
                cg.add_edge(cu, cv)
        sccs = list(nx.strongly_connected_components(cg))
        cond = nx.condensation(cg, scc=sccs)
        order = list(nx.topological_sort(cond))
        groups = [sorted(cond.nodes[i]["members"]) for i in order]
        # keep source order among independent groups for determinism:
        # stable sort by smallest child index, then re-check topology
        groups.sort(key=lambda grp: grp[0])
        groups = _stable_topo(groups, cg)
        plan[coord.path] = groups
    return plan


def _stable_topo(groups: list[list[int]], cg: "nx.DiGraph") -> list[list[int]]:
    """Order groups topologically, breaking ties by source order."""
    remaining = list(groups)
    out: list[list[int]] = []
    while remaining:
        for grp in remaining:
            # grp is ready iff no other remaining group has an edge into it
            ready = True
            for other in remaining:
                if other is grp:
                    continue
                if any(cg.has_edge(u, v) for u in other for v in grp):
                    ready = False
                    break
            if ready:
                out.append(grp)
                remaining.remove(grp)
                break
        else:  # pragma: no cover - condensation is acyclic
            raise TransformError("cycle among distribution groups")
    return out


def maximal_distribution(
    program: Program, deps: DependenceMatrix | None = None
) -> Program:
    """Distribute every loop as finely as the dependences allow
    (Allen–Kennedy), outermost first, re-analyzing after each change.

    Returns the (possibly unchanged) restructured program; factorization
    codes come back unchanged.
    """
    changed = True
    current = program
    guard = 0
    while changed:
        guard += 1
        if guard > 50:  # pragma: no cover - termination backstop
            raise TransformError("maximal_distribution did not converge")
        changed = False
        plan = distribution_plan(current)
        # apply the first (outermost, leftmost) real split, then restart
        for path in sorted(plan, key=lambda p: (len(p), p)):
            groups = plan[path]
            if len(groups) <= 1:
                continue
            # contiguity: distribute() splits at one point; apply the
            # first boundary of the group structure when the groups are
            # contiguous in source order
            flat = [c for grp in groups for c in grp]
            if flat != sorted(flat):
                # needs statement reordering first; skip (conservative)
                continue
            split = len(groups[0])
            from repro.transform.distribution import distribute

            current = distribute(current, path, split)
            changed = True
            break
    return current
