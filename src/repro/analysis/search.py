"""Searching for *desirable* transformations (paper §1/§7).

The paper's argument for the linear framework is that it makes the
search for good transformations cheap: candidates are rows/matrices,
legality is a matrix test, and completion fills in the rest.  This
module closes the loop with the performance model: enumerate lead
choices, complete each to a legal matrix, generate code, and rank the
variants by simulated cache misses.

This is the whole compiler pipeline the paper gestures at, in one
function call::

    best = search_loop_orders(cholesky(), {"N": 30})
    print(best[0].program)

Historically this module owned the candidate construction; it is now a
thin compatibility shim over the :mod:`repro.tune` subsystem, which
generalizes the lead-loop scan to a full beam search over skews,
reversals, reorderings and structural variants (docs/AUTOTUNING.md).
``search_loop_orders`` keeps its interface, ranking and counters, and
delegates lead completion to :func:`repro.tune.space.lead_candidate`
and measured timing to :func:`repro.backend.runtime.time_backend`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.analysis.parallel_exec import map_in_threads, resolve_jobs
from repro.codegen.generate import GeneratedProgram, generate_code
from repro.codegen.simplify import simplify_program
from repro.dependence.analyze import analyze_dependences
from repro.dependence.depvector import DependenceMatrix
from repro.instance.layout import Layout
from repro.interp.cache import CacheConfig, simulate_cache, trace_addresses
from repro.interp.equivalence import check_equivalence
from repro.interp.executor import ArrayStore, execute
from repro.ir.ast import Program
from repro.obs import counter, span, timed
from repro.polyhedra import System, ge, var

__all__ = ["SearchResult", "search_loop_orders"]


@dataclass
class SearchResult:
    """One legal loop-order variant, ranked by the cache model (or, when
    the search ran with a ``backend``, by measured wall clock)."""

    lead_var: str
    program: Program
    generated: GeneratedProgram
    accesses: int
    misses: int
    seconds: float | None = None

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def __str__(self) -> str:
        timing = f", {self.seconds * 1e3:.2f} ms" if self.seconds is not None else ""
        return (
            f"lead={self.lead_var}: {self.misses}/{self.accesses} misses "
            f"({self.miss_rate:.2%}{timing})"
        )


@timed("analysis.search_orders", attr_fn=lambda program, *a, **kw: {"program": program.name})
def search_loop_orders(
    program: Program,
    params: Mapping[str, int],
    *,
    cache: CacheConfig = CacheConfig(size_bytes=4 * 1024, line_bytes=64, ways=2),
    deps: DependenceMatrix | None = None,
    leads: Sequence[str] | None = None,
    verify: bool = True,
    jobs: int | None = None,
    backend: str | None = None,
    repeat: int = 3,
) -> list[SearchResult]:
    """Enumerate lead-loop choices, keep the legal completions, and rank
    the generated variants by simulated cache misses (best first).

    ``backend`` switches the ranking from the simulated-cache model to
    *measured* wall clock: each variant is additionally timed through
    :func:`repro.backend.runtime.time_backend` with that backend (the
    median of at least three repetitions, so a single noisy run cannot
    reorder the ranking) and variants are ordered by seconds instead of
    misses.  The cache statistics are still collected and reported.

    ``leads`` restricts the candidate lead loop variables (default: all
    loop coordinates).  With ``verify`` (default) every variant is also
    checked semantically equivalent to the source on ``params`` before
    being ranked — an illegal variant slipping through would be a bug,
    so this doubles as a self-check.

    ``jobs`` runs the per-lead complete→codegen→verify→simulate pipeline
    on a thread pool (``0`` = one per CPU).  All variants share one
    dependence matrix and the process-wide polyhedral query-engine cache;
    ranking is deterministic, so the result order matches serial runs.
    """
    from repro.tune.space import lead_candidate, make_context

    layout = Layout(program)
    if deps is None:
        deps = analyze_dependences(program, layout=layout, jobs=jobs)
    ctx = make_context(program, deps, layout=layout)
    candidates = (
        [layout.loop_coord_by_var(v) for v in leads]
        if leads is not None
        else layout.loop_coords()
    )
    params = dict(params)
    # One shared initial-state snapshot per search.  Workers never mutate
    # it — execute() copies initial arrays into a fresh store — and the
    # write=False flag enforces that invariant under the thread pool.
    base = ArrayStore(program, params).snapshot()
    for arr in base.values():
        arr.setflags(write=False)

    def evaluate(coord) -> SearchResult | None:
        counter("search.leads_tried")
        with span("search.variant", lead=coord.var):
            cand = lead_candidate(ctx, coord)
            if cand is None:
                counter("search.leads_rejected")
                return None
            generated = generate_code(program, cand.matrix, deps)
        if verify:
            rep = check_equivalence(
                program, generated.program, params, env_map=generated.env_map()
            )
            if not rep["ok"]:  # pragma: no cover - legality guarantees this
                return None
        store, trace = execute(generated.program, params, arrays=base, trace=True)
        stats = simulate_cache(trace_addresses(trace, store), cache)
        seconds = None
        if backend is not None:
            # Local import: repro.backend depends on repro.analysis for
            # its DOALL verdicts, so the dependency cannot also point the
            # other way at module scope.
            from repro.backend.runtime import time_backend

            seconds = time_backend(
                generated.program, params, arrays=base,
                backend=backend, repeat=repeat,
            )
        assume = System([ge(var(p), 1) for p in program.params])
        pretty = simplify_program(generated.program, assume)
        counter("search.variants_ranked")
        return SearchResult(
            coord.var, pretty, generated, stats.accesses, stats.misses, seconds
        )

    evaluated = map_in_threads(evaluate, candidates, jobs=resolve_jobs(jobs))
    results = [r for r in evaluated if r is not None]
    if backend is not None:
        results.sort(key=lambda r: (r.seconds, r.lead_var))
    else:
        results.sort(key=lambda r: (r.misses, r.lead_var))
    return results
