"""Parallelism analysis on transformed imperfect nests (system S14).

The paper's §7 points out that the linear framework makes searching for
parallelism cheap: a loop of the transformed program is DOALL iff no
dependence is *carried* at its level.  This module computes carried-by
levels from ``M·d`` projections and marks parallel loops, and finds
outer-parallel unit rows for imperfect nests (the nullspace observation
lifted to instance-vector space).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dependence.depvector import DependenceMatrix
from repro.dependence.entry import zip_dot
from repro.instance.layout import Layout, LoopCoord
from repro.legality.structure import recover_structure
from repro.linalg.intmat import IntMatrix

__all__ = ["LoopParallelism", "parallel_loops", "outer_parallel_unit_rows"]


@dataclass(frozen=True)
class LoopParallelism:
    """Per-new-loop verdict: which dependences it may carry."""

    path: tuple[int, ...]
    var: str
    carried: tuple[str, ...]          # dependences definitely/possibly carried here

    @property
    def is_parallel(self) -> bool:
        return not self.carried


def parallel_loops(
    layout: Layout, matrix: IntMatrix, deps: DependenceMatrix
) -> list[LoopParallelism]:
    """Mark every loop of the transformed program as DOALL or not.

    A dependence is attributed to the outermost common-loop level at
    which its transformed projection can be nonzero; every level before
    that is untouched by it.  A loop carrying no dependence is DOALL.
    """
    structure = recover_structure(layout, matrix)
    new_layout = structure.new_layout
    assert new_layout is not None

    carried_at: dict[tuple[int, ...], list[str]] = {
        c.path: [] for c in new_layout.loop_coords()
    }
    for d in deps:
        md = [zip_dot(row, d.entries) for row in matrix.rows()]
        common = new_layout.common_loop_coords(d.src, d.dst)
        for coord in common:
            e = md[new_layout.index(coord)]
            if e.is_zero():
                continue
            # may be nonzero here: this level can carry (or violate) it
            carried_at[coord.path].append(f"{d.src}->{d.dst}")
            if e.definitely_positive():
                pass
            break

    out = []
    for coord in new_layout.loop_coords():
        seen: list[str] = []
        for name in carried_at[coord.path]:
            if name not in seen:
                seen.append(name)
        out.append(LoopParallelism(coord.path, coord.var, tuple(seen)))
    return out


def outer_parallel_unit_rows(layout: Layout, deps: DependenceMatrix) -> list[LoopCoord]:
    """Old loop coordinates usable as a parallel outermost loop: unit
    rows whose dot with every dependence is exactly zero.

    This is the imperfect-nest form of "find a vector in the nullspace
    of the dependence matrix" — restricted to unit vectors so the result
    is directly a loop of the source program.
    """
    out = []
    for coord in layout.loop_coords():
        i = layout.index(coord)
        ok = True
        for d in deps:
            if not d.entries[i].is_zero():
                ok = False
                break
        if ok:
            out.append(coord)
    return out
