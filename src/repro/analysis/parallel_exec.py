"""Public facade for the fan-out helpers backing ``--jobs N``.

The implementation lives in :mod:`repro.util.parallel_exec` (the util
layer sits below both the dependence and analysis layers, so the
dependence fan-out can use it without an import cycle); this module is
the documented import path for analysis-level callers::

    from repro.analysis.parallel_exec import map_in_threads, resolve_jobs
"""

from repro.util.parallel_exec import (
    MIN_TASKS_FOR_POOL,
    capture_counters,
    chunk_round_robin,
    map_in_processes,
    map_in_threads,
    merge_counters,
    merge_metrics,
    resolve_jobs,
)

__all__ = [
    "MIN_TASKS_FOR_POOL",
    "capture_counters",
    "chunk_round_robin",
    "map_in_processes",
    "map_in_threads",
    "merge_counters",
    "merge_metrics",
    "resolve_jobs",
]
