"""Parallelism and locality analyses (system S14)."""

from repro.analysis.locality import locality_score, reuse_distances, reuse_histogram
from repro.analysis.parallel import (
    LoopParallelism, outer_parallel_unit_rows, parallel_loops,
)
from repro.analysis.graph import (
    dependence_graph, distribution_plan, maximal_distribution,
)
from repro.analysis.search import SearchResult, search_loop_orders

__all__ = [
    "parallel_loops", "LoopParallelism", "outer_parallel_unit_rows",
    "reuse_distances", "reuse_histogram", "locality_score",
    "search_loop_orders", "SearchResult",
    "dependence_graph", "distribution_plan", "maximal_distribution",
]
