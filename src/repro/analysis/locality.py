"""Locality metrics over execution traces (system S14).

Complements the cache simulator with machine-independent metrics:
reuse distances (number of distinct cache lines touched between two
accesses to the same line) and their histogram.  Vectorized with numpy
where the trace is long, per the HPC guides.
"""

from __future__ import annotations

import numpy as np

from repro.interp.cache import trace_addresses
from repro.interp.executor import ArrayStore, Trace

__all__ = ["reuse_distances", "reuse_histogram", "locality_score"]


def reuse_distances(trace: Trace, store: ArrayStore, line_bytes: int = 64) -> np.ndarray:
    """LRU stack distances per access (-1 for cold accesses).

    Computed over cache lines, so spatial locality counts: touching the
    neighbour of a recently used element is a distance-0 reuse.
    """
    addrs = trace_addresses(trace, store)
    lines = (addrs // line_bytes).tolist()
    stack: list[int] = []
    seen: set[int] = set()
    out = np.empty(len(lines), dtype=np.int64)
    for i, ln in enumerate(lines):
        if ln in seen:
            # distance = number of distinct lines above it on the stack
            idx = stack.index(ln)
            out[i] = len(stack) - 1 - idx
            stack.pop(idx)
        else:
            out[i] = -1
            seen.add(ln)
        stack.append(ln)
    return out


def reuse_histogram(distances: np.ndarray, buckets: tuple[int, ...] = (0, 1, 4, 16, 64, 256, 1024)) -> dict[str, int]:
    """Histogram of reuse distances into power-ish buckets plus cold."""
    out: dict[str, int] = {"cold": int((distances < 0).sum())}
    prev = 0
    d = distances[distances >= 0]
    for b in buckets:
        out[f"<={b}"] = int(((d >= prev) & (d <= b)).sum())
        prev = b + 1
    out[f">{buckets[-1]}"] = int((d > buckets[-1]).sum())
    return out


def locality_score(distances: np.ndarray, capacity_lines: int = 512) -> float:
    """Fraction of accesses that hit a fully associative LRU cache of
    the given capacity — an upper bound on any real cache's hit rate."""
    if distances.size == 0:
        return 0.0
    hits = ((distances >= 0) & (distances < capacity_lines)).sum()
    return float(hits) / float(distances.size)
