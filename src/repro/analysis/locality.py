"""Locality metrics over execution traces (system S14).

Complements the cache simulator with machine-independent metrics:
reuse distances (number of distinct cache lines touched between two
accesses to the same line) and their histogram.  Vectorized with numpy
where the trace is long, per the HPC guides.
"""

from __future__ import annotations

import numpy as np

from repro.interp.cache import trace_addresses
from repro.interp.executor import ArrayStore, Trace

__all__ = ["reuse_distances", "reuse_histogram", "locality_score"]


def reuse_distances(trace: Trace, store: ArrayStore, line_bytes: int = 64) -> np.ndarray:
    """LRU stack distances per access (-1 for cold accesses).

    Computed over cache lines, so spatial locality counts: touching the
    neighbour of a recently used element is a distance-0 reuse.

    Uses the classic Fenwick-tree formulation (Olken/Bennett–Kruskal):
    a bit is set at the position of the *most recent* access of each
    line, so the stack distance of an access at position ``i`` whose
    line was last touched at ``q`` is the number of set bits strictly
    between them — O(n log n) overall, vs the O(n²) ``stack.index``
    scan this replaced (benchmarks/bench_analysis.py guards it).
    """
    addrs = trace_addresses(trace, store)
    lines = (addrs // line_bytes).tolist()
    n = len(lines)
    out = np.empty(n, dtype=np.int64)
    tree = [0] * (n + 1)

    def add(pos: int, delta: int) -> None:
        pos += 1
        while pos <= n:
            tree[pos] += delta
            pos += pos & -pos

    def prefix(pos: int) -> int:  # set bits in [0, pos]
        pos += 1
        total = 0
        while pos > 0:
            total += tree[pos]
            pos -= pos & -pos
        return total

    last: dict[int, int] = {}
    for i, ln in enumerate(lines):
        q = last.get(ln)
        if q is None:
            out[i] = -1
        else:
            # distinct lines touched since q = set bits in (q, i)
            out[i] = prefix(i - 1) - prefix(q)
            add(q, -1)
        add(i, 1)
        last[ln] = i
    return out


def reuse_histogram(distances: np.ndarray, buckets: tuple[int, ...] = (0, 1, 4, 16, 64, 256, 1024)) -> dict[str, int]:
    """Histogram of reuse distances into power-ish buckets plus cold."""
    out: dict[str, int] = {"cold": int((distances < 0).sum())}
    prev = 0
    d = distances[distances >= 0]
    for b in buckets:
        out[f"<={b}"] = int(((d >= prev) & (d <= b)).sum())
        prev = b + 1
    out[f">{buckets[-1]}"] = int((d > buckets[-1]).sum())
    return out


def locality_score(distances: np.ndarray, capacity_lines: int = 512) -> float:
    """Fraction of accesses that hit a fully associative LRU cache of
    the given capacity — an upper bound on any real cache's hit rate."""
    if distances.size == 0:
        return 0.0
    hits = ((distances >= 0) & (distances < capacity_lines)).sum()
    return float(hits) / float(distances.size)
