"""PolyBench-style kernel-zoo additions: syrk, trsv, fdtd_1d.

These three close specific gaps in the corpus (ROADMAP "kernel zoo"):

* :func:`syrk` — a *rectangular* symmetric rank-k update (``N × M``,
  unlike the square :func:`~repro.kernels.stencils.syrk_like`).  Its
  ``K`` accumulation loop is the symbolic oracle's flagship: reversing
  or blocking-and-reversing it (``reverse(K)``,
  ``tile(K,4); reverse(KT)``) flips the reduction's self-dependence,
  so the Theorem-2 projection test *must* reject — yet the schedule
  only reassociates a sum, and the fractal oracle certifies it
  (docs/SYMBOLIC.md).
* :func:`trsv` — triangular solve with a single right-hand side, an
  imperfect nest whose inner dot-product reduction is likewise
  rescue-eligible.
* :func:`fdtd_1d` — a 1-D finite-difference time-domain sweep: two
  leapfrogged field updates per time step, classic fusion/skewing
  material.  Interchanging time with space (``permute(S,I)``) is
  illegal by *every* oracle — the symbolic comparison produces a
  definitive store mismatch, a useful honesty check on the rescuer.
"""

from __future__ import annotations

from repro.ir.ast import Program
from repro.ir.parser import parse_program

__all__ = ["syrk", "trsv", "fdtd_1d"]


def syrk() -> Program:
    """Rectangular symmetric rank-k update: C += A·Aᵀ on the lower
    triangle, accumulating over ``M`` rank-1 contributions."""
    return parse_program(
        """
        param N, M
        real C(N,N), A(N,M)
        do I = 1..N
          do J = 1..I
            do K = 1..M
              S1: C(I,J) = C(I,J) + A(I,K)*A(J,K)
            enddo
          enddo
        enddo
        """,
        "syrk",
    )


def trsv() -> Program:
    """Forward triangular solve L·x = b, one right-hand side: gather
    the dot product of the solved prefix, then divide by the pivot."""
    return parse_program(
        """
        param N
        real L(N,N), B(N), X(N)
        do I = 1..N
          S1: X(I) = B(I)
          do J = 1..I-1
            S2: X(I) = X(I) - L(I,J)*X(J)
          enddo
          S3: X(I) = X(I) / L(I,I)
        enddo
        """,
        "trsv",
    )


def fdtd_1d() -> Program:
    """1-D finite-difference time-domain: leapfrog E/H field updates
    over ``T`` time steps."""
    return parse_program(
        """
        param N, T
        real E(0:N), H(0:N)
        do S = 1..T
          do I = 1..N-1
            S1: E(I) = E(I) - (H(I) - H(I-1)) / 2
          enddo
          do J = 0..N-1
            S2: H(J) = H(J) - (E(J+1) - E(J)) / 2
          enddo
        enddo
        """,
        "fdtd_1d",
    )
