"""Stencil and BLAS-style workloads complementing the factorizations.

These exercise the framework on the other canonical shapes: perfectly
nested stencils (skewing/wavefront material), imperfect reductions
(gemver-like chains), and time-stepped sweeps (fusion material).
"""

from __future__ import annotations

from repro.ir.ast import Program
from repro.ir.builder import nest
from repro.ir.parser import parse_program

__all__ = [
    "jacobi_1d", "gauss_seidel_1d", "blur_2d", "gemver_like", "seidel_2d",
    "sweep_pair", "syrk_like",
]


def jacobi_1d() -> Program:
    """Out-of-place 1-D Jacobi over T time steps (fusable sweeps)."""
    return parse_program(
        """
        param N, T
        real A(0:N+1), B(0:N+1)
        do S = 1..T
          do I = 1..N
            S1: B(I) = (A(I-1) + A(I) + A(I+1)) / 3
          enddo
          do J = 1..N
            S2: A(J) = B(J)
          enddo
        enddo
        """,
        "jacobi_1d",
    )


def gauss_seidel_1d() -> Program:
    """In-place sweep: carries a dependence in both loop dimensions
    (the classic skew-to-parallelize example)."""
    return parse_program(
        """
        param N, T
        real A(0:N+1)
        do S = 1..T
          do I = 1..N
            S1: A(I) = (A(I-1) + A(I) + A(I+1)) / 3
          enddo
        enddo
        """,
        "gauss_seidel_1d",
    )


def seidel_2d() -> Program:
    """In-place 2-D Gauss-Seidel sweep: both loops carry dependences,
    so neither vectorizes as written — but ``skew(I,J,1)`` makes ``J``
    DOALL, exposing the diagonal wavefronts the ``source-par`` backend
    executes in parallel (each front's accesses are array diagonals,
    which only the flat-view renderer can express)."""
    return parse_program(
        """
        param N
        real A(0:N+1,0:N+1)
        do I = 1..N
          do J = 1..N
            S1: A(I,J) = (A(I-1,J) + A(I,J-1) + A(I,J)) / 3
          enddo
        enddo
        """,
        "seidel_2d",
    )


def blur_2d() -> Program:
    """4-point out-of-place blur, built with the programmatic DSL."""
    return (
        nest("blur_2d", params=["N"])
        .array("A", (0, "N+1"), (0, "N+1"))
        .array("B", (0, "N+1"), (0, "N+1"))
        .loop("I", 1, "N")
        .loop("J", 1, "N")
        .stmt("S1", "B(I,J)", "(A(I-1,J) + A(I+1,J) + A(I,J-1) + A(I,J+1)) / 4")
        .end()
        .end()
        .build()
    )


def gemver_like() -> Program:
    """An imperfect chain: rank-1 update then matrix-vector product —
    two imperfect phases over the same array."""
    return parse_program(
        """
        param N
        real A(N,N), U(N), V(N), X(N), Y(N)
        do I = 1..N
          do J = 1..N
            S1: A(I,J) = A(I,J) + U(I)*V(J)
          enddo
          S2: X(I) = 0.0
          do K = 1..N
            S3: X(I) = X(I) + A(I,K)*Y(K)
          enddo
        enddo
        """,
        "gemver_like",
    )


def sweep_pair() -> Program:
    """Two adjacent identical loops with only forward dependences —
    the canonical fusion candidate."""
    return parse_program(
        """
        param N
        real A(0:N+1), B(0:N+1)
        do I = 1..N
          S1: A(I) = f(I)
        enddo
        do I = 1..N
          S2: B(I) = A(I) * 2
        enddo
        """,
        "sweep_pair",
    )


def syrk_like() -> Program:
    """Triangular symmetric update (imperfect triangular nest)."""
    return parse_program(
        """
        param N
        real C(N,N), A(N,N)
        do I = 1..N
          do J = 1..I
            do K = 1..N
              S1: C(I,J) = C(I,J) + A(I,K)*A(J,K)
            enddo
          enddo
        enddo
        """,
        "syrk_like",
    )
