"""Workload corpus (system S15): the paper's running examples plus the
matrix-factorization kernels its motivation rests on.

All kernels are plain mini-language sources parsed into IR so they
exercise the whole front end.  The six Cholesky variants compute the
same lower-triangular factor in-place with the three loops (column
step, scaling, update) in all six classical orders — the paper's §1
example of semantically equal but performance-different loop orders.
"""

from __future__ import annotations

from repro.ir.ast import Program
from repro.ir.parser import parse_program

__all__ = [
    "simplified_cholesky",
    "cholesky",
    "cholesky_variant",
    "CHOLESKY_VARIANTS",
    "running_example",
    "augmentation_example",
    "lu_factorization",
    "lu",
    "triangular_solve",
    "trmm",
    "matmul",
    "forward_substitution",
]


def simplified_cholesky() -> Program:
    """The §3 running example (outer sqrt + scaling loop)."""
    return parse_program(
        """
        param N
        real A(N)
        do I = 1..N
          S1: A(I) = sqrt(A(I))
          do J = I+1..N
            S2: A(J) = A(J) / A(I)
          enddo
        enddo
        """,
        "simplified_cholesky",
    )


def cholesky() -> Program:
    """Right-looking Cholesky, the §6 code (4 loop variables)."""
    return parse_program(
        """
        param N
        real A(N,N)
        do K = 1..N
          S1: A(K,K) = sqrt(A(K,K))
          do I = K+1..N
            S2: A(I,K) = A(I,K) / A(K,K)
          enddo
          do J = K+1..N
            do L = K+1..J
              S3: A(J,L) = A(J,L) - A(J,K)*A(L,K)
            enddo
          enddo
        enddo
        """,
        "cholesky",
    )


def running_example(n1: int = 5, lo: int = 2, hi: int = 4) -> Program:
    """The §2 running example (Figure 1's AST shape)."""
    return parse_program(
        f"""
        param N
        real A(N,N), B(0:N)
        do I = 1..{n1}
          do J = {lo}..{hi}
            S1: A(I,J) = f(I,J)
            S2: A(I,J) = g(I,J)
          enddo
          S3: B(I) = f(I)
        enddo
        """,
        "running_example",
    )


def augmentation_example() -> Program:
    """The §5.4 example needing an extra loop after skewing."""
    return parse_program(
        """
        param N
        real A(0:N+1,0:N+1), B(0:N)
        do I = 1..N
          S1: B(I) = B(I-1) + A(I-1,I+1)
          do J = I..N
            S2: A(I,J) = f(I,J)
          enddo
        enddo
        """,
        "augmentation_example",
    )


#: The six classical loop orders of in-place Cholesky factorization.
#: Each computes L such that L·Lᵀ equals the (SPD) input, storing L in
#: the lower triangle.  Orders are named by their loop nesting.
_CHOLESKY_SOURCES = {
    # right-looking / submatrix Cholesky: update trails the factored column
    "kji": """
        param N
        real A(N,N)
        do K = 1..N
          S1: A(K,K) = sqrt(A(K,K))
          do I = K+1..N
            S2: A(I,K) = A(I,K) / A(K,K)
          enddo
          do J = K+1..N
            do I2 = J..N
              S3: A(I2,J) = A(I2,J) - A(I2,K)*A(J,K)
            enddo
          enddo
        enddo
        """,
    "kij": """
        param N
        real A(N,N)
        do K = 1..N
          S1: A(K,K) = sqrt(A(K,K))
          do I = K+1..N
            S2: A(I,K) = A(I,K) / A(K,K)
          enddo
          do I2 = K+1..N
            do J = K+1..I2
              S3: A(I2,J) = A(I2,J) - A(I2,K)*A(J,K)
            enddo
          enddo
        enddo
        """,
    # left-looking / column Cholesky: gather updates, then factor column
    "jki": """
        param N
        real A(N,N)
        do J = 1..N
          do K = 1..J-1
            do I = J..N
              S3: A(I,J) = A(I,J) - A(I,K)*A(J,K)
            enddo
          enddo
          S1: A(J,J) = sqrt(A(J,J))
          do I2 = J+1..N
            S2: A(I2,J) = A(I2,J) / A(J,J)
          enddo
        enddo
        """,
    "jik": """
        param N
        real A(N,N)
        do J = 1..N
          do I = J..N
            do K = 1..J-1
              S3: A(I,J) = A(I,J) - A(I,K)*A(J,K)
            enddo
          enddo
          S1: A(J,J) = sqrt(A(J,J))
          do I2 = J+1..N
            S2: A(I2,J) = A(I2,J) / A(J,J)
          enddo
        enddo
        """,
    # row-Cholesky / bordering: factor row by row
    "ikj": """
        param N
        real A(N,N)
        do I = 1..N
          do K = 1..I-1
            S2: A(I,K) = A(I,K) / A(K,K)
            do J = K+1..I-1
              S3: A(I,J) = A(I,J) - A(I,K)*A(J,K)
            enddo
            S4: A(I,I) = A(I,I) - A(I,K)*A(I,K)
          enddo
          S1: A(I,I) = sqrt(A(I,I))
        enddo
        """,
    "ijk": """
        param N
        real A(N,N)
        do I = 1..N
          do J = 1..I-1
            do K = 1..J-1
              S3: A(I,J) = A(I,J) - A(I,K)*A(J,K)
            enddo
            S2: A(I,J) = A(I,J) / A(J,J)
          enddo
          do K2 = 1..I-1
            S4: A(I,I) = A(I,I) - A(I,K2)*A(I,K2)
          enddo
          S1: A(I,I) = sqrt(A(I,I))
        enddo
        """,
}

CHOLESKY_VARIANTS = tuple(sorted(_CHOLESKY_SOURCES))


def cholesky_variant(order: str) -> Program:
    """One of the six classical Cholesky loop orders ('ijk', 'ikj',
    'jik', 'jki', 'kij', 'kji')."""
    try:
        src = _CHOLESKY_SOURCES[order]
    except KeyError:
        raise ValueError(f"unknown Cholesky variant {order!r}; pick from {CHOLESKY_VARIANTS}") from None
    return parse_program(src, f"cholesky_{order}")


def lu_factorization() -> Program:
    """LU without pivoting (right-looking), another imperfect nest whose
    distribution is illegal."""
    return parse_program(
        """
        param N
        real A(N,N)
        do K = 1..N
          do I = K+1..N
            S1: A(I,K) = A(I,K) / A(K,K)
          enddo
          do J = K+1..N
            do L = K+1..N
              S2: A(L,J) = A(L,J) - A(L,K)*A(K,J)
            enddo
          enddo
        enddo
        """,
        "lu",
    )


def lu() -> Program:
    """Alias for :func:`lu_factorization` under the bench/tune kernel
    name (``repro bench lu`` resolves kernels by attribute name)."""
    return lu_factorization()


def trmm() -> Program:
    """Triangular matrix-matrix multiply C += tril(A)·B — a triangular
    nest whose K extent grows with I, so row panels of B are reused
    across I and blocking the I loop pays at sizes past L2."""
    return parse_program(
        """
        param N
        real A(N,N), B(N,N), C(N,N)
        do I = 1..N
          do J = 1..N
            do K = 1..I
              S1: C(I,J) = C(I,J) + A(I,K)*B(K,J)
            enddo
          enddo
        enddo
        """,
        "trmm",
    )


def triangular_solve() -> Program:
    """In-place lower-triangular solve B := L⁻¹·B (column sweep)."""
    return parse_program(
        """
        param N
        real L(N,N), B(N)
        do J = 1..N
          S1: B(J) = B(J) / L(J,J)
          do I = J+1..N
            S2: B(I) = B(I) - L(I,J)*B(J)
          enddo
        enddo
        """,
        "trisolve",
    )


def forward_substitution() -> Program:
    """Row-oriented forward substitution (perfectly nested core)."""
    return parse_program(
        """
        param N
        real L(N,N), B(N)
        do I = 1..N
          do J = 1..I-1
            S1: B(I) = B(I) - L(I,J)*B(J)
          enddo
          S2: B(I) = B(I) / L(I,I)
        enddo
        """,
        "forward_substitution",
    )


def matmul() -> Program:
    """Perfectly nested matrix multiply (baseline workload)."""
    return parse_program(
        """
        param N
        real A(N,N), B(N,N), C(N,N)
        do I = 1..N
          do J = 1..N
            do K = 1..N
              S1: C(I,J) = C(I,J) + A(I,K)*B(K,J)
            enddo
          enddo
        enddo
        """,
        "matmul",
    )
