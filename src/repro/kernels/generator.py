"""Random imperfect loop-nest generator for property-based testing.

Generates small programs with affine accesses whose declared array
ranges are padded generously, so every subscript a random transformation
can produce stays in bounds.  Used by the hypothesis/property tests to
cross-check the symbolic machinery against the interpreter.
"""

from __future__ import annotations

import random

from repro.ir.ast import ArrayDecl, Loop, Node, Program, Statement
from repro.ir.expr import ArrayRef, BinOp, Call, IntLit, VarRef
from repro.polyhedra.affine import LinExpr, var

__all__ = ["random_program"]

_PAD = 64


def random_program(
    seed: int,
    *,
    max_depth: int = 3,
    max_children: int = 3,
    n_arrays: int = 2,
) -> Program:
    """A random imperfect nest, deterministic in ``seed``.

    Loops have bounds ``1..N`` or triangular (``prev+1..N``); statements
    read/write 1-D or 2-D arrays with subscripts of the form
    ``±loop ± small-constant``.
    """
    rng = random.Random(seed)
    arrays = [f"R{i}" for i in range(n_arrays)]
    ranks = {a: rng.choice((1, 2)) for a in arrays}
    label_counter = [0]
    loop_counter = [0]

    def fresh_label() -> str:
        label_counter[0] += 1
        return f"S{label_counter[0]}"

    def fresh_var() -> str:
        loop_counter[0] += 1
        return f"V{loop_counter[0]}"

    def subscript(loop_vars: list[str]):
        v = rng.choice(loop_vars)
        c = rng.randint(-2, 2)
        sign = rng.choice((1, 1, 1, -1))
        e: object = VarRef(v) if sign == 1 else BinOp("-", IntLit(0), VarRef(v))
        if c:
            e = BinOp("+", e, IntLit(c))
        return e

    def statement(loop_vars: list[str]) -> Statement:
        arr = rng.choice(arrays)
        lhs = ArrayRef(arr, [subscript(loop_vars) for _ in range(ranks[arr])])
        src = rng.choice(arrays)
        read = ArrayRef(src, [subscript(loop_vars) for _ in range(ranks[src])])
        rhs = BinOp(rng.choice(("+", "-", "*")), read, Call("f", [VarRef(loop_vars[-1])]))
        return Statement(fresh_label(), lhs, rhs)

    def build(depth: int, loop_vars: list[str]) -> Node:
        if depth >= max_depth or (loop_vars and rng.random() < 0.35):
            return statement(loop_vars)
        v = fresh_var()
        triangular = loop_vars and rng.random() < 0.5
        lower = var(loop_vars[-1]) + 1 if triangular else LinExpr({}, 1)
        upper = var("N")
        n_children = rng.randint(1, max_children)
        body = [build(depth + 1, loop_vars + [v]) for _ in range(n_children)]
        # ensure at least one statement exists somewhere under a loop
        if not any(True for c in body for _ in c.statements()):
            body.append(statement(loop_vars + [v]))
        return Loop.make(v, lower, upper, body)

    top = build(0, [])
    if isinstance(top, Statement):  # degenerate: wrap in a loop
        v = fresh_var()
        top = Loop.make(v, 1, var("N"), [statement([v])])
    decls = tuple(
        ArrayDecl.make(a, *[( -_PAD, LinExpr({"N": 1}, _PAD)) for _ in range(ranks[a])])
        for a in arrays
    )
    return Program((top,), ("N",), decls, f"random_{seed}")
