"""Random imperfect loop-nest generator for property-based testing.

Generates small programs with affine accesses whose declared array
ranges are padded generously, so every subscript a random transformation
can produce stays in bounds.  Used by the hypothesis/property tests and
the differential fuzzer (:mod:`repro.fuzz`) to cross-check the symbolic
machinery against the interpreter.

Determinism contract: every draw comes from one local
``random.Random(seed)`` instance — no module-level ``random.*`` calls,
no ambient state — so the same ``(seed, shape, sizes)`` arguments
produce a byte-identical program in any process (see
``tests/kernels/test_factorizations.py::TestGenerator``).
"""

from __future__ import annotations

import random

from repro.ir.ast import ArrayDecl, Loop, Node, Program, Statement
from repro.ir.expr import ArrayRef, BinOp, Call, IntLit, VarRef
from repro.polyhedra.affine import LinExpr, var

__all__ = ["random_program", "SHAPES"]

_PAD = 64

#: Weighted program shapes the fuzzer draws from.  ``mixed`` is the
#: historical default distribution; the others force a structural class
#: so rare forms (perfect nests, deep imperfect nests, triangular
#: bounds, wide multi-statement bodies) are sampled often enough to
#: exercise their dedicated pipeline paths.
SHAPES = ("mixed", "perfect", "deep", "triangular", "multi")


def random_program(
    seed: int,
    *,
    max_depth: int = 3,
    max_children: int = 3,
    n_arrays: int = 2,
    shape: str = "mixed",
) -> Program:
    """A random imperfect nest, deterministic in ``seed`` (and ``shape``).

    Loops have bounds ``1..N`` or triangular (``prev+1..N``); statements
    read/write 1-D or 2-D arrays with subscripts of the form
    ``±loop ± small-constant``.

    ``shape`` selects a structural class (see :data:`SHAPES`):

    * ``"mixed"`` — the historical default distribution;
    * ``"perfect"`` — a single perfectly nested chain, statements only at
      the innermost level, rectangular bounds;
    * ``"deep"`` — depth-4 imperfect nests with statements between loops;
    * ``"triangular"`` — every non-outermost loop is triangular;
    * ``"multi"`` — wide bodies (many statements per loop).
    """
    if shape not in SHAPES:
        raise ValueError(f"unknown program shape {shape!r}; expected one of {SHAPES}")
    rng = random.Random(seed)
    if shape == "deep":
        max_depth = max(max_depth, 4)
    if shape == "multi":
        max_children = max(max_children, 4)
    arrays = [f"R{i}" for i in range(n_arrays)]
    ranks = {a: rng.choice((1, 2)) for a in arrays}
    label_counter = [0]
    loop_counter = [0]

    def fresh_label() -> str:
        label_counter[0] += 1
        return f"S{label_counter[0]}"

    def fresh_var() -> str:
        loop_counter[0] += 1
        return f"V{loop_counter[0]}"

    def subscript(loop_vars: list[str]):
        v = rng.choice(loop_vars)
        c = rng.randint(-2, 2)
        sign = rng.choice((1, 1, 1, -1))
        e: object = VarRef(v) if sign == 1 else BinOp("-", IntLit(0), VarRef(v))
        if c:
            e = BinOp("+", e, IntLit(c))
        return e

    def statement(loop_vars: list[str]) -> Statement:
        arr = rng.choice(arrays)
        lhs = ArrayRef(arr, [subscript(loop_vars) for _ in range(ranks[arr])])
        src = rng.choice(arrays)
        read = ArrayRef(src, [subscript(loop_vars) for _ in range(ranks[src])])
        rhs = BinOp(rng.choice(("+", "-", "*")), read, Call("f", [VarRef(loop_vars[-1])]))
        return Statement(fresh_label(), lhs, rhs)

    def stop_early(loop_vars: list[str]) -> bool:
        if shape == "perfect":
            return False  # always reach max_depth before placing the body
        p = 0.25 if shape == "deep" else 0.35
        return bool(loop_vars) and rng.random() < p

    def triangular_here(loop_vars: list[str]) -> bool:
        if not loop_vars:
            return False
        if shape == "perfect":
            return False
        if shape == "triangular":
            return True
        return rng.random() < 0.5

    def n_children_here(depth: int) -> int:
        if shape == "perfect":
            return 1
        if shape == "multi":
            return rng.randint(2, max_children)
        return rng.randint(1, max_children)

    def build(depth: int, loop_vars: list[str]) -> Node:
        if depth >= max_depth or stop_early(loop_vars):
            return statement(loop_vars)
        v = fresh_var()
        lower = var(loop_vars[-1]) + 1 if triangular_here(loop_vars) else LinExpr({}, 1)
        upper = var("N")
        n_children = n_children_here(depth)
        body = [build(depth + 1, loop_vars + [v]) for _ in range(n_children)]
        # ensure at least one statement exists somewhere under a loop
        if not any(True for c in body for _ in c.statements()):
            body.append(statement(loop_vars + [v]))
        return Loop.make(v, lower, upper, body)

    if shape == "perfect":
        # a single chain of loops with 1-3 statements at the innermost level
        vs = [fresh_var() for _ in range(max(2, max_depth))]
        body: list[Node] = [statement(vs) for _ in range(rng.randint(1, 3))]
        for v in reversed(vs):
            body = [Loop.make(v, LinExpr({}, 1), var("N"), body)]
        top: Node = body[0]
    else:
        top = build(0, [])
    if isinstance(top, Statement):  # degenerate: wrap in a loop
        v = fresh_var()
        top = Loop.make(v, 1, var("N"), [statement([v])])
    decls = tuple(
        ArrayDecl.make(a, *[(-_PAD, LinExpr({"N": 1}, _PAD)) for _ in range(ranks[a])])
        for a in arrays
    )
    suffix = "" if shape == "mixed" else f"_{shape}"
    return Program((top,), ("N",), decls, f"random_{seed}{suffix}")
