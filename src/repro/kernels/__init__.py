"""Workload corpus (system S15)."""

from repro.kernels.factorizations import (
    CHOLESKY_VARIANTS, augmentation_example, cholesky, cholesky_variant,
    forward_substitution, lu, lu_factorization, matmul, running_example,
    simplified_cholesky, triangular_solve, trmm,
)
from repro.kernels.generator import random_program
from repro.kernels.stencils import (
    blur_2d, gauss_seidel_1d, gemver_like, jacobi_1d, seidel_2d, sweep_pair,
    syrk_like,
)
from repro.kernels.zoo import fdtd_1d, syrk, trsv

__all__ = [
    "simplified_cholesky", "cholesky", "cholesky_variant", "CHOLESKY_VARIANTS",
    "running_example", "augmentation_example", "lu_factorization", "lu",
    "triangular_solve", "trmm", "forward_substitution", "matmul",
    "random_program",
    "jacobi_1d", "gauss_seidel_1d", "blur_2d", "gemver_like", "seidel_2d",
    "sweep_pair", "syrk_like",
    "syrk", "trsv", "fdtd_1d",
]
