"""Wavefront (DOACROSS) execution planning for the ``source-par`` backend.

The paper's skewing machinery (§3, Theorem 2) exists to *expose*
wavefront parallelism: after a skew, every iteration of some inner loop
at a fixed outer-loop value — one hyperplane front — is independent.
This module turns that structure into execution:

1. :func:`collect_front_plans` walks an already-transformed program and,
   using the same DOALL verdicts the vectorizer uses
   (:func:`repro.backend.vectorize.doall_loop_vars`, which runs
   :func:`repro.analysis.parallel.parallel_loops` on the identity of the
   *transformed* program), selects the **outermost** DOALL loop of each
   subtree as a wavefront loop.  Everything nested inside the chosen
   loop belongs to its fronts; outer loops above it are the sequential
   front schedule.  Every accept/reject decision is emitted as a
   ``kind=wavefront`` event, surfaced by ``repro explain --phase
   wavefront``.

2. :func:`plan_front_loop` decides *how* a front executes:

   * ``slice`` mode — the front body is a single statement whose array
     references are affine in the front variable; each chunk of the
     front becomes one NumPy assignment through a **flat strided view**
     (:func:`_fview`/:func:`_fread`).  This generalizes the serial
     vectorizer: a reference varying with the front variable in several
     dimensions (the diagonal accesses skewing produces, e.g.
     ``A(I-J, J)``) maps to a 1-D view of the flattened array with
     combined stride ``sum(c_k * stride_k)`` — something per-dimension
     slices cannot express, which is why ``source-vec`` leaves skewed
     stencils scalar and ``source-par`` does not.
   * ``chunk`` mode — anything else structurally safe (unit step, no
     scalar writes in the body): the front function runs the ordinary
     scalar loop over its chunk.

3. :func:`_wf_dispatch` is the runtime the emitted code calls once per
   front: it splits ``lo..hi`` into deterministic contiguous chunks,
   runs them on a persistent thread pool, and **blocks until every
   chunk finishes** — that blocking wait is the sequential barrier
   between fronts.  Narrow fronts (below :func:`min_front_width`) and
   ``--par-jobs 1`` runs execute inline, serially.

Determinism: a DOALL verdict means no iteration of the front reads or
writes a cell another iteration writes (Theorem 2's characterization),
so the chunks touch disjoint data given disjoint index ranges and any
chunk order — or full parallelism — produces bit-identical results.
Chunk boundaries depend only on ``(width, jobs)``, never on timing.
See docs/PARALLEL.md for the full argument and the honest GIL caveats.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from threading import Lock, local

from repro.backend.vectorize import (
    VEC_FUNCTIONS, VecPlan, _calls, value_vars,
)
from repro.ir.ast import ArrayDecl, Guard, Loop, Node, Program, Statement
from repro.ir.expr import ArrayRef, as_affine
from repro.obs import counter, event, gauge, histogram
from repro.util.errors import InterpError, IRError

__all__ = [
    "FrontPlan", "plan_front_loop", "collect_front_plans",
    "resolve_par_jobs", "par_jobs", "current_par_jobs",
    "min_front_width", "PAR_JOBS_ENV", "MIN_FRONT_ENV",
    "DEFAULT_MIN_FRONT_WIDTH",
]

#: Environment override for the worker count (the CLI ``--par-jobs``
#: flag exports it so fuzz worker *processes* inherit the setting).
PAR_JOBS_ENV = "REPRO_PAR_JOBS"

#: Environment override for the narrow-front serial cutoff.
MIN_FRONT_ENV = "REPRO_PAR_MIN_FRONT"

#: Fronts narrower than this run inline on the dispatching thread: a
#: pool round-trip costs ~100us, a narrow slice assignment ~1us.  Tests
#: set :data:`MIN_FRONT_ENV` to 1 to force the pool on tiny fronts.
DEFAULT_MIN_FRONT_WIDTH = 2048


def resolve_par_jobs(jobs: int | None = None) -> int:
    """Normalize a ``--par-jobs`` value: explicit count wins, then the
    ``REPRO_PAR_JOBS`` environment variable, then one worker per CPU.
    ``0`` or a negative count also means one per CPU."""
    if jobs is None:
        env = os.environ.get(PAR_JOBS_ENV, "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                jobs = None
    if jobs is None or int(jobs) <= 0:
        return max(1, os.cpu_count() or 1)
    return int(jobs)


def min_front_width() -> int:
    """The serial cutoff, re-read per dispatch so tests can lower it."""
    env = os.environ.get(MIN_FRONT_ENV, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return DEFAULT_MIN_FRONT_WIDTH


_PAR_JOBS: ContextVar[int | None] = ContextVar("repro_par_jobs", default=None)


def current_par_jobs() -> int:
    got = _PAR_JOBS.get()
    return got if got is not None else resolve_par_jobs(None)


@contextmanager
def par_jobs(jobs: int | None):
    """Bind the worker count for every ``_wf_dispatch`` in the body."""
    token = _PAR_JOBS.set(resolve_par_jobs(jobs))
    try:
        yield
    finally:
        _PAR_JOBS.reset(token)


# -- the persistent worker pool ----------------------------------------------

_pool = None
_pool_size = 0
_pool_lock = Lock()
_wf_tls = local()


def _get_pool(jobs: int):
    """The shared thread pool, grown (never shrunk) to ``jobs`` workers.
    Returns ``None`` when a pool cannot be created (restricted envs)."""
    global _pool, _pool_size
    with _pool_lock:
        if _pool is None or _pool_size < jobs:
            from concurrent.futures import ThreadPoolExecutor

            if _pool is not None:
                _pool.shutdown(wait=False)
                _pool = None
            try:
                _pool = ThreadPoolExecutor(
                    max_workers=jobs, thread_name_prefix="repro-wf"
                )
            except Exception:
                counter("parallel.thread_pool_fallbacks")
                return None
            _pool_size = jobs
        return _pool


def _run_chunk(fn, lo: int, hi: int) -> None:
    # the in-front flag makes any (future) nested dispatch run inline in
    # the worker instead of deadlocking on its own pool
    _wf_tls.in_front = True
    try:
        fn(lo, hi)
    finally:
        _wf_tls.in_front = False


def _wf_dispatch(lo: int, hi: int, fn) -> None:
    """Execute one wavefront front: ``fn(c_lo, c_hi)`` over deterministic
    contiguous chunks of ``lo..hi`` (inclusive), blocking until every
    chunk completes — the inter-front barrier.

    The DOALL property of the front loop guarantees chunks touch
    disjoint cells, so results are bit-identical for any worker count.
    """
    if lo > hi:
        counter("backend.wavefront.empty_fronts")
        return
    width = hi - lo + 1
    counter("backend.wavefront.fronts")
    histogram("backend.wavefront.front_width", width)
    jobs = current_par_jobs()
    if (
        jobs <= 1
        or width < min_front_width()
        or getattr(_wf_tls, "in_front", False)
    ):
        counter("backend.wavefront.serial_fronts")
        fn(lo, hi)
        return
    n = min(jobs, width)
    q, r = divmod(width, n)
    bounds = []
    start = lo
    for i in range(n):
        size = q + (1 if i < r else 0)
        bounds.append((start, start + size - 1))
        start += size
    pool = _get_pool(jobs)
    if pool is None:  # restricted environment: serial is always correct
        counter("backend.wavefront.serial_fronts")
        fn(lo, hi)
        return
    t0 = time.perf_counter_ns()
    futures = [pool.submit(_run_chunk, fn, c_lo, c_hi) for c_lo, c_hi in bounds]
    err: BaseException | None = None
    for fut in futures:  # in chunk order: the first failure wins, deterministically
        try:
            fut.result()
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            if err is None:
                err = exc
    counter("backend.wavefront.parallel_fronts")
    counter("backend.wavefront.tasks", n)
    histogram("backend.wavefront.front_ns", time.perf_counter_ns() - t0)
    gauge("backend.wavefront.pool_utilization", n / jobs)
    if err is not None:
        raise err


# -- flat strided views (the runtime half of slice-mode fronts) ---------------

def _flatbase(a, cs, offs):
    """(flat view, base element index, combined element stride) for a
    reference whose dimension ``k`` is ``cs[k]*v + offs[k]``."""
    if not a.flags.c_contiguous:
        raise InterpError("wavefront flat view requires a C-contiguous array")
    isz = a.itemsize
    base = 0
    step = 0
    for c, o, s in zip(cs, offs, a.strides):
        s //= isz
        base += o * s
        step += c * s
    return a.reshape(-1), base, step


def _fview(a, lo, hi, cs, offs):
    """The writable 1-D view selecting the cells of a multi-dimension
    reference for ``v`` in ``lo..hi`` — an arithmetic progression of
    flat indices with stride ``sum(cs[k]*strides[k])``.

    A zero combined stride with ``hi > lo`` would mean every iteration
    writes the same cell — an output dependence the DOALL verdict rules
    out for in-bounds subscripts — so it is reported, not silently
    mis-executed.
    """
    flat, base, step = _flatbase(a, cs, offs)
    if step == 0:
        if lo == hi:
            return flat[base : base + 1]
        raise InterpError(
            "wavefront front writes one cell from every iteration "
            "(zero flat stride); subscripts outside declared bounds?"
        )
    start = base + step * lo
    stop = base + step * hi
    if step > 0:
        return flat[start : stop + 1 : step]
    stop -= 1
    return flat[start : (stop if stop >= 0 else None) : step]


def _fread(a, lo, hi, cs, offs):
    """Read-side counterpart of :func:`_fview`: a zero combined stride
    is legitimate for reads (the reference is front-invariant) and
    collapses to a broadcast scalar."""
    flat, base, step = _flatbase(a, cs, offs)
    if step == 0:
        return float(flat[base])
    start = base + step * lo
    stop = base + step * hi
    if step > 0:
        return flat[start : stop + 1 : step]
    stop -= 1
    return flat[start : (stop if stop >= 0 else None) : step]


# -- planning -----------------------------------------------------------------

@dataclass(frozen=True)
class FrontPlan:
    """One wavefront loop and how its fronts execute.

    ``mode`` is ``"slice"`` (each chunk is one flat-view NumPy
    assignment) or ``"chunk"`` (each chunk runs the scalar body).
    ``plan`` carries the vectorization plan for slice mode (with
    ``flat=True`` so multi-dimension-varying references render as flat
    views).
    """

    var: str
    mode: str
    plan: VecPlan | None = None


def _scalar_writes(nodes) -> list[str]:
    """Names of scalars written anywhere under ``nodes``."""
    out: list[str] = []

    def walk(node: Node) -> None:
        if isinstance(node, Statement):
            if not isinstance(node.lhs, ArrayRef):
                out.append(node.lhs.name)
        elif isinstance(node, (Loop, Guard)):
            for c in node.body:
                walk(c)

    for n in nodes:
        walk(n)
    return out


def _slice_block_reason(
    loop: Loop, scope: frozenset[str], arrays: dict[str, ArrayDecl]
) -> str | None:
    """Why the front body cannot be a flat-view slice assignment (the
    ``chunk``-mode fallback reason), or ``None`` when slice mode works.

    Mirrors :func:`repro.backend.vectorize.plan_vector_loop` but admits
    references varying with the front variable in *several* dimensions —
    the flat view handles those — and requires only that the LHS vary at
    all (distinct iterations then write distinct cells, by the DOALL
    verdict plus the bijectivity of C-order flattening).
    """
    v = loop.var
    if len(loop.body) != 1 or not isinstance(loop.body[0], Statement):
        return "body is not a single statement"
    st = loop.body[0]
    if not isinstance(st.lhs, ArrayRef):
        return "scalar LHS"
    allowed = frozenset(scope) | {v}

    def ref_reason(ref: ArrayRef, *, is_lhs: bool) -> str | None:
        decl = arrays.get(ref.array)
        if decl is None or len(ref.subscripts) != decl.rank:
            return "undeclared array or rank mismatch"
        vdims = 0
        for sub in ref.subscripts:
            try:
                lin = as_affine(sub)
            except IRError:
                return f"subscript {sub} is not affine"
            if not (lin.variables() <= allowed):
                return f"subscript {sub} uses variables bound inside the loop"
            if lin[v] != 0:
                vdims += 1
        if is_lhs and vdims == 0:
            return f"LHS does not vary with {v}"
        return None

    why = ref_reason(st.lhs, is_lhs=True)
    if why is not None:
        return why
    for ref in st.rhs.array_refs():
        why = ref_reason(ref, is_lhs=False)
        if why is not None:
            return why
    vals = value_vars(st.rhs)
    if not (vals <= allowed):
        return f"scalar read(s) {', '.join(sorted(vals - allowed))} in value position"
    for fn in _calls(st.rhs):
        if fn not in VEC_FUNCTIONS:
            return f"intrinsic {fn}() has no elementwise equivalent"
    return None


def plan_front_loop(
    loop: Loop,
    scope: frozenset[str] | set[str],
    arrays: dict[str, ArrayDecl],
) -> FrontPlan | None:
    """Decide whether a DOALL loop can be dispatched as wavefront fronts
    and in which mode.  Emits one ``kind=wavefront`` event either way.

    Returns ``None`` — leave the loop as an ordinary (possibly
    vectorized) sequential loop — when the structural safety conditions
    fail: non-unit step (chunk arithmetic assumes stride 1) or scalar
    writes in the body (worker threads share one scalar environment,
    and the dependence analysis behind the DOALL verdict does not track
    scalars).
    """
    v = loop.var
    if loop.step != 1:
        event(
            "wavefront", "reject",
            f"non-unit step {loop.step}; front chunking needs stride 1",
            loop=v,
        )
        return None
    written = _scalar_writes(loop.body)
    if written:
        event(
            "wavefront", "reject",
            "scalar write(s) inside the loop body; workers would race on "
            "the shared scalar environment",
            loop=v, scalars=", ".join(sorted(set(written))),
        )
        return None
    why_not_slice = _slice_block_reason(loop, frozenset(scope), arrays)
    if why_not_slice is None:
        st = loop.body[0]
        assert isinstance(st, Statement)
        plan = VecPlan(v, needs_iota=(v in value_vars(st.rhs)), flat=True)
        event(
            "wavefront", "accept",
            "outermost DOALL loop dispatched as wavefront fronts; each "
            "chunk is one flat-strided NumPy assignment",
            loop=v, mode="slice", target=str(st.lhs),
        )
        return FrontPlan(v, "slice", plan)
    event(
        "wavefront", "accept",
        "outermost DOALL loop dispatched as wavefront fronts; chunks run "
        f"the scalar body ({why_not_slice})",
        loop=v, mode="chunk",
    )
    return FrontPlan(v, "chunk")


def collect_front_plans(
    program: Program, doall: frozenset[str]
) -> dict[int, FrontPlan]:
    """Map ``id(loop) -> FrontPlan`` for the outermost dispatchable DOALL
    loop of every subtree.  Loops nested inside a chosen wavefront loop
    are *not* planned again (nested dispatch would serialize anyway);
    non-DOALL loops get a reject event explaining the sequential front
    schedule above the band.
    """
    arrays = {d.name: d for d in program.arrays}
    plans: dict[int, FrontPlan] = {}

    def walk(node: Node, scope: frozenset[str], in_front: bool) -> None:
        if isinstance(node, Loop):
            inner = scope | {node.var}
            if not in_front:
                if node.var in doall:
                    plan = plan_front_loop(node, scope, arrays)
                    if plan is not None:
                        plans[id(node)] = plan
                        for c in node.body:
                            walk(c, inner, True)
                        return
                else:
                    event(
                        "wavefront", "reject",
                        "loop carries a dependence; it schedules fronts "
                        "sequentially (skew the nest to move parallelism "
                        "inward)",
                        loop=node.var,
                    )
            elif node.var in doall:
                event(
                    "wavefront", "info",
                    "DOALL loop already inside a wavefront band; executed "
                    "within its front",
                    loop=node.var,
                )
            for c in node.body:
                walk(c, inner, in_front)
        elif isinstance(node, Guard):
            for c in node.body:
                walk(c, scope, in_front)

    base = frozenset(program.params)
    for n in program.body:
        walk(n, base, False)
    if not plans:
        event(
            "wavefront", "reject",
            "no wavefront band found; source-par degrades to the serial "
            "source-vec emission",
            program=program.name,
        )
    return plans
