"""Lower loop-nest IR to executable Python/NumPy source.

:func:`lower_program` walks a :class:`~repro.ir.ast.Program` (source or
generated) and emits one Python function per program::

    def _kernel(_arrays, _params, _scalars):
        _s = _scalars
        N = _params['N']
        _a_A = _arrays['A']
        for K in range(1, N + 1):
            _a_A[K - 1, K - 1] = _fn_sqrt(float(_a_A[K - 1, K - 1]))
            ...

The text is ``compile()``d and ``exec``'d once, replacing the reference
interpreter's per-instance AST dispatch with native bytecode; the
function then runs against the same :class:`~repro.interp.ArrayStore`
arrays, so all existing equivalence oracles apply unchanged.

Lowering rules (see docs/BACKENDS.md for the full catalogue):

* loop bounds — ``max``/``min`` over ceil/floor-divided affine terms
  render as integer arithmetic: ``ceild(e, d)`` is ``-((-e) // d)`` and
  ``floord(e, d)`` is ``e // d``, bit-identical to
  :meth:`repro.polyhedra.bounds.Bound.eval`;
* guards — affine :class:`Constraint` conditions render as integer
  comparisons; :class:`ExprCondition` lattice conditions render through
  ``_exact_div`` (exact integer division that raises on a remainder),
  preserving the reference's left-to-right short-circuit order;
* subscripts — affine subscripts over in-scope variables become integer
  index arithmetic (shifted by the declared lower bound); anything else
  falls back to evaluating the float expression and rounding through
  ``_round_index``, which enforces the reference's 1e-9 tolerance;
* values — array reads are wrapped in ``float()`` so arithmetic happens
  on Python floats (IEEE-754 doubles, identical to the reference and
  ~3x faster than NumPy scalar ops);
* innermost DOALL loops whose statement passes
  :func:`repro.backend.vectorize.plan_vector_loop` become a single NumPy
  slice assignment (``vectorize=True`` only);
* with ``parallel=True`` (the ``source-par`` backend), the outermost
  DOALL loop of each subtree becomes a *wavefront* loop: its body is
  emitted as a local function and every front (one value range of the
  loop) is dispatched through
  :func:`repro.backend.wavefront._wf_dispatch`, which chunks it across
  a worker pool with a barrier per front.  Single-statement fronts
  render as flat strided views (``_fview``/``_fread``), which — unlike
  per-dimension slices — also map references varying with the front
  variable in several dimensions (the diagonals skewing produces).

The scalar path is *exact*: it produces bit-identical floats to the
reference executor.  The backend does not re-validate subscript ranges
(NumPy raises ``IndexError`` past the end but wraps negative indices),
which is the documented speed/checking trade-off.
"""

from __future__ import annotations

import keyword
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.backend.vectorize import (
    VEC_FUNCTIONS, VecPlan, doall_loop_vars, plan_vector_loop,
)
from repro.backend.wavefront import (
    FrontPlan, _fread, _fview, _wf_dispatch, collect_front_plans,
)
from repro.ir.ast import (
    ArrayDecl, BoundSet, ExprCondition, Guard, HullBound, Loop, Node, Program,
    Statement,
)
from repro.ir.expr import (
    BUILTIN_FUNCTIONS, ArrayRef, BinOp, Call, Expr, FloatLit, IntLit, UnaryOp,
    VarRef, as_affine,
)
from repro.obs import counter, span
from repro.polyhedra.affine import LinExpr
from repro.polyhedra.bounds import Bound
from repro.util.errors import BackendError, InterpError, IRError

__all__ = ["LoweredProgram", "lower_program"]


# -- runtime helpers available to emitted code --------------------------------

def _round_index(v) -> int:
    """Round a float subscript to an int, with the reference tolerance."""
    iv = int(round(v))
    if abs(v - iv) > 1e-9:
        raise InterpError(f"non-integer subscript value {v}")
    return iv


def _exact_div(a: int, b: int) -> int:
    """Exact integer division for lattice guard conditions."""
    q, r = divmod(a, b)
    if r:
        raise IRError(f"inexact division {a}/{b} in condition")
    return q


def _vslice(lo: int, hi: int, c: int, off: int) -> slice:
    """The slice selecting ``c*v + off`` for ``v`` in ``lo..hi``.

    For a negative stride the exclusive stop may land at ``-1``, which
    NumPy would read as "one before the end" — map it to ``None``.
    """
    if c > 0:
        return slice(c * lo + off, c * hi + off + 1, c)
    stop = c * hi + off - 1
    return slice(c * lo + off, stop if stop >= 0 else None, c)


_EXEC_GLOBALS: dict[str, object] = {
    "_np": np,
    "_round_index": _round_index,
    "_exact_div": _exact_div,
    "_vslice": _vslice,
    "_wf_dispatch": _wf_dispatch,
    "_fview": _fview,
    "_fread": _fread,
}
for _name, _fn in BUILTIN_FUNCTIONS.items():
    _EXEC_GLOBALS[f"_fn_{_name}"] = _fn
for _name, _fn in VEC_FUNCTIONS.items():
    _EXEC_GLOBALS[f"_vf_{_name}"] = _fn


# -- lowering context ---------------------------------------------------------

@dataclass
class _Ctx:
    """Names in scope and the vectorization state while emitting."""

    scope: frozenset[str]
    arrays: dict[str, ArrayDecl]
    plans: dict[int, VecPlan]
    fronts: dict[int, FrontPlan] = field(default_factory=dict)
    vec: VecPlan | None = None

    def bind(self, var: str) -> "_Ctx":
        return _Ctx(self.scope | {var}, self.arrays, self.plans, self.fronts, self.vec)

    def vectorizing(self, plan: VecPlan) -> "_Ctx":
        return _Ctx(self.scope, self.arrays, self.plans, self.fronts, plan)


class _Emitter:
    def __init__(self):
        self.lines: list[str] = []
        self.depth = 1

    def line(self, s: str) -> None:
        self.lines.append("    " * self.depth + s)

    @contextmanager
    def indent(self):
        self.depth += 1
        try:
            yield
        finally:
            self.depth -= 1


# -- expression rendering -----------------------------------------------------

def _render_lin(lin: LinExpr) -> str:
    """An affine form as an integer Python expression."""
    parts: list[str] = []
    for name, c in lin.terms():
        if c == 1:
            parts.append(name)
        elif c == -1:
            parts.append(f"-{name}")
        else:
            parts.append(f"{c}*{name}")
    if lin.constant != 0 or not parts:
        parts.append(str(lin.constant))
    if len(parts) > 1:
        return "(" + " + ".join(parts) + ")"
    p = parts[0]
    return f"({p})" if p.startswith("-") else p


def _render_bound_term(t: Bound) -> str:
    e = _render_lin(t.expr)
    if t.div == 1:
        return e
    # ceil for lower bounds, floor for upper — Bound.eval verbatim.
    return f"(-((-{e}) // {t.div}))" if t.is_lower else f"({e} // {t.div})"


def _render_boundset(bs: BoundSet) -> str:
    terms = [_render_bound_term(t) for t in bs.terms]
    if len(terms) == 1:
        return terms[0]
    return ("max(" if bs.is_lower else "min(") + ", ".join(terms) + ")"


def _render_bound(b: BoundSet | HullBound) -> str:
    if isinstance(b, HullBound):
        groups = [_render_boundset(g) for g in b.groups]
        if len(groups) == 1:
            return groups[0]
        # hull of a union: loosest group wins.
        return ("min(" if b.is_lower else "max(") + ", ".join(groups) + ")"
    return _render_boundset(b)


def _render_int_tree(e: Expr, scope: frozenset[str]) -> str:
    """An array-free expression as exact integer arithmetic (guard
    conditions) — mirrors ``repro.ir.ast._eval_int_expr``."""
    if isinstance(e, IntLit):
        return str(e.value)
    if isinstance(e, VarRef):
        if e.name not in scope:
            raise BackendError(f"unbound variable {e.name!r} in condition")
        return e.name
    if isinstance(e, UnaryOp):
        return f"(-{_render_int_tree(e.operand, scope)})"
    if isinstance(e, BinOp):
        l = _render_int_tree(e.left, scope)
        r = _render_int_tree(e.right, scope)
        if e.op in ("+", "-", "*", "%"):
            return f"({l} {e.op} {r})"
        if e.op == "/":
            return f"_exact_div({l}, {r})"
    raise BackendError(f"cannot lower {e} as an integer condition")


def _render_index(sub: Expr, lo: LinExpr, ctx: _Ctx) -> str:
    """One subscript dimension, shifted to a 0-based offset."""
    try:
        lin = as_affine(sub)
    except IRError:
        lin = None
    if lin is not None and lin.variables() <= ctx.scope:
        return _render_lin(lin - lo)
    # Non-affine (or scalar-dependent) subscript: evaluate as a float and
    # round with the reference tolerance.
    return f"(_round_index({_render_value(sub, ctx)}) - {_render_lin(lo)})"


def _render_array_ref(ref: ArrayRef, ctx: _Ctx, *, target: bool = False) -> tuple[str, bool]:
    """Render a reference; returns ``(code, is_vector)``.

    ``target`` marks the LHS of an assignment; it only matters for flat
    wavefront plans, where the write side renders as a ``_fview`` slice
    target and the read side as ``_fread`` (whose zero-stride case
    collapses to a broadcast scalar, legal for reads only).
    """
    decl = ctx.arrays.get(ref.array)
    if decl is None:
        raise BackendError(f"undeclared array {ref.array!r}")
    if len(ref.subscripts) != decl.rank:
        raise BackendError(
            f"{ref.array} has rank {decl.rank}, got {len(ref.subscripts)} subscripts"
        )
    vec = ctx.vec
    if vec is not None and vec.flat:
        # Wavefront front: the plan guaranteed affine subscripts.  A
        # reference varying with the front variable in several
        # dimensions has no per-dimension slice form, but its cells are
        # an arithmetic progression of *flat* indices.
        lins = [as_affine(sub) for sub in ref.subscripts]
        if sum(1 for lin in lins if lin[vec.var] != 0) > 1:
            cs: list[str] = []
            offs: list[str] = []
            for lin, (lo, _hi) in zip(lins, decl.dims):
                c = lin[vec.var]
                cs.append(str(c))
                offs.append(_render_lin(lin + LinExpr({vec.var: -c}) - lo))
            fn = "_fview" if target else "_fread"
            code = (
                f"{fn}(_a_{ref.array}, _l_{vec.var}, _h_{vec.var}, "
                f"({', '.join(cs)}), ({', '.join(offs)}))"
            )
            return (code + "[:]" if target else code), True
    dims: list[str] = []
    is_vector = False
    for sub, (lo, _hi) in zip(ref.subscripts, decl.dims):
        if vec is not None:
            lin = as_affine(sub)  # plan_vector_loop guaranteed affine
            c = lin[vec.var]
            if c != 0:
                rest = lin + LinExpr({vec.var: -c}) - lo
                dims.append(f"_vslice(_l_{vec.var}, _h_{vec.var}, {c}, {_render_lin(rest)})")
                is_vector = True
                continue
            dims.append(_render_lin(lin - lo))
        else:
            dims.append(_render_index(sub, lo, ctx))
    return f"_a_{ref.array}[{', '.join(dims)}]", is_vector


def _render_value(e: Expr, ctx: _Ctx) -> str:
    if isinstance(e, IntLit):
        return repr(float(e.value))
    if isinstance(e, FloatLit):
        return repr(e.value)
    if isinstance(e, VarRef):
        if ctx.vec is not None and e.name == ctx.vec.var:
            return f"_vv_{e.name}"
        if e.name in ctx.scope:
            return e.name
        # Scalar defined by an earlier statement; KeyError at run time maps
        # to the reference's "unbound variable" InterpError.
        return f"_s[{e.name!r}]"
    if isinstance(e, ArrayRef):
        code, is_vector = _render_array_ref(e, ctx)
        # float() keeps scalar arithmetic on Python floats (exact vs the
        # reference, and much faster than np.float64 scalars).
        return code if is_vector else f"float({code})"
    if isinstance(e, UnaryOp):
        return f"(-{_render_value(e.operand, ctx)})"
    if isinstance(e, BinOp):
        return f"({_render_value(e.left, ctx)} {e.op} {_render_value(e.right, ctx)})"
    if isinstance(e, Call):
        prefix = "_vf_" if ctx.vec is not None else "_fn_"
        args = ", ".join(_render_value(a, ctx) for a in e.args)
        return f"{prefix}{e.func}({args})"
    raise BackendError(f"cannot lower expression {e!r}")


# -- node emission ------------------------------------------------------------

def _emit_statement(st: Statement, ctx: _Ctx, em: _Emitter) -> None:
    rhs = _render_value(st.rhs, ctx)
    if isinstance(st.lhs, ArrayRef):
        lhs, _ = _render_array_ref(st.lhs, ctx)
        em.line(f"{lhs} = {rhs}")
    else:
        em.line(f"_s[{st.lhs.name!r}] = {rhs}")


def _emit_guard(g: Guard, ctx: _Ctx, em: _Emitter, stats: dict) -> None:
    conds: list[str] = []
    for c in g.conditions:
        if isinstance(c, ExprCondition):
            rendered = _render_int_tree(c.expr, ctx.scope)
            conds.append(f"{rendered} {'==' if c.is_equality() else '>='} 0")
        else:
            conds.append(f"{_render_lin(c.expr)} {c.kind} 0")
    if not conds:  # vacuously true
        _emit_block(g.body, ctx, em, stats)
        return
    em.line("if " + " and ".join(conds) + ":")
    with em.indent():
        _emit_block(g.body, ctx, em, stats)


def _emit_loop(loop: Loop, ctx: _Ctx, em: _Emitter, stats: dict) -> None:
    lo = _render_bound(loop.lower)
    hi = _render_bound(loop.upper)
    fplan = ctx.fronts.get(id(loop))
    if fplan is not None:
        stats["wavefront"] += 1
        v = loop.var
        em.line(f"_l_{v} = {lo}")
        em.line(f"_h_{v} = {hi}")
        # The front body as a local function: _wf_dispatch calls it once
        # per chunk with a sub-range of [_l, _h] and blocks until every
        # chunk returns (the inter-front barrier).  Parameter names
        # shadow the bound temporaries so the slice renderer works
        # unchanged on the chunk's own range.
        em.line(f"def _wf_body_{v}(_l_{v}, _h_{v}):")
        with em.indent():
            if fplan.mode == "slice":
                assert fplan.plan is not None
                vctx = ctx.bind(v).vectorizing(fplan.plan)
                if fplan.plan.needs_iota:
                    em.line(f"_vv_{v} = _np.arange(_l_{v}, _h_{v} + 1, dtype=float)")
                st = loop.body[0]
                assert isinstance(st, Statement)
                lhs, is_vector = _render_array_ref(st.lhs, vctx, target=True)
                assert is_vector
                em.line(f"{lhs} = {_render_value(st.rhs, vctx)}")
            else:
                em.line(f"for {v} in range(_l_{v}, _h_{v} + 1):")
                with em.indent():
                    _emit_block(loop.body, ctx.bind(v), em, stats)
        em.line(f"_wf_dispatch(_l_{v}, _h_{v}, _wf_body_{v})")
        return
    plan = ctx.plans.get(id(loop))
    if plan is not None:
        stats["vectorized"] += 1
        v = loop.var
        em.line(f"_l_{v} = {lo}")
        em.line(f"_h_{v} = {hi}")
        em.line(f"if _l_{v} <= _h_{v}:")
        with em.indent():
            vctx = ctx.bind(v).vectorizing(plan)
            if plan.needs_iota:
                em.line(f"_vv_{v} = _np.arange(_l_{v}, _h_{v} + 1, dtype=float)")
            st = loop.body[0]
            assert isinstance(st, Statement)
            lhs, is_vector = _render_array_ref(st.lhs, vctx)
            assert is_vector
            em.line(f"{lhs} = {_render_value(st.rhs, vctx)}")
        return
    if loop.step == 1:
        rng = f"range({lo}, {hi} + 1)"
    elif loop.step > 0:
        rng = f"range({lo}, {hi} + 1, {loop.step})"
    else:
        rng = f"range({lo}, {hi} - 1, {loop.step})"
    em.line(f"for {loop.var} in {rng}:")
    with em.indent():
        _emit_block(loop.body, ctx.bind(loop.var), em, stats)


def _emit_block(nodes: tuple[Node, ...], ctx: _Ctx, em: _Emitter, stats: dict) -> None:
    if not nodes:
        em.line("pass")
        return
    for node in nodes:
        if isinstance(node, Statement):
            _emit_statement(node, ctx, em)
        elif isinstance(node, Loop):
            _emit_loop(node, ctx, em, stats)
        elif isinstance(node, Guard):
            _emit_guard(node, ctx, em, stats)
        else:
            raise BackendError(f"cannot lower node of type {type(node).__name__}")


# -- driver -------------------------------------------------------------------

@dataclass
class LoweredProgram:
    """A program lowered to compiled Python source.

    ``vectorized_loops`` counts loops emitted as slice assignments;
    ``fallback_loops`` counts innermost DOALL loops that had to stay
    scalar (non-affine subscript, multi-statement body, scalar reads...);
    ``wavefront_loops`` counts loops dispatched as wavefront fronts
    (``parallel=True`` only — zero means source-par degraded to the
    serial source-vec emission).
    """

    program: Program
    source: str
    vectorize: bool
    vectorized_loops: int
    fallback_loops: int
    parallel: bool
    wavefront_loops: int
    fn: Callable = field(repr=False)


#: Names the emitted module binds bare (everything else we emit is
#: ``_``-prefixed, and ``_``-prefixed user identifiers are rejected).
_RESERVED = frozenset({"range", "float", "max", "min"})


def _check_identifiers(program: Program) -> None:
    names = {f"parameter {p!r}": p for p in program.params}
    for decl in program.arrays:
        names[f"array {decl.name!r}"] = decl.name
    for loop in program.all_loops():
        names[f"loop variable {loop.var}"] = loop.var
    for what, n in names.items():
        if n.startswith("_") or n in _RESERVED or keyword.iskeyword(n) or not n.isidentifier():
            raise BackendError(f"cannot lower {what}: reserved or invalid as a Python name")


def _collect_plans(
    program: Program,
    doall: frozenset[str],
    stats: dict,
    exclude: frozenset[int] = frozenset(),
) -> dict[int, VecPlan]:
    """Map id(loop) -> plan for every vectorizable innermost DOALL loop.

    ``exclude`` holds ids of loops already claimed as wavefront fronts —
    they are emitted by the front path, so planning (or counting them as
    scalar fallbacks) here would be wrong.
    """
    arrays = {d.name: d for d in program.arrays}
    plans: dict[int, VecPlan] = {}

    def walk(node: Node, scope: frozenset[str]):
        if isinstance(node, Loop):
            inner = scope | {node.var}
            has_subloop = any(isinstance(c, (Loop, Guard)) for c in node.body)
            if node.var in doall and not has_subloop and id(node) not in exclude:
                plan = plan_vector_loop(node, scope, arrays)
                if plan is not None:
                    plans[id(node)] = plan
                else:
                    stats["fallback"] += 1
            for c in node.body:
                walk(c, inner)
        elif isinstance(node, Guard):
            for c in node.body:
                walk(c, scope)

    base = frozenset(program.params)
    for n in program.body:
        walk(n, base)
    return plans


def lower_program(
    program: Program, *, vectorize: bool = False, parallel: bool = False, deps=None
) -> LoweredProgram:
    """Lower ``program`` to a compiled Python function.

    With ``vectorize=True``, innermost DOALL loops (per this library's
    own dependence analysis — pass ``deps`` to reuse a precomputed
    matrix) are emitted as NumPy slice assignments when legal.

    With ``parallel=True`` (the ``source-par`` backend), the outermost
    DOALL loop of each subtree is additionally dispatched as wavefront
    fronts over the worker pool (:mod:`repro.backend.wavefront`); when
    no wavefront band exists the emission is identical to the serial
    one — graceful degradation, recorded as ``wavefront_loops == 0``.
    """
    with span("backend.lower", program=program.name, vectorize=vectorize,
              parallel=parallel):
        _check_identifiers(program)
        stats = {"vectorized": 0, "fallback": 0, "wavefront": 0}
        plans: dict[int, VecPlan] = {}
        fronts: dict[int, FrontPlan] = {}
        if vectorize or parallel:
            doall = doall_loop_vars(program, deps)
            if parallel:
                fronts = collect_front_plans(program, doall)
            if vectorize and doall:
                plans = _collect_plans(program, doall, stats,
                                       exclude=frozenset(fronts))

        em = _Emitter()
        em.line("_s = _scalars")
        for p in program.params:
            em.line(f"{p} = _params[{p!r}]")
        for decl in program.arrays:
            em.line(f"_a_{decl.name} = _arrays[{decl.name!r}]")
        ctx = _Ctx(frozenset(program.params),
                   {d.name: d for d in program.arrays}, plans, fronts)
        _emit_block(program.body, ctx, em, stats)

        header = (
            f"# lowered from {program.name!r} "
            f"(vectorize={vectorize}, parallel={parallel})\n"
        )
        src = header + "def _kernel(_arrays, _params, _scalars):\n" + "\n".join(em.lines) + "\n"
        code = compile(src, f"<repro-backend:{program.name}>", "exec")
        g = dict(_EXEC_GLOBALS)
        exec(code, g)

        counter("backend.lowerings")
        counter("backend.vectorized_loops", stats["vectorized"])
        counter("backend.scalar_fallbacks", stats["fallback"])
        if parallel:
            counter("backend.wavefront_loops", stats["wavefront"])
        return LoweredProgram(
            program=program,
            source=src,
            vectorize=vectorize,
            vectorized_loops=stats["vectorized"],
            fallback_loops=stats["fallback"],
            parallel=parallel,
            wavefront_loops=stats["wavefront"],
            fn=g["_kernel"],
        )
