"""Backend registry and the single execution entry point.

Five backends run any IR program against the same
:class:`~repro.interp.ArrayStore` inputs:

``reference``
    The tree-walking interpreter (:func:`repro.interp.execute`) — the
    semantic ground truth every other backend is checked against.
``compiled``
    The closure compiler (:func:`repro.interp.execute_compiled`).
``source``
    :mod:`repro.backend.lower` — the program is emitted as Python
    source, ``compile()``d once and run as native bytecode.  Bit-exact
    vs the reference.
``source-vec``
    ``source`` plus NumPy slice assignments for innermost DOALL loops
    (:mod:`repro.backend.vectorize`).  Equal up to floating-point
    reassociation in reductions — which DOALL loops do not have, so in
    practice also exact; the oracles still use the equivalence
    tolerance.
``source-par``
    ``source-vec`` plus wavefront execution
    (:mod:`repro.backend.wavefront`): the outermost DOALL loop of each
    subtree is dispatched as chunked fronts over a worker pool, with a
    barrier between fronts and deterministic chunk order — bit-exact
    for any ``--par-jobs`` value.  Programs with no wavefront band
    degrade to the serial ``source-vec`` emission.

:func:`run` is the one entry point; :func:`bench_backends` times all of
them on identical inputs and cross-checks their outputs.
"""

from __future__ import annotations

import math
import statistics
import time
from collections import OrderedDict
from dataclasses import dataclass
from threading import Lock
from typing import Callable, Mapping

import numpy as np

from repro.backend.lower import LoweredProgram, lower_program
from repro.backend.wavefront import par_jobs as _par_jobs_ctx
from repro.interp.equivalence import outputs_close
from repro.interp.executor import ArrayStore, execute
from repro.ir.ast import Program
from repro.obs import counter, span
from repro.util.errors import BackendError, InterpError, ReproError

__all__ = [
    "BACKENDS", "run", "run_lowered", "lower_cached", "bench_backends",
    "BackendTiming", "time_backend", "MIN_TIMING_REPS",
]

#: Registry order is also the presentation order in `repro bench`.
BACKENDS: tuple[str, ...] = (
    "reference", "compiled", "source", "source-vec", "source-par",
)

# Lowering cache: keyed by id(program) — safe because each cached
# LoweredProgram keeps a strong reference to its Program, so an id
# cannot be reused while its entry is alive.  Bounded LRU.
_CACHE_SIZE = 64
_lower_cache: "OrderedDict[tuple[int, bool, bool], LoweredProgram]" = OrderedDict()
_lower_lock = Lock()


def lower_cached(
    program: Program, *, vectorize: bool = False, parallel: bool = False, deps=None
) -> LoweredProgram:
    """Lower ``program``, memoizing on program identity."""
    key = (id(program), bool(vectorize), bool(parallel))
    with _lower_lock:
        hit = _lower_cache.get(key)
        if hit is not None:
            _lower_cache.move_to_end(key)
            counter("backend.lower_cache_hits")
            return hit
    low = lower_program(program, vectorize=vectorize, parallel=parallel, deps=deps)
    with _lower_lock:
        _lower_cache[key] = low
        while len(_lower_cache) > _CACHE_SIZE:
            _lower_cache.popitem(last=False)
    return low


def run(
    program: Program,
    params: Mapping[str, int] | None = None,
    arrays: Mapping[str, np.ndarray] | None = None,
    *,
    backend: str = "source",
    init: Callable | None = None,
    deps=None,
    par_jobs: int | None = None,
) -> ArrayStore:
    """Execute ``program`` with the chosen backend; returns the final store.

    ``arrays`` overrides initial contents (copied, never mutated), same
    contract as :func:`repro.interp.execute`.  ``deps`` optionally reuses
    a precomputed dependence matrix for ``source-vec``/``source-par``
    lowering.  ``par_jobs`` sets the ``source-par`` worker count
    (default: the ``REPRO_PAR_JOBS`` environment variable, then one per
    CPU); other backends ignore it.
    """
    if backend not in BACKENDS:
        raise BackendError(f"unknown backend {backend!r}; known: {list(BACKENDS)}")
    counter(f"backend.runs.{backend}")
    if backend == "reference":
        store, _ = execute(program, params, arrays, init=init)
        return store
    if backend == "compiled":
        from repro.interp.compiled import execute_compiled

        return execute_compiled(program, params, arrays, init=init)
    parallel = backend == "source-par"
    lowered = lower_cached(
        program,
        vectorize=backend in ("source-vec", "source-par"),
        parallel=parallel,
        deps=deps,
    )
    return run_lowered(lowered, params, arrays, init=init, par_jobs=par_jobs)


def run_lowered(
    lowered: LoweredProgram,
    params: Mapping[str, int] | None = None,
    arrays: Mapping[str, np.ndarray] | None = None,
    *,
    init: Callable | None = None,
    par_jobs: int | None = None,
) -> ArrayStore:
    """Execute an already-lowered program against fresh inputs."""
    params = dict(params or {})
    store = ArrayStore(lowered.program, params, init)
    if arrays:
        for k, v in arrays.items():
            if k not in store.arrays:
                raise InterpError(f"unknown array {k!r} in initial values")
            if store.arrays[k].shape != v.shape:
                raise InterpError(
                    f"shape mismatch for {k}: {store.arrays[k].shape} vs {v.shape}"
                )
            store.arrays[k] = np.array(v, dtype=float)
    with span("backend.execute", program=lowered.program.name,
              vectorize=lowered.vectorize, parallel=lowered.parallel):
        try:
            if lowered.parallel:
                with _par_jobs_ctx(par_jobs):
                    lowered.fn(store.arrays, store.params, store.scalars)
            else:
                lowered.fn(store.arrays, store.params, store.scalars)
        except ZeroDivisionError:
            raise InterpError("division by zero during execution") from None
        except KeyError as exc:
            raise InterpError(f"unbound variable {exc.args[0]!r}") from None
        except IndexError as exc:
            raise InterpError(f"array index out of declared range: {exc}") from None
    return store


#: Measured rankings never trust fewer repetitions than this: a single
#: run is one scheduler hiccup away from reordering a whole search.
MIN_TIMING_REPS = 3


def time_backend(
    program: Program,
    params: Mapping[str, int] | None = None,
    arrays: Mapping[str, np.ndarray] | None = None,
    *,
    backend: str = "source",
    repeat: int = MIN_TIMING_REPS,
    deps=None,
    par_jobs: int | None = None,
) -> float:
    """Median wall clock of ``max(MIN_TIMING_REPS, repeat)`` runs, after
    one untimed warm-up (which also pays any lowering cost).

    This is the shared timing primitive behind every *ranking* decision
    (``search_loop_orders`` measured mode, the ``repro tune`` driver):
    the median of at least three repetitions, not a single run or a
    best-of, so one noisy repetition cannot reorder a search.
    """
    reps = max(MIN_TIMING_REPS, int(repeat))
    run(program, params, arrays=arrays, backend=backend, deps=deps,
        par_jobs=par_jobs)  # warm-up
    times = []
    for _ in range(reps):
        t0 = time.perf_counter()
        run(program, params, arrays=arrays, backend=backend, deps=deps,
            par_jobs=par_jobs)
        times.append(time.perf_counter() - t0)
    counter(f"backend.timings.{backend}")
    return statistics.median(times)


@dataclass
class BackendTiming:
    """One row of a backend comparison: best-of-``repeat`` wall clock."""

    backend: str
    seconds: float
    speedup: float | None  # vs reference; None for the reference row
    ok: bool | None  # outputs match reference; True for the baseline row
    # (it trivially matches itself), None only for error rows — gates
    # must be able to tell "baseline" from "silently skipped".
    error: str = ""


def bench_backends(
    program: Program,
    params: Mapping[str, int],
    *,
    backends: tuple[str, ...] = BACKENDS,
    repeat: int = 3,
    rtol: float = 1e-9,
    par_jobs: int | None = None,
) -> list[BackendTiming]:
    """Time each backend on identical inputs and cross-check outputs.

    The reference backend is always run (first) to provide the baseline
    and the expected outputs.  Backend errors become rows with
    ``math.nan`` seconds and the message in ``error`` rather than
    raising, so one broken backend does not hide the others.
    """
    for b in backends:
        if b not in BACKENDS:
            raise BackendError(f"unknown backend {b!r}; known: {list(BACKENDS)}")
    params = dict(params)
    base = ArrayStore(program, params).snapshot()
    ordered = list(dict.fromkeys(("reference",) + tuple(backends)))
    ref_secs: float | None = None
    ref_out: dict[str, np.ndarray] | None = None
    rows: list[BackendTiming] = []
    with span("backend.bench", program=program.name, n=len(ordered)):
        for b in ordered:
            try:
                run(program, params, arrays=base, backend=b,
                    par_jobs=par_jobs)  # warm-up + lowering
                best = math.inf
                out = None
                for _ in range(max(1, repeat)):
                    t0 = time.perf_counter()
                    store = run(program, params, arrays=base, backend=b,
                                par_jobs=par_jobs)
                    best = min(best, time.perf_counter() - t0)
                    out = store.snapshot()
            except ReproError as exc:
                rows.append(BackendTiming(b, math.nan, None, None, str(exc)))
                continue
            if b == "reference":
                ref_secs, ref_out = best, out
                # The baseline trivially matches itself: report ok=True,
                # never None, so downstream gates can distinguish a
                # healthy baseline row from an error row they must not
                # silently skip.
                ok = True
                speedup = None
            else:
                ok = outputs_close(ref_out, out, rtol) if ref_out is not None else None
                speedup = (ref_secs / best) if ref_secs and best > 0 else None
            rows.append(BackendTiming(b, best, speedup, ok))
    return rows
