"""Execution backends: lower IR programs to compiled, optionally
vectorized and wavefront-parallel Python/NumPy source.

See docs/BACKENDS.md and docs/PARALLEL.md.  The public surface is
:func:`run` (execute a program with any registered backend),
:data:`BACKENDS` (the registry), :func:`bench_backends` (wall-clock
comparison with output cross-checks) and the lower-level
:func:`lower_program`.  The ``source-par`` backend's planning and
worker-pool knobs live in :mod:`repro.backend.wavefront`.
"""

from repro.backend.lower import LoweredProgram, lower_program
from repro.backend.runtime import (
    BACKENDS, BackendTiming, bench_backends, lower_cached, run, run_lowered,
    time_backend,
)
from repro.backend.vectorize import VecPlan, doall_loop_vars, plan_vector_loop
from repro.backend.wavefront import (
    FrontPlan, collect_front_plans, par_jobs, plan_front_loop,
    resolve_par_jobs,
)

__all__ = [
    "BACKENDS", "BackendTiming", "FrontPlan", "LoweredProgram", "VecPlan",
    "bench_backends", "collect_front_plans", "doall_loop_vars",
    "lower_cached", "lower_program", "par_jobs", "plan_front_loop",
    "plan_vector_loop", "resolve_par_jobs", "run", "run_lowered",
    "time_backend",
]
