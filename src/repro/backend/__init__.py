"""Execution backends: lower IR programs to compiled, optionally
vectorized Python/NumPy source.

See docs/BACKENDS.md.  The public surface is :func:`run` (execute a
program with any registered backend), :data:`BACKENDS` (the registry),
:func:`bench_backends` (wall-clock comparison with output cross-checks)
and the lower-level :func:`lower_program`.
"""

from repro.backend.lower import LoweredProgram, lower_program
from repro.backend.runtime import (
    BACKENDS, BackendTiming, bench_backends, lower_cached, run, run_lowered,
    time_backend,
)
from repro.backend.vectorize import VecPlan, doall_loop_vars, plan_vector_loop

__all__ = [
    "BACKENDS", "BackendTiming", "LoweredProgram", "VecPlan",
    "bench_backends", "doall_loop_vars", "lower_cached", "lower_program",
    "plan_vector_loop", "run", "run_lowered", "time_backend",
]
