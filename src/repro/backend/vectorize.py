"""DOALL-driven vectorization planning for the source backend.

The lowering backend (:mod:`repro.backend.lower`) asks this module two
questions:

1. Which loop variables are DOALL?  :func:`doall_loop_vars` answers by
   running the library's own dependence analysis and
   :func:`repro.analysis.parallel.parallel_loops` on the *identity*
   transformation: a loop is DOALL exactly when no dependence is carried
   at its level.  Programs the instance-vector layout cannot describe
   (generated programs with guards, non-affine subscripts, ...) get the
   conservative answer "nothing is DOALL" — the backend then emits plain
   scalar loops, so vectorization is correct by construction.

2. Can *this* innermost DOALL loop be rewritten as one NumPy slice
   assignment?  :func:`plan_vector_loop` performs the purely syntactic
   legality checks (single statement, affine subscripts, at most one
   dimension per array reference varying with the loop, no scalar
   variables, only elementwise intrinsics).  The semantic half — that a
   slice assignment, which reads *all* of its inputs before writing, is
   observationally equal to the sequential loop — is exactly the DOALL
   property: by Theorem 2's characterization, no iteration of the loop
   reads or overwrites a cell another iteration writes, so read-all-
   then-write-all commutes with the original iteration order.  See
   docs/BACKENDS.md for the full argument.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ir.ast import ArrayDecl, Loop, Program, Statement
from repro.ir.expr import ArrayRef, BinOp, Call, Expr, UnaryOp, VarRef, as_affine
from repro.obs import counter, event
from repro.util.errors import IRError, ReproError

__all__ = ["VecPlan", "doall_loop_vars", "plan_vector_loop", "VEC_FUNCTIONS"]


def _vmin(*args):
    out = args[0]
    for a in args[1:]:
        out = np.minimum(out, a)
    return out


def _vmax(*args):
    out = args[0]
    for a in args[1:]:
        out = np.maximum(out, a)
    return out


def _f(*args):
    return sum((i + 1) * 0.61803398875 * a for i, a in enumerate(args)) + 1.0


def _g(*args):
    return sum((i + 2) * 0.41421356237 * a for i, a in enumerate(args)) + 2.0


#: Elementwise equivalents of :data:`repro.ir.expr.BUILTIN_FUNCTIONS`.
#: ``f``/``g`` are pure affine combinations of their arguments, so the
#: scalar definitions vectorize verbatim; they are restated here (rather
#: than reused) only to avoid the ``float()`` wrapper, which would
#: collapse an array argument.  A statement calling a function *not* in
#: this table is never vectorized.
VEC_FUNCTIONS = {
    "sqrt": np.sqrt,
    "abs": np.abs,
    "min": _vmin,
    "max": _vmax,
    "mod": np.mod,
    "f": _f,
    "g": _g,
}


def doall_loop_vars(program: Program, deps=None) -> frozenset[str]:
    """Loop variables that carry no dependence (DOALL under identity).

    Returns the empty set — i.e. "vectorize nothing" — whenever the
    analysis itself cannot handle the program (guards, non-affine
    subscripts, scalar statements...).  Falling back to scalar emission
    is always correct, so analysis failure is never an error here.
    """
    # Imports are local to keep `repro.backend` importable from
    # `repro.analysis.search` without a package cycle.
    from repro.analysis.parallel import parallel_loops
    from repro.dependence import analyze_dependences
    from repro.instance import Layout
    from repro.linalg import IntMatrix

    try:
        layout = Layout(program)
        if deps is None:
            deps = analyze_dependences(program, layout=layout)
        marks = parallel_loops(layout, IntMatrix.identity(layout.dimension), deps)
    except ReproError as exc:
        counter("backend.doall_analysis_failures")
        event(
            "vectorize", "reject",
            "dependence analysis cannot describe this program; "
            "every loop stays scalar",
            program=program.name, detail=str(exc),
        )
        return frozenset()
    for m in marks:
        if m.is_parallel:
            event("vectorize", "accept", "loop is DOALL (no carried dependence)",
                  loop=m.var)
        else:
            event("vectorize", "reject",
                  f"loop carries dependence(s): {', '.join(m.carried)}",
                  loop=m.var)
    return frozenset(m.var for m in marks if m.is_parallel)


@dataclass(frozen=True)
class VecPlan:
    """A vectorizable innermost loop: rewrite as one slice assignment.

    ``needs_iota`` records whether the loop variable appears in a value
    position of the RHS (not just inside subscripts), in which case the
    emitted code materializes ``arange(lo, hi+1)`` for it.

    ``flat`` marks a wavefront front plan
    (:func:`repro.backend.wavefront.plan_front_loop`): references may
    vary with the loop variable in *several* dimensions and render as
    flat strided views instead of per-dimension slices.
    """

    var: str
    needs_iota: bool
    flat: bool = False


def plan_vector_loop(
    loop: Loop,
    scope: frozenset[str] | set[str],
    arrays: dict[str, ArrayDecl],
) -> VecPlan | None:
    """Decide whether ``loop`` (already known to be DOALL) can be emitted
    as a NumPy slice assignment.  ``scope`` is the set of integer names
    bound outside the loop (params + outer loop variables).

    Returns ``None`` — meaning "emit the scalar loop" — unless every
    syntactic condition holds:

    * unit step, body = exactly one :class:`Statement`, array LHS;
    * every subscript of every array reference is affine over
      ``scope ∪ {loop.var}``;
    * each array reference varies with the loop variable in at most one
      dimension (so it maps to a single strided slice), and the LHS in
      exactly one (so each iteration writes a distinct cell);
    * value-position variables are all in scope (no scalar reads — the
      dependence analysis that produced the DOALL verdict does not track
      scalars);
    * every intrinsic call has an elementwise equivalent in
      :data:`VEC_FUNCTIONS`.
    """
    v = loop.var

    def declined(reason: str, **attrs) -> None:
        event("vectorize", "reject", reason, loop=v, **attrs)

    if loop.step != 1:
        declined(f"non-unit step {loop.step}; slice assignment needs stride 1")
        return None
    if len(loop.body) != 1 or not isinstance(loop.body[0], Statement):
        declined("body is not a single statement")
        return None
    st = loop.body[0]
    if not isinstance(st.lhs, ArrayRef):
        declined("scalar LHS; dependence analysis does not track scalars",
                 access=str(st.lhs))
        return None
    allowed = frozenset(scope) | {v}

    def ref_block_reason(ref: ArrayRef, *, is_lhs: bool) -> str | None:
        decl = arrays.get(ref.array)
        if decl is None or len(ref.subscripts) != decl.rank:
            return "undeclared array or rank mismatch"
        vdims = 0
        for sub in ref.subscripts:
            try:
                lin = as_affine(sub)
            except IRError:
                return f"subscript {sub} is not affine"
            if not (lin.variables() <= allowed):
                return f"subscript {sub} uses variables bound inside the loop"
            if lin[v] != 0:
                vdims += 1
        if is_lhs and vdims != 1:
            return (
                f"LHS varies with {v} in {vdims} dimensions; "
                "each iteration must write one distinct cell"
            )
        if not is_lhs and vdims > 1:
            return (
                f"reference varies with {v} in {vdims} dimensions; "
                "no single strided slice maps it"
            )
        return None

    why = ref_block_reason(st.lhs, is_lhs=True)
    if why is not None:
        declined(why, access=str(st.lhs))
        return None
    for ref in st.rhs.array_refs():
        why = ref_block_reason(ref, is_lhs=False)
        if why is not None:
            declined(why, access=str(ref))
            return None
    vals = value_vars(st.rhs)
    if not (vals <= allowed):
        declined(
            f"scalar read(s) {', '.join(sorted(vals - allowed))} in value position",
        )
        return None
    for fn in _calls(st.rhs):
        if fn not in VEC_FUNCTIONS:
            declined(f"intrinsic {fn}() has no elementwise equivalent", call=fn)
            return None
    event("vectorize", "accept",
          "innermost DOALL loop rewritten as one NumPy slice assignment",
          loop=v, target=str(st.lhs))
    return VecPlan(v, needs_iota=(v in vals))


def value_vars(e: Expr) -> frozenset[str]:
    """Variables appearing in *value* position — i.e. contributing to the
    computed float, not merely selecting an array cell.  Subscripts are
    excluded; intrinsic arguments are values."""
    if isinstance(e, VarRef):
        return frozenset({e.name})
    if isinstance(e, ArrayRef):
        return frozenset()
    if isinstance(e, UnaryOp):
        return value_vars(e.operand)
    if isinstance(e, BinOp):
        return value_vars(e.left) | value_vars(e.right)
    if isinstance(e, Call):
        out: frozenset[str] = frozenset()
        for a in e.args:
            out |= value_vars(a)
        return out
    return frozenset()


def _calls(e: Expr) -> set[str]:
    out: set[str] = set()

    def walk(x: Expr):
        if isinstance(x, Call):
            out.add(x.func)
            for a in x.args:
                walk(a)
        elif isinstance(x, BinOp):
            walk(x.left)
            walk(x.right)
        elif isinstance(x, UnaryOp):
            walk(x.operand)
        elif isinstance(x, ArrayRef):
            for s in x.subscripts:
                walk(s)

    walk(e)
    return out
