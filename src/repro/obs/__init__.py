"""Observability substrate (system S16): spans, counters, histograms,
decision events, sinks, reports.

Quickstart::

    from repro import obs

    mem = obs.MemorySink()
    with obs.session(mem):
        deps = analyze_dependences(program)      # instrumented entry point
    print(mem.render())                          # span tree + metrics
    mem.events_for("legality", "reject")         # decision provenance

Naming conventions (see docs/OBSERVABILITY.md):

* spans: ``<layer>.<operation>`` — ``dependence.analyze``,
  ``legality.check``, ``completion.complete``, ``codegen.generate``,
  ``interp.execute``, ``cli.report`` ...
* counters: ``<layer>.<plural-noun>`` — ``dependence.pairs_tested``,
  ``fm.eliminations``, ``codegen.ast_nodes``, ``cache.misses`` ...
* gauges: ``<layer>.<noun>`` — last value wins.
* histograms: ``<layer>.<noun>_ns`` — log2-bucketed nanosecond
  distributions, mergeable across ``--jobs`` workers.
* events: ``event(kind, verdict, reason, **attrs)`` — one per decision,
  ``kind`` is the pipeline phase, ``verdict`` in accept/reject/measure/
  info; rendered by ``repro explain``.

The default state (no session installed) is a no-op with near-zero
overhead; instrumented library code never needs to guard its calls.
"""

from repro.obs.core import (
    Histogram, ObsSession, Span, counter, current_session, gauge, histogram,
    install, session, snapshot, snapshot_histograms, span, uninstall,
)
from repro.obs.decorators import timed
from repro.obs.events import Event, event, events_for
from repro.obs.report import (
    format_ns, render_distribution_plan, render_doall_marks, render_events,
    render_full_report, render_histograms, render_metrics, render_report,
    render_span_tree,
)
from repro.obs.sinks import JsonlSink, MemorySink, NullSink, Sink

__all__ = [
    # core
    "Span", "Histogram", "ObsSession", "current_session", "install",
    "uninstall", "session", "span", "counter", "gauge", "histogram",
    "snapshot", "snapshot_histograms",
    # events
    "Event", "event", "events_for",
    # decorator
    "timed",
    # sinks
    "Sink", "NullSink", "MemorySink", "JsonlSink",
    # rendering
    "render_span_tree", "render_metrics", "render_histograms",
    "render_events", "render_report", "render_doall_marks",
    "render_distribution_plan", "render_full_report", "format_ns",
]
