"""Observability substrate (system S16): spans, counters, sinks, reports.

Quickstart::

    from repro import obs

    mem = obs.MemorySink()
    with obs.session(mem):
        deps = analyze_dependences(program)      # instrumented entry point
    print(mem.render())                          # span tree + metrics

Naming conventions (see docs/OBSERVABILITY.md):

* spans: ``<layer>.<operation>`` — ``dependence.analyze``,
  ``legality.check``, ``completion.complete``, ``codegen.generate``,
  ``interp.execute``, ``cli.report`` ...
* counters: ``<layer>.<plural-noun>`` — ``dependence.pairs_tested``,
  ``fm.eliminations``, ``codegen.ast_nodes``, ``cache.misses`` ...
* gauges: ``<layer>.<noun>`` — last value wins.

The default state (no session installed) is a no-op with near-zero
overhead; instrumented library code never needs to guard its calls.
"""

from repro.obs.core import (
    ObsSession, Span, counter, current_session, gauge, install, session,
    snapshot, span, uninstall,
)
from repro.obs.decorators import timed
from repro.obs.report import format_ns, render_metrics, render_report, render_span_tree
from repro.obs.sinks import JsonlSink, MemorySink, NullSink, Sink

__all__ = [
    # core
    "Span", "ObsSession", "current_session", "install", "uninstall", "session",
    "span", "counter", "gauge", "snapshot",
    # decorator
    "timed",
    # sinks
    "Sink", "NullSink", "MemorySink", "JsonlSink",
    # rendering
    "render_span_tree", "render_metrics", "render_report", "format_ns",
]
