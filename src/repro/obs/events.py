"""Typed decision events: the *why* behind every accept/reject.

Spans and counters (PR 1) record that decisions happened; an
:class:`Event` records the evidence behind one decision — which
dependence vector killed which candidate in the Theorem-2 projection
test, why the vectorizer declined a loop, how a tune candidate ranked.
``repro explain`` renders the stream as a per-phase narrative
(docs/OBSERVABILITY.md has the full taxonomy).

Usage, at a decision point::

    from repro.obs import event

    event("legality", "reject", "projection may be lexicographically negative",
          dep=str(d), projection=str(projected))

Like every other primitive, :func:`event` is a no-op (single global load
plus ``None`` check) when no session is installed, so decision sites
never guard their calls.  Events are appended to the session (up to
``MAX_EVENTS``, then dropped with an ``obs.events_dropped`` counter) and
streamed to every sink as they occur, children-before-parents ordering
being irrelevant here: ``seq`` numbers give the exact emission order.

Event kinds are the pipeline phase that made the decision (``legality``,
``complete``, ``vectorize``, ``wavefront``, ``tune``, ``fuzz``); verdicts are drawn
from a small closed set so renderers and tests can switch on them:

* ``accept`` — the candidate/loop/case passed this decision point;
* ``reject`` — it was ruled out, with ``reason`` naming the evidence;
* ``measure`` — a measurement result (seconds, score) was recorded;
* ``info`` — neutral provenance (a ranking, a summary, a fallback).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.obs import core

__all__ = ["Event", "event", "events_for", "VERDICTS"]

#: The closed verdict vocabulary (renderers and tests switch on these).
VERDICTS = ("accept", "reject", "measure", "info")


@dataclass(frozen=True)
class Event:
    """One recorded decision: what was decided, and on what evidence."""

    seq: int
    kind: str            # pipeline phase: legality | complete | vectorize | wavefront | tune | fuzz
    verdict: str         # accept | reject | measure | info
    reason: str          # the evidence, human-readable
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """A flat JSON-friendly record (one JSONL line in traces)."""
        return {
            "type": "event",
            "seq": self.seq,
            "kind": self.kind,
            "verdict": self.verdict,
            "reason": self.reason,
            "attrs": self.attrs,
        }

    def describe(self) -> str:
        """One narrative line: ``verdict  reason  [k=v ...]``."""
        parts = [f"{self.verdict:<8}", self.reason]
        if self.attrs:
            parts.append("[" + " ".join(f"{k}={v}" for k, v in self.attrs.items()) + "]")
        return "  ".join(p for p in parts if p)

    def __str__(self) -> str:
        return f"{self.kind}: {self.describe()}"


def event(kind: str, verdict: str, reason: str = "", /, **attrs) -> Event | None:
    """Record one decision event (no-op returning ``None`` without a
    session).  ``attrs`` carry the structured evidence — dependence
    vectors, candidate descriptions, scores — as JSON-friendly values;
    the positional-only parameters keep ``kind``/``verdict``/``reason``
    usable as attr names."""
    sess = core._session
    if sess is None:
        return None
    ev = Event(sess.new_id(), kind, verdict, reason, attrs)
    sess.emit_event(ev)
    return ev


def events_for(
    events: Iterable[Event],
    kind: str | None = None,
    verdict: str | None = None,
) -> list[Event]:
    """Filter an event stream by kind and/or verdict, preserving order."""
    return [
        ev
        for ev in events
        if (kind is None or ev.kind == kind)
        and (verdict is None or ev.verdict == verdict)
    ]
