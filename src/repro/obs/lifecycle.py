"""Sink lifecycle on abnormal exit.

A ``JsonlSink`` buffers up to :data:`~repro.obs.sinks.JsonlSink.FLUSH_EVERY`
records between flushes.  A plain SIGTERM (the default action) kills the
process without unwinding ``finally`` blocks, so a long CLI run — a
``--jobs`` fan-out parent that owns the trace sink, or the service
daemon — would leave a truncated trace artifact behind.

:func:`flush_on_signals` converts SIGTERM/SIGINT into ordinary Python
exceptions *after* flushing the installed observability session, so the
normal ``obs.uninstall()`` cleanup (which flushes and closes every sink)
still runs and trace files always end on a record boundary.  Signal
handlers can only be installed from the main thread; anywhere else the
context manager is a no-op, which keeps it safe inside worker threads
and pool workers.
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager

from repro.obs import core

__all__ = ["flush_current_session", "flush_on_signals"]


def flush_current_session() -> None:
    """Flush every sink of the installed session (best effort)."""
    sess = core.current_session()
    if sess is None:
        return
    for sink in sess.sinks:
        try:
            sink.flush()
        except Exception:  # pragma: no cover - sink already broken
            pass


@contextmanager
def flush_on_signals(signums: tuple[int, ...] = (signal.SIGTERM, signal.SIGINT)):
    """Within the block, SIGTERM/SIGINT flush the obs session and then
    raise ``SystemExit(128 + signum)`` / ``KeyboardInterrupt`` so that
    ``finally`` cleanup (``obs.uninstall()``, sink ``close()``) runs.

    Previous handlers are restored on exit.  No-op outside the main
    thread (the only place Python allows signal handlers).
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def _handler(signum, frame):
        flush_current_session()
        if signum == signal.SIGINT:
            raise KeyboardInterrupt
        raise SystemExit(128 + signum)

    previous: dict[int, object] = {}
    for signum in signums:
        try:
            previous[signum] = signal.signal(signum, _handler)
        except (ValueError, OSError):  # pragma: no cover - exotic platform
            pass
    try:
        yield
    finally:
        for signum, old in previous.items():
            try:
                signal.signal(signum, old)
            except (ValueError, OSError):  # pragma: no cover
                pass
