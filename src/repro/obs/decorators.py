"""The :func:`timed` decorator — consistent entry-point instrumentation.

Usage::

    @timed("dependence.analyze", attr_fn=lambda program, **kw: {"program": program.name})
    def analyze_dependences(program, ...): ...

or bare (span named ``<module-tail>.<function>``)::

    @timed
    def generate_code(...): ...

With no session installed the wrapper is a single global check plus the
underlying call — ``attr_fn`` is never evaluated — so decorating hot
entry points is safe.
"""

from __future__ import annotations

import functools
from typing import Any, Callable

from repro.obs import core

__all__ = ["timed"]


def timed(
    name: str | Callable | None = None,
    *,
    attr_fn: Callable[..., dict[str, Any]] | None = None,
    hist: str | None = None,
):
    """Wrap a function in a :func:`repro.obs.core.span`.

    ``name`` defaults to ``<module-tail>.<function-name>``.  ``attr_fn``,
    when given, is called with the function's arguments (only while a
    session is installed) and must return the span's attribute dict.
    ``hist`` names a histogram that additionally records every call's
    duration in nanoseconds (a span keeps only the *last* duration per
    name; the histogram keeps the distribution).
    """
    if callable(name):  # bare @timed
        return _wrap(name, None, None, None)

    def deco(fn: Callable) -> Callable:
        return _wrap(fn, name, attr_fn, hist)

    return deco


def _wrap(
    fn: Callable,
    name: str | None,
    attr_fn: Callable[..., dict] | None,
    hist: str | None,
) -> Callable:
    span_name = name or f"{fn.__module__.rsplit('.', 1)[-1]}.{fn.__name__}"

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        if core._session is None:
            return fn(*args, **kwargs)
        attrs = attr_fn(*args, **kwargs) if attr_fn is not None else {}
        with core.span(span_name, **attrs) as sp:
            try:
                return fn(*args, **kwargs)
            finally:
                if hist is not None:
                    core.histogram(hist, sp.duration_ns)

    wrapper.__obs_span_name__ = span_name
    return wrapper
