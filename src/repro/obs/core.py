"""Core of the observability substrate (system S16).

Four metric primitives, all near-zero-cost when no session is installed:

* :func:`span` — a hierarchical trace region timed with
  ``time.perf_counter_ns()``; nesting is tracked through a
  :mod:`contextvars` variable so spans compose correctly across
  generators and recursive calls.
* :func:`counter` — a monotonically accumulating named integer
  (dependence pairs tested, Fourier–Motzkin eliminations, AST nodes
  emitted, ...).
* :func:`gauge` — a last-value-wins named number (matrix dimension,
  trace length, ...).
* :func:`histogram` — a latency distribution over fixed log2 buckets
  (FM query latency, per-candidate measurement spread, codegen time),
  summarized as p50/p90/p99/max and mergeable bucket-wise across
  ``--jobs`` workers exactly like counters.

A fifth primitive, the typed decision :func:`~repro.obs.events.event`,
lives in :mod:`repro.obs.events` and records *why* the pipeline accepted
or rejected something rather than how long it took.

Events flow into the installed :class:`ObsSession`: counters, gauges and
histograms aggregate in the session itself, finished spans and decision
events are forwarded to every attached sink (see
:mod:`repro.obs.sinks`).  When no session is installed — the default —
every primitive returns immediately after a single global load and
``None`` check, so instrumented library code pays essentially nothing.

Sessions are process-global and single-threaded by design (the pipeline
itself is single-threaded); nesting :func:`install` raises
:class:`~repro.util.errors.ObsError` rather than silently stacking.
"""

from __future__ import annotations

import time
from contextvars import ContextVar
from typing import Any, Iterator, Mapping

from repro.util.errors import ObsError

__all__ = [
    "Span",
    "Histogram",
    "ObsSession",
    "current_session",
    "install",
    "uninstall",
    "session",
    "span",
    "counter",
    "gauge",
    "histogram",
    "snapshot",
    "snapshot_histograms",
]


class Span:
    """One finished (or in-flight) trace region.

    Spans form a tree through ``parent``/``children``; ``id`` numbers
    are assigned in start order within a session, so sorting by id
    recovers the chronological start order.
    """

    __slots__ = ("id", "name", "attrs", "start_ns", "end_ns", "parent", "children")

    def __init__(self, id: int, name: str, attrs: dict[str, Any]):
        self.id = id
        self.name = name
        self.attrs = attrs
        self.start_ns = 0
        self.end_ns: int | None = None
        self.parent: Span | None = None
        self.children: list[Span] = []

    @property
    def duration_ns(self) -> int:
        end = self.end_ns if self.end_ns is not None else time.perf_counter_ns()
        return end - self.start_ns

    @property
    def parent_id(self) -> int | None:
        return self.parent.id if self.parent is not None else None

    def walk(self, depth: int = 0) -> Iterator[tuple["Span", int]]:
        """Yield ``(span, depth)`` pairs, pre-order."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)

    def find(self, name: str) -> list["Span"]:
        """All spans named ``name`` in this subtree, pre-order."""
        return [s for s, _ in self.walk() if s.name == name]

    def to_dict(self) -> dict[str, Any]:
        """A flat JSON-friendly record (children referenced by id)."""
        return {
            "type": "span",
            "id": self.id,
            "parent": self.parent_id,
            "name": self.name,
            "start_ns": self.start_ns,
            "dur_ns": self.duration_ns,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:
        return f"Span({self.name!r}, id={self.id}, dur={self.duration_ns}ns)"


class Histogram:
    """A latency distribution over fixed log2 buckets.

    Bucket ``i`` holds samples whose integer value has bit length ``i``,
    i.e. bucket 0 is exactly 0, bucket ``i >= 1`` covers
    ``[2**(i-1), 2**i - 1]``.  The bucket layout is the same for every
    histogram in every process, so worker histograms merge by bucket-wise
    summation (see :meth:`merge`) without any rebinning — the property
    ``--jobs`` fan-out relies on for serial == parallel metrics.

    Percentiles are bucket upper bounds clamped to the exact tracked
    ``max``: cheap, deterministic, and within 2x of the true value by
    construction of the log2 buckets.
    """

    __slots__ = ("buckets", "count", "total", "max")

    def __init__(self):
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.max = 0

    def add(self, value) -> None:
        v = int(value)
        if v < 0:
            v = 0
        idx = v.bit_length()
        self.buckets[idx] = self.buckets.get(idx, 0) + 1
        self.count += 1
        self.total += v
        if v > self.max:
            self.max = v

    def percentile(self, q: float) -> int:
        """The smallest bucket upper bound covering fraction ``q`` of the
        samples (clamped to the exact maximum); 0 for an empty histogram."""
        if self.count == 0:
            return 0
        rank = max(1, -(-int(q * self.count * 1000) // 1000))  # ceil without float drift
        cum = 0
        for idx in sorted(self.buckets):
            cum += self.buckets[idx]
            if cum >= rank:
                upper = 0 if idx == 0 else (1 << idx) - 1
                return min(upper, self.max)
        return self.max

    @property
    def p50(self) -> int:
        return self.percentile(0.50)

    @property
    def p90(self) -> int:
        return self.percentile(0.90)

    @property
    def p99(self) -> int:
        return self.percentile(0.99)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram | Mapping[str, Any]") -> None:
        """Bucket-wise sum of another histogram (or its ``to_dict`` form)
        into this one — the worker-to-parent merge operation."""
        if isinstance(other, Histogram):
            buckets, count, total, mx = other.buckets, other.count, other.total, other.max
        else:
            buckets = {int(k): int(v) for k, v in other.get("buckets", {}).items()}
            count = int(other.get("count", 0))
            total = int(other.get("total", 0))
            mx = int(other.get("max", 0))
        for idx, n in buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + n
        self.count += count
        self.total += total
        if mx > self.max:
            self.max = mx

    def copy(self) -> "Histogram":
        out = Histogram()
        out.merge(self)
        return out

    def to_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "max": self.max,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Histogram":
        out = cls()
        out.merge(payload)
        return out

    def __eq__(self, other) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return (
            self.buckets == other.buckets
            and self.count == other.count
            and self.total == other.total
            and self.max == other.max
        )

    def __repr__(self) -> str:
        return (
            f"Histogram(count={self.count}, p50={self.p50}, "
            f"p99={self.p99}, max={self.max})"
        )


#: Hard cap on retained decision events per session; beyond it events are
#: dropped (still streamed to sinks) and ``obs.events_dropped`` counts them.
MAX_EVENTS = 100_000


class ObsSession:
    """The active collection context: counters, gauges, histograms,
    decision events and sinks."""

    __slots__ = ("sinks", "counters", "gauges", "histograms", "events", "_next_id")

    def __init__(self, sinks: tuple = ()):
        self.sinks = tuple(sinks)
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        self.events: list = []
        self._next_id = 0

    def new_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def emit_span(self, sp: Span) -> None:
        for sink in self.sinks:
            sink.span(sp)

    def emit_event(self, ev) -> None:
        if len(self.events) < MAX_EVENTS:
            self.events.append(ev)
        else:
            c = self.counters
            c["obs.events_dropped"] = c.get("obs.events_dropped", 0) + 1
        for sink in self.sinks:
            sink.event(ev)

    def flush(self) -> None:
        """Push aggregated metrics to every sink and close them."""
        for sink in self.sinks:
            sink.metrics(dict(self.counters), dict(self.gauges))
            sink.histograms(dict(self.histograms))
        for sink in self.sinks:
            sink.close()


_session: ObsSession | None = None
_current: ContextVar[Span | None] = ContextVar("repro_obs_current_span", default=None)


def current_session() -> ObsSession | None:
    """The installed session, or None when observability is off."""
    return _session


def install(*sinks) -> ObsSession:
    """Install a fresh session routing spans to ``sinks``.

    Counters and gauges aggregate in the returned session even with no
    sinks attached.  Raises :class:`ObsError` if a session is already
    installed (sessions do not nest).
    """
    global _session
    if _session is not None:
        raise ObsError("an observability session is already installed")
    _session = ObsSession(sinks)
    return _session


def uninstall() -> ObsSession:
    """Flush sinks, close them, and remove the session."""
    global _session
    if _session is None:
        raise ObsError("no observability session is installed")
    out = _session
    _session = None
    out.flush()
    return out


class session:
    """Context manager form: ``with obs.session(MemorySink()) as s: ...``."""

    def __init__(self, *sinks):
        self._sinks = sinks

    def __enter__(self) -> ObsSession:
        return install(*self._sinks)

    def __exit__(self, exc_type, exc, tb) -> bool:
        uninstall()
        return False


class _NoopSpanCtx:
    """Shared, stateless stand-in returned when no session is installed."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP = _NoopSpanCtx()


class _SpanCtx:
    __slots__ = ("_session", "_span", "_token")

    def __init__(self, sess: ObsSession, name: str, attrs: dict[str, Any]):
        self._session = sess
        self._span = Span(sess.new_id(), name, attrs)

    def __enter__(self) -> Span:
        sp = self._span
        parent = _current.get()
        if parent is not None:
            sp.parent = parent
            parent.children.append(sp)
        self._token = _current.set(sp)
        sp.start_ns = time.perf_counter_ns()
        return sp

    def __exit__(self, exc_type, exc, tb) -> bool:
        sp = self._span
        sp.end_ns = time.perf_counter_ns()
        _current.reset(self._token)
        if exc_type is not None:
            sp.attrs["error"] = exc_type.__name__
        self._session.emit_span(sp)
        return False


def span(name: str, **attrs):
    """Open a trace span: ``with span("dependence.analyze", program=p.name):``.

    Returns a context manager; with no session installed it is a shared
    no-op object and nothing is recorded.
    """
    sess = _session
    if sess is None:
        return _NOOP
    return _SpanCtx(sess, name, attrs)


def counter(name: str, n: int = 1) -> None:
    """Add ``n`` to the named counter (no-op without a session)."""
    sess = _session
    if sess is not None:
        c = sess.counters
        c[name] = c.get(name, 0) + n


def gauge(name: str, value) -> None:
    """Record a last-value-wins measurement (no-op without a session)."""
    sess = _session
    if sess is not None:
        sess.gauges[name] = value


def histogram(name: str, value) -> None:
    """Add one sample (by convention: nanoseconds) to the named
    histogram (no-op without a session)."""
    sess = _session
    if sess is not None:
        h = sess.histograms.get(name)
        if h is None:
            h = sess.histograms[name] = Histogram()
        h.add(value)


def snapshot() -> tuple[Mapping[str, int], Mapping[str, float]]:
    """Copies of the current counters and gauges (empty when off)."""
    sess = _session
    if sess is None:
        return {}, {}
    return dict(sess.counters), dict(sess.gauges)


def snapshot_histograms() -> dict[str, Histogram]:
    """Independent copies of the current histograms (empty when off)."""
    sess = _session
    if sess is None:
        return {}
    return {name: h.copy() for name, h in sess.histograms.items()}
