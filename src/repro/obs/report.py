"""Human-readable rendering of span trees, metrics and decision events.

Pure formatting plus the shared section renderers behind the CLI's
``--profile`` flag, the ``report`` command and the ``explain`` command.
The full-report assembly (:func:`render_full_report`) takes already
computed analysis artifacts — it never runs the pipeline itself — so
``report`` and ``explain`` share one renderer and the CLI stays thin.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.obs.core import Histogram, Span

__all__ = [
    "format_ns",
    "render_span_tree",
    "render_metrics",
    "render_histograms",
    "render_events",
    "render_report",
    "render_doall_marks",
    "render_distribution_plan",
    "render_full_report",
]


def format_ns(ns: int) -> str:
    """Adaptive duration formatting: 873 ns, 12.3 us, 4.56 ms, 1.23 s."""
    if ns < 1_000:
        return f"{ns} ns"
    if ns < 1_000_000:
        return f"{ns / 1_000:.1f} us"
    if ns < 1_000_000_000:
        return f"{ns / 1_000_000:.2f} ms"
    return f"{ns / 1_000_000_000:.2f} s"


def _attr_str(attrs: Mapping[str, Any]) -> str:
    return " ".join(f"{k}={v}" for k, v in attrs.items())


def _table(rows: list[tuple[str, ...]]) -> str:
    """Align columns: first column left, the rest right."""
    widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
    out = []
    for r in rows:
        cells = [f"{r[0]:<{widths[0]}}"]
        cells += [f"{c:>{w}}" for c, w in zip(r[1:], widths[1:])]
        out.append("  ".join(cells).rstrip())
    return "\n".join(out)


def render_span_tree(roots: Iterable[Span]) -> str:
    """Indented tree, one span per line, durations right-aligned."""
    rows: list[tuple[str, str]] = []
    for root in roots:
        for sp, depth in root.walk():
            label = "  " * depth + sp.name
            attrs = _attr_str(sp.attrs)
            if attrs:
                label += f"  [{attrs}]"
            rows.append((label, format_ns(sp.duration_ns)))
    if not rows:
        return "(no spans recorded)"
    width = max(len(label) for label, _ in rows)
    dwidth = max(len(d) for _, d in rows)
    return "\n".join(f"{label:<{width}}  {d:>{dwidth}}" for label, d in rows)


def render_metrics(
    counters: Mapping[str, int],
    gauges: Mapping[str, Any] | None = None,
    hists: Mapping[str, Histogram] | None = None,
) -> str:
    """Aligned name/value table, counters then gauges, each sorted;
    followed by the histogram table when any histograms were recorded."""
    gauges = gauges or {}
    items: list[tuple[str, str]] = [(k, str(counters[k])) for k in sorted(counters)]
    items += [(k, str(gauges[k])) for k in sorted(gauges)]
    if not items and not hists:
        return "(no metrics recorded)"
    parts = []
    if items:
        width = max(len(k) for k, _ in items)
        vwidth = max(len(v) for _, v in items)
        parts.append("\n".join(f"{k:<{width}}  {v:>{vwidth}}" for k, v in items))
    if hists:
        parts.append(render_histograms(hists))
    return "\n".join(parts)


def render_histograms(hists: Mapping[str, Histogram]) -> str:
    """The latency-distribution table: count / p50 / p90 / p99 / max."""
    if not hists:
        return "(no histograms recorded)"
    rows: list[tuple[str, ...]] = [("histogram", "count", "p50", "p90", "p99", "max")]
    for name in sorted(hists):
        h = hists[name]
        rows.append(
            (
                name,
                str(h.count),
                format_ns(h.p50),
                format_ns(h.p90),
                format_ns(h.p99),
                format_ns(h.max),
            )
        )
    return _table(rows)


def render_events(events: Iterable, kind: str | None = None) -> str:
    """The decision-event narrative: one line per event, grouped by kind.

    With ``kind`` given, only that phase's events render (ungrouped);
    otherwise each phase gets a small headed block in emission order.
    """
    events = list(events)
    if kind is not None:
        events = [ev for ev in events if ev.kind == kind]
        if not events:
            return f"(no {kind} events recorded)"
        return "\n".join("  " + ev.describe() for ev in events)
    if not events:
        return "(no events recorded)"
    order: list[str] = []
    by_kind: dict[str, list] = {}
    for ev in events:
        if ev.kind not in by_kind:
            order.append(ev.kind)
            by_kind[ev.kind] = []
        by_kind[ev.kind].append(ev)
    blocks = []
    for k in order:
        lines = [f"{k}:"] + ["  " + ev.describe() for ev in by_kind[k]]
        blocks.append("\n".join(lines))
    return "\n".join(blocks)


def render_report(
    roots: Iterable[Span],
    counters: Mapping[str, int],
    gauges: Mapping[str, Any] | None = None,
    hists: Mapping[str, Histogram] | None = None,
) -> str:
    """The full ``--profile`` report: span tree, then metrics table."""
    return (
        "--- span tree (wall time) ---\n"
        + render_span_tree(roots)
        + "\n--- metrics ---\n"
        + render_metrics(counters, gauges, hists)
    )


# -- analysis-report sections (shared by `report` and `explain`) ------------


def render_doall_marks(marks) -> str:
    """Per-loop DOALL verdict lines (``repro parallel`` / report section)."""
    lines = []
    for m in marks:
        tag = "DOALL" if m.is_parallel else f"carries {', '.join(m.carried)}"
        lines.append(f"  loop {m.var}: {tag}")
    return "\n".join(lines)


def render_distribution_plan(layout, plan: Mapping) -> str:
    """The SCC-groups-per-loop section of the analysis report."""
    if not plan:
        return "  (no multi-statement loops)"
    lines = []
    for path, groups in sorted(plan.items()):
        node = layout.node_at(path)
        verdict = "splittable" if len(groups) > 1 else "unsplittable"
        lines.append(f"  loop {node.var}@{path}: {groups} ({verdict})")
    return "\n".join(lines)


def render_full_report(
    *,
    program_text: str,
    layout_text: str,
    deps_summary: str,
    marks,
    layout,
    plan: Mapping,
    params: Mapping[str, int],
    backend: str | None,
    search_results: list,
    search_error: str | None,
    counters: Mapping[str, int] | None = None,
    gauges: Mapping[str, Any] | None = None,
    hists: Mapping[str, Histogram] | None = None,
) -> str:
    """Assemble the ``repro report`` body from computed artifacts.

    Behavior-preserving extraction of what accreted in ``cli.py``: the
    section order, headers and line formats match the original command
    output exactly.
    """
    out = [
        "=== program ===",
        program_text,
        "\n=== instance-vector layout ===",
        layout_text,
        "\n=== dependences ===",
        deps_summary or "(none)",
        "\n=== DOALL verdicts ===",
        render_doall_marks(marks),
        "\n=== distribution plan (SCC groups per loop) ===",
        render_distribution_plan(layout, plan),
    ]
    ranking = f", ranked by {backend} wall clock" if backend else ""
    out.append(f"\n=== loop-order search (params {dict(params)}{ranking}) ===")
    if search_error is not None:
        out.append(f"  search unavailable: {search_error}")
    out.extend(f"  {r}" for r in search_results)
    if counters is not None:
        out.append("\n=== observability metrics ===")
        out.append(render_metrics(counters, gauges or {}, hists))
    return "\n".join(out)
