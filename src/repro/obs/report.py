"""Human-readable rendering of span trees and metrics tables.

Pure formatting: takes the structures a :class:`~repro.obs.sinks.MemorySink`
(or the live session) holds and returns strings.  Used by the CLI's
``--profile`` flag and the ``report`` command's metrics section.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.obs.core import Span

__all__ = ["format_ns", "render_span_tree", "render_metrics", "render_report"]


def format_ns(ns: int) -> str:
    """Adaptive duration formatting: 873 ns, 12.3 us, 4.56 ms, 1.23 s."""
    if ns < 1_000:
        return f"{ns} ns"
    if ns < 1_000_000:
        return f"{ns / 1_000:.1f} us"
    if ns < 1_000_000_000:
        return f"{ns / 1_000_000:.2f} ms"
    return f"{ns / 1_000_000_000:.2f} s"


def _attr_str(attrs: Mapping[str, Any]) -> str:
    return " ".join(f"{k}={v}" for k, v in attrs.items())


def render_span_tree(roots: Iterable[Span]) -> str:
    """Indented tree, one span per line, durations right-aligned."""
    rows: list[tuple[str, str]] = []
    for root in roots:
        for sp, depth in root.walk():
            label = "  " * depth + sp.name
            attrs = _attr_str(sp.attrs)
            if attrs:
                label += f"  [{attrs}]"
            rows.append((label, format_ns(sp.duration_ns)))
    if not rows:
        return "(no spans recorded)"
    width = max(len(label) for label, _ in rows)
    dwidth = max(len(d) for _, d in rows)
    return "\n".join(f"{label:<{width}}  {d:>{dwidth}}" for label, d in rows)


def render_metrics(
    counters: Mapping[str, int], gauges: Mapping[str, Any] | None = None
) -> str:
    """Aligned name/value table, counters then gauges, each sorted."""
    gauges = gauges or {}
    items: list[tuple[str, str]] = [(k, str(counters[k])) for k in sorted(counters)]
    items += [(k, str(gauges[k])) for k in sorted(gauges)]
    if not items:
        return "(no metrics recorded)"
    width = max(len(k) for k, _ in items)
    vwidth = max(len(v) for _, v in items)
    return "\n".join(f"{k:<{width}}  {v:>{vwidth}}" for k, v in items)


def render_report(
    roots: Iterable[Span],
    counters: Mapping[str, int],
    gauges: Mapping[str, Any] | None = None,
) -> str:
    """The full ``--profile`` report: span tree, then metrics table."""
    return (
        "--- span tree (wall time) ---\n"
        + render_span_tree(roots)
        + "\n--- metrics ---\n"
        + render_metrics(counters, gauges)
    )
