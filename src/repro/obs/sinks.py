"""Pluggable sinks for the observability session.

A sink receives every *finished* span (children before parents, since
inner regions exit first) plus one final ``metrics`` call with the
session's aggregated counters and gauges when the session is
uninstalled.  The base :class:`Sink` ignores everything, so subclasses
override only what they need.

* :class:`NullSink` — explicit do-nothing sink (the implicit default is
  no session at all, which is cheaper still).
* :class:`MemorySink` — in-memory collector keeping completed root span
  trees and the final metrics; what the CLI's ``--profile`` report and
  the tests read.
* :class:`JsonlSink` — streams one JSON object per line: a ``span``
  record per finished span, then ``counter``/``gauge`` records at
  flush.  Every line is independently ``json.loads``-able.
"""

from __future__ import annotations

import json
from typing import Any, IO, Mapping

from repro.obs.core import Span
from repro.util.errors import ObsError

__all__ = ["Sink", "NullSink", "MemorySink", "JsonlSink"]


class Sink:
    """Base sink: ignores every event."""

    def span(self, sp: Span) -> None:  # noqa: ARG002 - interface
        pass

    def metrics(self, counters: Mapping[str, int], gauges: Mapping[str, Any]) -> None:
        pass

    def close(self) -> None:
        pass


class NullSink(Sink):
    """Explicitly discard everything (for overhead tests and baselines)."""


class MemorySink(Sink):
    """Collect finished span trees and final metrics in memory."""

    def __init__(self):
        self.roots: list[Span] = []
        self.spans: list[Span] = []
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, Any] = {}

    def span(self, sp: Span) -> None:
        self.spans.append(sp)
        if sp.parent is None:
            self.roots.append(sp)

    def metrics(self, counters: Mapping[str, int], gauges: Mapping[str, Any]) -> None:
        self.counters.update(counters)
        self.gauges.update(gauges)

    def find(self, name: str) -> list[Span]:
        """All collected spans with this name, in completion order."""
        return [s for s in self.spans if s.name == name]

    def render(self) -> str:
        """Human-readable span-tree + metrics report."""
        from repro.obs.report import render_report

        return render_report(self.roots, self.counters, self.gauges)


class JsonlSink(Sink):
    """Write each event as one JSON line to a path or file object."""

    def __init__(self, target: str | IO[str]):
        if isinstance(target, str):
            try:
                self._fh: IO[str] = open(target, "w")
            except OSError as exc:
                raise ObsError(f"cannot open trace file {target!r}: {exc}") from exc
            self._owns = True
        else:
            self._fh = target
            self._owns = False

    def span(self, sp: Span) -> None:
        self._fh.write(json.dumps(sp.to_dict(), sort_keys=True, default=str) + "\n")

    def metrics(self, counters: Mapping[str, int], gauges: Mapping[str, Any]) -> None:
        for name in sorted(counters):
            self._fh.write(
                json.dumps({"type": "counter", "name": name, "value": counters[name]})
                + "\n"
            )
        for name in sorted(gauges):
            self._fh.write(
                json.dumps(
                    {"type": "gauge", "name": name, "value": gauges[name]}, default=str
                )
                + "\n"
            )

    def close(self) -> None:
        self._fh.flush()
        if self._owns:
            self._fh.close()
