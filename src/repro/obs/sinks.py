"""Pluggable sinks for the observability session.

A sink receives every *finished* span (children before parents, since
inner regions exit first) and every decision event as it is emitted,
plus one final ``metrics`` + ``histograms`` call pair with the session's
aggregated counters, gauges and histograms when the session is
uninstalled.  The base :class:`Sink` ignores everything, so subclasses
override only what they need.

* :class:`NullSink` — explicit do-nothing sink (the implicit default is
  no session at all, which is cheaper still).
* :class:`MemorySink` — in-memory collector keeping completed root span
  trees, the event stream and the final metrics; what the CLI's
  ``--profile`` report, ``repro explain`` and the tests read.
* :class:`JsonlSink` — streams one JSON object per line: a ``span`` or
  ``event`` record as each occurs, then ``counter``/``gauge``/
  ``histogram`` records at flush.  Every line is independently
  ``json.loads``-able.  The sink flushes the underlying file every
  ``FLUSH_EVERY`` records, so a killed run (nightly fuzz timeouts, CI
  job cancellation) truncates at most the last handful of lines rather
  than the whole buffered trace; ``close()`` is idempotent and always
  flushes first.
"""

from __future__ import annotations

import json
from typing import Any, IO, Mapping

from repro.obs.core import Histogram, Span
from repro.util.errors import ObsError

__all__ = ["Sink", "NullSink", "MemorySink", "JsonlSink"]


class Sink:
    """Base sink: ignores every event."""

    def span(self, sp: Span) -> None:  # noqa: ARG002 - interface
        pass

    def event(self, ev) -> None:  # noqa: ARG002 - interface
        pass

    def metrics(self, counters: Mapping[str, int], gauges: Mapping[str, Any]) -> None:
        pass

    def histograms(self, hists: Mapping[str, Histogram]) -> None:
        pass

    def close(self) -> None:
        pass


class NullSink(Sink):
    """Explicitly discard everything (for overhead tests and baselines)."""


class MemorySink(Sink):
    """Collect finished span trees, events and final metrics in memory."""

    def __init__(self):
        self.roots: list[Span] = []
        self.spans: list[Span] = []
        self.events: list = []
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, Any] = {}
        self.hists: dict[str, Histogram] = {}

    def span(self, sp: Span) -> None:
        self.spans.append(sp)
        if sp.parent is None:
            self.roots.append(sp)

    def event(self, ev) -> None:
        self.events.append(ev)

    def metrics(self, counters: Mapping[str, int], gauges: Mapping[str, Any]) -> None:
        self.counters.update(counters)
        self.gauges.update(gauges)

    def histograms(self, hists: Mapping[str, Histogram]) -> None:
        self.hists.update(hists)

    def find(self, name: str) -> list[Span]:
        """All collected spans with this name, in completion order."""
        return [s for s in self.spans if s.name == name]

    def events_for(self, kind: str | None = None, verdict: str | None = None) -> list:
        """The collected events filtered by kind/verdict, in order."""
        from repro.obs.events import events_for

        return events_for(self.events, kind, verdict)

    def render(self) -> str:
        """Human-readable span-tree + metrics report."""
        from repro.obs.report import render_report

        return render_report(self.roots, self.counters, self.gauges, self.hists)


#: Flush the JSONL file every this many records so killed runs lose at
#: most a tail, never the whole OS-buffered trace.
FLUSH_EVERY = 32


class JsonlSink(Sink):
    """Write each event as one JSON line to a path or file object."""

    def __init__(self, target: str | IO[str], *, flush_every: int = FLUSH_EVERY):
        if isinstance(target, str):
            try:
                self._fh: IO[str] = open(target, "w")
            except OSError as exc:
                raise ObsError(f"cannot open trace file {target!r}: {exc}") from exc
            self._owns = True
        else:
            self._fh = target
            self._owns = False
        self._flush_every = max(1, int(flush_every))
        self._pending = 0
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def _write(self, payload: dict) -> None:
        if self._closed:
            return
        self._fh.write(json.dumps(payload, sort_keys=True, default=str) + "\n")
        self._pending += 1
        if self._pending >= self._flush_every:
            self._fh.flush()
            self._pending = 0

    def span(self, sp: Span) -> None:
        self._write(sp.to_dict())

    def event(self, ev) -> None:
        self._write(ev.to_dict())

    def metrics(self, counters: Mapping[str, int], gauges: Mapping[str, Any]) -> None:
        for name in sorted(counters):
            self._write({"type": "counter", "name": name, "value": counters[name]})
        for name in sorted(gauges):
            self._write({"type": "gauge", "name": name, "value": gauges[name]})

    def histograms(self, hists: Mapping[str, Histogram]) -> None:
        for name in sorted(hists):
            self._write({"type": "histogram", "name": name, **hists[name].to_dict()})

    def close(self) -> None:
        """Flush and (when the sink opened the file) close it.  Safe to
        call more than once; writes after close are discarded."""
        if self._closed:
            return
        self._closed = True
        self._fh.flush()
        if self._owns:
            self._fh.close()
