"""Fuzz cases and the single-case differential pipeline driver.

A :class:`FuzzCase` is a fully self-contained, serializable unit of
work: a program (as source text — exactly what the corpus stores, so a
fuzzed case and a replayed case take the identical path), a candidate
transformation (a symbolic spec string or a completion request), the
execution parameters, and an optional ``claim_legal`` flag that forces
the case through code generation *as if* the legality test had accepted
it — the injection hook the CLI's ``--inject-illegal`` and the harness
tests use to prove divergences are detected, shrunk and serialized
end-to-end.

:func:`run_case` runs one case through the full pipeline and returns a
:class:`CaseResult` whose ``verdict`` classifies the outcome; the two
``divergence-*`` verdicts are contract violations.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.codegen import generate_code
from repro.completion import complete_transformation
from repro.dependence import analyze_dependences
from repro.instance import Layout
from repro.interp import check_equivalence
from repro.ir import parse_program
from repro.legality import check_legality
from repro.obs import counter, span
from repro.transform.spec import parse_schedule
from repro.util.errors import CompletionError, ReproError

__all__ = [
    "FuzzCase", "CaseResult", "run_case", "known_illegal_case",
    "known_symbolic_case", "known_unsound_case",
    "DIVERGENCE_VERDICTS", "PASS_VERDICTS",
]

#: Contract violations: the pipeline produced wrong code for a
#: transformation it accepted (or was told to accept), crashed, an
#: execution backend disagreed with the reference interpreter, the
#: warm service daemon's output differed from the cold local pipeline,
#: or a symbolic certificate was contradicted by concrete execution.
DIVERGENCE_VERDICTS = (
    "divergence-oracle", "divergence-crash", "divergence-backend",
    "divergence-service", "divergence-symbolic",
)

#: Outcomes that uphold the two-sided contract.
PASS_VERDICTS = (
    "pass-legal",            # legal and all three oracles agree
    "illegal-confirmed",     # rejected, forced anyway, oracles flagged it
    "illegal-rejected",      # rejected and not even forceable
    "illegal-unconfirmed",   # rejected but equivalent on this input (precision gap)
    "spec-rejected",         # spec not expressible on this layout
    "completion-rejected",   # no legal completion in the candidate fragment
    "codegen-skipped",       # legal, but codegen hit a documented limit
    "symbolic-legal",        # Thm-2-rejected, certified, output-equivalent
    "unsound-caught",        # fabricated certificate flagged by the oracles
)


@dataclass(frozen=True)
class FuzzCase:
    """One differential-testing work unit (immutable, serializable)."""

    program_src: str
    kind: str = "spec"                  # "spec" | "complete"
    spec: str = ""                      # for kind == "spec"
    lead: str = ""                      # for kind == "complete": lead loop var
    params: tuple[tuple[str, int], ...] = (("N", 4),)
    claim_legal: bool = False           # force codegen as if legal (injection)
    note: str = ""                      # free-form provenance
    backends: tuple[str, ...] = ()      # cross-backend differential oracle
    service: str = ""                   # warm-daemon differential oracle (URL)
    symbolic: bool = False              # consult fractal oracle on rejection
    unsound: bool = False               # fabricate the certificate (self-test)

    def params_dict(self) -> dict[str, int]:
        return dict(self.params)

    def describe(self) -> str:
        t = self.spec if self.kind == "spec" else f"complete(lead={self.lead})"
        p = ", ".join(f"{k}={v}" for k, v in self.params)
        claimed = " [claimed legal]" if self.claim_legal else ""
        vs = f" [vs {', '.join(self.backends)}]" if self.backends else ""
        svc = " [vs service]" if self.service else ""
        sym = " [unsound]" if self.unsound else (
            " [symbolic]" if self.symbolic else "")
        return f"{t} @ {{{p}}}{claimed}{vs}{svc}{sym}"

    def with_(self, **changes) -> "FuzzCase":
        return replace(self, **changes)


@dataclass
class CaseResult:
    """Outcome of :func:`run_case` on one case."""

    case: FuzzCase
    verdict: str
    detail: str = ""
    legal: bool | None = None
    oracle: dict | None = field(default=None, repr=False)

    @property
    def divergent(self) -> bool:
        return self.verdict in DIVERGENCE_VERDICTS


def known_illegal_case(n: int = 6) -> FuzzCase:
    """The canonical injected case: a loop-carried flow dependence whose
    reversal the legality test rejects — claimed legal so the oracles,
    not the symbolic test, must catch the miscompile."""
    src = (
        "param N\n"
        "real A(-64:N + 64)\n"
        "do I = 1, N\n"
        "  S1: A(I) = (A(I + -1) + f(I))\n"
        "enddo"
    )
    return FuzzCase(
        program_src=src,
        kind="spec",
        spec="reverse(I)",
        params=(("N", n),),
        claim_legal=True,
        note="injected known-illegal reversal of a flow dependence",
    )


def known_symbolic_case(n: int = 5, m: int = 4) -> FuzzCase:
    """The canonical symbolic rescue: reversing syrk's reduction loop.
    Theorem 2 must reject it (the accumulation's self-dependence flips),
    the fractal oracle certifies it (pure reassociation), and the forced
    run must be output-equivalent — verdict ``symbolic-legal``."""
    src = (
        "param N, M\n"
        "real C(N,N), A(N,M)\n"
        "do I = 1..N\n"
        "  do J = 1..I\n"
        "    do K = 1..M\n"
        "      S1: C(I,J) = C(I,J) + A(I,K)*A(J,K)\n"
        "    enddo\n"
        "  enddo\n"
        "enddo"
    )
    return FuzzCase(
        program_src=src,
        kind="spec",
        spec="reverse(K)",
        params=(("M", m), ("N", n)),
        symbolic=True,
        note="syrk reduction reversal: Theorem-2-illegal, symbolically legal",
    )


def known_unsound_case(n: int = 6) -> FuzzCase:
    """Forced-unsound self-test: the known-illegal reversal, but with a
    *fabricated* symbolic certificate injected instead of a real proof.
    The differential oracles must contradict the lying certificate —
    verdict ``unsound-caught`` — demonstrating the fuzzer would detect a
    buggy symbolic oracle."""
    return known_illegal_case(n).with_(
        claim_legal=False,
        symbolic=True,
        unsound=True,
        note="injected fabricated symbolic certificate (forced-unsound self-test)",
    )


def run_case(case: FuzzCase, *, strict_illegal: bool = False) -> CaseResult:
    """Run one case end-to-end and classify the outcome.

    ``strict_illegal`` promotes the precision-gap outcome (legality
    rejected a transformation that is equivalent on this input) from a
    monitored counter to a divergence.
    """
    counter("fuzz.runs")
    try:
        with span("fuzz.case", kind=case.kind):
            return _run_case_inner(case, strict_illegal)
    except ReproError as exc:
        counter("fuzz.divergences")
        return CaseResult(case, "divergence-crash", f"{type(exc).__name__}: {exc}")
    except Exception as exc:  # noqa: BLE001 - the fuzzer's whole job
        counter("fuzz.divergences")
        return CaseResult(case, "divergence-crash", f"{type(exc).__name__}: {exc}")


def _run_case_inner(case: FuzzCase, strict_illegal: bool) -> CaseResult:
    program = parse_program(case.program_src, "fuzz_case")

    # -- cross-backend oracle on the source program --------------------
    if case.backends:
        detail = _backend_divergence(program, case.params_dict(), case.backends)
        if detail is not None:
            counter("fuzz.divergences")
            return CaseResult(case, "divergence-backend", f"source program: {detail}")

    # -- warm-service oracle on the source program ---------------------
    if case.service:
        detail = _service_divergence(program, case.params_dict(), case.service)
        if detail is not None:
            counter("fuzz.divergences")
            return CaseResult(case, "divergence-service", detail)

    layout = Layout(program)
    deps = analyze_dependences(program, layout=layout)

    # -- build the candidate transformation ----------------------------
    # Spec cases go through parse_schedule so structural tile/fuse
    # prefixes rewrite the program first; the matrix is then over the
    # rewritten program, and the equivalence oracles compare against the
    # *original* through the schedule's instance-space pullback.
    schedule = None
    work_program, work_layout, work_deps = program, layout, deps
    if case.kind == "spec":
        try:
            schedule = parse_schedule(program, case.spec)
        except ReproError as exc:
            counter("fuzz.spec_rejections")
            return CaseResult(case, "spec-rejected", str(exc))
        work_program = schedule.program
        work_layout = schedule.layout
        work_deps = schedule.deps
        matrix = schedule.matrix
    elif case.kind == "complete":
        try:
            pos = layout.loop_index_by_var(case.lead)
        except ReproError as exc:
            counter("fuzz.spec_rejections")
            return CaseResult(case, "spec-rejected", str(exc))
        partial = [[1 if j == pos else 0 for j in range(layout.dimension)]]
        try:
            matrix = complete_transformation(
                program, partial, deps, layout=layout
            ).matrix
        except CompletionError as exc:
            counter("fuzz.completion_rejections")
            return CaseResult(case, "completion-rejected", str(exc))
    else:
        raise ReproError(f"unknown fuzz case kind {case.kind!r}")

    report = check_legality(work_layout, matrix, work_deps)
    structural_legal = schedule.structural_legal if schedule is not None else True
    legal = report.legal and structural_legal
    counter("fuzz.legal" if legal else "fuzz.illegal")

    def oracle_env_map(g):
        em = g.env_map()
        if schedule is not None and schedule.is_structural:
            return lambda lbl, env: schedule.pullback(lbl, em(lbl, env))
        return em

    # -- side 1: accepted (or claimed) transformations must be equivalent
    if legal or case.claim_legal:
        try:
            g = generate_code(work_program, matrix, work_deps, require_legal=legal)
        except ReproError as exc:
            if legal:
                # documented limits (e.g. rank-deficient augmentation edge
                # cases) — not a divergence, but counted and monitored
                counter("fuzz.codegen_skips")
                return CaseResult(case, "codegen-skipped", str(exc), legal=True)
            return CaseResult(case, "illegal-rejected", str(exc), legal=False)
        rep = check_equivalence(
            program, g.program, case.params_dict(), env_map=oracle_env_map(g)
        )
        if rep["ok"] and case.backends:
            # guard-heavy generated code is the interesting lowering input
            detail = _backend_divergence(g.program, case.params_dict(), case.backends)
            if detail is not None:
                counter("fuzz.divergences")
                return CaseResult(
                    case, "divergence-backend", f"generated program: {detail}",
                    legal=legal, oracle=rep,
                )
        if rep["ok"]:
            if legal:
                return CaseResult(case, "pass-legal", legal=True, oracle=rep)
            counter("fuzz.illegal_unconfirmed")
            return CaseResult(
                case, "illegal-unconfirmed",
                "claimed-legal case is equivalent on this input",
                legal=False, oracle=rep,
            )
        counter("fuzz.divergences")
        return CaseResult(
            case, "divergence-oracle", _oracle_detail(rep), legal=legal, oracle=rep
        )

    # -- side 2: rejected transformations, forced, should be flagged ----
    if not report.legal and report.structure is None:
        return CaseResult(case, "illegal-rejected", "no Figure-5 block structure",
                          legal=False)
    try:
        g = generate_code(work_program, matrix, work_deps, require_legal=False)
    except ReproError as exc:
        return CaseResult(case, "illegal-rejected", str(exc), legal=False)
    rep = check_equivalence(
        program, g.program, case.params_dict(), env_map=oracle_env_map(g)
    )

    # -- symbolic rescue: every certificate is cross-checked ------------
    if (case.symbolic or case.unsound) and case.kind == "spec":
        rescued = _judge_symbolic(case, program, g, rep)
        if rescued is not None:
            return rescued

    if not rep["ok"]:
        counter("fuzz.illegal_confirmed")
        return CaseResult(
            case, "illegal-confirmed", _oracle_detail(rep), legal=False, oracle=rep
        )
    counter("fuzz.illegal_unconfirmed")
    if strict_illegal:
        counter("fuzz.divergences")
        return CaseResult(
            case, "divergence-oracle",
            "legality rejected but all oracles pass (strict-illegal mode)",
            legal=False, oracle=rep,
        )
    return CaseResult(
        case, "illegal-unconfirmed",
        "rejected transformation is equivalent on this input (precision gap)",
        legal=False, oracle=rep,
    )


def _judge_symbolic(case: FuzzCase, program, g, rep: dict) -> CaseResult | None:
    """Side 2 with the fractal oracle armed (``repro fuzz --symbolic``).

    Consults :func:`repro.symbolic.prove_schedule` on the Theorem-2
    rejection.  No certificate → ``None`` (the normal forced-run
    classification proceeds).  A certificate is *never* trusted bare:
    the forced run must be output-equivalent — judged on
    ``outputs_close`` and the instance multiset only, because a
    reassociated reduction legitimately reorders the dependence trace —
    and, when the case names backends, every backend must agree on the
    generated code too.  A contradicted certificate is
    ``divergence-symbolic``; for a deliberately fabricated one
    (``case.unsound``) contradiction is the *expected* outcome
    (``unsound-caught``) and survival is the divergence.
    """
    from repro.symbolic import prove_schedule
    from repro.util.errors import SymbolicError

    counter("fuzz.symbolic_consults")
    try:
        outcome = prove_schedule(program, case.spec, unsound=case.unsound)
    except SymbolicError as exc:
        if case.unsound:
            counter("fuzz.divergences")
            return CaseResult(
                case, "divergence-symbolic",
                f"forced-unsound injection did not produce a certificate: {exc}",
                legal=False,
            )
        counter("fuzz.symbolic_skips")
        return None
    if outcome is None or not outcome.legal:
        if case.unsound:
            counter("fuzz.divergences")
            return CaseResult(
                case, "divergence-symbolic",
                "forced-unsound injection did not produce a certificate: "
                + (outcome.reason if outcome is not None else "no outcome"),
                legal=False,
            )
        counter("fuzz.symbolic_unrescued")
        return None

    equivalent = bool(rep["outputs_close"]) and bool(rep["same_instances"])
    why = _oracle_detail(rep) if not equivalent else ""
    if equivalent and case.backends:
        detail = _backend_divergence(g.program, case.params_dict(), case.backends)
        if detail is not None:
            equivalent = False
            why = f"generated program: {detail}"

    cert = outcome.certificate
    summary = cert.summary() if cert is not None else "(no certificate)"
    if case.unsound:
        if equivalent:
            counter("fuzz.divergences")
            return CaseResult(
                case, "divergence-symbolic",
                "fabricated certificate evaded the differential oracle "
                f"({summary})",
                legal=False, oracle=rep,
            )
        counter("fuzz.unsound_caught")
        return CaseResult(
            case, "unsound-caught",
            f"fabricated certificate contradicted by execution: {why}",
            legal=False, oracle=rep,
        )
    if equivalent:
        counter("fuzz.symbolic_rescues")
        return CaseResult(
            case, "symbolic-legal", summary, legal=False, oracle=rep,
        )
    counter("fuzz.divergences")
    return CaseResult(
        case, "divergence-symbolic",
        f"certificate contradicted by execution: {why} ({summary})",
        legal=False, oracle=rep,
    )


def _backend_divergence(program, params: dict, backends: tuple[str, ...]) -> str | None:
    """Cross-backend differential oracle.

    Runs ``program`` through the reference interpreter and through each
    requested backend on identical inputs; returns a human-readable
    detail string on the first disagreement, or ``None``.  Comparison is
    sound only when the reference run succeeds: reference success means
    every subscript was in its declared range, so an unchecked backend
    executes the same accesses.  A :class:`BackendError` (the lowering
    refusing a program, e.g. reserved identifiers) is a skip, not a
    divergence.
    """
    from repro.backend import run as backend_run
    from repro.interp import execute
    from repro.interp.equivalence import outputs_close
    from repro.util.errors import BackendError

    try:
        ref, _ = execute(program, params)
    except ReproError:
        counter("fuzz.backend_skips")
        return None
    ref_out = ref.snapshot()
    for b in backends:
        counter(f"fuzz.backend_checks.{b}")
        try:
            store = backend_run(program, params, backend=b)
        except BackendError:
            counter("fuzz.backend_skips")
            continue
        except ReproError as exc:
            return f"backend {b} raised {type(exc).__name__}: {exc}"
        if not outputs_close(ref_out, store.snapshot()):
            return f"backend {b}: final array contents differ from reference"
        if set(store.scalars) != set(ref.scalars) or any(
            abs(store.scalars[k] - v) > 1e-9 * max(1.0, abs(v))
            for k, v in ref.scalars.items()
        ):
            return f"backend {b}: scalar values differ from reference"
    return None


def _service_divergence(program, params: dict, url: str) -> str | None:
    """Warm-daemon differential oracle (``repro fuzz --service URL``).

    Sends the case's source program to a running ``repro serve`` daemon
    and *byte-compares* the rendered analyze and run outputs against the
    local in-process pipeline — the service contract is that warm-path
    results are identical to cold runs (docs/SERVICE.md).  A program the
    local reference execution rejects is a skip (the daemon must then
    reject it too).
    """
    from repro.api import AnalyzeResult, RunResult, analyze_op, run_op
    from repro.ir import program_to_str
    from repro.service.client import ServiceClient
    from repro.util.errors import ServiceError

    src = program_to_str(program)
    client = ServiceClient(url)
    counter("fuzz.service_checks")
    local_analyze = analyze_op(program).render()
    try:
        remote_analyze = AnalyzeResult.from_payload(client.analyze(src)).render()
    except ServiceError as exc:
        return f"service analyze raised (local analyze succeeded): {exc}"
    if remote_analyze != local_analyze:
        return "service analyze output differs from local pipeline"
    try:
        local_run = run_op(program, params).render()
    except ReproError:
        counter("fuzz.service_skips")
        try:
            client.run(src, params)
        except ServiceError:
            return None
        return "service ran a program the local reference execution rejects"
    try:
        remote_run = RunResult.from_payload(client.run(src, params)).render()
    except ServiceError as exc:
        return f"service run raised (local run succeeded): {exc}"
    if remote_run != local_run:
        return "service run output differs from local reference execution"
    return None


def _oracle_detail(rep: dict) -> str:
    parts = []
    if not rep["same_instances"]:
        parts.append("instance multisets differ")
    viol = rep.get("dependence_violations")
    if viol:
        parts.append(f"{len(viol)} dependence violation(s), first {viol[0]}")
    if not rep["outputs_close"]:
        parts.append("final array contents differ")
    return "; ".join(parts) or "oracle failure"
