"""Deterministic case sampling for the differential fuzzer.

Every case is a pure function of ``(master_seed, index)``: the local
:class:`random.Random` is seeded with the string ``"repro-fuzz:S:i"``
(string seeding hashes via SHA-512, *not* the per-process ``hash()``
salt), so a parallel ``--jobs`` run samples bit-identical cases to a
serial run and any single case can be re-derived from its coordinates
alone.

Programs come from :func:`repro.kernels.random_program` under a
weighted shape mix (perfect nests, deep imperfect nests, triangular
bounds, wide multi-statement bodies); transformations are either random
compositions of the elementary spec operations (validated against the
layout at sample time, so the reject rate stays low) or completion
requests for a random lead loop.  A slice of the spec stream carries a
structural ``tile``/``fuse`` prefix (validated via
:func:`~repro.transform.spec.parse_schedule`), so the strip-mine
bookkeeping, the fusion legality test and the schedule pullback all sit
on the differential-testing path.
"""

from __future__ import annotations

import random

from repro.fuzz.case import FuzzCase
from repro.instance import Layout
from repro.ir import program_to_str
from repro.ir.ast import Loop
from repro.kernels import random_program
from repro.transform.spec import parse_spec
from repro.transform.tiling import (
    fuse, fuse_site_offset, loop_path_by_var, strip_mine,
)
from repro.util.errors import ReproError

__all__ = ["sample_case", "sample_spec", "SHAPE_WEIGHTS"]

#: shape -> relative weight of that structural class in the stream
SHAPE_WEIGHTS = (
    ("mixed", 4),
    ("perfect", 2),
    ("deep", 2),
    ("triangular", 2),
    ("multi", 2),
)

#: op -> relative weight when sampling spec operations
_OP_WEIGHTS = (
    ("permute", 30),
    ("skew", 20),
    ("reverse", 20),
    ("align", 15),
    ("scale", 10),
)

#: fraction of cases that exercise the completion procedure instead of
#: an explicit spec
_COMPLETE_SHARE = 0.15

#: fraction of spec cases that try to lead with a structural tile/fuse
#: op (the draw is dropped when no site on the sampled program admits
#: one, so the realized share is a bit lower)
_STRUCTURAL_SHARE = 0.35

#: tile sizes the fuzzer strip-mines with — deliberately tiny so tile
#: loops have several iterations at fuzz-sized N in (3..5)
_TILE_SIZES = (2, 3, 4)


def _weighted(rng: random.Random, table) -> str:
    total = sum(w for _, w in table)
    x = rng.randrange(total)
    for name, w in table:
        x -= w
        if x < 0:
            return name
    return table[-1][0]  # pragma: no cover - unreachable


def sample_case(master_seed: int, index: int) -> FuzzCase:
    """The ``index``-th case of the stream for ``master_seed``."""
    rng = random.Random(f"repro-fuzz:{master_seed}:{index}")
    shape = _weighted(rng, SHAPE_WEIGHTS)
    program_seed = rng.randrange(2**31)
    program = random_program(
        program_seed,
        shape=shape,
        max_depth=rng.choice((2, 3, 3)),
        max_children=rng.choice((2, 3)),
        n_arrays=rng.choice((1, 2, 2)),
    )
    layout = Layout(program)
    n = rng.randint(3, 5)
    loops = [c.var for c in layout.loop_coords()]
    if loops and rng.random() < _COMPLETE_SHARE:
        return FuzzCase(
            program_src=program_to_str(program),
            kind="complete",
            lead=rng.choice(loops),
            params=(("N", n),),
            note=f"seed={master_seed} index={index} shape={shape}",
        )
    spec = sample_spec(layout, rng, program=program)
    return FuzzCase(
        program_src=program_to_str(program),
        kind="spec",
        spec=spec,
        params=(("N", n),),
        note=f"seed={master_seed} index={index} shape={shape}",
    )


def sample_spec(
    layout: Layout,
    rng: random.Random,
    max_ops: int = 3,
    program=None,
) -> str:
    """A random composition of 1..max_ops transformations, each
    validated against ``layout`` at sample time (invalid draws are
    re-rolled a bounded number of times, keeping runner-side rejects
    rare but still possible).

    When ``program`` is given, a :data:`_STRUCTURAL_SHARE` slice of
    draws leads with one ``tile``/``fuse`` op; the linear ops are then
    sampled over the *rewritten* program's layout and the whole spec is
    re-validated through :func:`parse_schedule`.  A fuse whose site
    exists but fails the Theorem-2 test is kept — those cases exercise
    the oracles' illegal-schedule side."""
    structural: list[str] = []
    work_layout = layout
    if program is not None and rng.random() < _STRUCTURAL_SHARE:
        for _ in range(6):
            drawn = _sample_structural(rng, layout, program)
            if drawn is None:
                break
            op, rewrite = drawn
            try:
                # apply the rewrite directly — parse_schedule would also
                # run dependence analysis and the fusion legality test,
                # which sampling neither needs (illegal fuses are kept
                # for the oracles) nor can afford per draw
                rewritten = rewrite(program)
            except ReproError:
                continue  # no such site on this program; re-roll
            structural.append(op)
            work_layout = Layout(rewritten)
            break
    loops = [c.var for c in work_layout.loop_coords()]
    labels = work_layout.statement_labels()
    ops: list[str] = []
    n_ops = rng.randint(1, max_ops) - len(structural)
    attempts = 0
    while len(ops) < n_ops and attempts < 8 * max_ops:
        attempts += 1
        op = _sample_op(rng, loops, labels)
        if op is None:
            continue
        # the structural prefix is already validated, so the linear
        # suffix only needs to parse over the *rewritten* layout —
        # re-running parse_schedule (and its dependence analysis) per
        # draw would dominate sampling time
        candidate = "; ".join(ops + [op])
        try:
            parse_spec(work_layout, candidate)
        except ReproError:
            continue
        ops.append(op)
    if not ops and not structural:
        # every draw failed to validate (e.g. single-loop program where
        # only align could apply); reversal is always expressible
        ops.append(f"reverse({rng.choice(loops)})" if loops else "reverse(I)")
    return "; ".join(structural + ops)


def _sample_structural(rng: random.Random, layout: Layout, program):
    """Draw one structural op; returns ``(spec_text, rewrite_fn)`` where
    ``rewrite_fn(program)`` applies it (raising :class:`ReproError` when
    the named site does not admit it), or ``None`` on a loop-less
    layout.  Fuse targets are drawn from the loops that actually lead a
    fusable sibling pair — a uniformly random loop almost never does, so
    fuse would otherwise vanish from the stream."""
    loops = [c.var for c in layout.loop_coords()]
    if not loops:
        return None
    fusable = _fuse_vars(program)
    if rng.random() < 0.7 or not fusable:
        var = rng.choice(loops)
        size = rng.choice(_TILE_SIZES)
        return (
            f"tile({var},{size})",
            lambda p: strip_mine(p, loop_path_by_var(p, var), size),
        )
    var = rng.choice(fusable)
    return f"fuse({var})", lambda p: fuse(p, loop_path_by_var(p, var))


def _fuse_vars(program) -> list[str]:
    """Variables of loops followed by a sibling they can fuse with."""
    out: list[str] = []

    def walk(body) -> None:
        for i, node in enumerate(body):
            if not isinstance(node, Loop):
                continue
            nxt = body[i + 1] if i + 1 < len(body) else None
            if isinstance(nxt, Loop) and fuse_site_offset(node, nxt) is not None:
                out.append(node.var)
            walk(node.body)

    walk(program.body)
    return out


def _sample_op(rng: random.Random, loops: list[str], labels: list[str]) -> str | None:
    kind = _weighted(rng, _OP_WEIGHTS)
    if kind == "permute" and len(loops) >= 2:
        a, b = rng.sample(loops, 2)
        return f"permute({a},{b})"
    if kind == "skew" and len(loops) >= 2:
        a, b = rng.sample(loops, 2)
        return f"skew({a},{b},{rng.choice((-2, -1, 1, 2))})"
    if kind == "reverse" and loops:
        return f"reverse({rng.choice(loops)})"
    if kind == "align" and labels and loops:
        return f"align({rng.choice(labels)},{rng.choice(loops)},{rng.choice((-2, -1, 1, 2))})"
    if kind == "scale" and loops:
        return f"scale({rng.choice(loops)},{rng.choice((2, 3))})"
    return None
