"""Deterministic case sampling for the differential fuzzer.

Every case is a pure function of ``(master_seed, index)``: the local
:class:`random.Random` is seeded with the string ``"repro-fuzz:S:i"``
(string seeding hashes via SHA-512, *not* the per-process ``hash()``
salt), so a parallel ``--jobs`` run samples bit-identical cases to a
serial run and any single case can be re-derived from its coordinates
alone.

Programs come from :func:`repro.kernels.random_program` under a
weighted shape mix (perfect nests, deep imperfect nests, triangular
bounds, wide multi-statement bodies); transformations are either random
compositions of the elementary spec operations (validated against the
layout at sample time, so the reject rate stays low) or completion
requests for a random lead loop.
"""

from __future__ import annotations

import random

from repro.fuzz.case import FuzzCase
from repro.instance import Layout
from repro.ir import program_to_str
from repro.kernels import random_program
from repro.transform.spec import parse_spec
from repro.util.errors import ReproError

__all__ = ["sample_case", "sample_spec", "SHAPE_WEIGHTS"]

#: shape -> relative weight of that structural class in the stream
SHAPE_WEIGHTS = (
    ("mixed", 4),
    ("perfect", 2),
    ("deep", 2),
    ("triangular", 2),
    ("multi", 2),
)

#: op -> relative weight when sampling spec operations
_OP_WEIGHTS = (
    ("permute", 30),
    ("skew", 20),
    ("reverse", 20),
    ("align", 15),
    ("scale", 10),
)

#: fraction of cases that exercise the completion procedure instead of
#: an explicit spec
_COMPLETE_SHARE = 0.15


def _weighted(rng: random.Random, table) -> str:
    total = sum(w for _, w in table)
    x = rng.randrange(total)
    for name, w in table:
        x -= w
        if x < 0:
            return name
    return table[-1][0]  # pragma: no cover - unreachable


def sample_case(master_seed: int, index: int) -> FuzzCase:
    """The ``index``-th case of the stream for ``master_seed``."""
    rng = random.Random(f"repro-fuzz:{master_seed}:{index}")
    shape = _weighted(rng, SHAPE_WEIGHTS)
    program_seed = rng.randrange(2**31)
    program = random_program(
        program_seed,
        shape=shape,
        max_depth=rng.choice((2, 3, 3)),
        max_children=rng.choice((2, 3)),
        n_arrays=rng.choice((1, 2, 2)),
    )
    layout = Layout(program)
    n = rng.randint(3, 5)
    loops = [c.var for c in layout.loop_coords()]
    if loops and rng.random() < _COMPLETE_SHARE:
        return FuzzCase(
            program_src=program_to_str(program),
            kind="complete",
            lead=rng.choice(loops),
            params=(("N", n),),
            note=f"seed={master_seed} index={index} shape={shape}",
        )
    spec = sample_spec(layout, rng)
    return FuzzCase(
        program_src=program_to_str(program),
        kind="spec",
        spec=spec,
        params=(("N", n),),
        note=f"seed={master_seed} index={index} shape={shape}",
    )


def sample_spec(layout: Layout, rng: random.Random, max_ops: int = 3) -> str:
    """A random composition of 1..max_ops elementary transformations,
    each validated against ``layout`` at sample time (invalid draws are
    re-rolled a bounded number of times, keeping runner-side rejects
    rare but still possible)."""
    loops = [c.var for c in layout.loop_coords()]
    labels = layout.statement_labels()
    ops: list[str] = []
    n_ops = rng.randint(1, max_ops)
    attempts = 0
    while len(ops) < n_ops and attempts < 8 * max_ops:
        attempts += 1
        op = _sample_op(rng, loops, labels)
        if op is None:
            continue
        candidate = "; ".join(ops + [op])
        try:
            parse_spec(layout, candidate)
        except ReproError:
            continue
        ops.append(op)
    if not ops:
        # every draw failed to validate (e.g. single-loop program where
        # only align could apply); reversal is always expressible
        ops.append(f"reverse({rng.choice(loops)})" if loops else "reverse(I)")
    return "; ".join(ops)


def _sample_op(rng: random.Random, loops: list[str], labels: list[str]) -> str | None:
    kind = _weighted(rng, _OP_WEIGHTS)
    if kind == "permute" and len(loops) >= 2:
        a, b = rng.sample(loops, 2)
        return f"permute({a},{b})"
    if kind == "skew" and len(loops) >= 2:
        a, b = rng.sample(loops, 2)
        return f"skew({a},{b},{rng.choice((-2, -1, 1, 2))})"
    if kind == "reverse" and loops:
        return f"reverse({rng.choice(loops)})"
    if kind == "align" and labels and loops:
        return f"align({rng.choice(labels)},{rng.choice(loops)},{rng.choice((-2, -1, 1, 2))})"
    if kind == "scale" and loops:
        return f"scale({rng.choice(loops)},{rng.choice((2, 3))})"
    return None
