"""Greedy shrinking of failing fuzz cases to minimal reproducers.

Given a failing :class:`~repro.fuzz.case.FuzzCase` and a predicate that
re-runs a candidate and reports whether the *same kind* of failure
persists, :func:`shrink_case` repeatedly applies structural reductions —
drop a statement, splice out a loop (substituting its variable by its
lower bound), drop or weaken spec operations, shrink the problem size —
accepting a candidate only when it is strictly smaller under
:func:`case_size` *and* still failing.  Size is a positive integer that
strictly decreases on every accepted step, so the walk terminates at a
fixed point: a case none of whose one-step reductions still fails.

Transformations are shrunk through their *symbolic* spec (loop names,
statement labels), never through the raw matrix, so structural
reductions that change the layout dimension stay well-formed — spec
operations that mention a removed loop or statement are dropped with it.
"""

from __future__ import annotations

import re
from typing import Callable

from repro.fuzz.case import FuzzCase
from repro.ir import parse_program, program_to_str
from repro.ir.ast import Loop, Node, Program, Statement
from repro.ir.expr import affine_to_expr
from repro.obs import counter, span
from repro.transform.spec import spec_ops
from repro.util.errors import ReproError

__all__ = ["shrink_case", "case_size", "shrink_candidates"]

_MIN_N = 2
_WORD = re.compile(r"[A-Za-z_][A-Za-z_0-9]*")


def case_size(case: FuzzCase) -> int:
    """Strictly positive size metric: statements and loops of the
    program, spec complexity, and the parameter values."""
    try:
        program = parse_program(case.program_src, "size")
    except ReproError:
        return 10**9  # unparseable candidates are never an improvement
    n_stmts = len(program.statements())
    n_loops = len(program.all_loops())
    spec_cost = 0
    for op in spec_ops(case.spec):
        spec_cost += 1
        for tok in re.findall(r"-?\d+", op):
            spec_cost += abs(int(tok))
    param_cost = sum(v for _, v in case.params)
    return 3 * n_stmts + 2 * n_loops + spec_cost + param_cost + 1


def shrink_case(
    case: FuzzCase,
    still_failing: Callable[[FuzzCase], bool],
    *,
    max_attempts: int = 400,
) -> tuple[FuzzCase, int]:
    """Greedily minimize ``case`` under ``still_failing``.

    Returns ``(minimal_case, accepted_steps)``.  The caller guarantees
    ``still_failing(case)`` holds on entry; the result satisfies it too
    (it is either the input or a chain of accepted candidates).
    ``max_attempts`` bounds predicate evaluations, not accepted steps.
    """
    attempts = 0
    steps = 0
    size = case_size(case)
    with span("fuzz.shrink"):
        improved = True
        while improved:
            improved = False
            for cand in shrink_candidates(case):
                if attempts >= max_attempts:
                    return case, steps
                cand_size = case_size(cand)
                if cand_size >= size:
                    continue
                attempts += 1
                if still_failing(cand):
                    case, size = cand, cand_size
                    steps += 1
                    counter("fuzz.shrink_steps")
                    improved = True
                    break  # restart enumeration from the smaller case
    return case, steps


def shrink_candidates(case: FuzzCase):
    """One-step reductions of ``case``, most aggressive first."""
    try:
        program = parse_program(case.program_src, "shrink")
    except ReproError:
        return
    # 1. drop a statement (and any spec op naming it)
    for stmt in program.statements():
        smaller = _drop_statement(program, stmt.label)
        if smaller is not None:
            yield _with_program(case, smaller, drop_name=stmt.label)
    # 2. splice out a loop (substitute its var by its lower bound)
    for loop in program.all_loops():
        smaller = _remove_loop(program, loop.var)
        if smaller is not None:
            if case.kind == "complete" and case.lead == loop.var:
                continue  # the completion target must survive
            yield _with_program(case, smaller, drop_name=loop.var)
    # 3. drop one spec operation
    ops = spec_ops(case.spec)
    if case.kind == "spec" and len(ops) > 1:
        for i in range(len(ops)):
            kept = ops[:i] + ops[i + 1:]
            yield case.with_(spec="; ".join(kept))
    # 4. weaken factors/offsets toward +/-1 (or 2 for scale)
    for i, op in enumerate(ops):
        for weaker in _weaken_op(op):
            yield case.with_(spec="; ".join(ops[:i] + [weaker] + ops[i + 1:]))
    # 5. shrink parameters (jump to the floor first, then by one)
    for name, value in case.params:
        for smaller_v in dict.fromkeys((_MIN_N, value - 1)):
            if _MIN_N <= smaller_v < value:
                params = tuple(
                    (k, smaller_v if k == name else v) for k, v in case.params
                )
                yield case.with_(params=params)


def _weaken_op(op: str):
    """Variants of one spec op with smaller integer arguments."""
    m = re.fullmatch(r"\s*([a-z_]+)\s*\(([^)]*)\)\s*", op)
    if not m:
        return
    name = m.group(1)
    args = [a.strip() for a in m.group(2).split(",") if a.strip()]
    if name == "skew" and len(args) == 3:
        slot, floor = 2, 1
    elif name == "align" and len(args) == 3:
        slot, floor = 2, 1
    elif name == "scale" and len(args) == 2:
        slot, floor = 1, 2  # scale(x, 1) is the identity; stop at 2
    else:
        return
    try:
        value = int(args[slot])
    except ValueError:
        return
    if abs(value) > floor:
        weaker = floor if value > 0 else -floor
        yield f"{name}({', '.join(args[:slot] + [str(weaker)])})"


def _with_program(case: FuzzCase, program: Program, drop_name: str) -> FuzzCase:
    """Rebuild the case around a reduced program, discarding spec ops
    that mention the removed loop/statement name."""
    kept = [
        op for op in spec_ops(case.spec)
        if drop_name not in _WORD.findall(op)
    ]
    return case.with_(
        program_src=program_to_str(program),
        spec="; ".join(kept),
    )


def _drop_statement(program: Program, label: str) -> Program | None:
    """The program without statement ``label`` (empty loops pruned);
    ``None`` if nothing would remain."""

    def walk(node: Node) -> Node | None:
        if isinstance(node, Statement):
            return None if node.label == label else node
        assert isinstance(node, Loop)
        body = [w for w in (walk(c) for c in node.body) if w is not None]
        if not body:
            return None
        return node.with_body(tuple(body))

    body = [w for w in (walk(c) for c in program.body) if w is not None]
    if not body or not any(True for c in body for _ in c.statements()):
        return None
    return program.with_body(tuple(body), name=program.name)


def _remove_loop(program: Program, loop_var: str) -> Program | None:
    """Splice out the loop binding ``loop_var``: its children replace it
    in the parent body with ``loop_var`` substituted by the loop's lower
    bound.  ``None`` when the bound is not a single affine expression
    (hull bounds from generated code) or substitution is not possible."""

    def walk(node: Node) -> list[Node] | None:
        if isinstance(node, Statement):
            return [node]
        assert isinstance(node, Loop)
        new_body: list[Node] = []
        for c in node.body:
            w = walk(c)
            if w is None:
                return None
            new_body.extend(w)
        if node.var != loop_var:
            return [node.with_body(tuple(new_body))]
        try:
            lo = affine_to_expr(node.lower.single_affine())
            return [child.substituted({loop_var: lo}) for child in new_body]
        except ReproError:
            return None

    out: list[Node] = []
    for c in program.body:
        w = walk(c)
        if w is None:
            return None
        out.extend(w)
    if not out or not any(True for c in out for _ in c.statements()):
        return None
    # a program whose top level is bare statements is representable, but
    # the dependence machinery expects at least one loop somewhere
    if not any(isinstance(n, Loop) for n in out):
        return None
    return program.with_body(tuple(out), name=program.name)
