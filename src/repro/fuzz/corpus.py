"""The regression corpus: minimized repros as committed JSON files.

Every divergence the fuzzer finds is shrunk and serialized into a
self-contained JSON file under ``tests/fuzz_corpus/`` (or the directory
given with ``repro fuzz --corpus``).  Each file records the program
source, the transformation (symbolic spec or completion request), the
execution parameters, and an ``expect`` field stating what the *correct*
pipeline behaviour on this input is:

* ``"equivalent"`` — the transformation is legal; the pipeline must
  accept it and produce oracle-equivalent code.  A repro of a genuine
  miscompile carries this expectation and replays red until the bug is
  fixed, then green forever after.
* ``"illegal-flagged"`` — the transformation violates a dependence; the
  legality test must reject it **and** the forced-through-codegen run
  must be caught by the trace oracles (the two-sided contract).
* ``"backend-equivalent"`` — a repro of a lowering bug found by the
  cross-backend oracle (``repro fuzz --backend``); it replays green once
  every backend named in the case agrees with the reference interpreter.
* ``"no-divergence"`` — a repro of a pipeline crash (or other
  divergence) on an input whose *correct* verdict is one of the benign
  ones (e.g. a rejected transformation that merely needed a clean
  rejection); it replays green as long as the case produces any
  non-divergent verdict.
* ``"symbolic-legal"`` — the transformation is Theorem-2-illegal but
  the fractal symbolic oracle must certify it and the forced run must
  be output-equivalent (verdict ``symbolic-legal``); for a case with
  ``unsound`` set the fabricated certificate must instead be
  contradicted by execution (verdict ``unsound-caught``).  See
  docs/SYMBOLIC.md.

``tests/fuzz/test_corpus_replay.py`` replays every committed file on
every tier-1 run.  See docs/FUZZING.md for the triage workflow.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.fuzz.case import CaseResult, FuzzCase, run_case
from repro.obs import counter

__all__ = [
    "SCHEMA", "case_to_dict", "case_from_dict", "save_repro", "load_corpus",
    "replay_entry", "expected_for",
]

SCHEMA = 1


def expected_for(result: CaseResult) -> str:
    """The correct-behaviour expectation to record for a divergence."""
    if result.verdict == "divergence-backend":
        # a lowering bug: correct behaviour is simply that no backend
        # disagrees with the reference, whatever the legality verdict
        return "backend-equivalent"
    if result.verdict == "divergence-service":
        # service divergences need a live daemon to reproduce; the
        # committed repro (which does not persist the transient daemon
        # URL) replays the local pipeline and must stay non-divergent
        return "no-divergence"
    if result.verdict == "divergence-symbolic":
        # a contradicted (or evading) certificate: correct behaviour is
        # for the symbolic path to resolve cleanly — a sound certificate
        # confirmed by execution, or a fabricated one caught
        return "symbolic-legal"
    if result.case.claim_legal:
        # the case was forced past legality; correct behaviour is for the
        # legality test to reject it and the oracles to confirm
        return "illegal-flagged"
    return "equivalent"


def case_to_dict(case: FuzzCase, *, expect: str, detail: str = "",
                 seed: int | None = None, shrink_steps: int | None = None) -> dict:
    return {
        "schema": SCHEMA,
        "expect": expect,
        "program": case.program_src.splitlines(),
        "kind": case.kind,
        "spec": case.spec,
        "lead": case.lead,
        "params": dict(case.params),
        "claim_legal": case.claim_legal,
        "note": case.note,
        "backends": list(case.backends),
        "symbolic": case.symbolic,
        "unsound": case.unsound,
        "detail": detail,
        "seed": seed,
        "shrink_steps": shrink_steps,
    }


def case_from_dict(d: dict) -> tuple[FuzzCase, str]:
    """Rebuild ``(case, expect)`` from a corpus record."""
    program = d["program"]
    if isinstance(program, list):
        program = "\n".join(program)
    case = FuzzCase(
        program_src=program,
        kind=d.get("kind", "spec"),
        spec=d.get("spec", ""),
        lead=d.get("lead", ""),
        params=tuple(sorted((k, int(v)) for k, v in d.get("params", {}).items())),
        claim_legal=bool(d.get("claim_legal", False)),
        note=d.get("note", ""),
        backends=tuple(d.get("backends", ())),
        symbolic=bool(d.get("symbolic", False)),
        unsound=bool(d.get("unsound", False)),
    )
    return case, d.get("expect", "equivalent")


def corpus_path(corpus_dir: str | Path, record: dict) -> Path:
    """Content-addressed file name, stable across runs and machines."""
    key = json.dumps(
        {k: record[k] for k in ("program", "kind", "spec", "lead", "params")},
        sort_keys=True,
    )
    digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:12]
    return Path(corpus_dir) / f"fuzz-{digest}.json"


def save_repro(corpus_dir: str | Path, case: FuzzCase, *, expect: str,
               detail: str = "", seed: int | None = None,
               shrink_steps: int | None = None) -> Path:
    """Serialize a minimized repro; returns the file path (existing files
    with the same content hash are left untouched)."""
    record = case_to_dict(
        case, expect=expect, detail=detail, seed=seed, shrink_steps=shrink_steps
    )
    path = corpus_path(corpus_dir, record)
    path.parent.mkdir(parents=True, exist_ok=True)
    if not path.exists():
        path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        counter("fuzz.corpus_writes")
    return path


def load_corpus(corpus_dir: str | Path) -> list[tuple[Path, FuzzCase, str, dict]]:
    """All corpus entries, sorted by file name for deterministic replay."""
    out = []
    root = Path(corpus_dir)
    if not root.is_dir():
        return out
    for path in sorted(root.glob("*.json")):
        record = json.loads(path.read_text())
        case, expect = case_from_dict(record)
        out.append((path, case, expect, record))
    return out


def replay_entry(case: FuzzCase, expect: str) -> tuple[bool, str]:
    """Re-run a corpus case and check the recorded expectation.

    Returns ``(ok, detail)``; ``ok`` means the pipeline currently behaves
    correctly on this historical repro.
    """
    if expect == "equivalent":
        result = run_case(case.with_(claim_legal=False))
        ok = result.verdict == "pass-legal"
        return ok, f"{result.verdict}: {result.detail}"
    if expect == "backend-equivalent":
        # repro of a lowering bug: green once no backend diverges from
        # the reference interpreter, whatever the legality outcome
        result = run_case(case)
        return not result.divergent, f"{result.verdict}: {result.detail}"
    if expect == "no-divergence":
        # repro of a pipeline crash: green once the case resolves to any
        # benign verdict (pass, rejection, precision gap, ...)
        result = run_case(case)
        return not result.divergent, f"{result.verdict}: {result.detail}"
    if expect == "symbolic-legal":
        # the rescue contract: certified and confirmed by execution — or,
        # for a forced-unsound injection, the lie caught by execution
        result = run_case(case)
        want = "unsound-caught" if case.unsound else "symbolic-legal"
        return result.verdict == want, f"{result.verdict}: {result.detail}"
    if expect == "illegal-flagged":
        # side A: legality must reject it (no claim override)
        honest = run_case(case.with_(claim_legal=False))
        if honest.verdict not in ("illegal-confirmed", "illegal-rejected"):
            return False, f"legality no longer rejects: {honest.verdict}: {honest.detail}"
        # side B: forced through codegen, the oracles must flag it (or
        # codegen itself must refuse the matrix)
        forced = run_case(case.with_(claim_legal=True))
        if not (forced.divergent or forced.verdict == "illegal-rejected"):
            return False, f"forced run not flagged: {forced.verdict}: {forced.detail}"
        return True, f"{honest.verdict} / forced {forced.verdict}"
    return False, f"unknown expectation {expect!r}"
