"""Differential transformation fuzzer (system S18).

Closes the loop on the paper's legality story (Def. 6 / Thm. 2): sample
a random imperfect nest and a random transformation, run the full
pipeline (dependences → legality → completion → codegen → execution),
and cross-check the result against the three trace-based equivalence
oracles of :mod:`repro.interp.equivalence`.  The checked contract is
two-sided:

* **legal ⇒ equivalent** — a transformation the Definition-6 test
  accepts must pass all three oracles on every sampled input;
* **illegal ⇒ flagged** — a transformation the test rejects, when
  *forced* through code generation anyway, should be caught by
  ``dependences_preserved`` (monitored; soundness of the ground-truth
  oracle is the guarantee, precision of the symbolic test is counted).

Any contract violation is a **divergence**: it is shrunk to a minimal
reproducer (:mod:`repro.fuzz.shrink`) and serialized into the regression
corpus ``tests/fuzz_corpus/`` (:mod:`repro.fuzz.corpus`), which tier-1
tests replay deterministically forever after.

Entry points: ``repro fuzz`` on the CLI, :func:`fuzz_run` in code.
See docs/FUZZING.md.
"""

from repro.fuzz.case import (
    DIVERGENCE_VERDICTS, PASS_VERDICTS, CaseResult, FuzzCase,
    known_illegal_case, known_symbolic_case, known_unsound_case, run_case,
)
from repro.fuzz.corpus import (
    case_from_dict, case_to_dict, load_corpus, replay_entry, save_repro,
)
from repro.fuzz.runner import FuzzSession, fuzz_run
from repro.fuzz.sample import sample_case, sample_spec
from repro.fuzz.shrink import case_size, shrink_case

__all__ = [
    "FuzzCase", "CaseResult", "run_case", "known_illegal_case",
    "known_symbolic_case", "known_unsound_case",
    "DIVERGENCE_VERDICTS", "PASS_VERDICTS",
    "sample_case", "sample_spec",
    "shrink_case", "case_size",
    "save_repro", "load_corpus", "replay_entry", "case_to_dict",
    "case_from_dict",
    "fuzz_run", "FuzzSession",
]
