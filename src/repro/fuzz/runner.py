"""Batch fuzzing: sample N cases, fan out, shrink and serialize failures.

:func:`fuzz_run` drives a whole session.  Case *execution* fans out over
a process pool (reusing :mod:`repro.util.parallel_exec`, the same
machinery as ``analyze_dependences --jobs``); each worker re-derives its
cases from ``(master_seed, index)`` — cases are never pickled out, only
light result summaries and observability-counter deltas come back, and
results are re-assembled in index order so a parallel run is
bit-identical to a serial one.  Divergence *shrinking* and corpus
*writing* stay in the parent process, serially, in index order: the
corpus a run produces is deterministic in ``(seed, runs)`` regardless of
``--jobs``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping

from repro.fuzz.case import CaseResult, FuzzCase, run_case
from repro.fuzz.corpus import expected_for, save_repro
from repro.fuzz.sample import sample_case
from repro.fuzz.shrink import shrink_case
from repro.obs import counter, event, span
from repro.util.parallel_exec import (
    capture_counters, chunk_round_robin, map_in_processes, merge_metrics,
    resolve_jobs,
)

__all__ = ["fuzz_run", "FuzzSession"]


@dataclass
class FuzzSession:
    """Everything a fuzz run produced."""

    runs: int
    seed: int
    verdict_counts: dict[str, int] = field(default_factory=dict)
    divergences: list[CaseResult] = field(default_factory=list)
    repro_paths: list[Path] = field(default_factory=list)
    shrink_steps: int = 0

    @property
    def ok(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        lines = [f"fuzz: {self.runs} runs, seed {self.seed}"]
        for verdict in sorted(self.verdict_counts):
            lines.append(f"  {verdict:24s} {self.verdict_counts[verdict]}")
        lines.append(
            f"  divergences: {len(self.divergences)}"
            + (f" (shrunk in {self.shrink_steps} steps)" if self.divergences else "")
        )
        for p in self.repro_paths:
            lines.append(f"  repro: {p}")
        return "\n".join(lines)


def fuzz_run(
    runs: int,
    seed: int,
    *,
    jobs: int | None = None,
    corpus_dir: str | Path | None = None,
    minimize: bool = True,
    inject: Mapping[int, FuzzCase] | None = None,
    strict_illegal: bool = False,
    max_shrink_attempts: int = 400,
    progress: Callable[[int, CaseResult], None] | None = None,
    backends: tuple[str, ...] = (),
    service: str = "",
    symbolic: bool = False,
) -> FuzzSession:
    """Run ``runs`` sampled cases; shrink and serialize any divergence.

    ``inject`` maps case indices to hand-built cases that replace the
    sampled ones (the CLI's ``--inject-illegal`` puts a known-illegal,
    claimed-legal case at index 0 to exercise the failure path).

    ``backends`` arms the cross-backend differential oracle: every case
    additionally executes its source (and, when legal, generated)
    program through the named backends and compares against the
    reference interpreter; disagreements are ``divergence-backend``.

    ``service`` arms the warm-daemon oracle: every case's source program
    is also sent to the ``repro serve`` daemon at this URL, and its
    analyze/run outputs must be byte-identical to the local pipeline;
    disagreements are ``divergence-service`` (docs/SERVICE.md).

    ``symbolic`` arms the fractal symbolic oracle on every Theorem-2
    rejection: certified schedules are forced through codegen and
    cross-checked for output equivalence (``symbolic-legal`` on success,
    ``divergence-symbolic`` on a contradicted certificate); see
    docs/SYMBOLIC.md.
    """
    inject = dict(inject or {})
    backends = tuple(backends)
    session = FuzzSession(runs=runs, seed=seed)
    with span("fuzz.run", runs=runs, seed=seed):
        results = _run_all(
            runs, seed, inject, strict_illegal, resolve_jobs(jobs), backends,
            service, symbolic,
        )
        for index, result in enumerate(results):
            session.verdict_counts[result.verdict] = (
                session.verdict_counts.get(result.verdict, 0) + 1
            )
            # per-case provenance is emitted here in the parent, in index
            # order, so a --jobs run records the same events as a serial one
            event(
                "fuzz",
                "reject" if result.divergent else "accept",
                result.verdict,
                index=index,
                case_kind=result.case.kind,
                detail=result.detail or "(none)",
            )
            if progress is not None:
                progress(index, result)
            if not result.divergent:
                continue
            minimal, steps = result.case, 0
            if minimize:
                minimal, steps = _minimize(
                    result, strict_illegal, max_shrink_attempts
                )
            session.shrink_steps += steps
            session.divergences.append(result)
            if corpus_dir is not None:
                path = save_repro(
                    corpus_dir,
                    minimal,
                    expect=expected_for(result),
                    detail=result.detail,
                    seed=seed,
                    shrink_steps=steps,
                )
                session.repro_paths.append(path)
    return session


def _minimize(result: CaseResult, strict_illegal: bool,
              max_attempts: int) -> tuple[FuzzCase, int]:
    """Shrink a divergent case, preserving its failure verdict."""
    target = result.verdict

    def still_failing(candidate: FuzzCase) -> bool:
        return run_case(candidate, strict_illegal=strict_illegal).verdict == target

    return shrink_case(result.case, still_failing, max_attempts=max_attempts)


# ---------------------------------------------------------------------------
# parallel execution
# ---------------------------------------------------------------------------

def _case_at(
    seed: int, index: int, inject: Mapping[int, FuzzCase],
    backends: tuple[str, ...] = (), service: str = "",
    symbolic: bool = False,
) -> FuzzCase:
    case = inject[index] if index in inject else sample_case(seed, index)
    if backends and not case.backends:
        case = case.with_(backends=backends)
    if service and not case.service:
        case = case.with_(service=service)
    if symbolic and case.kind == "spec" and not case.symbolic:
        case = case.with_(symbolic=True)
    return case


def _run_all(
    runs: int,
    seed: int,
    inject: dict[int, FuzzCase],
    strict_illegal: bool,
    jobs: int,
    backends: tuple[str, ...],
    service: str = "",
    symbolic: bool = False,
) -> list[CaseResult]:
    indices = list(range(runs))
    if jobs <= 1 or runs < 2:
        return [
            run_case(
                _case_at(seed, i, inject, backends, service, symbolic),
                strict_illegal=strict_illegal,
            )
            for i in indices
        ]
    chunks = chunk_round_robin(runs, jobs)
    inject_items = tuple(
        (i, _case_payload(c)) for i, c in sorted(inject.items())
    )
    tasks = [
        (seed, tuple(chunk), inject_items, strict_illegal, backends, service,
         symbolic)
        for chunk in chunks
    ]
    by_index: dict[int, CaseResult] = {}
    for chunk_results, metrics in map_in_processes(_run_chunk, tasks, jobs=jobs):
        merge_metrics(metrics)
        for index, payload in chunk_results:
            by_index[index] = _result_from_payload(payload)
    counter("fuzz.parallel_chunks", len(chunks))
    return [by_index[i] for i in indices]


def _case_payload(case: FuzzCase) -> tuple:
    return (
        case.program_src, case.kind, case.spec, case.lead, case.params,
        case.claim_legal, case.note, case.backends, case.service,
        case.symbolic, case.unsound,
    )


def _case_from_payload(p: tuple) -> FuzzCase:
    return FuzzCase(
        program_src=p[0], kind=p[1], spec=p[2], lead=p[3],
        params=tuple(tuple(x) for x in p[4]), claim_legal=p[5], note=p[6],
        backends=tuple(p[7]), service=p[8] if len(p) > 8 else "",
        symbolic=bool(p[9]) if len(p) > 9 else False,
        unsound=bool(p[10]) if len(p) > 10 else False,
    )


def _result_payload(r: CaseResult) -> tuple:
    return (_case_payload(r.case), r.verdict, r.detail, r.legal)


def _result_from_payload(p: tuple) -> CaseResult:
    return CaseResult(
        case=_case_from_payload(p[0]), verdict=p[1], detail=p[2], legal=p[3]
    )


def _run_chunk(task: tuple) -> tuple[list[tuple[int, tuple]], dict]:
    """Process-pool worker: run one hand of case indices.

    Returns ``(results, metrics_payload)`` where results carry only
    picklable payloads (the oracle report dicts stay worker-side) and
    the metrics payload bundles counter/gauge/histogram deltas for the
    parent to merge."""
    task = tuple(task)
    if len(task) == 5:
        task = (*task, "", False)
    elif len(task) == 6:
        task = (*task, False)
    seed, indices, inject_items, strict_illegal, backends, service, symbolic = task
    inject = {i: _case_from_payload(p) for i, p in inject_items}
    out: list[tuple[int, tuple]] = []
    with capture_counters() as cap:
        for index in indices:
            case = _case_at(
                seed, index, inject, tuple(backends), service, symbolic
            )
            result = run_case(case, strict_illegal=strict_illegal)
            out.append((index, _result_payload(result)))
    return out, cap.metrics
