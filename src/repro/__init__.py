"""repro — a reproduction of Kodukula & Pingali, *Transformations for
Imperfectly Nested Loops* (SC 1996).

The package implements the paper's full pipeline — instance vectors,
dependence analysis, matrix-modelled transformations, legality, code
generation with augmentation, and the completion procedure — plus the
substrates it needs (exact integer linear algebra, a Fourier–Motzkin
"omega-lite", a loop-nest IR with parser and interpreter, and a cache
model for the performance claims).

Quickstart::

    from repro import parse_program, Layout, analyze_dependences
    from repro import permutation, check_legality, generate_code

    p = parse_program(SRC)
    lay = Layout(p)
    deps = analyze_dependences(p)
    t = permutation(lay, "I", "J")
    report = check_legality(lay, t.matrix, deps)
    if report.legal:
        print(generate_code(p, t.matrix, deps).program)
"""

from repro.codegen import GeneratedProgram, generate_code, per_statement_transformation
from repro.codegen.simplify import fold_expr, peel_iteration, simplify_program
from repro.completion import CompletionResult, complete_transformation
from repro.dependence import (
    DepEntry, DependenceMatrix, DepKind, DepVector, analyze_dependences,
)
from repro.instance import (
    DynamicInstance, Layout, from_vector, instance_vector, symbolic_vector,
)
from repro.interp import (
    CacheConfig, CacheStats, check_equivalence, execute, simulate_cache,
    trace_addresses,
)
from repro.ir import Program, parse_program, program_to_str
from repro.legality import LegalityReport, assert_legal, check_legality, recover_structure
from repro.linalg import IntMatrix
from repro.transform import (
    Transformation, alignment, compose, distribute, distribution_legal, identity,
    jam, permutation, reversal, scaling, skew, statement_reorder,
)
from repro.util.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # IR
    "Program", "parse_program", "program_to_str",
    # instance vectors
    "Layout", "DynamicInstance", "instance_vector", "symbolic_vector", "from_vector",
    # dependences
    "analyze_dependences", "DependenceMatrix", "DepVector", "DepEntry", "DepKind",
    # transformations
    "Transformation", "identity", "permutation", "skew", "reversal", "scaling",
    "alignment", "statement_reorder", "compose", "distribute", "jam",
    "distribution_legal",
    # legality + codegen
    "check_legality", "assert_legal", "LegalityReport", "recover_structure",
    "generate_code", "GeneratedProgram", "per_statement_transformation",
    "simplify_program", "peel_iteration", "fold_expr",
    # completion
    "complete_transformation", "CompletionResult",
    # interpretation
    "execute", "check_equivalence", "simulate_cache", "trace_addresses",
    "CacheConfig", "CacheStats",
    # linalg
    "IntMatrix",
    # errors
    "ReproError",
]
