"""Linear constraints over integer variables.

A :class:`Constraint` is an affine expression together with a relation:
``expr >= 0`` (inequality) or ``expr == 0`` (equality).  Constraints are
normalized on construction — coefficients divided by their gcd, with the
constant of an inequality *floor*-divided (the standard integer
tightening step, e.g. ``2x - 1 >= 0`` becomes ``x - 1 >= 0`` over ℤ).
"""

from __future__ import annotations

from typing import Mapping

from repro.polyhedra.affine import LinExpr
from repro.util.errors import PolyhedronError

__all__ = ["Constraint", "ge0", "eq0", "le", "ge", "eq"]


class Constraint:
    """``expr >= 0`` (kind ``'>='``) or ``expr == 0`` (kind ``'=='``)."""

    __slots__ = ("expr", "kind", "_key")

    GE = ">="
    EQ = "=="

    def __init__(self, expr: LinExpr, kind: str = GE):
        if kind not in (self.GE, self.EQ):
            raise PolyhedronError(f"unknown constraint kind {kind!r}")
        self.expr = _normalize(expr, kind)
        self.kind = kind
        self._key: tuple | None = None

    # -- queries -----------------------------------------------------------

    def is_equality(self) -> bool:
        return self.kind == self.EQ

    def variables(self) -> frozenset[str]:
        return self.expr.variables()

    def is_trivially_true(self) -> bool:
        return self.expr.is_constant() and (
            self.expr.constant == 0 if self.is_equality() else self.expr.constant >= 0
        )

    def is_trivially_false(self) -> bool:
        return self.expr.is_constant() and (
            self.expr.constant != 0 if self.is_equality() else self.expr.constant < 0
        )

    def satisfied_by(self, env: Mapping[str, int]) -> bool:
        v = self.expr.eval(env)
        return v == 0 if self.is_equality() else v >= 0

    def coefficient(self, name: str) -> int:
        return self.expr[name]

    def key(self) -> tuple:
        """Canonical hashable form ``(kind, expr-key)``; constraints are
        normalized on construction, so equal constraints share a key."""
        k = self._key
        if k is None:
            k = self._key = (self.kind, self.expr.key())
        return k

    # -- transformation ----------------------------------------------------

    def substitute(self, name: str, replacement: LinExpr) -> "Constraint":
        return Constraint(self.expr.substitute(name, replacement), self.kind)

    def rename(self, mapping: Mapping[str, str]) -> "Constraint":
        return Constraint(self.expr.rename(mapping), self.kind)

    def negated_pair(self) -> tuple["Constraint", "Constraint"]:
        """For an equality, the two inequalities ``expr >= 0`` and
        ``-expr >= 0`` it is equivalent to."""
        if not self.is_equality():
            raise PolyhedronError("negated_pair is only defined for equalities")
        return Constraint(self.expr, self.GE), Constraint(-self.expr, self.GE)

    # -- protocol ----------------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, Constraint):
            return NotImplemented
        return self.kind == other.kind and self.expr == other.expr

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        return f"Constraint({self.expr!s} {self.kind} 0)"

    def __str__(self) -> str:
        return f"{self.expr} {self.kind} 0"


def _normalize(expr: LinExpr, kind: str) -> LinExpr:
    """Divide by the content gcd; floor the constant for inequalities."""
    g = expr.content()
    if g <= 1:
        return expr
    coeffs = {k: c // g for k, c in expr.coeffs.items()}
    c = expr.constant
    if kind == Constraint.EQ:
        if c % g != 0:
            # g | all coefficients but not the constant: unsatisfiable over Z.
            # Encode as the canonical false equality 1 == 0 scaled into the
            # expression (keep it detectable via is_trivially_false).
            return LinExpr({}, 1) if c > 0 else LinExpr({}, -1)
        return LinExpr(coeffs, c // g)
    # integer tightening: sum(ci*vi) + c >= 0  <=>  sum((ci/g)vi) + floor(c/g) >= 0
    return LinExpr(coeffs, c // g)  # Python // floors


# -- convenience constructors -------------------------------------------------

def ge0(expr: LinExpr) -> Constraint:
    """``expr >= 0``."""
    return Constraint(expr, Constraint.GE)


def eq0(expr: LinExpr) -> Constraint:
    """``expr == 0``."""
    return Constraint(expr, Constraint.EQ)


def le(a: LinExpr | int, b: LinExpr | int) -> Constraint:
    """``a <= b``."""
    return ge0(_as_expr(b) - _as_expr(a))


def ge(a: LinExpr | int, b: LinExpr | int) -> Constraint:
    """``a >= b``."""
    return ge0(_as_expr(a) - _as_expr(b))


def eq(a: LinExpr | int, b: LinExpr | int) -> Constraint:
    """``a == b``."""
    return eq0(_as_expr(a) - _as_expr(b))


def lt(a: LinExpr | int, b: LinExpr | int) -> Constraint:
    """``a < b`` (i.e. ``a <= b - 1`` over the integers)."""
    return ge0(_as_expr(b) - _as_expr(a) - 1)


def gt(a: LinExpr | int, b: LinExpr | int) -> Constraint:
    """``a > b`` (i.e. ``a >= b + 1`` over the integers)."""
    return ge0(_as_expr(a) - _as_expr(b) - 1)


def _as_expr(x) -> LinExpr:
    if isinstance(x, LinExpr):
        return x
    if isinstance(x, int):
        return LinExpr({}, x)
    raise PolyhedronError(f"expected LinExpr or int, got {type(x).__name__}")
