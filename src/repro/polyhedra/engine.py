"""Memoizing polyhedral query engine.

Fourier–Motzkin elimination, projection and feasibility are pure
functions of an (immutable) :class:`~repro.polyhedra.system.System`, so
their results can be shared across the whole pipeline: dependence
analysis re-tests closely related systems for every precedence case,
legality/completion re-project the same iteration domains, and the
loop-order search replays dependence analysis wholesale.  This module
provides the process-wide bounded LRU those layers share.

The cache is keyed on the *canonical form* of a system
(:meth:`System.canonical_key` — sorted constraint keys, order
insensitive) plus the operation and its arguments, so structurally
equal systems hit regardless of construction order.  Values are
immutable ``System``/:class:`Feasibility` results and are shared
between callers.

Observability: every lookup bumps ``fm.cache_hits`` or
``fm.cache_misses`` and every LRU ejection bumps ``fm.cache_evictions``
through :mod:`repro.obs` (no-ops when no session is installed); the
same totals are always available via :func:`cache_stats`.

Control knobs::

    from repro.polyhedra import engine
    engine.configure(maxsize=16384)     # resize (clears the cache)
    engine.configure(enabled=False)     # turn memoization off
    engine.cache_clear()                # drop entries, keep config
    with engine.cache_disabled():       # oracle mode for tests
        ...

Environment variables ``REPRO_FM_CACHE`` (``0``/``false`` disables) and
``REPRO_FM_CACHE_SIZE`` (entry count) set the initial configuration.
The cache is thread-safe (the loop-order search queries it from a
thread pool) and per-process (worker processes of the dependence
fan-out each warm their own).
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass

from repro.obs import counter

__all__ = [
    "MISS",
    "QueryEngine",
    "EngineStats",
    "active",
    "default_engine",
    "configure",
    "cache_clear",
    "cache_stats",
    "cache_disabled",
]

#: Sentinel returned by :meth:`QueryEngine.get` on a cache miss (cached
#: values themselves are never ``MISS``).
MISS = object()

_DEFAULT_MAXSIZE = 8192


@dataclass(frozen=True)
class EngineStats:
    """Point-in-time cache statistics (process-local totals)."""

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int
    enabled: bool

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class QueryEngine:
    """A bounded, thread-safe LRU for polyhedral query results."""

    __slots__ = ("maxsize", "enabled", "_data", "_lock", "_hits", "_misses", "_evictions")

    def __init__(self, maxsize: int = _DEFAULT_MAXSIZE, enabled: bool = True):
        self.maxsize = int(maxsize)
        self.enabled = enabled
        self._data: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # -- lookup -----------------------------------------------------------

    def get(self, key):
        """The cached value for ``key``, or :data:`MISS`."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self._misses += 1
                counter("fm.cache_misses")
                return MISS
            self._data.move_to_end(key)
            self._hits += 1
        counter("fm.cache_hits")
        return value

    def put(self, key, value) -> None:
        """Insert ``key -> value``, evicting the LRU entry when full."""
        evicted = 0
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self._evictions += 1
                evicted += 1
        if evicted:
            counter("fm.cache_evictions", evicted)

    # -- management -------------------------------------------------------

    def clear(self) -> None:
        """Drop all entries (statistics are kept)."""
        with self._lock:
            self._data.clear()

    def reset_stats(self) -> None:
        with self._lock:
            self._hits = self._misses = self._evictions = 0

    def stats(self) -> EngineStats:
        with self._lock:
            return EngineStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._data),
                maxsize=self.maxsize,
                enabled=self.enabled,
            )

    def __len__(self) -> int:
        return len(self._data)


def _env_default() -> QueryEngine:
    raw = os.environ.get("REPRO_FM_CACHE", "1").strip().lower()
    enabled = raw not in ("0", "false", "no", "off")
    try:
        maxsize = int(os.environ.get("REPRO_FM_CACHE_SIZE", _DEFAULT_MAXSIZE))
    except ValueError:
        maxsize = _DEFAULT_MAXSIZE
    return QueryEngine(maxsize=maxsize, enabled=enabled)


_default = _env_default()


def default_engine() -> QueryEngine:
    """The process-wide engine instance (always exists, may be disabled)."""
    return _default


def active() -> QueryEngine | None:
    """The engine queries should use, or ``None`` when memoization is off."""
    eng = _default
    return eng if eng.enabled else None


def configure(*, enabled: bool | None = None, maxsize: int | None = None) -> QueryEngine:
    """Reconfigure the default engine; resizing clears the cache."""
    eng = _default
    if enabled is not None:
        eng.enabled = enabled
    if maxsize is not None:
        eng.maxsize = int(maxsize)
        eng.clear()
    return eng


def cache_clear() -> None:
    """Drop every cached query result in the default engine."""
    _default.clear()


def cache_stats() -> EngineStats:
    """Statistics of the default engine."""
    return _default.stats()


@contextmanager
def cache_disabled():
    """Temporarily disable memoization (the uncached oracle for tests)."""
    eng = _default
    prev = eng.enabled
    eng.enabled = False
    try:
        yield
    finally:
        eng.enabled = prev
