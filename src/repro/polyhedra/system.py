"""Constraint systems (rational polyhedra with integer semantics).

A :class:`System` is a conjunction of :class:`~repro.polyhedra.constraint.Constraint`
objects.  It supports Fourier–Motzkin variable elimination with integer
tightening, exactness tracking, feasibility queries and integer point
search — the "omega-lite" substrate standing in for the Omega toolkit
the paper uses for dependence analysis.
"""

from __future__ import annotations

import enum
import itertools
import time
from typing import Iterable, Mapping, Sequence

from repro.obs import counter, current_session, histogram
from repro.polyhedra import engine as _engine
from repro.polyhedra.affine import LinExpr
from repro.polyhedra.constraint import Constraint, ge0
from repro.util.errors import PolyhedronError

__all__ = ["System", "Feasibility"]


class Feasibility(enum.Enum):
    """Outcome of an integer feasibility query."""

    INFEASIBLE = "infeasible"
    FEASIBLE = "feasible"
    UNKNOWN = "unknown"

    def __bool__(self) -> bool:  # pragma: no cover - guard against misuse
        raise PolyhedronError(
            "Feasibility is three-valued; compare against Feasibility members explicitly"
        )


def _ceil_div(a: int, b: int) -> int:
    return -((-a) // b)


def _floor_div(a: int, b: int) -> int:
    return a // b


def _fm_clock() -> int | None:
    """``perf_counter_ns`` when an obs session is live, else ``None`` —
    the FM latency histograms cost nothing when nobody is listening."""
    return time.perf_counter_ns() if current_session() is not None else None


def _fm_record(name: str, t0: int | None) -> None:
    if t0 is not None:
        histogram(name, time.perf_counter_ns() - t0)


class System:
    """An immutable conjunction of affine constraints.

    Duplicate and trivially true constraints are dropped on construction;
    a trivially false constraint collapses the system to a canonical
    infeasible form.
    """

    __slots__ = ("_constraints", "_false", "_vars", "_key", "_occ")

    def __init__(self, constraints: Iterable[Constraint] = ()):
        seen: list[Constraint] = []
        dedup = set()
        false = False
        for c in constraints:
            if c.is_trivially_true():
                continue
            if c.is_trivially_false():
                false = True
                continue
            if c not in dedup:
                dedup.add(c)
                seen.append(c)
        self._false = false
        self._constraints = tuple(seen) if not false else ()
        self._vars: frozenset[str] | None = None
        self._key: tuple | None = None
        self._occ: dict[str, list[int]] | None = None

    # -- basic protocol ------------------------------------------------------

    @property
    def constraints(self) -> tuple[Constraint, ...]:
        return self._constraints

    def is_trivially_false(self) -> bool:
        return self._false

    def variables(self) -> frozenset[str]:
        """The set of variables occurring in the system (cached; Systems
        are immutable, so repeated calls return the identical object)."""
        v = self._vars
        if v is None:
            out: set[str] = set()
            for c in self._constraints:
                out |= c.variables()
            v = self._vars = frozenset(out)
        return v

    def canonical_key(self) -> tuple:
        """Order-insensitive canonical form, the memoization key of the
        query engine: the sorted tuple of constraint keys (constraints
        are normalized and deduplicated on construction).  Cached."""
        k = self._key
        if k is None:
            if self._false:
                k = ("<infeasible>",)
            else:
                k = tuple(sorted(c.key() for c in self._constraints))
            self._key = k
        return k

    def _occurrences(self) -> dict[str, list[int]]:
        """Per-variable ``[lower_count, upper_count]`` occurrence index
        (one scan over the constraints, cached), backing the
        fewest-products elimination-order heuristic."""
        occ = self._occ
        if occ is None:
            occ = {}
            for c in self._constraints:
                for v, a in c.expr.terms():
                    slot = occ.get(v)
                    if slot is None:
                        slot = occ[v] = [0, 0]
                    if a > 0:
                        slot[0] += 1
                    else:
                        slot[1] += 1
            self._occ = occ
        return occ

    def _elim_cost(self, name: str) -> int:
        lo, hi = self._occurrences().get(name, (0, 0))
        return lo * hi

    def __eq__(self, other) -> bool:
        if not isinstance(other, System):
            return NotImplemented
        if self._false or other._false:
            return self._false and other._false
        return self.canonical_key() == other.canonical_key()

    def __hash__(self) -> int:
        return hash(self.canonical_key())

    def __len__(self) -> int:
        return len(self._constraints)

    def __iter__(self):
        return iter(self._constraints)

    def __repr__(self) -> str:
        if self._false:
            return "System(<infeasible>)"
        return "System([" + ", ".join(str(c) for c in self._constraints) + "])"

    def satisfied_by(self, env: Mapping[str, int]) -> bool:
        if self._false:
            return False
        return all(c.satisfied_by(env) for c in self._constraints)

    # -- construction ----------------------------------------------------------

    def and_(self, *constraints: Constraint) -> "System":
        if self._false:
            return self
        return System(self._constraints + tuple(constraints))

    def conjoin(self, other: "System") -> "System":
        if self._false or other._false:
            return _FALSE
        return System(self._constraints + other._constraints)

    def substitute(self, name: str, replacement: LinExpr) -> "System":
        if self._false:
            return self
        return System(c.substitute(name, replacement) for c in self._constraints)

    def rename(self, mapping: Mapping[str, str]) -> "System":
        if self._false:
            return self
        return System(c.rename(mapping) for c in self._constraints)

    def eval_partial(self, env: Mapping[str, int]) -> "System":
        """Substitute constants for some variables."""
        if self._false:
            return self
        return System(Constraint(c.expr.eval_partial(env), c.kind) for c in self._constraints)

    # -- Fourier–Motzkin elimination ---------------------------------------------

    def eliminate(self, name: str, *, dark_shadow: bool = False) -> tuple["System", bool]:
        """Eliminate ``name``; returns ``(projected_system, exact)``.

        ``exact`` is True when the resulting system is exactly the set of
        integer points of the projection (guaranteed when every
        lower/upper-bound pairing had a unit coefficient on at least one
        side, or when an equality with unit coefficient allowed an exact
        substitution).

        With ``dark_shadow=True`` the Omega "dark shadow" combination is
        emitted instead of the real shadow: the result *under*-approximates
        the projection, so its feasibility implies feasibility of the
        original (useful as the definite-yes half of a feasibility test).
        """
        real, dark, exact = self.eliminate_shadows(name)
        return (dark if dark_shadow else real), exact

    def eliminate_shadows(self, name: str) -> tuple["System", "System", bool]:
        """Eliminate ``name``, producing the real- and dark-shadow results
        of one shared Fourier–Motzkin pass: ``(real, dark, exact)``.

        Lower/upper partitioning and constraint combination are done once
        — the shadows only differ in the tightening term of non-unit
        pairs, so when the step is exact ``real is dark``.  Memoized in
        the query engine under the system's canonical form.
        """
        if self._false:
            return self, self, True
        eng = _engine.active()
        if eng is None:
            return self._eliminate_shadows_impl(name)
        key = ("elim", self.canonical_key(), name)
        hit = eng.get(key)
        if hit is not _engine.MISS:
            return hit
        result = self._eliminate_shadows_impl(name)
        eng.put(key, result)
        return result

    def _eliminate_shadows_impl(self, name: str) -> tuple["System", "System", bool]:
        counter("fm.eliminations")

        # 1. exact Gaussian substitution via a unit-coefficient equality
        for c in self._constraints:
            if c.is_equality():
                a = c.coefficient(name)
                if a in (1, -1):
                    # a*x + rest == 0  =>  x = -rest/a
                    rest = c.expr - LinExpr({name: a})
                    repl = rest * (-1) if a == 1 else rest
                    others = [k for k in self._constraints if k is not c]
                    out = System(k.substitute(name, repl) for k in others)
                    return out, out, True

        lowers: list[tuple[int, LinExpr]] = []  # (a, r): a*x + r >= 0, a > 0
        uppers: list[tuple[int, LinExpr]] = []  # (b, r): -b*x + r >= 0, b > 0
        free: list[Constraint] = []
        equalities: list[Constraint] = []
        for c in self._constraints:
            a = c.coefficient(name)
            if a == 0:
                free.append(c)
            elif c.is_equality():
                equalities.append(c)
            elif a > 0:
                lowers.append((a, c.expr - LinExpr({name: a})))
            else:
                uppers.append((-a, c.expr - LinExpr({name: a})))

        # equalities with non-unit coefficients: treat as a pair of
        # inequalities (loses the divisibility constraint => inexact)
        exact = not equalities
        for c in equalities:
            lo, hi = c.negated_pair()
            for side in (lo, hi):
                aa = side.coefficient(name)
                if aa > 0:
                    lowers.append((aa, side.expr - LinExpr({name: aa})))
                else:
                    uppers.append((-aa, side.expr - LinExpr({name: aa})))

        real_out = list(free)
        dark_out = list(free)
        counter("fm.constraint_pairs", len(lowers) * len(uppers))
        for (a, r1), (b, r2) in itertools.product(lowers, uppers):
            # a*x >= -r1  and  b*x <= r2  =>  b*(-r1) <= a*b*x <= a*r2
            combined = b * r1 + a * r2
            rc = ge0(combined)
            real_out.append(rc)
            if a > 1 and b > 1:
                exact = False
                dark_out.append(ge0(combined - (a - 1) * (b - 1)))
            else:
                dark_out.append(rc)
        real = System(real_out)
        if exact:
            return real, real, True
        return real, System(dark_out), False

    def project_onto(self, keep: Sequence[str], *, dark_shadow: bool = False) -> tuple["System", bool]:
        """Eliminate every variable not in ``keep``; returns (system, exact)."""
        if self._false:
            return self, True
        t0 = _fm_clock()
        eng = _engine.active()
        if eng is None:
            result = self._project_onto_impl(keep, dark_shadow)
            _fm_record("fm.query_ns", t0)
            return result
        key = (
            "proj",
            self.canonical_key(),
            tuple(sorted(self.variables().intersection(keep))),
            dark_shadow,
        )
        hit = eng.get(key)
        if hit is not _engine.MISS:
            _fm_record("fm.cache_hit_ns", t0)
            return hit
        result = self._project_onto_impl(keep, dark_shadow)
        eng.put(key, result)
        _fm_record("fm.query_ns", t0)
        return result

    def _project_onto_impl(self, keep: Sequence[str], dark_shadow: bool) -> tuple["System", bool]:
        sys_, exact = self, True
        keep_set = set(keep)
        # Heuristic elimination order: fewest lower*upper products first
        # (ties broken by variable name so runs are deterministic across
        # processes regardless of hash randomization).
        while True:
            todo = sorted(v for v in sys_.variables() if v not in keep_set)
            if not todo:
                return sys_, exact
            v = min(todo, key=sys_._elim_cost)
            sys_, e = sys_.eliminate(v, dark_shadow=dark_shadow)
            exact = exact and e

    # -- feasibility ------------------------------------------------------------

    def feasible(self) -> Feasibility:
        """Integer feasibility of the system.

        Decision procedure:

        1. Real-shadow FM elimination of all variables.  Infeasible there
           means integer-infeasible (sound).  Feasible *and exact* means
           integer-feasible.
        2. Otherwise consult the dark shadow; feasibility there implies
           an integer point exists.
        3. Otherwise report :data:`Feasibility.UNKNOWN` — callers that
           need certainty fall back to :meth:`find_point` with bounds.

        Both shadows are computed in *one* fused elimination sweep
        (:meth:`eliminate_shadows`): they share the exact prefix of the
        elimination and only diverge from the first inexact step, instead
        of projecting the system twice from scratch.  The verdict is
        memoized in the query engine.
        """
        counter("fm.feasibility_queries")
        if self._false:
            return Feasibility.INFEASIBLE
        t0 = _fm_clock()
        eng = _engine.active()
        if eng is None:
            result = self._feasible_impl()
            _fm_record("fm.query_ns", t0)
            return result
        key = ("feas", self.canonical_key())
        hit = eng.get(key)
        if hit is not _engine.MISS:
            _fm_record("fm.cache_hit_ns", t0)
            return hit
        result = self._feasible_impl()
        eng.put(key, result)
        _fm_record("fm.query_ns", t0)
        return result

    def _feasible_impl(self) -> Feasibility:
        real: System = self
        dark: System | None = self  # identical object while every step is exact
        exact = True
        while True:
            if real.is_trivially_false():
                return Feasibility.INFEASIBLE
            todo = sorted(real.variables())
            if not todo:
                break
            v = min(todo, key=real._elim_cost)
            if dark is real:
                real, dark, e = real.eliminate_shadows(v)
                exact = exact and e
            else:
                real, _, e = real.eliminate_shadows(v)
                exact = exact and e
                if dark is not None:
                    _, dark, _ = dark.eliminate_shadows(v)
                    if dark.is_trivially_false():
                        dark = None  # dark infeasibility proves nothing
        if real.is_trivially_false():
            return Feasibility.INFEASIBLE
        if exact:
            return Feasibility.FEASIBLE
        # finish projecting any variables only the dark shadow still has
        while dark is not None and not dark.is_trivially_false() and dark.variables():
            w = min(sorted(dark.variables()), key=dark._elim_cost)
            _, dark, _ = dark.eliminate_shadows(w)
        if dark is not None and not dark.is_trivially_false():
            return Feasibility.FEASIBLE
        return Feasibility.UNKNOWN

    def is_definitely_infeasible(self) -> bool:
        return self.feasible() is Feasibility.INFEASIBLE

    def is_definitely_feasible(self) -> bool:
        return self.feasible() is Feasibility.FEASIBLE

    # -- integer point search -----------------------------------------------------

    def var_range(self, name: str) -> tuple[int | None, int | None]:
        """Rational bounds on ``name`` over the projection (lo, hi);
        ``None`` means unbounded on that side."""
        proj, _ = self.project_onto((name,))
        if proj.is_trivially_false():
            raise PolyhedronError("system is infeasible; no variable range")
        lo: int | None = None
        hi: int | None = None
        for c in proj:
            a = c.coefficient(name)
            if a == 0:
                continue
            rest = c.expr.constant
            if c.is_equality():
                if rest % a == 0:
                    v = -rest // a
                    lo = v if lo is None else max(lo, v)
                    hi = v if hi is None else min(hi, v)
                else:
                    raise PolyhedronError("equality with no integer solution")
            elif a > 0:  # a*x + rest >= 0 -> x >= ceil(-rest/a)
                b = _ceil_div(-rest, a)
                lo = b if lo is None else max(lo, b)
            else:  # a<0: x <= floor(rest/-a)
                b = _floor_div(rest, -a)
                hi = b if hi is None else min(hi, b)
        return lo, hi

    def find_point(self, *, clip: int = 64) -> dict[str, int] | None:
        """Search for an integer point; returns an assignment or None.

        Unbounded directions are clipped to ``[-clip, clip]``, so a None
        result means "no point within the clip box", which is conclusive
        only for bounded systems.  Intended for tests and cross-checks on
        small systems, not as the primary decision procedure.
        """
        if self._false:
            return None
        return self._search({}, clip)

    def _search(self, env: dict[str, int], clip: int) -> dict[str, int] | None:
        sys_ = self.eval_partial(env) if env else self
        if sys_.is_trivially_false():
            return None
        remaining = sorted(sys_.variables())
        if not remaining:
            return dict(env)
        name = remaining[0]
        try:
            lo, hi = sys_.var_range(name)
        except PolyhedronError:
            return None
        lo = -clip if lo is None else max(lo, -clip)
        hi = clip if hi is None else min(hi, clip)
        for v in range(lo, hi + 1):
            result = self._search({**env, name: v}, clip)
            if result is not None:
                return result
        return None

    def enumerate_points(self, order: Sequence[str] | None = None, *, clip: int = 512):
        """Yield all integer points (as dicts) in lexicographic order of
        ``order`` (default: sorted variable names).  The system must be
        bounded in every variable or a PolyhedronError is raised."""
        if self._false:
            return
        order = list(order) if order is not None else sorted(self.variables())
        missing = self.variables() - set(order)
        if missing:
            raise PolyhedronError(f"enumeration order is missing variables {sorted(missing)}")
        yield from self._enumerate({}, order, clip)

    def _enumerate(self, env: dict[str, int], order: Sequence[str], clip: int):
        sys_ = self.eval_partial(env) if env else self
        if sys_.is_trivially_false():
            return
        pending = [v for v in order if v not in env]
        if not pending:
            if sys_.satisfied_by({}) or not sys_.constraints:
                yield dict(env)
            return
        name = pending[0]
        if name not in sys_.variables():
            # unconstrained in the remaining system: single canonical value 0
            yield from self._enumerate({**env, name: 0}, order, clip)
            return
        try:
            lo, hi = sys_.var_range(name)
        except PolyhedronError:
            # the remaining system may be infeasible without being
            # syntactically false; an empty projection means no points
            proj, _ = sys_.project_onto(())
            if proj.is_trivially_false():
                return
            raise
        if lo is None or hi is None:
            raise PolyhedronError(f"variable {name} is unbounded; cannot enumerate")
        if hi - lo > 2 * clip:
            raise PolyhedronError(f"range of {name} exceeds clip ({lo}..{hi})")
        for v in range(lo, hi + 1):
            yield from self._enumerate({**env, name: v}, order, clip)


_FALSE = System([Constraint(LinExpr({}, -1), Constraint.GE)])
