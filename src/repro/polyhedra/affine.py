"""Affine expressions over named integer variables.

:class:`LinExpr` is the atom of the polyhedral substrate: an immutable
integer-coefficient affine form ``c0 + c1*v1 + ... + ck*vk`` over named
variables.  Loop bounds, array subscripts and dependence constraints are
all LinExprs; keeping the coefficients integral (clearing denominators
instead of storing rationals) keeps Fourier–Motzkin exact.
"""

from __future__ import annotations

from math import gcd
from typing import Iterable, Mapping

from repro.util.errors import PolyhedronError

__all__ = ["LinExpr", "var", "const"]


class LinExpr:
    """An immutable integer affine expression.

    Construct via :func:`var` / :func:`const` and arithmetic, or directly
    from a coefficient mapping::

        >>> e = 2 * var("i") - var("j") + 3
        >>> e["i"], e["j"], e.constant
        (2, -1, 3)
        >>> e.eval({"i": 5, "j": 1})
        12
    """

    __slots__ = ("_coeffs", "_const", "_key")

    def __init__(self, coeffs: Mapping[str, int] | None = None, constant: int = 0):
        clean = {}
        for k, v in (coeffs or {}).items():
            iv = int(v)
            if iv != v:
                raise PolyhedronError(f"non-integer coefficient {v!r} for {k}")
            if iv != 0:
                clean[k] = iv
        self._coeffs = dict(sorted(clean.items()))
        c = int(constant)
        if c != constant:
            raise PolyhedronError(f"non-integer constant {constant!r}")
        self._const = c
        self._key: tuple | None = None

    # -- accessors --------------------------------------------------------

    @property
    def constant(self) -> int:
        return self._const

    @property
    def coeffs(self) -> dict[str, int]:
        """Copy of the variable->coefficient mapping (zero coeffs omitted)."""
        return dict(self._coeffs)

    def __getitem__(self, name: str) -> int:
        return self._coeffs.get(name, 0)

    def variables(self) -> frozenset[str]:
        return frozenset(self._coeffs)

    def key(self) -> tuple:
        """Canonical hashable form ``((var, coeff), ..., constant)``.

        Coefficients are kept sorted by variable name, so two equal
        expressions always produce the same key.  Computed once and
        cached (LinExprs are immutable)."""
        k = self._key
        if k is None:
            k = self._key = (tuple(self._coeffs.items()), self._const)
        return k

    def terms(self):
        """Iterate ``(variable, coefficient)`` pairs without copying."""
        return self._coeffs.items()

    def is_constant(self) -> bool:
        return not self._coeffs

    def eval(self, env: Mapping[str, int]) -> int:
        """Evaluate under a full assignment of the variables that occur."""
        total = self._const
        for k, c in self._coeffs.items():
            if k not in env:
                raise PolyhedronError(f"unbound variable {k!r} in evaluation")
            total += c * env[k]
        return total

    def eval_partial(self, env: Mapping[str, int]) -> "LinExpr":
        """Substitute constants for some variables; returns a LinExpr."""
        coeffs = {k: c for k, c in self._coeffs.items() if k not in env}
        constant = self._const + sum(c * env[k] for k, c in self._coeffs.items() if k in env)
        return LinExpr(coeffs, constant)

    def substitute(self, name: str, replacement: "LinExpr") -> "LinExpr":
        """Replace variable ``name`` by an affine expression."""
        c = self._coeffs.get(name, 0)
        if c == 0:
            return self
        base = LinExpr({k: v for k, v in self._coeffs.items() if k != name}, self._const)
        return base + c * replacement

    def rename(self, mapping: Mapping[str, str]) -> "LinExpr":
        """Rename variables; names not in ``mapping`` are kept."""
        coeffs: dict[str, int] = {}
        for k, c in self._coeffs.items():
            nk = mapping.get(k, k)
            coeffs[nk] = coeffs.get(nk, 0) + c
        return LinExpr(coeffs, self._const)

    def content(self) -> int:
        """gcd of all variable coefficients (0 for a constant expression)."""
        g = 0
        for c in self._coeffs.values():
            g = gcd(g, abs(c))
        return g

    # -- arithmetic --------------------------------------------------------

    def _coerce(self, other) -> "LinExpr":
        if isinstance(other, LinExpr):
            return other
        if isinstance(other, int):
            return LinExpr({}, other)
        raise PolyhedronError(f"cannot combine LinExpr with {type(other).__name__}")

    def __add__(self, other) -> "LinExpr":
        o = self._coerce(other)
        coeffs = dict(self._coeffs)
        for k, c in o._coeffs.items():
            coeffs[k] = coeffs.get(k, 0) + c
        return LinExpr(coeffs, self._const + o._const)

    __radd__ = __add__

    def __sub__(self, other) -> "LinExpr":
        return self + (-self._coerce(other))

    def __rsub__(self, other) -> "LinExpr":
        return self._coerce(other) + (-self)

    def __neg__(self) -> "LinExpr":
        return LinExpr({k: -c for k, c in self._coeffs.items()}, -self._const)

    def __mul__(self, scalar: int) -> "LinExpr":
        if not isinstance(scalar, int):
            raise PolyhedronError("LinExpr can only be scaled by an integer")
        return LinExpr({k: c * scalar for k, c in self._coeffs.items()}, self._const * scalar)

    __rmul__ = __mul__

    # -- protocol ----------------------------------------------------------

    def __eq__(self, other) -> bool:
        if isinstance(other, int):
            other = LinExpr({}, other)
        if not isinstance(other, LinExpr):
            return NotImplemented
        return self._coeffs == other._coeffs and self._const == other._const

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        return f"LinExpr({self!s})"

    def __str__(self) -> str:
        parts: list[str] = []
        for k, c in self._coeffs.items():
            if c == 1:
                term = k
            elif c == -1:
                term = f"-{k}"
            else:
                term = f"{c}*{k}"
            if parts and not term.startswith("-"):
                parts.append(f"+ {term}")
            elif parts:
                parts.append(f"- {term[1:]}")
            else:
                parts.append(term)
        if self._const or not parts:
            c = self._const
            if parts:
                parts.append(f"+ {c}" if c >= 0 else f"- {-c}")
            else:
                parts.append(str(c))
        return " ".join(parts)


def var(name: str) -> LinExpr:
    """The affine expression consisting of a single variable."""
    return LinExpr({name: 1})


def const(value: int) -> LinExpr:
    """A constant affine expression."""
    return LinExpr({}, value)


def linear_combination(terms: Iterable[tuple[int, str]], constant: int = 0) -> LinExpr:
    """Build ``sum(c*v) + constant`` from (coefficient, variable) pairs."""
    coeffs: dict[str, int] = {}
    for c, v in terms:
        coeffs[v] = coeffs.get(v, 0) + c
    return LinExpr(coeffs, constant)
