"""Loop-bound extraction from constraint systems.

Implements the classic Fourier–Motzkin scheme for scanning a polyhedron
with DO loops (Ancourt & Irigoin): given loop variables ordered
outer→inner, the bounds of each variable are max/min of affine forms
(with integer ceil/floor divisions) over the outer variables and the
symbolic parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.polyhedra.affine import LinExpr
from repro.polyhedra.system import System
from repro.util.errors import PolyhedronError

__all__ = ["Bound", "LoopBounds", "extract_bounds"]


@dataclass(frozen=True)
class Bound:
    """One affine bound term: ``ceil(expr / div)`` or ``floor(expr / div)``.

    ``div`` is always >= 1; ``is_lower`` selects ceil (lower bounds) or
    floor (upper bounds) semantics.
    """

    expr: LinExpr
    div: int
    is_lower: bool

    def __post_init__(self):
        if self.div < 1:
            raise PolyhedronError("bound divisor must be positive")

    def eval(self, env: dict[str, int]) -> int:
        v = self.expr.eval(env)
        if self.div == 1:
            return v
        return -((-v) // self.div) if self.is_lower else v // self.div

    def __str__(self) -> str:
        if self.div == 1:
            return str(self.expr)
        fn = "ceild" if self.is_lower else "floord"
        return f"{fn}({self.expr}, {self.div})"


@dataclass(frozen=True)
class LoopBounds:
    """All bounds for one loop variable.

    The loop runs ``max(lowers) .. min(uppers)``; either list being empty
    means the variable is unbounded on that side (an error for codegen).
    """

    name: str
    lowers: tuple[Bound, ...]
    uppers: tuple[Bound, ...]

    def lower_value(self, env: dict[str, int]) -> int:
        if not self.lowers:
            raise PolyhedronError(f"loop {self.name} has no lower bound")
        return max(b.eval(env) for b in self.lowers)

    def upper_value(self, env: dict[str, int]) -> int:
        if not self.uppers:
            raise PolyhedronError(f"loop {self.name} has no upper bound")
        return min(b.eval(env) for b in self.uppers)

    def __str__(self) -> str:
        lo = ", ".join(map(str, self.lowers)) or "-inf"
        hi = ", ".join(map(str, self.uppers)) or "+inf"
        if len(self.lowers) > 1:
            lo = f"max({lo})"
        if len(self.uppers) > 1:
            hi = f"min({hi})"
        return f"{self.name} = {lo} .. {hi}"


def extract_bounds(
    system: System,
    loop_vars: Sequence[str],
    params: Sequence[str] = (),
) -> list[LoopBounds]:
    """Bounds for ``loop_vars`` (outer→inner) scanning ``system``.

    The bounds of ``loop_vars[i]`` may reference ``loop_vars[:i]`` and
    ``params`` only.  Raises :class:`PolyhedronError` if the projected
    system for some variable leaves it unbounded in a direction, or if
    elimination proves the polyhedron empty (in which case there is
    nothing to scan — callers should treat that as a zero-trip nest).
    """
    allowed = set(params)
    out: list[LoopBounds] = []
    for i, v in enumerate(loop_vars):
        keep = list(params) + list(loop_vars[: i + 1])
        projected, _exact = system.project_onto(keep)
        if projected.is_trivially_false():
            raise PolyhedronError("polyhedron is empty; no loop bounds")
        lowers: list[Bound] = []
        uppers: list[Bound] = []
        for c in projected:
            a = c.coefficient(v)
            if a == 0:
                continue
            bad = c.expr.variables() - allowed - {v}
            if bad:
                raise PolyhedronError(
                    f"bound for {v} references non-outer variables {sorted(bad)}"
                )
            rest = c.expr - LinExpr({v: a})
            if c.is_equality():
                if a > 0:
                    lowers.append(Bound(-rest, a, True))
                    uppers.append(Bound(-rest, a, False))
                else:
                    lowers.append(Bound(rest, -a, True))
                    uppers.append(Bound(rest, -a, False))
            elif a > 0:  # a*v + rest >= 0  ->  v >= ceil(-rest / a)
                lowers.append(Bound(-rest, a, True))
            else:  # v <= floor(rest / -a)
                uppers.append(Bound(rest, -a, False))
        out.append(LoopBounds(v, _dedup(lowers), _dedup(uppers)))
        allowed.add(v)
    return out


def _dedup(bounds: list[Bound]) -> tuple[Bound, ...]:
    seen: dict[Bound, None] = {}
    for b in bounds:
        seen.setdefault(b)
    return tuple(seen)
