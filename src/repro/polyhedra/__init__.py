"""Affine sets and Fourier–Motzkin machinery (system S2, "omega-lite").

Projection and feasibility queries are memoized process-wide in the
query engine (:mod:`repro.polyhedra.engine`); see docs/PERFORMANCE.md.
"""

from repro.polyhedra import engine
from repro.polyhedra.affine import LinExpr, const, linear_combination, var
from repro.polyhedra.bounds import Bound, LoopBounds, extract_bounds
from repro.polyhedra.constraint import Constraint, eq, eq0, ge, ge0, gt, le, lt
from repro.polyhedra.system import Feasibility, System

__all__ = [
    "LinExpr", "var", "const", "linear_combination",
    "Constraint", "ge0", "eq0", "le", "ge", "eq", "lt", "gt",
    "System", "Feasibility",
    "Bound", "LoopBounds", "extract_bounds",
    "engine",
]
