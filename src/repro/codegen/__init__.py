"""Code generation (system S9, paper §5)."""

from repro.codegen.augment import augment_rows, project_dep
from repro.codegen.generate import GeneratedProgram, StatementPlan, generate_code
from repro.codegen.per_statement import PerStatement, per_statement_transformation

__all__ = [
    "generate_code", "GeneratedProgram", "StatementPlan",
    "per_statement_transformation", "PerStatement",
    "augment_rows", "project_dep",
]
