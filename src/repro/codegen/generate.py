"""Code generation from a legal transformation matrix (paper §5).

The pipeline:

1. legality + structure recovery (Def. 6, Fig. 6),
2. per-statement affine maps (Def. 7),
3. augmentation with extra innermost loops for rank-deficient
   statements (Fig. 7),
4. per-statement scanning polyhedra by Fourier–Motzkin projection of
   ``{new = map(old)} ∪ old-domain`` onto the new loop variables,
5. shared-loop bounds as hulls over the statements under each loop,
   with per-statement guard conditions for narrower ranges (this is
   what produces the paper's ``if (I == 0) then`` around statement S1
   in the §5.4 example),
6. subscript rewriting through the inverted non-singular per-statement
   matrix ``N_S`` (Def. 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.codegen.augment import augment_rows, project_dep
from repro.codegen.per_statement import PerStatement, per_statement_transformation
from repro.dependence.analyze import analyze_dependences, statement_domain
from repro.dependence.depvector import DependenceMatrix
from repro.instance.layout import Layout
from repro.ir.ast import (
    BoundSet, Guard, HullBound, Loop, Node, Program, Statement, simplify_hull,
)
from repro.ir.expr import Expr, affine_to_expr
from repro.legality.check import LegalityReport, assert_legal, check_legality
from repro.linalg.intmat import IntMatrix
from repro.obs import counter, span, timed
from repro.polyhedra.affine import LinExpr, var
from repro.polyhedra.bounds import Bound, LoopBounds, extract_bounds
from repro.polyhedra.constraint import Constraint, eq, ge0
from repro.polyhedra.system import System
from repro.util.errors import CodegenError, PolyhedronError

__all__ = ["GeneratedProgram", "StatementPlan", "generate_code"]

_OLD = "__o_"


@dataclass
class StatementPlan:
    """Everything code generation derived for one statement."""

    label: str
    per_statement: PerStatement
    extra_rows: list[tuple[int, ...]]
    loop_names: list[str]          # shared new-loop names, outside-in
    extra_names: list[str]         # augmented innermost loop names
    nonsingular: IntMatrix | None  # N_S (Def. 8) over the kept rows
    kept_rows: list[int]           # indices (into names) of N_S rows
    bounds: list[LoopBounds]       # per level, shared then extra
    guards: list[Constraint]       # residual conditions at shared levels
    rewrite: dict[str, Expr]       # old loop var -> expression in new vars
    rewrite_affine: dict[str, LinExpr] = field(default_factory=dict)
    lattice: tuple | None = None   # (H, U, offsets, kept names) when |det N_S| > 1
    lattice_conditions: tuple = () # divisibility ExprConditions
    exact: bool = True


@dataclass
class GeneratedProgram:
    """Result of :func:`generate_code`."""

    program: Program
    report: LegalityReport
    plans: dict[str, StatementPlan] = field(default_factory=dict)
    exact: bool = True

    def plan(self, label: str) -> StatementPlan:
        return self.plans[label]

    def env_map(self):
        """Callable mapping a transformed statement instance's loop
        environment back to its source iteration values (outside-in) —
        the inverse per-statement transformation, used by the
        equivalence oracles."""

        def f(label: str, env) -> tuple[int, ...]:
            plan = self.plans[label]
            if plan.lattice is None:
                return tuple(
                    plan.rewrite_affine[v].eval(env) for v in plan.per_statement.old_vars
                )
            return _lattice_env_map(plan, env)

        return f


@timed(
    "codegen.generate",
    attr_fn=lambda program, *a, **kw: {"program": program.name},
    hist="codegen.generate_ns",
)
def generate_code(
    program: Program,
    matrix: IntMatrix,
    deps: DependenceMatrix | None = None,
    *,
    name: str | None = None,
    require_legal: bool = True,
) -> GeneratedProgram:
    """Generate the transformed program for a legal matrix.

    ``require_legal=False`` skips the Definition-6 dependence test (the
    Figure-5 block structure is still required) and generates code for a
    transformation *known or suspected to be illegal*.  The result is in
    general semantically wrong; the differential fuzzer uses this to
    confirm that the equivalence oracles catch what the legality test
    rejects (the second side of the Theorem-2 contract).
    """
    layout = Layout(program)
    if deps is None:
        deps = analyze_dependences(program)
    if require_legal:
        report = assert_legal(layout, matrix, deps)
    else:
        report = check_legality(layout, matrix, deps)
        if report.structure is None:
            raise CodegenError(
                "matrix lacks the Figure-5 block structure; cannot generate code "
                "even unchecked"
            )
        counter("codegen.unchecked_generations")
    structure = report.structure
    assert structure is not None and structure.new_layout is not None
    skeleton = structure.skeleton
    new_layout = structure.new_layout
    assert skeleton is not None

    # ---- 1. name every new loop node -------------------------------------
    taken = set(program.params)
    name_of: dict[tuple[int, ...], str] = {}
    old_loop_cols = {
        layout.index(c): c.var for c in layout.loop_coords()
    }
    for coord in new_layout.loop_coords():
        pos = new_layout.index(coord)
        row = matrix[pos]
        nz = [(j, v) for j, v in enumerate(row) if v != 0]
        if len(nz) == 1 and nz[0][1] == 1 and nz[0][0] in old_loop_cols:
            candidate = old_loop_cols[nz[0][0]]
        else:
            candidate = coord.var
        chosen = candidate
        k = 2
        while chosen in taken:
            chosen = f"{candidate}{k}"
            k += 1
        taken.add(chosen)
        name_of[coord.path] = chosen

    # ---- 2. per-statement plans ------------------------------------------
    plans: dict[str, StatementPlan] = {}
    all_exact = True
    for stmt in program.statements():
        label = stmt.label
        ps = per_statement_transformation(layout, matrix, structure, label)
        k = len(ps.old_vars)
        old_positions = layout.surrounding_loop_positions(label)
        unsat = [
            project_dep(d.entries, old_positions) for d in report.unsatisfied(label)
        ]
        extra = augment_rows(ps.linear, unsat) if k else []
        if extra:
            counter("codegen.augment_rows", len(extra))

        shared_paths = [c.path for c in new_layout.surrounding_loop_coords(label)]
        loop_names = [name_of[p] for p in shared_paths]
        extra_names = []
        for row in extra:
            h = row.index(1)
            base = f"{ps.old_vars[h]}2"
            cand, k2 = base, 2
            while cand in taken:
                cand = f"{base}_{k2}"
                k2 += 1
            taken.add(cand)
            extra_names.append(cand)

        names = loop_names + extra_names
        exprs = list(ps.exprs) + [
            LinExpr({ps.old_vars[row.index(1)]: 1}) for row in extra
        ]
        rows_linear = [[e[v] for v in ps.old_vars] for e in exprs]
        offsets = [e.constant for e in exprs]

        # N_S: first maximal independent subset of rows, top-down (Def. 8)
        kept: list[int] = []
        current = IntMatrix.zeros(0, k) if k else IntMatrix([])
        for i, r in enumerate(rows_linear):
            if k == 0:
                break
            cand = current.with_row(r) if kept else IntMatrix([r])
            if cand.rank() > len(kept):
                current = cand
                kept.append(i)
            if len(kept) == k:
                break
        if k and len(kept) != k:
            raise CodegenError(
                f"per-statement transformation of {label} has rank {len(kept)} < {k} "
                "even after augmentation"
            )
        nonsingular = current if k else None
        rewrite: dict[str, Expr] = {}
        rewrite_affine: dict[str, LinExpr] = {}
        lattice = None
        lattice_conditions: tuple = ()
        if k:
            det = nonsingular.det()
            if det in (1, -1):
                ninv = nonsingular.inverse_int()
                # x = N^{-1} (y_kept - c_kept)
                for i, old_v in enumerate(ps.old_vars):
                    expr = LinExpr({}, 0)
                    for j, row_idx in enumerate(kept):
                        coef = ninv[i, j]
                        if coef:
                            expr = expr + coef * (var(names[row_idx]) - offsets[row_idx])
                    rewrite[old_v] = affine_to_expr(expr)
                    rewrite_affine[old_v] = expr
            else:
                # Non-unimodular N_S (e.g. loop scaling): the image is a
                # proper sublattice.  Column HNF N_S U = H gives exact
                # back-substitution x = U z with z solved by forward
                # substitution through H, plus one divisibility guard
                # per non-unit pivot (the Li-Pingali [10] treatment).
                rewrite, lattice_conditions, lattice = _lattice_rewrite(
                    nonsingular, [names[i] for i in kept],
                    [offsets[i] for i in kept], ps.old_vars,
                )

        # scanning polyhedron over the new names
        domain = statement_domain(program, label, _OLD)
        equalities = []
        old_rename = {v: _OLD + v for v in ps.old_vars}
        for nm, e in zip(names, exprs):
            equalities.append(eq(var(nm), e.rename(old_rename)))
        combined = domain.conjoin(System(equalities))
        with span("codegen.project", stmt=label):
            scan, exact = combined.project_onto(list(program.params) + names)
        counter("codegen.statements_planned")
        if not exact:
            counter("codegen.inexact_projections")
        all_exact = all_exact and exact
        try:
            bounds = extract_bounds(scan, names, program.params)
        except PolyhedronError as exc:
            raise CodegenError(f"cannot bound the new loops of {label}: {exc}") from exc

        plans[label] = StatementPlan(
            label=label,
            per_statement=ps,
            extra_rows=extra,
            loop_names=loop_names,
            extra_names=extra_names,
            nonsingular=nonsingular,
            kept_rows=kept,
            bounds=bounds,
            guards=[],
            rewrite=rewrite,
            rewrite_affine=rewrite_affine,
            lattice=lattice,
            lattice_conditions=lattice_conditions,
            exact=exact,
        )

    # ---- 3. emit the new AST ----------------------------------------------
    def emit(node: Node, path: tuple[int, ...], depth: int) -> Node:
        counter("codegen.ast_nodes")
        if isinstance(node, Statement):
            plan = plans[node.label]
            inner: Node = node.substituted(plan.rewrite)
            n_shared = len(plan.loop_names)
            conds = _residual_guards(plan, plans, skeleton, name_of, depth_of_stmt=n_shared)
            all_conds = tuple(plan.lattice_conditions) + tuple(conds)
            # a condition mentioning an augmented loop variable is only
            # evaluable inside that loop; the rest hoist above them
            extra = set(plan.extra_names)
            inner_conds = tuple(
                c for c in all_conds if set(c.expr.variables()) & extra
            )
            outer_conds = tuple(c for c in all_conds if c not in inner_conds)
            if all_conds:
                counter("codegen.guards_emitted", len(all_conds))
            if inner_conds:
                inner = Guard(inner_conds, (inner,))
            # augmented innermost loops, inside-out
            for lvl in reversed(range(n_shared, n_shared + len(plan.extra_names))):
                lb = plan.bounds[lvl]
                inner = Loop(
                    plan.extra_names[lvl - n_shared],
                    BoundSet(lb.lowers, True),
                    BoundSet(lb.uppers, False),
                    (inner,),
                )
            if outer_conds:
                inner = Guard(outer_conds, (inner,))
            return inner
        assert isinstance(node, Loop)
        under = [s.label for s in node.statements()]
        lowers = []
        uppers = []
        seen = set()
        for lab in under:
            plan = plans[lab]
            lb = plan.bounds[depth]
            key = (lb.lowers, lb.uppers)
            if key in seen:
                continue
            seen.add(key)
            if not lb.lowers or not lb.uppers:
                raise CodegenError(f"new loop for {lab} at level {depth} is unbounded")
            lowers.append(BoundSet(lb.lowers, True))
            uppers.append(BoundSet(lb.uppers, False))
        body = tuple(
            emit(child, path + (j,), depth + 1) for j, child in enumerate(node.body)
        )
        return Loop(
            name_of[path],
            simplify_hull(HullBound(tuple(lowers), True)),
            simplify_hull(HullBound(tuple(uppers), False)),
            body,
        )

    with span("codegen.emit"):
        new_body = tuple(emit(child, (j,), 0) for j, child in enumerate(skeleton.body))
    out = Program(
        new_body, program.params, program.arrays, name or (program.name + "_gen")
    )
    return GeneratedProgram(out, report, plans, all_exact)


def _residual_guards(
    plan: StatementPlan,
    plans: dict[str, StatementPlan],
    skeleton: Program,
    name_of: dict[tuple[int, ...], str],
    depth_of_stmt: int,
) -> list[Constraint]:
    """Guard conditions for a statement: its own per-level bounds that
    the shared (hull) loop does not already enforce.

    A bound term is enforced by the loop iff every statement sharing the
    loop has that same term at that level; otherwise the hull is wider
    and the term becomes a guard condition.
    """
    conds: list[Constraint] = []
    # which statements share each of this statement's loops?
    sk_layout_paths = {s.label: skeleton._find_path(s.label) for s in skeleton.statements()}

    my_path = sk_layout_paths[plan.label]
    my_loops = [n for n in my_path if isinstance(n, Loop)]
    for lvl in range(depth_of_stmt):
        loop_node = my_loops[lvl]
        sharing = [s.label for s in loop_node.statements()]
        lb = plan.bounds[lvl]
        vname = plan.loop_names[lvl]
        for term in lb.lowers:
            if _term_shared(term, lvl, sharing, plans, lower=True):
                continue
            # v >= ceil(expr/div)  <=>  div*v - expr >= 0
            conds.append(ge0(term.div * var(vname) - term.expr))
        for term in lb.uppers:
            if _term_shared(term, lvl, sharing, plans, lower=False):
                continue
            conds.append(ge0(term.expr - term.div * var(vname)))
    return _dedup_constraints(conds)


def _term_shared(
    term: Bound, lvl: int, sharing: list[str], plans: dict[str, StatementPlan], lower: bool
) -> bool:
    for lab in sharing:
        other = plans[lab].bounds[lvl]
        terms = other.lowers if lower else other.uppers
        if term not in terms:
            return False
    return True


def _dedup_constraints(conds: list[Constraint]) -> list[Constraint]:
    out: list[Constraint] = []
    for c in conds:
        if c.is_trivially_true():
            continue
        if c not in out:
            out.append(c)
    return out


def _lattice_rewrite(nonsingular, kept_names, kept_offsets, old_vars):
    """Back-substitution and divisibility conditions for a
    non-unimodular per-statement matrix.

    Returns ``(rewrite, conditions, lattice)`` where ``rewrite`` maps
    each old loop variable to an expression tree over the kept new
    variables (containing exact integer divisions), ``conditions`` are
    the :class:`~repro.ir.ast.ExprCondition` divisibility guards, and
    ``lattice = (H, U, offsets, kept_names)`` supports the inverse
    environment map.
    """
    from repro.ir.ast import ExprCondition
    from repro.ir.expr import BinOp, IntLit, VarRef
    from repro.linalg.hermite import hnf_column

    h, u = hnf_column(nonsingular)
    k = len(old_vars)
    # z_j solved top-down: z_j = (y_j - c_j - sum_{i<j} H[j,i] z_i) / H[j,j]
    z_exprs: list = []
    conditions: list = []
    for j in range(k):
        residual: object = VarRef(kept_names[j])
        if kept_offsets[j]:
            residual = BinOp("-", residual, IntLit(kept_offsets[j]))
        for i in range(j):
            coef = h[j, i]
            if coef:
                residual = BinOp("-", residual, BinOp("*", IntLit(coef), z_exprs[i]))
        piv = h[j, j]
        if piv == 0:  # pragma: no cover - nonsingular guarantees pivots
            raise CodegenError("zero pivot in HNF of a nonsingular matrix")
        if piv != 1:
            conditions.append(
                ExprCondition(BinOp("%", residual, IntLit(piv)), "==")
            )
            z_exprs.append(BinOp("/", residual, IntLit(piv)))
        else:
            z_exprs.append(residual)

    rewrite: dict = {}
    for i, old_v in enumerate(old_vars):
        expr: object = IntLit(0)
        for j in range(k):
            coef = u[i, j]
            if coef:
                term = BinOp("*", IntLit(coef), z_exprs[j]) if coef != 1 else z_exprs[j]
                expr = term if (isinstance(expr, IntLit) and expr.value == 0) else BinOp("+", expr, term)
        rewrite[old_v] = expr

    lattice = (h, u, tuple(kept_offsets), tuple(kept_names))
    return rewrite, tuple(conditions), lattice


def _lattice_env_map(plan, env) -> tuple[int, ...]:
    """Exact inverse of a non-unimodular per-statement map."""
    h, u, offsets, kept_names = plan.lattice
    k = len(kept_names)
    z = [0] * k
    for j in range(k):
        residual = int(env[kept_names[j]]) - offsets[j]
        for i in range(j):
            residual -= h[j, i] * z[i]
        piv = h[j, j]
        q, rem = divmod(residual, piv)
        if rem:
            raise CodegenError("environment not on the image lattice")
        z[j] = q
    return tuple(
        sum(u[i, j] * z[j] for j in range(k)) for i in range(len(plan.per_statement.old_vars))
    )
