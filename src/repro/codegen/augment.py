"""Augmentation with extra loops (paper §5.4, Figure 7).

When a statement's per-statement transformation is rank-deficient,
several source instances collapse onto one target instance of the new
AST's loops; extra innermost loops must enumerate them, and those loops
must *carry* every self-dependence the transformation left unsatisfied.
The procedure is Li–Pingali's completion: repeatedly append the unit
vector of the first coordinate where some remaining unsatisfied
dependence is nonzero, then top up with arbitrary rank-increasing unit
rows.
"""

from __future__ import annotations

from repro.dependence.entry import DepEntry
from repro.linalg.intmat import IntMatrix
from repro.util.errors import CodegenError

__all__ = ["augment_rows", "project_dep"]


def project_dep(entries: tuple[DepEntry, ...], positions: list[int]) -> tuple[DepEntry, ...]:
    """Project a dependence vector onto selected coordinate positions."""
    return tuple(entries[i] for i in positions)


def _height(vec: tuple[DepEntry, ...]) -> int | None:
    """Index of the first possibly-nonzero entry (paper's Height)."""
    for i, e in enumerate(vec):
        if not e.is_zero():
            return i
    return None


def augment_rows(
    linear: IntMatrix, unsatisfied: list[tuple[DepEntry, ...]]
) -> list[tuple[int, ...]]:
    """Rows to append below ``linear`` (Figure 7's Complete).

    ``linear`` is the statement's per-statement matrix (rows may be
    dependent); ``unsatisfied`` are the self-dependences projected onto
    the statement's old loop coordinates.  Returns unit rows, outermost
    first, such that the stacked matrix has full column rank and every
    unsatisfied dependence is carried lexicographically by the appended
    rows.
    """
    k = linear.ncols
    if k == 0:
        return []
    current = linear
    rank = current.rank()
    added: list[tuple[int, ...]] = []
    pending = [list(v) for v in unsatisfied]

    while pending and rank < k:
        heights = [_height(tuple(v)) for v in pending]
        live = [h for h in heights if h is not None]
        if not live:
            break
        h = min(live)
        # Carrying at h requires every dependence with height h to be
        # non-negative there (true: unsatisfied deps are lexicographically
        # positive in the source program).
        for v, hh in zip(pending, heights):
            if hh == h and v[h].may_be_negative():
                raise CodegenError(
                    "unsatisfied self-dependence is not lexicographically positive; "
                    "cannot augment"
                )
        unit = tuple(1 if i == h else 0 for i in range(k))
        candidate = current.with_row(unit)
        if candidate.rank() > rank:
            current = candidate
            rank += 1
            added.append(unit)
        # Dependences definitely carried at h are done; '0+' entries may
        # fall through, so zero them out and keep the vector.
        remaining = []
        for v, hh in zip(pending, heights):
            if hh is None:
                continue
            if hh == h:
                if v[h].definitely_positive():
                    continue
                v = list(v)
                v[h] = DepEntry.const(0)
                if _height(tuple(v)) is None:
                    continue
            remaining.append(v)
        pending = remaining

    if pending and rank >= k and any(_height(tuple(v)) is not None for v in pending):
        # rank is full but some dependence is still uncarried by the added
        # rows alone; the nonsingular rows above will order these (they
        # are carried by non-augmented loops only if M said so).  Per
        # Theorem 3 this cannot happen for truly unsatisfied deps.
        raise CodegenError("could not carry all unsatisfied self-dependences")

    # top up to full rank with the earliest unit vectors that help
    for i in range(k):
        if rank == k:
            break
        unit = tuple(1 if j == i else 0 for j in range(k))
        candidate = current.with_row(unit)
        if candidate.rank() > rank:
            current = candidate
            rank += 1
            added.append(unit)
    if rank != k:  # pragma: no cover - unit vectors always complete
        raise CodegenError("failed to augment per-statement transformation to full rank")
    return added
