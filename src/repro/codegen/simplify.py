"""Cleanup passes over generated code (the paper's §5.5 "standard
optimizations").

* :func:`simplify_program` — prune dominated bound terms, fold constant
  min/max, drop guard conditions implied by the enclosing loops and
  parameter assumptions, and fold constant arithmetic in expressions.
* :func:`peel_iteration` — split a boundary iteration off a loop so
  equality-guarded statements (``if (I == 0)``) become straight-line
  code, reproducing the paper's simplified §5.4 output.
"""

from __future__ import annotations

from repro.ir.ast import (
    BoundSet, Guard, HullBound, Loop, Node, Program, Statement, simplify_hull,
)
from repro.ir.expr import (
    ArrayRef, BinOp, Call, Expr, FloatLit, IntLit, UnaryOp, VarRef,
)
from repro.polyhedra.affine import var
from repro.polyhedra.bounds import Bound
from repro.polyhedra.constraint import Constraint, ge0
from repro.polyhedra.system import Feasibility, System
from repro.util.errors import CodegenError, IRError

__all__ = ["simplify_program", "peel_iteration", "fold_expr"]


# --------------------------------------------------------------------------
# expression folding
# --------------------------------------------------------------------------

def fold_expr(e: Expr) -> Expr:
    """Constant-fold and normalize an expression tree (0+x, 1*x, literal
    arithmetic on ints)."""
    if isinstance(e, (IntLit, FloatLit, VarRef)):
        return e
    if isinstance(e, ArrayRef):
        return ArrayRef(e.array, [fold_expr(s) for s in e.subscripts])
    if isinstance(e, Call):
        return Call(e.func, [fold_expr(a) for a in e.args])
    if isinstance(e, UnaryOp):
        inner = fold_expr(e.operand)
        if isinstance(inner, IntLit):
            return IntLit(-inner.value)
        if isinstance(inner, UnaryOp):
            return inner.operand
        return UnaryOp("-", inner)
    if isinstance(e, BinOp):
        l, r = fold_expr(e.left), fold_expr(e.right)
        if isinstance(l, IntLit) and isinstance(r, IntLit):
            if e.op == "+":
                return IntLit(l.value + r.value)
            if e.op == "-":
                return IntLit(l.value - r.value)
            if e.op == "*":
                return IntLit(l.value * r.value)
        if e.op == "+":
            if isinstance(l, IntLit) and l.value == 0:
                return r
            if isinstance(r, IntLit) and r.value == 0:
                return l
            if isinstance(r, UnaryOp):
                return fold_expr(BinOp("-", l, r.operand))
            if isinstance(r, IntLit) and r.value < 0:
                return BinOp("-", l, IntLit(-r.value))
        if e.op == "-" and isinstance(r, IntLit) and r.value == 0:
            return l
        if e.op == "*":
            if isinstance(l, IntLit) and l.value == 1:
                return r
            if isinstance(r, IntLit) and r.value == 1:
                return l
        return BinOp(e.op, l, r)
    return e


# --------------------------------------------------------------------------
# bound and guard pruning
# --------------------------------------------------------------------------

def _context_constraints(loops: list[Loop], assume: System) -> System:
    """Affine facts guaranteed inside the given loop nest: parameter
    assumptions plus, per loop, the bound terms shared by every hull
    group (those are enforced for every statement)."""
    cs = list(assume.constraints)
    for loop in loops:
        for bound, lower in ((loop.lower, True), (loop.upper, False)):
            groups = bound.groups if isinstance(bound, HullBound) else (bound,)
            shared = set(groups[0].terms)
            for g in groups[1:]:
                shared &= set(g.terms)
            for t in shared:
                # v >= ceil(e/d) => d*v - e >= 0 ; v <= floor(e/d) => e - d*v >= 0
                if lower:
                    cs.append(ge0(t.div * var(loop.var) - t.expr))
                else:
                    cs.append(ge0(t.expr - t.div * var(loop.var)))
    return System(cs)


def _implies(context: System, c: Constraint) -> bool:
    """True when the context provably implies constraint ``c``."""
    if c.is_trivially_true():
        return True
    if c.is_equality():
        a = context.and_(ge0(c.expr - 1)).feasible() is Feasibility.INFEASIBLE
        b = context.and_(ge0(-c.expr - 1)).feasible() is Feasibility.INFEASIBLE
        return a and b
    return context.and_(ge0(-c.expr - 1)).feasible() is Feasibility.INFEASIBLE


def _bound_value_ge(context: System, a: Bound, b: Bound) -> bool:
    """Provably a >= b for all context points (both same polarity)."""
    # a >= b  <=>  not exists point with a <= b - 1.  With divisors this
    # is conservative: compare d_b*e_a >= d_a*e_b  =>  e_a/d_a >= e_b/d_b.
    diff = b.div * a.expr - a.div * b.expr
    return context.and_(ge0(-diff - 1)).feasible() is Feasibility.INFEASIBLE


def _prune_boundset(bs: BoundSet, context: System) -> BoundSet:
    terms = list(bs.terms)
    changed = True
    while changed and len(terms) > 1:
        changed = False
        for t in list(terms):
            others = [o for o in terms if o is not t]
            # lower bound: max(...) — t is redundant if some other >= t
            # upper bound: min(...) — t is redundant if some other <= t
            if bs.is_lower and any(_bound_value_ge(context, o, t) for o in others):
                terms.remove(t)
                changed = True
                break
            if not bs.is_lower and any(_bound_value_ge(context, t, o) for o in others):
                terms.remove(t)
                changed = True
                break
    return BoundSet(tuple(terms), bs.is_lower)


def _prune_bound(bound, context: System):
    if isinstance(bound, HullBound):
        groups = [_prune_boundset(g, context) for g in bound.groups]
        # hull lower = min over groups: drop group g if another group g'
        # is provably <= g (it determines the min); dually for upper.
        kept = list(groups)
        changed = True
        while changed and len(kept) > 1:
            changed = False
            for g in list(kept):
                others = [o for o in kept if o is not g]
                if len(g.terms) != 1:
                    continue
                for o in others:
                    if len(o.terms) != 1:
                        continue
                    if bound.is_lower and _bound_value_ge(context, g.terms[0], o.terms[0]):
                        kept.remove(g)
                        changed = True
                        break
                    if not bound.is_lower and _bound_value_ge(context, o.terms[0], g.terms[0]):
                        kept.remove(g)
                        changed = True
                        break
                if changed:
                    break
        return simplify_hull(HullBound(tuple(kept), bound.is_lower))
    return _prune_boundset(bound, context)


def simplify_program(program: Program, assume: System | None = None) -> Program:
    """Apply all cleanup passes; ``assume`` adds parameter facts such as
    ``N >= 1`` that license pruning (the paper's examples assume them
    silently)."""
    assume = assume or System()

    def walk(node: Node, loops: list[Loop]) -> Node | None:
        if isinstance(node, Statement):
            lhs = fold_expr(node.lhs)
            assert isinstance(lhs, (ArrayRef, VarRef))
            return Statement(node.label, lhs, fold_expr(node.rhs))
        if isinstance(node, Guard):
            from repro.ir.ast import ExprCondition

            context = _context_constraints(loops, assume)
            conds = [
                c for c in node.conditions
                if isinstance(c, ExprCondition) or not _implies(context, c)
            ]
            body = [walk(c, loops) for c in node.body]
            body = [b for b in body if b is not None]
            if not body:
                return None
            if not conds:
                return body[0] if len(body) == 1 else Guard((), tuple(body))
            affine_conds = [c for c in conds if isinstance(c, Constraint)]
            if any(
                context.and_(c).feasible() is Feasibility.INFEASIBLE
                for c in affine_conds
            ):
                return None  # guard can never hold
            return Guard(tuple(conds), tuple(body))
        assert isinstance(node, Loop)
        context = _context_constraints(loops, assume)
        lower = _prune_bound(node.lower, context)
        upper = _prune_bound(node.upper, context)
        new_loop = Loop(node.var, lower, upper, node.body, node.step)
        body = []
        for c in node.body:
            w = walk(c, loops + [new_loop])
            if w is None:
                continue
            if isinstance(w, Guard) and not w.conditions:
                body.extend(w.body)
            else:
                body.append(w)
        if not body:
            return None
        return new_loop.with_body(tuple(body))

    out = []
    for n in program.body:
        w = walk(n, [])
        if w is not None:
            if isinstance(w, Guard) and not w.conditions:
                out.extend(w.body)
            else:
                out.append(w)
    return program.with_body(tuple(out), name=program.name + "_simplified")


# --------------------------------------------------------------------------
# iteration peeling (loop splitting)
# --------------------------------------------------------------------------

def peel_iteration(program: Program, loop_path: tuple[int, ...], which: str = "upper") -> Program:
    """Split the boundary iteration off the loop at ``loop_path``.

    ``do v = lo, hi { B }`` becomes ``do v = lo, hi-1 { B }`` followed by
    ``B[v := hi]`` (for ``which="upper"``; symmetric for ``"lower"``).
    The boundary bound must be a single affine term.  Combined with
    :func:`simplify_program` this turns equality-guarded singular-loop
    code into the paper's simplified §5.5 form.
    """
    if which not in ("upper", "lower"):
        raise CodegenError("which must be 'upper' or 'lower'")

    def locate(body: tuple[Node, ...], rest: tuple[int, ...]) -> tuple[Node, ...]:
        j = rest[0]
        node = body[j]
        if len(rest) == 1:
            if not isinstance(node, Loop):
                raise CodegenError(f"node at {loop_path} is not a loop")
            replaced = _peel(node, which)
            return body[:j] + tuple(replaced) + body[j + 1 :]
        if not isinstance(node, Loop):
            raise CodegenError(f"path {loop_path} does not descend through loops")
        return body[:j] + (node.with_body(locate(node.body, rest[1:])),) + body[j + 1 :]

    return program.with_body(locate(program.body, loop_path), name=program.name + "_peeled")


def _peel(loop: Loop, which: str) -> list[Node]:
    if loop.step != 1:
        raise CodegenError("peeling requires a unit-step loop")
    boundary_bound = loop.upper if which == "upper" else loop.lower
    try:
        boundary = boundary_bound.single_affine()
    except IRError as exc:
        raise CodegenError(f"cannot peel: boundary bound {boundary_bound} is not affine") from exc

    from repro.ir.expr import affine_to_expr

    sub = {loop.var: affine_to_expr(boundary)}
    peeled: list[Node] = [_relabel(child.substituted(sub)) for child in loop.body]

    if which == "upper":
        new_upper = BoundSet.affine(boundary - 1, False)
        trimmed = Loop(loop.var, loop.lower, new_upper, loop.body, loop.step)
        return [trimmed] + peeled
    new_lower = BoundSet.affine(boundary + 1, True)
    trimmed = Loop(loop.var, new_lower, loop.upper, loop.body, loop.step)
    return peeled + [trimmed]


def _relabel(node: Node) -> Node:
    """Give peeled statement copies fresh labels (``<label>_p``)."""
    if isinstance(node, Statement):
        return Statement(node.label + "_p", node.lhs, node.rhs)
    if isinstance(node, Loop):
        return node.with_body(tuple(_relabel(c) for c in node.body))
    if isinstance(node, Guard):
        return Guard(node.conditions, tuple(_relabel(c) for c in node.body))
    raise CodegenError(f"cannot relabel node {node!r}")  # pragma: no cover
