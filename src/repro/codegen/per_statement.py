"""Per-statement transformations (paper Definition 7).

A transformation matrix ``M`` over the instance-vector space induces,
for each statement S nested in k loops, an *affine* map from S's old
iteration vector to the labels of the loops surrounding S in the new
AST: the rows of ``M`` at the new surrounding-loop positions, applied
to S's symbolic instance vector.  (The paper's examples are purely
linear; statement alignment adds the constant part.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.instance.layout import Layout
from repro.instance.vectors import symbolic_vector
from repro.legality.structure import NewStructure
from repro.linalg.intmat import IntMatrix
from repro.polyhedra.affine import LinExpr
from repro.util.errors import CodegenError

__all__ = ["PerStatement", "per_statement_transformation"]


@dataclass(frozen=True)
class PerStatement:
    """The affine per-statement map of one statement.

    ``exprs[i]`` is the affine expression (over the statement's *old*
    loop variables) giving the label of the i-th new surrounding loop,
    outside-in.  ``linear`` is the paper's k×k per-statement matrix
    ``M_S`` (rows = new loops, columns = old loop variables outside-in)
    and ``offsets`` its constant part.
    """

    label: str
    old_vars: tuple[str, ...]
    exprs: tuple[LinExpr, ...]
    linear: IntMatrix
    offsets: tuple[int, ...]

    @property
    def rank(self) -> int:
        return self.linear.rank()

    def is_singular(self) -> bool:
        return self.rank < len(self.old_vars)


def per_statement_transformation(
    layout: Layout, matrix: IntMatrix, structure: NewStructure, label: str
) -> PerStatement:
    """Extract the per-statement transformation of ``label`` (Def. 7)."""
    new_layout = structure.new_layout
    if new_layout is None:  # pragma: no cover - defensive
        raise CodegenError("structure has no recovered layout")
    old_vars = tuple(c.var for c in layout.surrounding_loop_coords(label))
    sym = symbolic_vector(layout, label)
    new_positions = new_layout.surrounding_loop_positions(label)

    exprs: list[LinExpr] = []
    for pos in new_positions:
        row = matrix[pos]
        acc = LinExpr({}, 0)
        for coef, entry in zip(row, sym):
            if coef:
                acc = acc + entry * coef
        exprs.append(acc)

    linear_rows = [[e[v] for v in old_vars] for e in exprs]
    offsets = tuple(e.constant for e in exprs)
    for e in exprs:
        extra = e.variables() - set(old_vars)
        if extra:  # pragma: no cover - symbolic vectors only use own vars
            raise CodegenError(f"per-statement expr of {label} references {sorted(extra)}")
    return PerStatement(label, old_vars, tuple(exprs), IntMatrix(linear_rows), offsets)
