"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------

show        parse a program, print it with its instance-vector layout
deps        print the dependence matrix (``--refine`` for value-based)
check       test a transformation spec for legality
transform   generate code for a legal transformation spec
complete    complete a partial transformation (lead loop) and generate
run         interpret a program and print final array contents
            (``--tuned`` applies the cached best schedule)
tune        autotune: search legal schedules, measure the best with a
            real backend, persist the winner (docs/AUTOTUNING.md)
parallel    per-loop DOALL verdicts
report      full analysis report (deps, DOALL, distribution plan, search)
explain     decision provenance: why legality / completion /
            vectorization / tuning accepted or rejected each candidate
fuzz        differential fuzzing of the pipeline against the trace
            oracles, with shrinking and a regression corpus

The pipeline commands (deps, check, transform, complete, run, report)
accept ``--profile`` (print a hierarchical span tree and metrics table
to stderr) and ``--trace-json PATH`` (write the spans and metrics as
JSON lines); see :mod:`repro.obs` and docs/OBSERVABILITY.md.

Transformation specs are semicolon-separated elementary transformations;
structural ``tile``/``fuse`` ops rewrite the program and must come first
(docs/TILING.md)::

    tile(I,16); fuse(J); permute(I,J); skew(I,J,-1); align(S1,I,1)
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

from repro import obs
from repro.analysis import parallel_loops
from repro.codegen import generate_code
from repro.codegen.simplify import simplify_program
from repro.completion import complete_transformation
from repro.dependence import analyze_dependences, refine_dependences
from repro.instance import Layout, symbolic_vector
from repro.interp import execute
from repro.ir import Program, parse_program, program_to_str
from repro.legality import check_legality
from repro.linalg import IntMatrix
from repro.polyhedra import System, ge, var
from repro.backend import BACKENDS as _BACKEND_CHOICES
from repro.transform.spec import parse_schedule, parse_spec
from repro.util.errors import ReproError

__all__ = ["main", "parse_spec"]


def _load(path: str):
    with open(path) as f:
        src = f.read()
    return parse_program(src, path)


def _load_flexible(name: str):
    """Resolve a program argument: a file path, a path missing its
    ``.loop`` extension, or a bundled kernel name (``repro.kernels``)."""
    import os

    for candidate in (name, name + ".loop"):
        if os.path.isfile(candidate):
            return _load(candidate)
    base = os.path.basename(name)
    from repro import kernels

    factory = getattr(kernels, base, None)
    if callable(factory) and not base.startswith("_"):
        try:
            program = factory()
        except TypeError:
            program = None
        if isinstance(program, Program):
            return program
    raise ReproError(f"no such file or bundled kernel: {name!r}")


def _params(pairs: list[str]) -> dict[str, int]:
    out = {}
    for p in pairs or []:
        for item in p.split(","):
            if not item:
                continue
            k, _, v = item.partition("=")
            out[k.strip()] = int(v)
    return out


def cmd_show(args) -> int:
    program = _load(args.file)
    print(program_to_str(program))
    layout = Layout(program)
    print("\ninstance-vector layout:")
    print(layout.describe())
    print("\ngeneral instance vectors:")
    for label in layout.statement_labels():
        vec = [str(e) for e in symbolic_vector(layout, label)]
        print(f"  {label}: [{', '.join(vec)}]")
    return 0


def cmd_deps(args) -> int:
    program = _load(args.file)
    deps = analyze_dependences(program, jobs=args.jobs)
    if args.refine:
        samples = [_params([s]) or {"N": 6} for s in (args.param or ["N=6", "N=9"])]
        deps = refine_dependences(program, deps, samples=samples)
    print(deps.to_str())
    print()
    print(deps.summary())
    return 0


def cmd_check(args) -> int:
    program = _load(args.file)
    schedule = parse_schedule(program, args.spec)
    if schedule.is_structural:
        verdict = "legal" if schedule.structural_legal else "ILLEGAL"
        print(f"structural prefix {'; '.join(schedule.structural)}: {verdict}")
    report = check_legality(schedule.layout, schedule.matrix, schedule.deps)
    print(report)
    return 0 if report.legal and schedule.structural_legal else 1


def cmd_transform(args) -> int:
    program = _load(args.file)
    schedule = parse_schedule(program, args.spec)
    if not schedule.structural_legal:
        raise ReproError(
            f"structural prefix {'; '.join(schedule.structural)} fails the "
            "Theorem-2 fusion test"
        )
    g = generate_code(schedule.program, schedule.matrix, schedule.deps)
    out = g.program
    if args.simplify:
        assume = System([ge(var(p), 1) for p in program.params])
        out = simplify_program(out, assume)
    text = program_to_str(out)
    if args.output:
        with open(args.output, "w") as f:
            f.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def cmd_complete(args) -> int:
    program = _load(args.file)
    layout = Layout(program)
    deps = analyze_dependences(program, jobs=args.jobs)
    n = layout.dimension
    pos = layout.loop_index_by_var(args.lead)
    partial = [[1 if j == pos else 0 for j in range(n)]]
    result = complete_transformation(program, partial, deps, layout=layout)
    print("completed matrix:")
    print(result.matrix)
    g = generate_code(program, result.matrix, deps)
    print()
    print(program_to_str(g.program))
    return 0


def _tuned_program(program, params, cache_dir):
    """Swap in the cached tuned schedule for ``program`` or fail loudly."""
    from repro.tune import TuneStore, apply_entry, load_tuned
    from repro.util.errors import TuneError

    store = TuneStore(cache_dir) if cache_dir else TuneStore()
    entry = load_tuned(program, params, store=store)
    if entry is None:
        raise TuneError(
            f"no cached tuning entry for {program.name!r} at params {params} "
            f"in {store.root} — run `repro tune` first (same --params)"
        )
    return apply_entry(entry), entry


def cmd_run(args) -> int:
    program = _load_flexible(args.file)
    trace = None
    if getattr(args, "tuned", False):
        from repro.tune.driver import DEFAULT_PARAM

        params = _params(args.param) or {p: DEFAULT_PARAM for p in program.params}
        program, entry = _tuned_program(program, params, args.cache_dir)
        w = entry["winner"]
        print(f"applying tuned schedule: {w['description']} "
              f"(measured {w['seconds']:.6f}s on {entry['backend']})")
        args.param = [f"{k}={v}" for k, v in params.items()]
    if args.backend == "reference":
        store, trace = execute(program, _params(args.param), trace=args.trace)
    else:
        if args.trace:
            raise ReproError("--trace requires --backend reference")
        from repro.backend import run as backend_run

        store = backend_run(program, _params(args.param), backend=args.backend,
                            par_jobs=getattr(args, "par_jobs", None))
    for name, arr in store.arrays.items():
        print(f"{name} =")
        with np.printoptions(precision=4, suppress=True, linewidth=100):
            print(arr)
    if trace is not None:
        print(f"\n{len(trace)} statement instances executed")
    return 0


def cmd_bench(args) -> int:
    """Wall-clock comparison of the execution backends on one program,
    with every backend's outputs cross-checked against the reference."""
    from repro.backend import BACKENDS, bench_backends

    program = _load_flexible(args.file)
    params = _params(args.param) or {p: 40 for p in program.params}
    backends = tuple(args.backend) if args.backend else BACKENDS
    rows = bench_backends(program, params, backends=backends, repeat=args.repeat,
                          par_jobs=getattr(args, "par_jobs", None))
    print(f"program {program.name}  params {params}  (best of {args.repeat})")
    print(f"{'backend':<12} {'seconds':>12} {'speedup':>9}  ok")
    failed = False
    for r in rows:
        if r.error:
            print(f"{r.backend:<12} {'-':>12} {'-':>9}  error: {r.error}")
            failed = True
            continue
        speed = f"{r.speedup:.2f}x" if r.speedup is not None else "1.00x"
        ok = "-" if r.ok is None else ("yes" if r.ok else "NO")
        print(f"{r.backend:<12} {r.seconds:>12.6f} {speed:>9}  {ok}")
        if r.ok is False:
            failed = True
    if args.json:
        import json

        payload = [
            {
                "backend": r.backend,
                "seconds": None if r.error else r.seconds,
                "speedup": r.speedup,
                "ok": r.ok,
                "error": r.error,
            }
            for r in rows
        ]
        with open(args.json, "w") as f:
            json.dump({"program": program.name, "params": params, "rows": payload}, f, indent=2)
        print(f"wrote {args.json}")
    return 1 if failed else 0


def cmd_tune(args) -> int:
    """Autotune a program: search the legal transformation space, rank
    with the static cost model, measure the top survivors on the chosen
    backend, and persist the winner (docs/AUTOTUNING.md)."""
    from repro.tune import TuneStore, tune
    from repro.transform.tiling import TILE_LADDER

    program = _load_flexible(args.file)
    params = _params(args.param) or None
    store = TuneStore(args.cache_dir) if args.cache_dir else TuneStore()
    tile_sizes = None
    if args.tile_sizes:
        tile_sizes = tuple(
            int(s) for chunk in args.tile_sizes for s in chunk.split(",") if s
        )
    elif args.tile:
        tile_sizes = TILE_LADDER
    result = tune(
        program,
        params,
        backend=args.backend,
        beam_width=args.beam,
        depth=args.depth,
        top_k=args.top_k,
        repeat=args.repeat,
        jobs=args.jobs,
        store=store,
        use_cache=not args.no_cache,
        force=args.force,
        include_structural=args.structural,
        tile_sizes=tile_sizes,
        max_candidates=args.max_candidates,
        cross_check=args.cross_check,
    )
    print(f"program {program.name}  params {result.params}  backend {result.backend}")
    if result.from_cache:
        print(f"cache: HIT ({result.cache_path}) — search skipped")
    else:
        print(f"cache: MISS — enumerated {result.enumerated} candidates, "
              f"pruned {result.pruned} illegal before execution, "
              f"scored {result.scored}")
        if result.cache_path:
            print(f"cached winner -> {result.cache_path}")
    print(f"{'':2}{'schedule':<36} {'score':>8} {'seconds':>12} {'vs default':>11}  ok")
    failed = False
    ordered = sorted(
        result.rows,
        key=lambda r: (r.seconds is None, r.seconds if r.seconds is not None else 0.0),
    )
    for r in ordered:
        mark = "*" if r is result.best else " "
        if r.error:
            print(f"{mark} {r.description:<36} {'-':>8} {'-':>12} {'-':>11}  error: {r.error}")
            failed = True
            continue
        score = f"{r.score:.4f}" if r.score is not None else "-"
        vs = (f"{result.baseline_seconds / r.seconds:.3f}x"
              if result.baseline_seconds and r.seconds else "-")
        ok = "-" if r.ok is None else ("yes" if r.ok else "NO")
        print(f"{mark} {r.description:<36} {score:>8} {r.seconds:>12.6f} {vs:>11}  {ok}")
        if r.ok is False:
            failed = True
    if result.best is not None:
        speed = f"  ({result.speedup:.3f}x vs default order)" if result.speedup else ""
        print(f"winner: {result.best.description}{speed}")
    else:
        print("winner: none (no candidate survived measurement)")
        failed = True
    if args.json:
        import json

        payload = {
            "program": program.name,
            "params": result.params,
            "backend": result.backend,
            "from_cache": result.from_cache,
            "cache_key": result.cache_key,
            "cache_path": result.cache_path,
            "enumerated": result.enumerated,
            "pruned": result.pruned,
            "scored": result.scored,
            "baseline_seconds": result.baseline_seconds,
            "speedup": result.speedup,
            "rows": [r.to_json(winner=(r is result.best)) for r in result.rows],
        }
        with open(args.json, "w") as f:
            json.dump(payload, f, indent=2)
        print(f"wrote {args.json}")
    return 1 if failed else 0


def cmd_report(args) -> int:
    """Full analysis report: layout, dependences, DOALL verdicts,
    distribution plan, and the legal lead-loop variants ranked by the
    cache model."""
    from repro.analysis import distribution_plan, search_loop_orders

    program = _load_flexible(args.file)
    if getattr(args, "tuned", False):
        from repro.tune.driver import DEFAULT_PARAM

        tparams = _params(args.param) or {p: DEFAULT_PARAM for p in program.params}
        tuned, entry = _tuned_program(program, tparams, args.cache_dir)
        w = entry["winner"]
        print("=== tuned schedule (from cache) ===")
        print(f"winner: {w['description']}  measured {w['seconds']:.6f}s "
              f"on {entry['backend']} at params {entry['params']}")
        print(f"(report below analyzes the tuned program)\n")
        program = tuned
    layout = Layout(program)
    deps = analyze_dependences(program, jobs=args.jobs)
    marks = parallel_loops(layout, IntMatrix.identity(layout.dimension), deps)
    plan = distribution_plan(program, deps)
    params = _params(args.param) or {p: 16 for p in program.params}
    backend = getattr(args, "backend", None)
    search_error = None
    try:
        results = search_loop_orders(
            program, params, verify=False, jobs=args.jobs, backend=backend
        )
    except Exception as exc:  # pragma: no cover - workload-dependent
        search_error = str(exc)
        results = []
    sess = obs.current_session()
    print(
        obs.render_full_report(
            program_text=program_to_str(program),
            layout_text=layout.describe(),
            deps_summary=deps.summary(),
            marks=marks,
            layout=layout,
            plan=plan,
            params=params,
            backend=backend,
            search_results=results,
            search_error=search_error,
            counters=sess.counters if sess is not None else None,
            gauges=sess.gauges if sess is not None else None,
            hists=sess.histograms if sess is not None else None,
        )
    )
    return 0


#: kept in sync with :data:`repro.explain.PHASES` (literal here so the
#: argparse setup does not import the tune stack on every CLI start)
_EXPLAIN_PHASES = ("legality", "complete", "vectorize", "wavefront", "tune")


def _cmd_explain(args) -> int:
    from repro.explain import cmd_explain

    return cmd_explain(args)


def cmd_fuzz(args) -> int:
    """Differential fuzzing: random nests × random transformations,
    cross-checked against the trace-equivalence oracles; failures are
    shrunk to minimal repros and serialized into the corpus."""
    from repro.fuzz import fuzz_run, known_illegal_case

    if getattr(args, "par_jobs", None) is not None:
        # Exported rather than passed down so the fuzz worker *processes*
        # inherit the source-par pool size too.
        os.environ["REPRO_PAR_JOBS"] = str(args.par_jobs)
    inject = {0: known_illegal_case()} if args.inject_illegal else None
    session = fuzz_run(
        args.runs,
        args.seed,
        jobs=args.jobs,
        corpus_dir=args.corpus,
        minimize=args.minimize,
        inject=inject,
        strict_illegal=args.strict_illegal,
        backends=tuple(args.backend or ()),
    )
    print(session.summary())
    if not session.ok:
        print(f"\n{len(session.divergences)} divergence(s) found:", file=sys.stderr)
        for result in session.divergences:
            print(f"  {result.verdict}: {result.detail}", file=sys.stderr)
            print(f"    case: {result.case.describe()}", file=sys.stderr)
        return 1
    return 0


def cmd_parallel(args) -> int:
    program = _load(args.file)
    layout = Layout(program)
    deps = analyze_dependences(program)
    marks = parallel_loops(layout, IntMatrix.identity(layout.dimension), deps)
    for m in marks:
        tag = "DOALL" if m.is_parallel else f"carries {', '.join(m.carried)}"
        print(f"loop {m.var}: {tag}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Transformations for imperfectly nested loops (SC'96 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # observability flags shared by the pipeline commands
    obsflags = argparse.ArgumentParser(add_help=False)
    obsflags.add_argument(
        "--profile",
        action="store_true",
        help="print a span tree and metrics table to stderr",
    )
    obsflags.add_argument(
        "--trace-json",
        metavar="PATH",
        help="write spans and metrics as JSON lines to PATH",
    )

    # parallel fan-out shared by the analysis-heavy commands
    jobsflags = argparse.ArgumentParser(add_help=False)
    jobsflags.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="fan dependence analysis / loop-order search out over N workers "
        "(0 = one per CPU; results are identical to serial runs)",
    )

    p = sub.add_parser("show", help="print program, layout and instance vectors")
    p.add_argument("file")
    p.set_defaults(fn=cmd_show)

    p = sub.add_parser(
        "deps", help="print the dependence matrix", parents=[obsflags, jobsflags]
    )
    p.add_argument("file")
    p.add_argument("--refine", action="store_true", help="value-based refinement")
    p.add_argument("-p", "--param", action="append", help="sample size, e.g. N=8")
    p.set_defaults(fn=cmd_deps)

    p = sub.add_parser(
        "check", help="check a transformation spec for legality", parents=[obsflags, jobsflags]
    )
    p.add_argument("file")
    p.add_argument("spec", help='e.g. "permute(I,J); skew(I,J,-1)"')
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser(
        "transform", help="generate code for a legal spec", parents=[obsflags, jobsflags]
    )
    p.add_argument("file")
    p.add_argument("spec")
    p.add_argument("--simplify", action="store_true")
    p.add_argument("-o", "--output")
    p.set_defaults(fn=cmd_transform)

    p = sub.add_parser(
        "complete", help="complete a partial transformation", parents=[obsflags, jobsflags]
    )
    p.add_argument("file")
    p.add_argument("--lead", required=True, help="loop variable to scan outermost")
    p.set_defaults(fn=cmd_complete)

    p = sub.add_parser("run", help="interpret a program", parents=[obsflags])
    p.add_argument("file")
    p.add_argument("-p", "--param", "--params", action="append", dest="param",
                   help="e.g. N=8 or N=8,M=4")
    p.add_argument("--trace", action="store_true")
    p.add_argument(
        "--backend",
        default="reference",
        choices=_BACKEND_CHOICES,
        help="execution backend (see docs/BACKENDS.md)",
    )
    p.add_argument(
        "--par-jobs", type=int, default=None, metavar="N",
        help="worker count for the source-par backend (default: "
        "$REPRO_PAR_JOBS, then one per CPU; see docs/PARALLEL.md)",
    )
    p.add_argument(
        "--tuned",
        action="store_true",
        help="apply the cached best schedule from `repro tune` "
        "(same --params; see docs/AUTOTUNING.md)",
    )
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="tuning cache directory (default: .repro_tune or $REPRO_TUNE_DIR)")
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser(
        "bench",
        help="wall-clock comparison of the execution backends",
        parents=[obsflags],
    )
    p.add_argument("file", help="a .loop file (extension optional) or bundled kernel name")
    p.add_argument("-p", "--param", "--params", action="append", dest="param",
                   help="e.g. N=60 or N=60,M=4")
    p.add_argument(
        "--backend",
        action="append",
        choices=_BACKEND_CHOICES,
        help="backend to time (repeatable; default: all)",
    )
    p.add_argument("--repeat", type=int, default=3, help="best-of-N timing")
    p.add_argument(
        "--par-jobs", type=int, default=None, metavar="N",
        help="worker count for the source-par backend (default: "
        "$REPRO_PAR_JOBS, then one per CPU; see docs/PARALLEL.md)",
    )
    p.add_argument("--json", metavar="PATH", help="also write the table as JSON")
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser(
        "tune",
        help="autotune: search legal schedules, measure, cache the winner",
        parents=[obsflags, jobsflags],
    )
    p.add_argument("file", help="a .loop file (extension optional) or bundled kernel name")
    p.add_argument("-p", "--param", "--params", action="append", dest="param",
                   help="e.g. N=96 or N=96,M=4 (default: 96 for every param)")
    p.add_argument(
        "--backend",
        default="source-vec",
        choices=_BACKEND_CHOICES,
        help="backend the survivors are measured on (default: source-vec)",
    )
    p.add_argument("--beam", type=int, default=4, help="beam width (default 4)")
    p.add_argument("--depth", type=int, default=2,
                   help="beam-search depth in elementary steps (default 2)")
    p.add_argument("--top-k", type=int, default=3,
                   help="survivors measured with the real backend (default 3)")
    p.add_argument("--repeat", type=int, default=3,
                   help="timing repetitions per measurement round (median; min 3)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="tuning cache directory (default: .repro_tune or $REPRO_TUNE_DIR)")
    p.add_argument("--no-cache", action="store_true",
                   help="neither read nor write the tuning cache")
    p.add_argument("--force", action="store_true",
                   help="re-search even on a cache hit (overwrites the entry)")
    p.add_argument(
        "--structural",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="include distribution/jamming/fusion structural variants",
    )
    p.add_argument(
        "--tile",
        action="store_true",
        help="also enumerate strip-mined (tiled) variants over the "
        "default tile ladder (docs/TILING.md)",
    )
    p.add_argument(
        "--tile-sizes",
        action="append",
        metavar="SIZES",
        help="explicit tile ladder, e.g. 16,32 (repeatable; implies --tile)",
    )
    p.add_argument(
        "--max-candidates",
        type=int,
        default=None,
        metavar="N",
        help="hard cap on enumerated candidates per stage; excess is "
        "truncated with a kind=tune verdict=truncated event "
        "(default 96, or $REPRO_TUNE_MAX)",
    )
    p.add_argument(
        "--cross-check",
        choices=("full", "model"),
        default="full",
        help="equivalence-check measured survivors at the real params "
        "(full) or at model-capped params (model; keeps huge-N tuning "
        "runs affordable, timing still happens at the real params)",
    )
    p.add_argument("--json", metavar="PATH", help="also write the table as JSON")
    p.set_defaults(fn=cmd_tune)

    p = sub.add_parser("parallel", help="per-loop DOALL verdicts")
    p.add_argument("file")
    p.set_defaults(fn=cmd_parallel)

    p = sub.add_parser(
        "fuzz",
        help="differential fuzzing of the whole pipeline (see docs/FUZZING.md)",
        parents=[obsflags, jobsflags],
    )
    p.add_argument("--runs", type=int, default=100, help="number of cases")
    p.add_argument("--seed", type=int, default=0, help="master seed of the case stream")
    p.add_argument(
        "--corpus",
        default="tests/fuzz_corpus",
        help="directory minimized repros are serialized into "
        "(default: tests/fuzz_corpus)",
    )
    p.add_argument(
        "--minimize",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="shrink failures to minimal repros before serializing",
    )
    p.add_argument(
        "--inject-illegal",
        action="store_true",
        help="replace case 0 with a known-illegal, claimed-legal "
        "transformation — must produce exactly one divergence (harness "
        "self-test)",
    )
    p.add_argument(
        "--strict-illegal",
        action="store_true",
        help="treat rejected-but-equivalent transformations (legality "
        "precision gaps) as divergences",
    )
    p.add_argument(
        "--backend",
        action="append",
        choices=("compiled", "source", "source-vec", "source-par"),
        help="also cross-check every legal case's execution against this "
        "backend (repeatable; see docs/BACKENDS.md)",
    )
    p.add_argument(
        "--par-jobs", type=int, default=None, metavar="N",
        help="worker count for source-par cross-checks (exported as "
        "REPRO_PAR_JOBS so fuzz worker processes inherit it)",
    )
    p.set_defaults(fn=cmd_fuzz)

    p = sub.add_parser(
        "explain",
        help="decision provenance: why each phase accepted or rejected "
        "(see docs/OBSERVABILITY.md)",
        parents=[obsflags, jobsflags],
    )
    p.add_argument("file", help="a .loop file (extension optional) or bundled kernel name")
    p.add_argument(
        "--phase",
        choices=_EXPLAIN_PHASES,
        default=None,
        help="explain one phase (default: every phase runnable with the "
        "given flags)",
    )
    p.add_argument("--spec", default=None,
                   help='transformation spec for the legality phase, e.g. "permute(I,J)"')
    p.add_argument("--lead", default=None,
                   help="lead loop variable for the complete phase")
    p.add_argument("-p", "--param", "--params", action="append", dest="param",
                   help="e.g. N=96 or N=96,M=4 (tune phase: must match the tune run)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="tuning cache directory (default: .repro_tune or $REPRO_TUNE_DIR)")
    p.add_argument("--json", action="store_true",
                   help="emit the events/ranking as JSON instead of the narrative")
    p.add_argument("--verbose", action="store_true",
                   help="also print the program text")
    p.set_defaults(fn=_cmd_explain)

    p = sub.add_parser(
        "report", help="full analysis report", parents=[obsflags, jobsflags]
    )
    p.add_argument("file")
    p.add_argument("-p", "--param", "--params", action="append", dest="param",
                   help="e.g. N=16 or N=16,M=4")
    p.add_argument(
        "--backend",
        default=None,
        choices=_BACKEND_CHOICES,
        help="rank the loop-order search by measured wall clock on this "
        "backend instead of simulated cache misses",
    )
    p.add_argument(
        "--tuned",
        action="store_true",
        help="analyze the cached tuned schedule instead of the original "
        "(same --params as the `repro tune` run)",
    )
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="tuning cache directory (default: .repro_tune or $REPRO_TUNE_DIR)")
    p.set_defaults(fn=cmd_report)

    args = parser.parse_args(argv)
    profile = getattr(args, "profile", False)
    trace_json = getattr(args, "trace_json", None)
    # `report` always collects metrics for its metrics section and
    # `explain` needs the decision events; the other commands only pay
    # for observability when asked.
    want_obs = (
        profile or trace_json is not None or args.command in ("report", "explain")
    )

    mem = None
    sess = None
    try:
        if want_obs and obs.current_session() is None:
            mem = obs.MemorySink()
            sinks: list = [mem]
            if trace_json is not None:
                sinks.append(obs.JsonlSink(trace_json))
            sess = obs.install(*sinks)
        try:
            with obs.span(f"cli.{args.command}", file=getattr(args, "file", None)):
                return args.fn(args)
        finally:
            if sess is not None:
                obs.uninstall()
                if profile:
                    print(
                        obs.render_report(
                            mem.roots, sess.counters, sess.gauges, sess.histograms
                        ),
                        file=sys.stderr,
                    )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
