"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------

show        parse a program, print it with its instance-vector layout
deps        print the dependence matrix (``--refine`` for value-based)
check       test a transformation spec for legality
transform   generate code for a legal transformation spec
complete    complete a partial transformation (lead loop) and generate
run         interpret a program and print final array contents
            (``--tuned`` applies the cached best schedule)
tune        autotune: search legal schedules, measure the best with a
            real backend, persist the winner (docs/AUTOTUNING.md)
parallel    per-loop DOALL verdicts
report      full analysis report (deps, DOALL, distribution plan, search)
explain     decision provenance: why legality / completion /
            vectorization / tuning accepted or rejected each candidate
fuzz        differential fuzzing of the pipeline against the trace
            oracles, with shrinking and a regression corpus
serve       run the transformation service daemon (docs/SERVICE.md)

The pipeline commands (deps, check, transform, complete, run, report)
accept ``--profile`` (print a hierarchical span tree and metrics table
to stderr) and ``--trace-json PATH`` (write the spans and metrics as
JSON lines); see :mod:`repro.obs` and docs/OBSERVABILITY.md.

The service-backed commands (deps, check, transform, complete, run,
tune, explain) accept ``--remote URL`` (or ``$REPRO_REMOTE``) to execute
against a running ``repro serve`` daemon instead of in-process; output
is byte-identical either way because both paths render through
:mod:`repro.api` (docs/SERVICE.md).

Transformation specs are semicolon-separated elementary transformations;
structural ``tile``/``fuse`` ops rewrite the program and must come first
(docs/TILING.md)::

    tile(I,16); fuse(J); permute(I,J); skew(I,J,-1); align(S1,I,1)

The heavy lifting for every command lives in :mod:`repro.api` — the
shared pipeline-driving layer the service daemon calls too; this module
is only argument parsing and printing.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro import api, obs
from repro.analysis import parallel_loops
from repro.api import load_file as _load
from repro.api import load_flexible as _load_flexible
from repro.api import parse_params as _params
from repro.dependence import analyze_dependences
from repro.instance import Layout, symbolic_vector
from repro.ir import program_to_str
from repro.linalg import IntMatrix
from repro.backend import BACKENDS as _BACKEND_CHOICES
from repro.transform.spec import parse_spec
from repro.util.errors import LegalityError, ReproError

#: exit codes shared with scripts and CI: 0 accepted, 1 rejected
#: verdict, 2 analysis/usage error, 3 illegal transformation rejected
#: as an error (``error_kind="LegalityError"`` over the service wire)
EXIT_ILLEGAL_TRANSFORM = 3

__all__ = ["main", "parse_spec"]


def _remote_url(args) -> str | None:
    """The daemon URL this invocation targets, if any (--remote flag or
    the REPRO_REMOTE environment variable)."""
    url = getattr(args, "remote", None)
    if url:
        return url
    return os.environ.get("REPRO_REMOTE") or None


def _client(url: str):
    from repro.service.client import ServiceClient

    return ServiceClient(url)


def cmd_show(args) -> int:
    program = _load(args.file)
    print(program_to_str(program))
    layout = Layout(program)
    print("\ninstance-vector layout:")
    print(layout.describe())
    print("\ngeneral instance vectors:")
    for label in layout.statement_labels():
        vec = [str(e) for e in symbolic_vector(layout, label)]
        print(f"  {label}: [{', '.join(vec)}]")
    return 0


def cmd_deps(args) -> int:
    program = _load(args.file)
    url = _remote_url(args)
    if url:
        result = api.AnalyzeResult.from_payload(
            _client(url).analyze(
                program_to_str(program),
                refine=args.refine,
                sample_params=list(args.param or []),
                jobs=args.jobs,
            )
        )
    else:
        result = api.analyze_op(
            program, refine=args.refine, sample_param_texts=args.param,
            jobs=args.jobs,
        )
    print(result.render())
    return 0


def cmd_check(args) -> int:
    program = _load(args.file)
    oracle = "symbolic" if args.symbolic else "theorem-2"
    url = _remote_url(args)
    if url:
        result = api.CheckResult.from_payload(
            _client(url).check(
                program_to_str(program), args.spec, symbolic=args.symbolic
            )
        )
    else:
        result = api.check_op(program, args.spec, oracle=oracle)
    print(result.render())
    return result.exit_code


def cmd_transform(args) -> int:
    program = _load(args.file)
    url = _remote_url(args)
    if url:
        result = api.TransformResult.from_payload(
            _client(url).transform(
                program_to_str(program), args.spec, simplify=args.simplify
            )
        )
    else:
        result = api.transform_op(program, args.spec, simplify=args.simplify)
    if args.output:
        with open(args.output, "w") as f:
            f.write(result.render() + "\n")
        print(f"wrote {args.output}")
    else:
        print(result.render())
    return 0


def cmd_complete(args) -> int:
    program = _load(args.file)
    url = _remote_url(args)
    if url:
        result = api.CompleteResult.from_payload(
            _client(url).complete(program_to_str(program), args.lead)
        )
    else:
        result = api.complete_op(program, args.lead, jobs=args.jobs)
    print(result.render())
    return 0


def _tuned_program(program, params, cache_dir):
    """Swap in the cached tuned schedule for ``program`` or fail loudly."""
    from repro.tune import TuneStore, apply_entry, load_tuned
    from repro.util.errors import TuneError

    store = TuneStore(cache_dir) if cache_dir else TuneStore()
    entry = load_tuned(program, params, store=store)
    if entry is None:
        raise TuneError(
            f"no cached tuning entry for {program.name!r} at params {params} "
            f"in {store.root} — run `repro tune` first (same --params)"
        )
    return apply_entry(entry), entry


def cmd_run(args) -> int:
    program = _load_flexible(args.file)
    url = _remote_url(args)
    banner = ""
    if getattr(args, "tuned", False):
        if url:
            raise ReproError(
                "--tuned is a local-cache feature; tune through the daemon "
                "(repro tune --remote) and run the materialized schedule"
            )
        from repro.tune.driver import DEFAULT_PARAM

        params = _params(args.param) or {p: DEFAULT_PARAM for p in program.params}
        program, entry = _tuned_program(program, params, args.cache_dir)
        w = entry["winner"]
        banner = (f"applying tuned schedule: {w['description']} "
                  f"(measured {w['seconds']:.6f}s on {entry['backend']})")
        args.param = [f"{k}={v}" for k, v in params.items()]
    if url:
        result = api.RunResult.from_payload(
            _client(url).run(
                program_to_str(program), _params(args.param),
                backend=args.backend, trace=args.trace,
                par_jobs=getattr(args, "par_jobs", None),
            )
        )
    else:
        result = api.run_op(
            program, _params(args.param), backend=args.backend,
            par_jobs=getattr(args, "par_jobs", None), trace=args.trace,
        )
    result.tuned_banner = banner
    print(result.render())
    return 0


def cmd_bench(args) -> int:
    """Wall-clock comparison of the execution backends on one program,
    with every backend's outputs cross-checked against the reference."""
    from repro.backend import BACKENDS, bench_backends

    program = _load_flexible(args.file)
    params = _params(args.param) or {p: 40 for p in program.params}
    backends = tuple(args.backend) if args.backend else BACKENDS
    rows = bench_backends(program, params, backends=backends, repeat=args.repeat,
                          par_jobs=getattr(args, "par_jobs", None))
    print(f"program {program.name}  params {params}  (best of {args.repeat})")
    print(f"{'backend':<12} {'seconds':>12} {'speedup':>9}  ok")
    failed = False
    for r in rows:
        if r.error:
            print(f"{r.backend:<12} {'-':>12} {'-':>9}  error: {r.error}")
            failed = True
            continue
        speed = f"{r.speedup:.2f}x" if r.speedup is not None else "1.00x"
        ok = "-" if r.ok is None else ("yes" if r.ok else "NO")
        print(f"{r.backend:<12} {r.seconds:>12.6f} {speed:>9}  {ok}")
        if r.ok is False:
            failed = True
    if args.json:
        import json

        payload = [
            {
                "backend": r.backend,
                "seconds": None if r.error else r.seconds,
                "speedup": r.speedup,
                "ok": r.ok,
                "error": r.error,
            }
            for r in rows
        ]
        with open(args.json, "w") as f:
            json.dump({"program": program.name, "params": params, "rows": payload}, f, indent=2)
        print(f"wrote {args.json}")
    return 1 if failed else 0


def cmd_tune(args) -> int:
    """Autotune a program: search the legal transformation space, rank
    with the static cost model, measure the top survivors on the chosen
    backend, and persist the winner (docs/AUTOTUNING.md)."""
    from repro.transform.tiling import TILE_LADDER

    program = _load_flexible(args.file)
    params = _params(args.param) or None
    tile_sizes = None
    if args.tile_sizes:
        tile_sizes = tuple(
            int(s) for chunk in args.tile_sizes for s in chunk.split(",") if s
        )
    elif args.tile:
        tile_sizes = TILE_LADDER
    opts = dict(
        backend=args.backend,
        beam_width=args.beam,
        depth=args.depth,
        top_k=args.top_k,
        repeat=args.repeat,
        use_cache=not args.no_cache,
        force=args.force,
        include_structural=args.structural,
        tile_sizes=tile_sizes,
        max_candidates=args.max_candidates,
        cross_check=args.cross_check,
        symbolic=args.symbolic,
    )
    url = _remote_url(args)
    if url:
        outcome = api.TuneOutcome.from_payload(
            _client(url).tune(
                program_to_str(program), params, name=program.name, **opts
            )
        )
    else:
        outcome = api.tune_op(
            program, params, cache_dir=args.cache_dir, jobs=args.jobs, **opts
        )
    print(outcome.render())
    if args.json:
        import json

        with open(args.json, "w") as f:
            json.dump(outcome.to_payload(), f, indent=2)
        print(f"wrote {args.json}")
    return 0 if outcome.ok else 1


def cmd_report(args) -> int:
    """Full analysis report: layout, dependences, DOALL verdicts,
    distribution plan, and the legal lead-loop variants ranked by the
    cache model."""
    from repro.analysis import distribution_plan, search_loop_orders

    program = _load_flexible(args.file)
    if getattr(args, "tuned", False):
        from repro.tune.driver import DEFAULT_PARAM

        tparams = _params(args.param) or {p: DEFAULT_PARAM for p in program.params}
        tuned, entry = _tuned_program(program, tparams, args.cache_dir)
        w = entry["winner"]
        print("=== tuned schedule (from cache) ===")
        print(f"winner: {w['description']}  measured {w['seconds']:.6f}s "
              f"on {entry['backend']} at params {entry['params']}")
        print(f"(report below analyzes the tuned program)\n")
        program = tuned
    layout = Layout(program)
    deps = analyze_dependences(program, jobs=args.jobs)
    marks = parallel_loops(layout, IntMatrix.identity(layout.dimension), deps)
    plan = distribution_plan(program, deps)
    params = _params(args.param) or {p: 16 for p in program.params}
    backend = getattr(args, "backend", None)
    search_error = None
    try:
        results = search_loop_orders(
            program, params, verify=False, jobs=args.jobs, backend=backend
        )
    except Exception as exc:  # pragma: no cover - workload-dependent
        search_error = str(exc)
        results = []
    sess = obs.current_session()
    print(
        obs.render_full_report(
            program_text=program_to_str(program),
            layout_text=layout.describe(),
            deps_summary=deps.summary(),
            marks=marks,
            layout=layout,
            plan=plan,
            params=params,
            backend=backend,
            search_results=results,
            search_error=search_error,
            counters=sess.counters if sess is not None else None,
            gauges=sess.gauges if sess is not None else None,
            hists=sess.histograms if sess is not None else None,
        )
    )
    return 0


#: kept in sync with :data:`repro.explain.PHASES` (literal here so the
#: argparse setup does not import the tune stack on every CLI start)
_EXPLAIN_PHASES = (
    "legality", "symbolic", "complete", "vectorize", "wavefront", "tune"
)


def _cmd_explain(args) -> int:
    url = _remote_url(args)
    if url:
        program = _load_flexible(args.file)
        result = api.ExplainResult.from_payload(
            _client(url).explain(
                program_to_str(program), name=program.name,
                phase=args.phase, spec=args.spec, lead=args.lead,
                params=_params(args.param), as_json=args.json,
                verbose=args.verbose,
            )
        )
        print(result.render())
        return result.exit_code
    from repro.explain import cmd_explain

    return cmd_explain(args)


def cmd_fuzz(args) -> int:
    """Differential fuzzing: random nests × random transformations,
    cross-checked against the trace-equivalence oracles; failures are
    shrunk to minimal repros and serialized into the corpus."""
    from repro.fuzz import fuzz_run, known_illegal_case, known_unsound_case

    if getattr(args, "par_jobs", None) is not None:
        # Exported rather than passed down so the fuzz worker *processes*
        # inherit the source-par pool size too.
        os.environ["REPRO_PAR_JOBS"] = str(args.par_jobs)
    inject = {}
    if args.inject_illegal:
        inject[0] = known_illegal_case()
    if args.inject_unsound:
        inject[len(inject)] = known_unsound_case()
    session = fuzz_run(
        args.runs,
        args.seed,
        jobs=args.jobs,
        corpus_dir=args.corpus,
        minimize=args.minimize,
        inject=inject or None,
        strict_illegal=args.strict_illegal,
        backends=tuple(args.backend or ()),
        service=args.service or "",
        symbolic=args.symbolic,
    )
    print(session.summary())
    if not session.ok:
        print(f"\n{len(session.divergences)} divergence(s) found:", file=sys.stderr)
        for result in session.divergences:
            print(f"  {result.verdict}: {result.detail}", file=sys.stderr)
            print(f"    case: {result.case.describe()}", file=sys.stderr)
        return 1
    return 0


def cmd_parallel(args) -> int:
    program = _load(args.file)
    layout = Layout(program)
    deps = analyze_dependences(program)
    marks = parallel_loops(layout, IntMatrix.identity(layout.dimension), deps)
    for m in marks:
        tag = "DOALL" if m.is_parallel else f"carries {', '.join(m.carried)}"
        print(f"loop {m.var}: {tag}")
    return 0


def cmd_serve(args) -> int:
    """Run the transformation service daemon (docs/SERVICE.md)."""
    from repro.service.server import serve

    return serve(
        host=args.host,
        port=args.port,
        max_shards=args.shards,
        job_workers=args.job_workers,
        trace_json=args.trace_json,
        tune_dir=args.tune_dir,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Transformations for imperfectly nested loops (SC'96 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # observability flags shared by the pipeline commands
    obsflags = argparse.ArgumentParser(add_help=False)
    obsflags.add_argument(
        "--profile",
        action="store_true",
        help="print a span tree and metrics table to stderr",
    )
    obsflags.add_argument(
        "--trace-json",
        metavar="PATH",
        help="write spans and metrics as JSON lines to PATH",
    )

    # parallel fan-out shared by the analysis-heavy commands
    jobsflags = argparse.ArgumentParser(add_help=False)
    jobsflags.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="fan dependence analysis / loop-order search out over N workers "
        "(0 = one per CPU; results are identical to serial runs)",
    )

    # remote-daemon targeting shared by the service-backed commands
    remoteflags = argparse.ArgumentParser(add_help=False)
    remoteflags.add_argument(
        "--remote",
        metavar="URL",
        default=None,
        help="execute against a running `repro serve` daemon at URL "
        "(default: $REPRO_REMOTE; see docs/SERVICE.md)",
    )

    p = sub.add_parser("show", help="print program, layout and instance vectors")
    p.add_argument("file")
    p.set_defaults(fn=cmd_show)

    p = sub.add_parser(
        "deps", help="print the dependence matrix",
        parents=[obsflags, jobsflags, remoteflags],
    )
    p.add_argument("file")
    p.add_argument("--refine", action="store_true", help="value-based refinement")
    p.add_argument("-p", "--param", action="append", help="sample size, e.g. N=8")
    p.set_defaults(fn=cmd_deps)

    p = sub.add_parser(
        "check", help="check a transformation spec for legality",
        parents=[obsflags, jobsflags, remoteflags],
    )
    p.add_argument("file")
    p.add_argument("spec", help='e.g. "permute(I,J); skew(I,J,-1)"')
    p.add_argument(
        "--symbolic",
        action="store_true",
        help="on a Theorem-2 rejection, consult the fractal symbolic "
        "oracle for an equivalence certificate (docs/SYMBOLIC.md)",
    )
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser(
        "transform", help="generate code for a legal spec",
        parents=[obsflags, jobsflags, remoteflags],
    )
    p.add_argument("file")
    p.add_argument("spec")
    p.add_argument("--simplify", action="store_true")
    p.add_argument("-o", "--output")
    p.set_defaults(fn=cmd_transform)

    p = sub.add_parser(
        "complete", help="complete a partial transformation",
        parents=[obsflags, jobsflags, remoteflags],
    )
    p.add_argument("file")
    p.add_argument("--lead", required=True, help="loop variable to scan outermost")
    p.set_defaults(fn=cmd_complete)

    p = sub.add_parser(
        "run", help="interpret a program", parents=[obsflags, remoteflags]
    )
    p.add_argument("file")
    p.add_argument("-p", "--param", "--params", action="append", dest="param",
                   help="e.g. N=8 or N=8,M=4")
    p.add_argument("--trace", action="store_true")
    p.add_argument(
        "--backend",
        default="reference",
        choices=_BACKEND_CHOICES,
        help="execution backend (see docs/BACKENDS.md)",
    )
    p.add_argument(
        "--par-jobs", type=int, default=None, metavar="N",
        help="worker count for the source-par backend (default: "
        "$REPRO_PAR_JOBS, then one per CPU; see docs/PARALLEL.md)",
    )
    p.add_argument(
        "--tuned",
        action="store_true",
        help="apply the cached best schedule from `repro tune` "
        "(same --params; see docs/AUTOTUNING.md)",
    )
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="tuning cache directory (default: .repro_tune or $REPRO_TUNE_DIR)")
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser(
        "bench",
        help="wall-clock comparison of the execution backends",
        parents=[obsflags],
    )
    p.add_argument("file", help="a .loop file (extension optional) or bundled kernel name")
    p.add_argument("-p", "--param", "--params", action="append", dest="param",
                   help="e.g. N=60 or N=60,M=4")
    p.add_argument(
        "--backend",
        action="append",
        choices=_BACKEND_CHOICES,
        help="backend to time (repeatable; default: all)",
    )
    p.add_argument("--repeat", type=int, default=3, help="best-of-N timing")
    p.add_argument(
        "--par-jobs", type=int, default=None, metavar="N",
        help="worker count for the source-par backend (default: "
        "$REPRO_PAR_JOBS, then one per CPU; see docs/PARALLEL.md)",
    )
    p.add_argument("--json", metavar="PATH", help="also write the table as JSON")
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser(
        "tune",
        help="autotune: search legal schedules, measure, cache the winner",
        parents=[obsflags, jobsflags, remoteflags],
    )
    p.add_argument("file", help="a .loop file (extension optional) or bundled kernel name")
    p.add_argument("-p", "--param", "--params", action="append", dest="param",
                   help="e.g. N=96 or N=96,M=4 (default: 96 for every param)")
    p.add_argument(
        "--backend",
        default="source-vec",
        choices=_BACKEND_CHOICES,
        help="backend the survivors are measured on (default: source-vec)",
    )
    p.add_argument("--beam", type=int, default=4, help="beam width (default 4)")
    p.add_argument("--depth", type=int, default=2,
                   help="beam-search depth in elementary steps (default 2)")
    p.add_argument("--top-k", type=int, default=3,
                   help="survivors measured with the real backend (default 3)")
    p.add_argument("--repeat", type=int, default=3,
                   help="timing repetitions per measurement round (median; min 3)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="tuning cache directory (default: .repro_tune or $REPRO_TUNE_DIR)")
    p.add_argument("--no-cache", action="store_true",
                   help="neither read nor write the tuning cache")
    p.add_argument("--force", action="store_true",
                   help="re-search even on a cache hit (overwrites the entry)")
    p.add_argument(
        "--structural",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="include distribution/jamming/fusion structural variants",
    )
    p.add_argument(
        "--tile",
        action="store_true",
        help="also enumerate strip-mined (tiled) variants over the "
        "default tile ladder (docs/TILING.md)",
    )
    p.add_argument(
        "--tile-sizes",
        action="append",
        metavar="SIZES",
        help="explicit tile ladder, e.g. 16,32 (repeatable; implies --tile)",
    )
    p.add_argument(
        "--max-candidates",
        type=int,
        default=None,
        metavar="N",
        help="hard cap on enumerated candidates per stage; excess is "
        "truncated with a kind=tune verdict=truncated event "
        "(default 96, or $REPRO_TUNE_MAX)",
    )
    p.add_argument(
        "--cross-check",
        choices=("full", "model"),
        default="full",
        help="equivalence-check measured survivors at the real params "
        "(full) or at model-capped params (model; keeps huge-N tuning "
        "runs affordable, timing still happens at the real params)",
    )
    p.add_argument(
        "--symbolic",
        action="store_true",
        help="appeal Theorem-2 rejections to the fractal symbolic oracle; "
        "certified candidates re-enter the beam marked legality=symbolic "
        "(docs/SYMBOLIC.md)",
    )
    p.add_argument("--json", metavar="PATH", help="also write the table as JSON")
    p.set_defaults(fn=cmd_tune)

    p = sub.add_parser("parallel", help="per-loop DOALL verdicts")
    p.add_argument("file")
    p.set_defaults(fn=cmd_parallel)

    p = sub.add_parser(
        "fuzz",
        help="differential fuzzing of the whole pipeline (see docs/FUZZING.md)",
        parents=[obsflags, jobsflags],
    )
    p.add_argument("--runs", type=int, default=100, help="number of cases")
    p.add_argument("--seed", type=int, default=0, help="master seed of the case stream")
    p.add_argument(
        "--corpus",
        default="tests/fuzz_corpus",
        help="directory minimized repros are serialized into "
        "(default: tests/fuzz_corpus)",
    )
    p.add_argument(
        "--minimize",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="shrink failures to minimal repros before serializing",
    )
    p.add_argument(
        "--inject-illegal",
        action="store_true",
        help="replace case 0 with a known-illegal, claimed-legal "
        "transformation — must produce exactly one divergence (harness "
        "self-test)",
    )
    p.add_argument(
        "--strict-illegal",
        action="store_true",
        help="treat rejected-but-equivalent transformations (legality "
        "precision gaps) as divergences",
    )
    p.add_argument(
        "--symbolic",
        action="store_true",
        help="consult the fractal symbolic oracle on every Theorem-2 "
        "rejection; certified schedules are then cross-checked for "
        "output equivalence across backends (docs/SYMBOLIC.md)",
    )
    p.add_argument(
        "--inject-unsound",
        action="store_true",
        help="inject a case whose symbolic certificate is deliberately "
        "fabricated — the differential oracle must flag it (harness "
        "self-test for a lying oracle)",
    )
    p.add_argument(
        "--backend",
        action="append",
        choices=("compiled", "source", "source-vec", "source-par"),
        help="also cross-check every legal case's execution against this "
        "backend (repeatable; see docs/BACKENDS.md)",
    )
    p.add_argument(
        "--service",
        metavar="URL",
        default=None,
        help="also cross-check every case's source program against a "
        "running `repro serve` daemon (warm-path oracle; see "
        "docs/SERVICE.md)",
    )
    p.add_argument(
        "--par-jobs", type=int, default=None, metavar="N",
        help="worker count for source-par cross-checks (exported as "
        "REPRO_PAR_JOBS so fuzz worker processes inherit it)",
    )
    p.set_defaults(fn=cmd_fuzz)

    p = sub.add_parser(
        "explain",
        help="decision provenance: why each phase accepted or rejected "
        "(see docs/OBSERVABILITY.md)",
        parents=[obsflags, jobsflags, remoteflags],
    )
    p.add_argument("file", help="a .loop file (extension optional) or bundled kernel name")
    p.add_argument(
        "--phase",
        choices=_EXPLAIN_PHASES,
        default=None,
        help="explain one phase (default: every phase runnable with the "
        "given flags)",
    )
    p.add_argument("--spec", default=None,
                   help='transformation spec for the legality phase, e.g. "permute(I,J)"')
    p.add_argument("--lead", default=None,
                   help="lead loop variable for the complete phase")
    p.add_argument("-p", "--param", "--params", action="append", dest="param",
                   help="e.g. N=96 or N=96,M=4 (tune phase: must match the tune run)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="tuning cache directory (default: .repro_tune or $REPRO_TUNE_DIR)")
    p.add_argument("--json", action="store_true",
                   help="emit the events/ranking as JSON instead of the narrative")
    p.add_argument("--verbose", action="store_true",
                   help="also print the program text")
    p.set_defaults(fn=_cmd_explain)

    p = sub.add_parser(
        "report", help="full analysis report", parents=[obsflags, jobsflags]
    )
    p.add_argument("file")
    p.add_argument("-p", "--param", "--params", action="append", dest="param",
                   help="e.g. N=16 or N=16,M=4")
    p.add_argument(
        "--backend",
        default=None,
        choices=_BACKEND_CHOICES,
        help="rank the loop-order search by measured wall clock on this "
        "backend instead of simulated cache misses",
    )
    p.add_argument(
        "--tuned",
        action="store_true",
        help="analyze the cached tuned schedule instead of the original "
        "(same --params as the `repro tune` run)",
    )
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="tuning cache directory (default: .repro_tune or $REPRO_TUNE_DIR)")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser(
        "serve",
        help="run the transformation service daemon (docs/SERVICE.md)",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1; the daemon is "
                   "designed for local-socket use)")
    p.add_argument("--port", type=int, default=7521,
                   help="TCP port (default 7521; 0 picks a free port)")
    p.add_argument("--shards", type=int, default=None, metavar="N",
                   help="max warm program shards before LRU eviction "
                   "(default 64, or $REPRO_SERVICE_SHARDS)")
    p.add_argument("--job-workers", type=int, default=2, metavar="N",
                   help="async job-queue worker threads (default 2)")
    p.add_argument("--trace-json", metavar="PATH",
                   help="stream the daemon's spans/events/metrics as JSON "
                   "lines to PATH (flushed on SIGTERM/SIGINT)")
    p.add_argument("--tune-dir", default=None, metavar="DIR",
                   help="the daemon's tuning cache directory (default: "
                   ".repro_tune or $REPRO_TUNE_DIR)")
    p.set_defaults(fn=cmd_serve)

    args = parser.parse_args(argv)
    profile = getattr(args, "profile", False)
    trace_json = getattr(args, "trace_json", None)
    # `report` always collects metrics for its metrics section and
    # `explain` needs the decision events; the other commands only pay
    # for observability when asked.  `serve` manages its own long-lived
    # session (including the trace sink) inside the daemon.
    want_obs = (
        profile or trace_json is not None or args.command in ("report", "explain")
    ) and args.command != "serve"

    mem = None
    sess = None
    try:
        if want_obs and obs.current_session() is None:
            mem = obs.MemorySink()
            sinks: list = [mem]
            if trace_json is not None:
                sinks.append(obs.JsonlSink(trace_json))
            sess = obs.install(*sinks)
        try:
            from repro.obs.lifecycle import flush_on_signals

            with flush_on_signals():
                with obs.span(f"cli.{args.command}", file=getattr(args, "file", None)):
                    return args.fn(args)
        finally:
            if sess is not None:
                obs.uninstall()
                if profile:
                    print(
                        obs.render_report(
                            mem.roots, sess.counters, sess.gauges, sess.histograms
                        ),
                        file=sys.stderr,
                    )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        # an illegal transformation rejected as an error is a different
        # failure class than a parse/analysis error: scripts get exit 3,
        # locally via LegalityError, remotely via the relayed error_kind
        if isinstance(exc, LegalityError) or (
            getattr(exc, "kind", None) == "LegalityError"
        ):
            return EXIT_ILLEGAL_TRANSFORM
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
