"""Unimodular completion and related lattice utilities.

The Li–Pingali completion procedure (and its imperfect-nest analogue in
this library) needs to extend a set of linearly independent integer rows
into a full-rank — ideally unimodular — square matrix.  This module
provides that, plus helpers for lexicographic positivity used by the
legality tests, and a deterministic pseudo-random unimodular matrix
generator for property-based testing.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.linalg.hermite import hnf_column
from repro.linalg.intmat import IntMatrix
from repro.util.errors import LinalgError

__all__ = [
    "complete_to_unimodular",
    "extend_to_full_rank",
    "is_lex_positive",
    "is_lex_nonnegative",
    "lex_compare",
    "random_unimodular",
    "first_nonzero_index",
]


def complete_to_unimodular(rows: IntMatrix) -> IntMatrix:
    """Extend linearly independent integer rows to a unimodular matrix.

    Given a ``k x n`` matrix of linearly independent rows whose row
    lattice is *primitive* (the gcd of the k-by-k minors is 1 — true for
    any rows that can appear in a unimodular matrix), returns an ``n x n``
    unimodular matrix whose first ``k`` rows are ``rows``.

    Raises :class:`LinalgError` if the rows are dependent or cannot be
    completed (non-primitive row lattice).
    """
    k, n = rows.shape
    if k > n:
        raise LinalgError("more rows than columns; cannot complete")
    if rows.rank() != k:
        raise LinalgError("rows are linearly dependent; cannot complete to unimodular")
    # Column HNF of rows: rows @ U = H (k x n, lower triangular).
    h, u = hnf_column(rows)
    # The completion exists iff H = [L 0] with L unimodular (det ±1).
    l = h.select_cols(range(k)).select_rows(range(k))
    d = l.det()
    if d not in (1, -1):
        raise LinalgError(
            f"row lattice is not primitive (pivot product {d}); unimodular completion impossible"
        )
    # rows = H @ U^{-1}.  Take M = [[L, 0], [0, I]] @ U^{-1}; then the first
    # k rows of M are rows, and det(M) = det(L) * det(U^{-1}) = ±1.
    uinv = u.inverse_int()
    bottom = uinv.select_rows(range(k, n))
    return rows.vstack(bottom)


def extend_to_full_rank(rows: IntMatrix) -> IntMatrix:
    """Extend ``rows`` (k x n, rank k) to an n x n nonsingular integer
    matrix by appending unit vectors.

    Unlike :func:`complete_to_unimodular`, the result need not be
    unimodular, but it always exists.  Appended rows are the
    lexicographically earliest unit vectors that preserve independence.
    """
    k, n = rows.shape
    current = rows
    rank = current.rank()
    if rank != k:
        raise LinalgError("rows are linearly dependent")
    for i in range(n):
        if current.nrows == n:
            break
        unit = [0] * n
        unit[i] = 1
        candidate = current.with_row(unit)
        if candidate.rank() == current.nrows + 1:
            current = candidate
    if current.nrows != n:  # pragma: no cover - cannot happen for rank-k input
        raise LinalgError("failed to extend to full rank")
    return current


def first_nonzero_index(vec: Sequence[int]) -> int | None:
    """Index of the first nonzero entry, or None for the zero vector."""
    for i, x in enumerate(vec):
        if x != 0:
            return i
    return None


def is_lex_positive(vec: Sequence[int]) -> bool:
    """True iff the vector is lexicographically positive (first nonzero
    entry is > 0)."""
    i = first_nonzero_index(vec)
    return i is not None and vec[i] > 0


def is_lex_nonnegative(vec: Sequence[int]) -> bool:
    """True iff the vector is zero or lexicographically positive."""
    i = first_nonzero_index(vec)
    return i is None or vec[i] > 0


def lex_compare(a: Sequence[int], b: Sequence[int]) -> int:
    """Three-way lexicographic comparison: -1, 0, or 1."""
    if len(a) != len(b):
        raise LinalgError("lexicographic comparison of unequal-length vectors")
    for x, y in zip(a, b):
        if x < y:
            return -1
        if x > y:
            return 1
    return 0


def random_unimodular(n: int, steps: int = 20, seed: int | None = None) -> IntMatrix:
    """A pseudo-random n x n unimodular matrix.

    Built as a product of random elementary row operations (swaps,
    negations, and add-multiples with small factors) applied to the
    identity, so the determinant stays ±1 by construction.  Entry growth
    is kept modest by bounding the multipliers.
    """
    rng = random.Random(seed)
    m = [[int(i == j) for j in range(n)] for i in range(n)]
    for _ in range(steps):
        op = rng.choice(("swap", "neg", "addmul")) if n > 1 else "neg"
        if op == "swap":
            i, j = rng.sample(range(n), 2)
            m[i], m[j] = m[j], m[i]
        elif op == "neg":
            i = rng.randrange(n)
            m[i] = [-x for x in m[i]]
        else:
            i, j = rng.sample(range(n), 2)
            f = rng.choice((-2, -1, 1, 2))
            m[i] = [a + f * b for a, b in zip(m[i], m[j])]
    result = IntMatrix(m)
    assert result.is_unimodular()
    return result
