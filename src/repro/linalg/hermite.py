"""Hermite and Smith normal forms for exact integer matrices.

These are the classical lattice-theory tools behind the linear loop
transformation framework: the Hermite normal form yields integer
nullspace bases and lattice membership tests, and the Smith normal form
characterizes the image lattice of a non-unimodular transformation
(needed for loop *steps* after scaling/skewing by non-unit factors).
"""

from __future__ import annotations

from typing import Tuple

from repro.linalg.intmat import IntMatrix
from repro.util.errors import LinalgError

__all__ = ["hnf_column", "hnf_row", "smith_normal_form", "in_lattice"]


def hnf_column(a: IntMatrix) -> Tuple[IntMatrix, IntMatrix]:
    """Column-style Hermite normal form.

    Returns ``(H, U)`` with ``a @ U == H``, ``U`` unimodular, and ``H`` in
    (lower-triangular) column Hermite normal form: pivot entries positive,
    entries to the right of a pivot zero, entries to the left reduced
    modulo the pivot.

    The algorithm is the standard one based on extended-gcd column
    operations; exactness is guaranteed by Python big integers.
    """
    m, n = a.shape
    h = [list(r) for r in a.rows()]
    u = [[1 if i == j else 0 for j in range(n)] for i in range(n)]

    def colop_swap(j, k):
        for i in range(m):
            h[i][j], h[i][k] = h[i][k], h[i][j]
        for i in range(n):
            u[i][j], u[i][k] = u[i][k], u[i][j]

    def colop_neg(j):
        for i in range(m):
            h[i][j] = -h[i][j]
        for i in range(n):
            u[i][j] = -u[i][j]

    def colop_addmul(j, k, f):
        # col j += f * col k
        for i in range(m):
            h[i][j] += f * h[i][k]
        for i in range(n):
            u[i][j] += f * u[i][k]

    def colop_combine(row, j, k):
        """Replace cols (j, k) by unimodular combo zeroing h[row][k]."""
        a_, b_ = h[row][j], h[row][k]
        g, x, y = _xgcd(a_, b_)
        # new col j = x*colj + y*colk  (pivot becomes g)
        # new col k = -(b/g)*colj + (a/g)*colk  (entry becomes 0)
        p, q = -(b_ // g), a_ // g
        for i in range(m):
            cj, ck = h[i][j], h[i][k]
            h[i][j] = x * cj + y * ck
            h[i][k] = p * cj + q * ck
        for i in range(n):
            cj, ck = u[i][j], u[i][k]
            u[i][j] = x * cj + y * ck
            u[i][k] = p * cj + q * ck

    pivot_col = 0
    for row in range(m):
        if pivot_col >= n:
            break
        # find a column with a nonzero entry in this row, at or after pivot_col
        nz = next((j for j in range(pivot_col, n) if h[row][j] != 0), None)
        if nz is None:
            continue
        if nz != pivot_col:
            colop_swap(pivot_col, nz)
        for j in range(pivot_col + 1, n):
            if h[row][j] != 0:
                colop_combine(row, pivot_col, j)
        if h[row][pivot_col] < 0:
            colop_neg(pivot_col)
        piv = h[row][pivot_col]
        for j in range(pivot_col):
            if piv != 0:
                f = -(h[row][j] // piv)  # floor-reduce to 0 <= entry < piv
                if f != 0:
                    colop_addmul(j, pivot_col, f)
        pivot_col += 1

    return IntMatrix(h), IntMatrix(u)


def hnf_row(a: IntMatrix) -> Tuple[IntMatrix, IntMatrix]:
    """Row-style Hermite normal form: ``U @ a == H``, ``U`` unimodular,
    ``H`` upper-triangular row HNF."""
    ht, ut = hnf_column(a.transpose())
    return ht.transpose(), ut.transpose()


def smith_normal_form(a: IntMatrix) -> Tuple[IntMatrix, IntMatrix, IntMatrix]:
    """Smith normal form.

    Returns ``(S, U, V)`` with ``U @ a @ V == S``, ``U`` and ``V``
    unimodular and ``S`` diagonal with ``S[i,i]`` dividing ``S[i+1,i+1]``.
    """
    m, n = a.shape
    s = [list(r) for r in a.rows()]
    u = [[int(i == j) for j in range(m)] for i in range(m)]
    v = [[int(i == j) for j in range(n)] for i in range(n)]

    def row_addmul(i, k, f):
        s[i] = [x + f * y for x, y in zip(s[i], s[k])]
        u[i] = [x + f * y for x, y in zip(u[i], u[k])]

    def col_addmul(j, k, f):
        for r in s:
            r[j] += f * r[k]
        for r in v:
            r[j] += f * r[k]

    def row_swap(i, k):
        s[i], s[k] = s[k], s[i]
        u[i], u[k] = u[k], u[i]

    def col_swap(j, k):
        for r in s:
            r[j], r[k] = r[k], r[j]
        for r in v:
            r[j], r[k] = r[k], r[j]

    def row_neg(i):
        s[i] = [-x for x in s[i]]
        u[i] = [-x for x in u[i]]

    t = 0
    while t < min(m, n):
        # find pivot: nonzero entry in submatrix s[t:, t:]
        piv = None
        for i in range(t, m):
            for j in range(t, n):
                if s[i][j] != 0:
                    if piv is None or abs(s[i][j]) < abs(s[piv[0]][piv[1]]):
                        piv = (i, j)
        if piv is None:
            break
        row_swap(t, piv[0])
        col_swap(t, piv[1])
        # eliminate the rest of row t and column t
        again = True
        while again:
            again = False
            for i in range(t + 1, m):
                if s[i][t] != 0:
                    q = s[i][t] // s[t][t]
                    row_addmul(i, t, -q)
                    if s[i][t] != 0:
                        row_swap(t, i)
                        again = True
            for j in range(t + 1, n):
                if s[t][j] != 0:
                    q = s[t][j] // s[t][t]
                    col_addmul(j, t, -q)
                    if s[t][j] != 0:
                        col_swap(t, j)
                        again = True
        if s[t][t] < 0:
            row_neg(t)
        # divisibility fix-up: ensure s[t][t] divides all later entries
        fixed = False
        for i in range(t + 1, m):
            for j in range(t + 1, n):
                if s[i][j] % s[t][t] != 0:
                    row_addmul(t, i, 1)
                    fixed = True
                    break
            if fixed:
                break
        if fixed:
            continue  # redo elimination at this t
        t += 1

    return IntMatrix(s), IntMatrix(u), IntMatrix(v)


def in_lattice(basis: IntMatrix, vec) -> bool:
    """True iff integer vector ``vec`` lies in the lattice generated by the
    *columns* of ``basis``."""
    m, n = basis.shape
    if len(vec) != m:
        raise LinalgError("vector length does not match lattice dimension")
    h, u = hnf_column(basis)
    # Solve h @ y = vec by forward substitution over the pivot structure.
    y = [0] * n
    residual = list(vec)
    col = 0
    for row in range(m):
        if col < n and h[row, col] != 0:
            if residual[row] % h[row, col] != 0:
                return False
            y[col] = residual[row] // h[row, col]
            for i in range(m):
                residual[i] -= y[col] * h[i, col]
            col += 1
        elif residual[row] != 0:
            return False
    return all(x == 0 for x in residual)


def _xgcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended gcd: returns (g, x, y) with g = a*x + b*y, g >= 0."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r != 0:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    if old_r < 0:
        old_r, old_s, old_t = -old_r, -old_s, -old_t
    assert old_r == a * old_s + b * old_t
    return old_r, old_s, old_t
