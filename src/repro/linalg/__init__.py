"""Exact integer linear algebra (system S1).

Public surface:

* :class:`IntMatrix`, :class:`FracMatrix` — exact matrices.
* :func:`hnf_column`, :func:`hnf_row`, :func:`smith_normal_form`,
  :func:`in_lattice` — lattice normal forms.
* :func:`complete_to_unimodular`, :func:`extend_to_full_rank`,
  :func:`is_lex_positive`, :func:`lex_compare`, :func:`random_unimodular`
  — completion and ordering utilities.
"""

from repro.linalg.hermite import hnf_column, hnf_row, in_lattice, smith_normal_form
from repro.linalg.intmat import FracMatrix, IntMatrix
from repro.linalg.unimodular import (
    complete_to_unimodular,
    extend_to_full_rank,
    first_nonzero_index,
    is_lex_nonnegative,
    is_lex_positive,
    lex_compare,
    random_unimodular,
)

__all__ = [
    "IntMatrix",
    "FracMatrix",
    "hnf_column",
    "hnf_row",
    "smith_normal_form",
    "in_lattice",
    "complete_to_unimodular",
    "extend_to_full_rank",
    "first_nonzero_index",
    "is_lex_nonnegative",
    "is_lex_positive",
    "lex_compare",
    "random_unimodular",
]
