"""Exact integer matrices.

This module provides :class:`IntMatrix`, an immutable exact-arithmetic
integer matrix built on Python's arbitrary-precision integers.  It is the
workhorse for every matrix computation in the library: transformation
matrices, dependence matrices (with the symbolic entries stripped),
Hermite/Smith normal forms, integer nullspaces and rational solves.

Why not numpy?  The transformation framework needs *exact* answers —
unimodularity, integer nullspace bases, integer-preserving inverses —
and numpy's fixed-width integers overflow while its floats lose
exactness.  Matrices here are small (a handful of rows per loop nest),
so clarity and exactness beat raw speed; hot numeric paths elsewhere in
the library (trace generation, cache simulation) use numpy as the HPC
guides recommend.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Iterable, Iterator, Sequence

from repro.util.errors import LinalgError

__all__ = ["IntMatrix", "FracMatrix"]


def _as_int(x) -> int:
    """Coerce ``x`` to an exact int, rejecting lossy conversions."""
    if isinstance(x, bool):
        return int(x)
    if isinstance(x, int):
        return x
    if isinstance(x, Fraction):
        if x.denominator == 1:
            return x.numerator
        raise LinalgError(f"non-integral value {x!r} in integer matrix")
    if isinstance(x, float):
        if x.is_integer():
            return int(x)
        raise LinalgError(f"non-integral value {x!r} in integer matrix")
    # numpy integer scalars and similar
    try:
        i = int(x)
    except (TypeError, ValueError) as exc:  # pragma: no cover - defensive
        raise LinalgError(f"cannot interpret {x!r} as an integer") from exc
    if i != x:
        raise LinalgError(f"non-integral value {x!r} in integer matrix")
    return i


class IntMatrix:
    """An immutable matrix of exact Python integers.

    Construct from an iterable of rows::

        >>> m = IntMatrix([[1, 2], [3, 4]])
        >>> m.shape
        (2, 2)
        >>> (m @ m.identity(2)) == m
        True

    The matrix is hashable and usable as a dict key; all operations
    return new matrices.
    """

    __slots__ = ("_rows", "_nrows", "_ncols")

    def __init__(self, rows: Iterable[Iterable[int]]):
        rows_t = tuple(tuple(_as_int(x) for x in row) for row in rows)
        if rows_t:
            ncols = len(rows_t[0])
            for r in rows_t:
                if len(r) != ncols:
                    raise LinalgError("ragged rows in matrix construction")
        else:
            ncols = 0
        self._rows = rows_t
        self._nrows = len(rows_t)
        self._ncols = ncols

    # -- construction helpers -------------------------------------------------

    @staticmethod
    def identity(n: int) -> "IntMatrix":
        """The n-by-n identity matrix."""
        return IntMatrix([[1 if i == j else 0 for j in range(n)] for i in range(n)])

    @staticmethod
    def zeros(nrows: int, ncols: int) -> "IntMatrix":
        """An all-zero matrix of the given shape."""
        return IntMatrix([[0] * ncols for _ in range(nrows)])

    @staticmethod
    def from_rows(*rows: Sequence[int]) -> "IntMatrix":
        """Build a matrix from row vectors given as positional arguments."""
        return IntMatrix(rows)

    @staticmethod
    def column(values: Sequence[int]) -> "IntMatrix":
        """A single-column matrix from a vector."""
        return IntMatrix([[v] for v in values])

    @staticmethod
    def row(values: Sequence[int]) -> "IntMatrix":
        """A single-row matrix from a vector."""
        return IntMatrix([list(values)])

    @staticmethod
    def diag(values: Sequence[int]) -> "IntMatrix":
        """A square diagonal matrix with ``values`` on the diagonal."""
        n = len(values)
        return IntMatrix([[values[i] if i == j else 0 for j in range(n)] for i in range(n)])

    @staticmethod
    def permutation(perm: Sequence[int]) -> "IntMatrix":
        """The permutation matrix P with ``(P x)[i] = x[perm[i]]``.

        ``perm`` must be a permutation of ``range(len(perm))``.
        """
        n = len(perm)
        if sorted(perm) != list(range(n)):
            raise LinalgError(f"{perm!r} is not a permutation of 0..{n-1}")
        return IntMatrix([[1 if j == perm[i] else 0 for j in range(n)] for i in range(n)])

    # -- basic protocol --------------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return (self._nrows, self._ncols)

    @property
    def nrows(self) -> int:
        return self._nrows

    @property
    def ncols(self) -> int:
        return self._ncols

    def is_square(self) -> bool:
        return self._nrows == self._ncols

    def __getitem__(self, key):
        """``m[i, j]`` element access; ``m[i]`` returns row ``i`` as a tuple.

        Slices are supported in either position and return sub-matrices.
        """
        if isinstance(key, tuple):
            i, j = key
            if isinstance(i, slice) or isinstance(j, slice):
                rows = self._rows[i] if isinstance(i, slice) else (self._rows[i],)
                if isinstance(j, slice):
                    return IntMatrix([r[j] for r in rows])
                return IntMatrix([[r[j]] for r in rows])
            return self._rows[i][j]
        if isinstance(key, slice):
            return IntMatrix(self._rows[key])
        return self._rows[key]

    def rows(self) -> tuple[tuple[int, ...], ...]:
        """All rows as a tuple of tuples."""
        return self._rows

    def col(self, j: int) -> tuple[int, ...]:
        """Column ``j`` as a tuple."""
        return tuple(r[j] for r in self._rows)

    def cols(self) -> tuple[tuple[int, ...], ...]:
        """All columns as tuples."""
        return tuple(self.col(j) for j in range(self._ncols))

    def tolist(self) -> list[list[int]]:
        return [list(r) for r in self._rows]

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        return iter(self._rows)

    def __eq__(self, other) -> bool:
        if not isinstance(other, IntMatrix):
            return NotImplemented
        return self._rows == other._rows

    def __hash__(self) -> int:
        return hash(self._rows)

    def __repr__(self) -> str:
        return f"IntMatrix({[list(r) for r in self._rows]!r})"

    def __str__(self) -> str:
        if not self._rows:
            return "[]"
        widths = [max(len(str(self._rows[i][j])) for i in range(self._nrows)) for j in range(self._ncols)]
        lines = []
        for r in self._rows:
            lines.append("[ " + "  ".join(str(x).rjust(w) for x, w in zip(r, widths)) + " ]")
        return "\n".join(lines)

    # -- arithmetic ------------------------------------------------------------

    def __add__(self, other: "IntMatrix") -> "IntMatrix":
        self._check_same_shape(other, "+")
        return IntMatrix(
            [[a + b for a, b in zip(ra, rb)] for ra, rb in zip(self._rows, other._rows)]
        )

    def __sub__(self, other: "IntMatrix") -> "IntMatrix":
        self._check_same_shape(other, "-")
        return IntMatrix(
            [[a - b for a, b in zip(ra, rb)] for ra, rb in zip(self._rows, other._rows)]
        )

    def __neg__(self) -> "IntMatrix":
        return IntMatrix([[-a for a in r] for r in self._rows])

    def __mul__(self, scalar: int) -> "IntMatrix":
        s = _as_int(scalar)
        return IntMatrix([[a * s for a in r] for r in self._rows])

    __rmul__ = __mul__

    def __matmul__(self, other: "IntMatrix") -> "IntMatrix":
        if not isinstance(other, IntMatrix):
            return NotImplemented
        if self._ncols != other._nrows:
            raise LinalgError(
                f"matmul shape mismatch: {self.shape} @ {other.shape}"
            )
        ocols = other.cols()
        return IntMatrix(
            [[sum(a * b for a, b in zip(row, col)) for col in ocols] for row in self._rows]
        )

    def matvec(self, vec: Sequence[int]) -> tuple[int, ...]:
        """Matrix-vector product returning a tuple."""
        if len(vec) != self._ncols:
            raise LinalgError(f"matvec length mismatch: {self.shape} * len {len(vec)}")
        return tuple(sum(a * v for a, v in zip(row, vec)) for row in self._rows)

    def _check_same_shape(self, other: "IntMatrix", op: str) -> None:
        if not isinstance(other, IntMatrix):
            raise LinalgError(f"cannot apply {op} to IntMatrix and {type(other).__name__}")
        if self.shape != other.shape:
            raise LinalgError(f"shape mismatch for {op}: {self.shape} vs {other.shape}")

    # -- structural operations ---------------------------------------------------

    def transpose(self) -> "IntMatrix":
        return IntMatrix(self.cols())

    @property
    def T(self) -> "IntMatrix":
        return self.transpose()

    def hstack(self, other: "IntMatrix") -> "IntMatrix":
        if self._nrows != other._nrows:
            raise LinalgError("hstack row-count mismatch")
        return IntMatrix([ra + rb for ra, rb in zip(self._rows, other._rows)])

    def vstack(self, other: "IntMatrix") -> "IntMatrix":
        if self._ncols != other._ncols and self._nrows and other._nrows:
            raise LinalgError("vstack column-count mismatch")
        return IntMatrix(self._rows + other._rows)

    def with_row(self, row: Sequence[int]) -> "IntMatrix":
        """A copy of this matrix with ``row`` appended at the bottom."""
        if self._nrows and len(row) != self._ncols:
            raise LinalgError("appended row has wrong length")
        return IntMatrix(self._rows + (tuple(_as_int(x) for x in row),))

    def select_rows(self, indices: Sequence[int]) -> "IntMatrix":
        return IntMatrix([self._rows[i] for i in indices])

    def select_cols(self, indices: Sequence[int]) -> "IntMatrix":
        return IntMatrix([[r[j] for j in indices] for r in self._rows])

    def delete_row(self, i: int) -> "IntMatrix":
        return IntMatrix([r for k, r in enumerate(self._rows) if k != i])

    def delete_col(self, j: int) -> "IntMatrix":
        return IntMatrix([[x for k, x in enumerate(r) if k != j] for r in self._rows])

    def is_zero(self) -> bool:
        return all(all(x == 0 for x in r) for r in self._rows)

    # -- exact numerical algorithms ----------------------------------------------

    def rank(self) -> int:
        """Rank over the rationals, computed by fraction-free elimination."""
        return len(_row_echelon(list(map(list, self._rows))))

    def det(self) -> int:
        """Determinant by the Bareiss fraction-free algorithm (exact)."""
        if not self.is_square():
            raise LinalgError("determinant of a non-square matrix")
        n = self._nrows
        if n == 0:
            return 1
        m = [list(r) for r in self._rows]
        sign = 1
        prev = 1
        for k in range(n - 1):
            if m[k][k] == 0:
                for i in range(k + 1, n):
                    if m[i][k] != 0:
                        m[k], m[i] = m[i], m[k]
                        sign = -sign
                        break
                else:
                    return 0
            for i in range(k + 1, n):
                for j in range(k + 1, n):
                    m[i][j] = (m[i][j] * m[k][k] - m[i][k] * m[k][j]) // prev
                m[i][k] = 0
            prev = m[k][k]
        return sign * m[n - 1][n - 1]

    def is_unimodular(self) -> bool:
        """True iff the matrix is square with determinant ±1."""
        return self.is_square() and self.det() in (1, -1)

    def is_permutation(self) -> bool:
        """True iff the matrix is a permutation matrix."""
        if not self.is_square():
            return False
        for r in self._rows:
            if sorted(r) != [0] * (self._ncols - 1) + [1]:
                return False
        for j in range(self._ncols):
            if sorted(self.col(j)) != [0] * (self._nrows - 1) + [1]:
                return False
        return True

    def to_permutation(self) -> list[int]:
        """Extract ``perm`` such that ``(P x)[i] = x[perm[i]]``."""
        if not self.is_permutation():
            raise LinalgError("matrix is not a permutation matrix")
        return [r.index(1) for r in self._rows]

    def inverse_frac(self) -> "FracMatrix":
        """Exact rational inverse."""
        if not self.is_square():
            raise LinalgError("inverse of a non-square matrix")
        n = self._nrows
        aug = [[Fraction(x) for x in r] + [Fraction(int(i == j)) for j in range(n)] for i, r in enumerate(self._rows)]
        for col in range(n):
            piv = next((i for i in range(col, n) if aug[i][col] != 0), None)
            if piv is None:
                raise LinalgError("matrix is singular")
            aug[col], aug[piv] = aug[piv], aug[col]
            pv = aug[col][col]
            aug[col] = [x / pv for x in aug[col]]
            for i in range(n):
                if i != col and aug[i][col] != 0:
                    f = aug[i][col]
                    aug[i] = [a - f * b for a, b in zip(aug[i], aug[col])]
        return FracMatrix([r[n:] for r in aug])

    def inverse_int(self) -> "IntMatrix":
        """Exact integer inverse; requires the matrix to be unimodular."""
        inv = self.inverse_frac()
        try:
            return inv.to_int()
        except LinalgError as exc:
            raise LinalgError("matrix inverse is not integral (not unimodular)") from exc

    def solve_frac(self, rhs: Sequence[int | Fraction]) -> tuple[Fraction, ...]:
        """Solve ``self @ x = rhs`` exactly over the rationals.

        Requires a square nonsingular matrix.
        """
        inv = self.inverse_frac()
        return inv.matvec(rhs)

    def nullspace_int(self) -> list[tuple[int, ...]]:
        """A basis for the integer nullspace ``{x : self @ x = 0}``.

        The basis vectors are primitive integer vectors spanning the
        lattice of integer solutions (computed via the HNF transform).
        """
        from repro.linalg.hermite import hnf_column

        # Column-style HNF: self @ U = H with U unimodular.  Columns of U
        # matching zero columns of H form a lattice basis for the kernel.
        h, u = hnf_column(self)
        basis = []
        for j in range(self._ncols):
            if all(h[i, j] == 0 for i in range(self._nrows)):
                vec = tuple(u[i, j] for i in range(self._ncols))
                basis.append(_make_primitive(vec))
        return basis

    def row_space_basis(self) -> list[tuple[int, ...]]:
        """A basis (over Q, with integer vectors) for the row space."""
        ech = _row_echelon([list(r) for r in self._rows])
        return [tuple(_make_primitive(tuple(r))) for r in ech]

    def gcd_of_entries(self) -> int:
        g = 0
        for r in self._rows:
            for x in r:
                g = gcd(g, abs(x))
        return g


class FracMatrix:
    """A small exact rational matrix used for inverses and solves."""

    __slots__ = ("_rows",)

    def __init__(self, rows: Iterable[Iterable[Fraction | int]]):
        self._rows = tuple(tuple(Fraction(x) for x in row) for row in rows)
        if self._rows:
            n = len(self._rows[0])
            if any(len(r) != n for r in self._rows):
                raise LinalgError("ragged rows in FracMatrix")

    @property
    def shape(self) -> tuple[int, int]:
        return (len(self._rows), len(self._rows[0]) if self._rows else 0)

    def __getitem__(self, key):
        if isinstance(key, tuple):
            return self._rows[key[0]][key[1]]
        return self._rows[key]

    def rows(self):
        return self._rows

    def matvec(self, vec: Sequence[int | Fraction]) -> tuple[Fraction, ...]:
        return tuple(sum((Fraction(v) * a for a, v in zip(row, vec)), Fraction(0)) for row in self._rows)

    def to_int(self) -> IntMatrix:
        """Convert to an IntMatrix, raising if any entry is non-integral."""
        out = []
        for r in self._rows:
            row = []
            for x in r:
                if x.denominator != 1:
                    raise LinalgError(f"entry {x} is not an integer")
                row.append(x.numerator)
            out.append(row)
        return IntMatrix(out)

    def __eq__(self, other) -> bool:
        if not isinstance(other, FracMatrix):
            return NotImplemented
        return self._rows == other._rows

    def __hash__(self) -> int:
        return hash(self._rows)

    def __repr__(self) -> str:
        return f"FracMatrix({[list(map(str, r)) for r in self._rows]!r})"


def _row_echelon(m: list[list[int]]) -> list[list[Fraction]]:
    """Reduce ``m`` to row echelon form over Q; returns the nonzero rows."""
    rows = [[Fraction(x) for x in r] for r in m]
    nrows = len(rows)
    ncols = len(rows[0]) if rows else 0
    rank = 0
    for col in range(ncols):
        piv = next((i for i in range(rank, nrows) if rows[i][col] != 0), None)
        if piv is None:
            continue
        rows[rank], rows[piv] = rows[piv], rows[rank]
        pv = rows[rank][col]
        rows[rank] = [x / pv for x in rows[rank]]
        for i in range(nrows):
            if i != rank and rows[i][col] != 0:
                f = rows[i][col]
                rows[i] = [a - f * b for a, b in zip(rows[i], rows[rank])]
        rank += 1
        if rank == nrows:
            break
    return rows[:rank]


def _make_primitive(vec: tuple) -> tuple[int, ...]:
    """Scale a rational/integer vector to a primitive integer vector."""
    fracs = [Fraction(x) for x in vec]
    denom = 1
    for f in fracs:
        denom = denom * f.denominator // gcd(denom, f.denominator)
    ints = [int(f * denom) for f in fracs]
    g = 0
    for x in ints:
        g = gcd(g, abs(x))
    if g > 1:
        ints = [x // g for x in ints]
    return tuple(ints)
