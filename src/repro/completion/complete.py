"""Completion procedure for imperfectly nested loops (paper §6).

Given a dependence matrix and the first few rows of a desired
transformation (e.g. "make the new outermost loop scan the old L
coordinate"), the procedure appends rows producing a complete *legal*
transformation matrix — the imperfect-nest analogue of Li & Pingali's
completion for perfect nests.

The search space explored here is the permutation/reversal fragment:
every new loop row is ±(a unit vector of some old loop coordinate) and
every node's children may be reordered.  That fragment is exactly what
the paper's §6 example exercises (loop permutation of Cholesky
factorization); skewing completions can be expressed by passing them in
``extra_candidates``.

The construction is a depth-first backtracking walk over the new AST in
instance-vector order, maintaining for every dependence its three-valued
satisfaction status (Definition 6), so emitted prefixes are always
extensible to legal matrices or pruned immediately.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

from repro.dependence.analyze import analyze_dependences
from repro.dependence.depvector import DependenceMatrix, DepVector
from repro.dependence.entry import zip_dot
from repro.instance.layout import EdgeCoord, Layout, LoopCoord, Path
from repro.ir.ast import Loop, Node, Program, Statement
from repro.linalg.intmat import IntMatrix
from repro.obs import counter, event, timed
from repro.util.errors import CompletionError

__all__ = ["complete_transformation", "CompletionResult"]


@dataclass
class CompletionResult:
    """A completed transformation matrix and the child orders chosen."""

    matrix: IntMatrix
    child_order: dict[Path, list[int]]


@timed("completion.complete", attr_fn=lambda program, *a, **kw: {"program": program.name})
def complete_transformation(
    program: Program,
    partial_rows: Sequence[Sequence[int]] = (),
    deps: DependenceMatrix | None = None,
    *,
    layout: Layout | None = None,
    allow_reversal: bool = False,
    allow_reorder: bool = True,
    skew_bound: int = 0,
    extra_candidates: Sequence[Sequence[int]] = (),
    node_rows: dict[Path, Sequence[int]] | None = None,
) -> CompletionResult:
    """Complete ``partial_rows`` (a prefix of the new matrix) to a full
    legal transformation matrix.

    ``node_rows`` optionally forces the label row of specific loop nodes
    (by their old AST path) — useful for stating intent like "this
    subtree's outermost loop scans coordinate c" on forest programs,
    where the row position depends on child reordering.

    Raises :class:`CompletionError` when no completion exists within the
    candidate fragment.
    """
    layout = layout or Layout(program)
    if deps is None:
        deps = analyze_dependences(program)
    n = layout.dimension
    partial = [tuple(int(x) for x in r) for r in partial_rows]
    for r in partial:
        if len(r) != n:
            raise CompletionError(f"partial row length {len(r)} != layout dimension {n}")

    # statements under each node path (for pending-dep bookkeeping)
    under: dict[Path, set[str]] = {(): set(layout.statement_labels())}
    for label in layout.statement_labels():
        p = layout.statement_path(label)
        for d in range(1, len(p)):
            under.setdefault(p[:d], set()).add(label)

    loop_cols = {layout.index(c): c for c in layout.loop_coords()}
    edge_cols = {layout.index(c): c for c in layout.edge_coords()}

    dep_list = list(deps)

    def row_entry(row: tuple[int, ...], d: DepVector):
        return zip_dot(row, d.entries)

    def children_of(path: Path) -> tuple[Node, ...]:
        if not path:
            return program.body
        node = layout.node_at(path)
        assert isinstance(node, Loop)
        return node.body

    def subtree_size(path: Path) -> int:
        idxs = [
            i
            for i, c in layout.iter_coords()
            if c.path[: len(path)] == path
            or (isinstance(c, EdgeCoord) and c.path == path)
        ]
        return len(idxs)

    rows: list[tuple[int, ...]] = []
    child_order: dict[Path, list[int]] = {}
    used_loop_cols: set[int] = set()

    def loop_candidates(path: Path) -> list[tuple[int, ...]]:
        """Candidate label rows for the new loop at old node ``path``."""
        out: list[tuple[int, ...]] = []
        own = layout.index(LoopCoord(path, layout.node_at(path).var))  # type: ignore[union-attr]
        ordering = [own] + [i for i in sorted(loop_cols) if i != own]
        for i in ordering:
            if i in used_loop_cols:
                continue
            unit = tuple(1 if j == i else 0 for j in range(n))
            out.append(unit)
            if allow_reversal:
                out.append(tuple(-x for x in unit))
        if skew_bound > 0:
            # skewed rows e_i + f*e_j over loop coordinates, small |f|
            for i in ordering:
                if i in used_loop_cols:
                    continue
                for j in sorted(loop_cols):
                    if j == i:
                        continue
                    for f in range(1, skew_bound + 1):
                        for sf in (f, -f):
                            row = [0] * n
                            row[i] = 1
                            row[j] = sf
                            out.append(tuple(row))
        for extra in extra_candidates:
            out.append(tuple(int(x) for x in extra))
        return out

    def solve(path: Path, pending: frozenset[int]) -> bool:
        """Emit the block of old node ``path``; returns True on success.

        ``pending`` indexes dependences not yet definitely satisfied by
        outer loop levels.
        """
        node = layout.node_at(path) if path else None
        if isinstance(node, Statement):
            return True

        # -- 1. loop label row -------------------------------------------
        def after_label(pending2: frozenset[int]) -> bool:
            children = children_of(path)
            c = len(children)
            # -- 2. child permutation + edge rows --------------------------
            # forced edges from partial rows?
            edge_positions = list(range(len(rows), len(rows) + c)) if c >= 2 else []
            lca_constraints = [
                (d_i, dep_list[d_i])
                for d_i in pending2
                if _lca_children(layout, dep_list[d_i], path, c) is not None
            ]

            for sigma in _permutations(c, allow_reorder):
                counter("completion.child_orders_tried")
                if c >= 2:
                    ok = True
                    # check partial-row forcing
                    trial_rows = []
                    for a in range(c):
                        new_child = c - 1 - a
                        old_child = sigma[new_child]
                        col = layout.index(EdgeCoord(path, old_child))
                        unit = tuple(1 if j == col else 0 for j in range(n))
                        pos = edge_positions[a]
                        if pos < len(partial) and partial[pos] != unit:
                            ok = False
                            break
                        trial_rows.append(unit)
                    if not ok:
                        continue
                    # check syntactic-order constraints for cross-child deps
                    position = {old: new for new, old in enumerate(sigma)}
                    violated = False
                    for d_i, d in lca_constraints:
                        ca, cb = _lca_children(layout, d, path, c)
                        if d.src == d.dst:
                            continue
                        if position[ca] > position[cb]:
                            violated = True
                            break
                        if position[ca] == position[cb]:  # same child; handled deeper
                            continue
                    if violated:
                        continue
                    rows.extend(trial_rows)
                else:
                    sigma = list(range(c))
                child_order[path] = list(sigma)

                # cross-child deps in the same relative order are satisfied
                # syntactically; drop them from pending for the recursion.
                pending3 = set(pending2)
                if c >= 1:
                    position = {old: new for new, old in enumerate(sigma)}
                    for d_i, d in lca_constraints:
                        if d.src == d.dst:
                            continue
                        ca, cb = _lca_children(layout, d, path, c)
                        if ca != cb and position[ca] < position[cb]:
                            pending3.discard(d_i)

                # -- 3. recurse into children in new order, rightmost first --
                saved_len = len(rows)
                success = True
                for k in reversed(range(c)):
                    old_child = sigma[k]
                    child_path = path + (old_child,)
                    child_pending = frozenset(
                        d_i
                        for d_i in pending3
                        if dep_list[d_i].src in under.get(child_path, {None})
                        or layout.statement_path(dep_list[d_i].src) == child_path
                    )
                    # restrict to deps fully inside this child
                    child_pending = frozenset(
                        d_i
                        for d_i in pending3
                        if _inside(layout, dep_list[d_i], child_path)
                    )
                    if not solve(child_path, child_pending):
                        success = False
                        break
                if success:
                    return True
                del rows[saved_len:]
                if c >= 2:
                    del rows[len(rows) - c :]
                child_order.pop(path, None)
            return False

        if isinstance(node, Loop):
            pos = len(rows)
            if pos < len(partial):
                candidates = [partial[pos]]
            elif node_rows and path in node_rows:
                candidates = [tuple(int(x) for x in node_rows[path])]
            else:
                candidates = loop_candidates(path)
            for row in candidates:
                counter("completion.rows_tried")
                # Definition-6 screening for deps whose statements share
                # this loop (i.e. both inside this node).
                new_pending = set(pending)
                bad: DepVector | None = None
                for d_i in pending:
                    d = dep_list[d_i]
                    if not _inside(layout, d, path):
                        continue
                    entry = row_entry(row, d)
                    if entry.may_be_negative():
                        bad = d
                        break
                    if entry.definitely_positive():
                        new_pending.discard(d_i)
                if bad is not None:
                    counter("completion.rows_pruned")
                    event(
                        "complete", "reject",
                        "row would let a dependence run backwards at this level",
                        row=str(list(row)), dep=str(bad), at=str(path),
                    )
                    continue
                used_here = _unit_loop_col(row, loop_cols)
                if used_here is not None and used_here in used_loop_cols:
                    continue
                rows.append(row)
                if used_here is not None:
                    used_loop_cols.add(used_here)
                if after_label(frozenset(new_pending)):
                    return True
                counter("completion.backtracks")
                rows.pop()
                if used_here is not None:
                    used_loop_cols.discard(used_here)
            return False
        # virtual root: no label row
        return after_label(pending)

    all_pending = frozenset(range(len(dep_list)))
    if not solve((), all_pending):
        event(
            "complete", "reject",
            "no legal completion in the permutation/reversal fragment",
            program=program.name,
        )
        raise CompletionError(
            "no legal completion in the permutation/reversal fragment; "
            "pass extra_candidates for skewed completions"
        )
    matrix = IntMatrix(rows)
    event(
        "complete", "accept",
        "completion found in the permutation/reversal fragment",
        program=program.name,
        matrix=str([list(r) for r in rows]),
        child_order=str({str(k): v for k, v in sorted(child_order.items())}),
    )
    if matrix.shape != (n, n):  # pragma: no cover - structural invariant
        raise CompletionError("internal error: completed matrix has wrong shape")
    return CompletionResult(matrix, dict(child_order))


def _unit_loop_col(row: tuple[int, ...], loop_cols: dict[int, LoopCoord]) -> int | None:
    nz = [(j, v) for j, v in enumerate(row) if v != 0]
    if len(nz) == 1 and abs(nz[0][1]) == 1 and nz[0][0] in loop_cols:
        return nz[0][0]
    return None


def _inside(layout: Layout, d: DepVector, path: Path) -> bool:
    """Both endpoints of the dependence lie strictly inside ``path``."""
    ps = layout.statement_path(d.src)
    pd = layout.statement_path(d.dst)
    return ps[: len(path)] == path and pd[: len(path)] == path and len(ps) > len(path) and len(pd) > len(path)


def _lca_children(layout: Layout, d: DepVector, path: Path, c: int):
    """If both endpoints are inside ``path``, the child indices their
    paths descend through; None otherwise."""
    if not _inside(layout, d, path):
        return None
    ps = layout.statement_path(d.src)
    pd = layout.statement_path(d.dst)
    return ps[len(path)], pd[len(path)]


def _permutations(c: int, allow_reorder: bool):
    if c <= 1:
        yield list(range(c))
        return
    if not allow_reorder:
        yield list(range(c))
        return
    # identity first for determinism, then the rest
    yield list(range(c))
    for p in itertools.permutations(range(c)):
        lp = list(p)
        if lp != list(range(c)):
            yield lp
