"""Distribution/fusion-enabled completion (the paper's §7 future work).

The paper notes that distribution and jamming are expressible in the
framework but not used by its completion procedure, and names their
integration as future work.  This module implements that integration
directly at the AST level: when the plain completion cannot realize a
requested lead loop, it searches a bounded space of *enabling
restructurings* — legal loop distributions and fusions (jams) — and
retries completion on each restructured program.

Because distribution changes the instance-vector dimension, the partial
transformation is specified by *intent* (the lead loop variable, i.e.
"make the loop scanning this coordinate outermost") rather than by raw
matrix rows; the row is re-derived against each candidate program's
layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.completion.complete import CompletionResult, complete_transformation
from repro.dependence.analyze import analyze_dependences
from repro.instance.layout import Layout, Path
from repro.ir.ast import Loop, Program
from repro.obs import event
from repro.transform.distribution import distribute, distribution_legal, jam
from repro.util.errors import CompletionError, ReproError, TransformError

__all__ = ["EnabledCompletion", "complete_with_restructuring"]


@dataclass
class EnabledCompletion:
    """A completion found after zero or more enabling restructurings."""

    program: Program          # the (possibly restructured) source program
    result: CompletionResult  # completion against that program's layout
    moves: tuple[str, ...]    # human-readable restructuring steps applied

    @property
    def restructured(self) -> bool:
        return bool(self.moves)


def _lead_positions(layout: Layout, lead_var: str) -> list[int]:
    """All loop coordinates named ``lead_var`` (distribution may have
    duplicated the loop)."""
    return [
        layout.index(c) for c in layout.loop_coords() if c.var == lead_var
    ]


def _try_complete(program: Program, lead_var: str, **kw) -> CompletionResult | None:
    layout = Layout(program)
    deps = analyze_dependences(program)
    n = layout.dimension
    for pos in _lead_positions(layout, lead_var):
        row = [1 if j == pos else 0 for j in range(n)]
        lead_coord = layout.coords[pos]
        # the label row is forced on the outermost loop node of the
        # top-level subtree containing the lead loop
        top = lead_coord.path[:1]
        node = layout.node_at(top)
        if not isinstance(node, Loop):  # pragma: no cover - lead under a loop
            continue
        try:
            return complete_transformation(
                program, [], deps, layout=layout, node_rows={top: row}, **kw
            )
        except CompletionError:
            continue
    return None


def _distribution_moves(program: Program) -> Iterator[tuple[Program, str]]:
    """Every *legal* single distribution of a multi-child loop."""
    layout = Layout(program)
    deps = analyze_dependences(program)

    def loop_paths(body, prefix: Path) -> Iterator[tuple[Path, Loop]]:
        for j, node in enumerate(body):
            if isinstance(node, Loop):
                yield prefix + (j,), node
                yield from loop_paths(node.body, prefix + (j,))

    for path, loop in loop_paths(program.body, ()):
        c = len(loop.body)
        for split in range(1, c):
            try:
                if distribution_legal(deps, path, split):
                    yield distribute(program, path, split), f"distribute {loop.var}@{path} at {split}"
            except TransformError:  # pragma: no cover - defensive
                continue


def _fusion_moves(program: Program) -> Iterator[tuple[Program, str]]:
    """Every syntactically fusable adjacent loop pair whose jam
    preserves the execution semantics (checked by re-analysis: the
    fused program must not reverse any dependence, which the Definition
    6 identity test on the fused program certifies)."""
    def sites(body, prefix: Path) -> Iterator[Path]:
        for j, node in enumerate(body):
            if isinstance(node, Loop):
                nxt = body[j + 1] if j + 1 < len(body) else None
                if (
                    isinstance(nxt, Loop)
                    and (node.var, node.lower, node.upper, node.step)
                    == (nxt.var, nxt.lower, nxt.upper, nxt.step)
                ):
                    yield prefix + (j,)
                yield from sites(node.body, prefix + (j,))

    for path in sites(program.body, ()):
        try:
            fused = jam(program, path)
        except TransformError:
            continue
        # jamming is legal iff it does not reverse a dependence: compare
        # the fused program's execution order against the distributed
        # one — equivalently, the *distributed* order must be
        # recoverable, i.e. no statement of the first loop depends on a
        # later-group statement within the same iteration.  We check it
        # with the trace oracle cheaply at a small size.
        from repro.interp.equivalence import check_equivalence

        try:
            params = {p: 5 for p in program.params}
            rep = check_equivalence(program, fused, params)
        except ReproError:  # pragma: no cover - defensive
            continue
        if rep["ok"]:
            yield fused, f"fuse loops at {path}"


def complete_with_restructuring(
    program: Program,
    lead_var: str,
    *,
    max_moves: int = 2,
    allow_reversal: bool = False,
    skew_bound: int = 0,
) -> EnabledCompletion:
    """Complete "make ``lead_var`` the outermost loop", applying up to
    ``max_moves`` enabling distributions/fusions if the plain completion
    fails.

    Raises :class:`CompletionError` when no restructuring within the
    bound enables a legal completion.
    """
    kw = dict(allow_reversal=allow_reversal, skew_bound=skew_bound)
    frontier: list[tuple[Program, tuple[str, ...]]] = [(program, ())]
    seen: set[str] = {str(program)}
    for _round in range(max_moves + 1):
        next_frontier: list[tuple[Program, tuple[str, ...]]] = []
        for prog, moves in frontier:
            result = _try_complete(prog, lead_var, **kw)
            if result is not None:
                if moves:
                    event(
                        "complete", "accept",
                        "enabling restructuring made the lead loop realizable",
                        lead=lead_var, moves=" ; ".join(moves),
                    )
                return EnabledCompletion(prog, result, moves)
            event(
                "complete", "reject",
                "plain completion cannot realize the lead loop on this program"
                + (" variant" if moves else "; trying enabling restructurings"),
                lead=lead_var, moves=" ; ".join(moves) or "(none)",
            )
            if len(moves) < max_moves:
                for new_prog, desc in list(_distribution_moves(prog)) + list(
                    _fusion_moves(prog)
                ):
                    key = str(new_prog)
                    if key not in seen:
                        seen.add(key)
                        next_frontier.append((new_prog, moves + (desc,)))
        if not next_frontier:
            break
        frontier = next_frontier
    raise CompletionError(
        f"no completion with lead {lead_var!r} within {max_moves} enabling moves"
    )
