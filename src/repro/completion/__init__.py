"""Completion procedure (system S10, paper §6) and the §7 future-work
extension (distribution/fusion-enabled completion)."""

from repro.completion.complete import CompletionResult, complete_transformation
from repro.completion.enabling import EnabledCompletion, complete_with_restructuring

__all__ = [
    "complete_transformation", "CompletionResult",
    "complete_with_restructuring", "EnabledCompletion",
]
