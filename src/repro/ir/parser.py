"""Parser for the mini loop language.

The surface syntax follows the paper's pseudo-code with small
conveniences::

    param N
    real A(N), B(0:N)
    do I = 1..N            ! ".." and "," both accepted as range separators
      S1: B(I) = B(I-1) + A(I-1)
      do J = I+1, N
        A(J) = A(J) / A(I) ! labels are optional; S<k> is generated
      end do
    end do

Comments run from ``!`` or ``#`` to end of line.  Identifiers used with
parentheses are array references unless they name a builtin function
(``sqrt``, ``min``, ``f``...), which makes them calls.

Loop bounds additionally accept the forms the printer emits for
strip-mined and generated loops — ``max(t, ...)`` (lower) / ``min(t,
...)`` (upper) of terms, where a term is an affine expression or
``ceild(expr, d)`` (lower) / ``floord(expr, d)`` (upper) — so tiled
programs round-trip through text (the tune cache depends on this).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.ir.ast import ArrayDecl, BoundSet, Loop, Node, Program, Statement
from repro.ir.expr import (
    BUILTIN_FUNCTIONS, ArrayRef, BinOp, Call, Expr, FloatLit, IntLit, UnaryOp,
    VarRef, as_affine,
)
from repro.obs import span
from repro.polyhedra.bounds import Bound
from repro.util.errors import ParseError

__all__ = ["parse_program", "parse_expr"]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>[ \t]+)
  | (?P<comment>[!\#][^\n]*)
  | (?P<newline>\n)
  | (?P<float>\d+\.\d+(?:[eE][+-]?\d+)?)
  | (?P<int>\d+)
  | (?P<dots>\.\.)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op>\*\*|[+\-*/%(),:;=])
    """,
    re.VERBOSE,
)

_KEYWORDS = {"do", "enddo", "end", "param", "real", "then", "if", "endif"}


@dataclass(frozen=True)
class _Tok:
    kind: str
    text: str
    line: int
    col: int


def _tokenize(src: str) -> list[_Tok]:
    toks: list[_Tok] = []
    line, col = 1, 1
    pos = 0
    while pos < len(src):
        m = _TOKEN_RE.match(src, pos)
        if not m:
            raise ParseError(f"unexpected character {src[pos]!r}", line, col)
        kind = m.lastgroup
        text = m.group()
        if kind == "newline":
            toks.append(_Tok("newline", "\n", line, col))
            line += 1
            col = 1
        else:
            if kind not in ("ws", "comment"):
                if kind == "ident" and text.lower() in _KEYWORDS:
                    kind = text.lower()
                toks.append(_Tok(kind, text, line, col))
            col += len(text)
        pos = m.end()
    toks.append(_Tok("eof", "", line, col))
    return toks


class _Parser:
    def __init__(self, src: str):
        self.toks = _tokenize(src)
        self.i = 0
        self.auto_label = 0
        self.labels_seen: set[str] = set()

    # -- token helpers -------------------------------------------------

    def peek(self, skip_newlines: bool = False) -> _Tok:
        j = self.i
        if skip_newlines:
            while self.toks[j].kind == "newline":
                j += 1
        return self.toks[j]

    def next(self, skip_newlines: bool = False) -> _Tok:
        if skip_newlines:
            while self.toks[self.i].kind == "newline":
                self.i += 1
        t = self.toks[self.i]
        if t.kind != "eof":
            self.i += 1
        return t

    def expect(self, kind: str, text: str | None = None, skip_newlines: bool = False) -> _Tok:
        t = self.next(skip_newlines)
        if t.kind != kind or (text is not None and t.text != text):
            want = text or kind
            raise ParseError(f"expected {want!r}, found {t.text or t.kind!r}", t.line, t.col)
        return t

    def at(self, kind: str, text: str | None = None, skip_newlines: bool = False) -> bool:
        t = self.peek(skip_newlines)
        return t.kind == kind and (text is None or t.text == text)

    def skip_separators(self) -> None:
        while self.toks[self.i].kind == "newline" or (
            self.toks[self.i].kind == "op" and self.toks[self.i].text == ";"
        ):
            self.i += 1

    # -- grammar ---------------------------------------------------------

    def parse_program(self, name: str) -> Program:
        params: list[str] = []
        arrays: list[ArrayDecl] = []
        self.skip_separators()
        while self.at("param") or self.at("real"):
            if self.at("param"):
                self.next()
                params.append(self.expect("ident").text)
                while self.at("op", ","):
                    self.next()
                    params.append(self.expect("ident").text)
            else:
                self.next()
                arrays.append(self.parse_array_decl())
                while self.at("op", ","):
                    self.next()
                    arrays.append(self.parse_array_decl())
            self.skip_separators()
        body = self.parse_body(stop_kinds=("eof",))
        self.expect("eof")
        return Program(tuple(body), tuple(params), tuple(arrays), name)

    def parse_array_decl(self) -> ArrayDecl:
        name = self.expect("ident").text
        dims: list[tuple] = []
        self.expect("op", "(")
        while True:
            first = as_affine(self.parse_expr())
            if self.at("op", ":"):
                self.next()
                second = as_affine(self.parse_expr())
                dims.append((first, second))
            else:
                dims.append((None, first))
            if self.at("op", ","):
                self.next()
                continue
            break
        self.expect("op", ")")
        fixed = [(lo if lo is not None else 1, hi) for lo, hi in dims]
        return ArrayDecl.make(name, *[(lo, hi) for lo, hi in fixed])

    def parse_body(self, stop_kinds: tuple[str, ...]) -> list[Node]:
        body: list[Node] = []
        self.skip_separators()
        while not any(self.at(k) for k in stop_kinds):
            body.append(self.parse_stmt())
            self.skip_separators()
        return body

    def parse_stmt(self) -> Node:
        if self.at("do"):
            return self.parse_loop()
        return self.parse_assign()

    def parse_loop(self) -> Loop:
        self.expect("do")
        var = self.expect("ident").text
        self.expect("op", "=")
        lower = self.parse_bound(is_lower=True)
        if self.at("dots"):
            self.next()
        else:
            self.expect("op", ",")
        upper = self.parse_bound(is_lower=False)
        step = 1
        if self.at("op", ","):
            self.next()
            step_tok = self.parse_expr()
            if not isinstance(step_tok, IntLit) and not (
                isinstance(step_tok, UnaryOp) and isinstance(step_tok.operand, IntLit)
            ):
                t = self.peek()
                raise ParseError("loop step must be an integer literal", t.line, t.col)
            step = step_tok.value if isinstance(step_tok, IntLit) else -step_tok.operand.value
        body = self.parse_body(stop_kinds=("enddo", "end"))
        if self.at("enddo"):
            self.next()
        else:
            self.expect("end")
            self.expect("do")
        return Loop(var, lower, upper, tuple(body), step)

    # bound grammar (round-trips the printer's output for strip-mined /
    # generated loops):
    #   bound := term | max(term, ...)   -- lower bounds
    #          | term | min(term, ...)   -- upper bounds
    #   term  := expr | ceild(expr, int) -- lower
    #          | expr | floord(expr, int)-- upper
    def parse_bound(self, is_lower: bool) -> BoundSet:
        setname = "max" if is_lower else "min"
        t = self.peek()
        if t.kind == "ident" and t.text == setname and self._lparen_follows():
            self.next()
            self.expect("op", "(")
            terms = [self.parse_bound_term(is_lower)]
            while self.at("op", ","):
                self.next()
                terms.append(self.parse_bound_term(is_lower))
            self.expect("op", ")")
            return BoundSet(tuple(terms), is_lower)
        return BoundSet((self.parse_bound_term(is_lower),), is_lower)

    def parse_bound_term(self, is_lower: bool) -> Bound:
        divname = "ceild" if is_lower else "floord"
        t = self.peek()
        if t.kind == "ident" and t.text == divname and self._lparen_follows():
            self.next()
            self.expect("op", "(")
            e = self.parse_expr()
            self.expect("op", ",")
            d = self.expect("int")
            self.expect("op", ")")
            div = int(d.text)
            if div < 1:
                raise ParseError(f"{divname} divisor must be positive", t.line, t.col)
            return Bound(as_affine(e), div, is_lower)
        return Bound(as_affine(self.parse_expr()), 1, is_lower)

    def _lparen_follows(self) -> bool:
        nxt = self.toks[self.i + 1]
        return nxt.kind == "op" and nxt.text == "("

    def parse_assign(self) -> Statement:
        t = self.peek()
        label: str | None = None
        # "IDENT :" is a label when the ident is not followed by "(" or "="
        if t.kind == "ident" and self.toks[self.i + 1].kind == "op" and self.toks[self.i + 1].text == ":":
            label = t.text
            self.i += 2
        lhs = self.parse_ref()
        self.expect("op", "=")
        rhs = self.parse_expr()
        if label is None:
            self.auto_label += 1
            label = f"S{self.auto_label}"
            while label in self.labels_seen:
                self.auto_label += 1
                label = f"S{self.auto_label}"
        self.labels_seen.add(label)
        return Statement(label, lhs, rhs)

    def parse_ref(self) -> ArrayRef | VarRef:
        t = self.expect("ident")
        if self.at("op", "("):
            self.next()
            subs = [self.parse_expr()]
            while self.at("op", ","):
                self.next()
                subs.append(self.parse_expr())
            self.expect("op", ")")
            return ArrayRef(t.text, subs)
        return VarRef(t.text)

    # expression grammar: expr -> term ((+|-) term)*; term -> factor ((*|/|%) factor)*
    def parse_expr(self) -> Expr:
        left = self.parse_term()
        while self.at("op", "+") or self.at("op", "-"):
            op = self.next().text
            right = self.parse_term()
            left = BinOp(op, left, right)
        return left

    def parse_term(self) -> Expr:
        left = self.parse_factor()
        while self.at("op", "*") or self.at("op", "/") or self.at("op", "%"):
            op = self.next().text
            right = self.parse_factor()
            left = BinOp(op, left, right)
        return left

    def parse_factor(self) -> Expr:
        if self.at("op", "-"):
            self.next()
            return UnaryOp("-", self.parse_factor())
        if self.at("op", "+"):
            self.next()
            return self.parse_factor()
        return self.parse_atom()

    def parse_atom(self) -> Expr:
        t = self.next()
        if t.kind == "int":
            return IntLit(int(t.text))
        if t.kind == "float":
            return FloatLit(float(t.text))
        if t.kind == "op" and t.text == "(":
            e = self.parse_expr()
            self.expect("op", ")")
            return e
        if t.kind == "ident":
            if self.at("op", "("):
                self.next()
                args: list[Expr] = []
                if not self.at("op", ")"):
                    args.append(self.parse_expr())
                    while self.at("op", ","):
                        self.next()
                        args.append(self.parse_expr())
                self.expect("op", ")")
                if t.text in BUILTIN_FUNCTIONS:
                    return Call(t.text, args)
                return ArrayRef(t.text, args)
            return VarRef(t.text)
        raise ParseError(f"unexpected token {t.text or t.kind!r}", t.line, t.col)


def parse_program(src: str, name: str = "program") -> Program:
    """Parse the mini loop language into a :class:`Program`."""
    with span("ir.parse", program=name):
        return _Parser(src).parse_program(name)


def parse_expr(src: str) -> Expr:
    """Parse a single expression (used in tests and tools)."""
    p = _Parser(src)
    e = p.parse_expr()
    p.skip_separators()
    p.expect("eof")
    return e
