"""Loop-nest IR (system S3): AST, expressions, parser, printer."""

from repro.ir.ast import (
    ArrayDecl, BoundSet, ExprCondition, Guard, HullBound, Loop, Node, Program,
    Statement, simplify_hull,
)
from repro.ir.expr import (
    BUILTIN_FUNCTIONS, ArrayRef, BinOp, Call, Expr, FloatLit, IntLit,
    UnaryOp, VarRef, affine_to_expr, as_affine,
)
from repro.ir.builder import NestBuilder, nest
from repro.ir.parser import parse_expr, parse_program
from repro.ir.printer import node_to_str, program_to_str

__all__ = [
    "Program", "Loop", "Statement", "Guard", "Node", "BoundSet", "HullBound",
    "simplify_hull", "ArrayDecl", "ExprCondition",
    "Expr", "IntLit", "FloatLit", "VarRef", "ArrayRef", "BinOp", "UnaryOp",
    "Call", "BUILTIN_FUNCTIONS", "as_affine", "affine_to_expr",
    "parse_program", "parse_expr", "program_to_str", "node_to_str",
    "nest", "NestBuilder",
]
