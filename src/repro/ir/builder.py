"""Programmatic DSL for building loop-nest IR without parsing.

A thin fluent layer over the AST constructors so kernels and tests can
be written as Python expressions::

    from repro.ir.builder import nest

    prog = (
        nest("blur", params=["N"])
        .array("A", (0, "N+1"), (0, "N+1"))
        .array("B", (0, "N+1"), (0, "N+1"))
        .loop("I", 1, "N")
        .loop("J", 1, "N")
        .stmt("S1", "B(I,J)", "(A(I-1,J) + A(I+1,J) + A(I,J-1) + A(I,J+1)) / 4")
        .end()
        .end()
        .build()
    )

Bounds and expressions accept ints, strings (parsed with the
mini-language grammar), or IR objects.
"""

from __future__ import annotations

from typing import Sequence

from repro.ir.ast import ArrayDecl, BoundSet, Loop, Node, Program, Statement
from repro.ir.expr import ArrayRef, Expr, VarRef, as_affine
from repro.ir.parser import parse_expr
from repro.polyhedra.affine import LinExpr
from repro.util.errors import IRError

__all__ = ["nest", "NestBuilder"]


def _expr(x) -> Expr:
    if isinstance(x, Expr):
        return x
    if isinstance(x, (int, float)):
        from repro.ir.expr import FloatLit, IntLit

        return IntLit(x) if isinstance(x, int) else FloatLit(x)
    if isinstance(x, str):
        return parse_expr(x)
    raise IRError(f"cannot interpret {x!r} as an expression")


def _affine(x) -> LinExpr:
    if isinstance(x, LinExpr):
        return x
    if isinstance(x, int):
        return LinExpr({}, x)
    return as_affine(_expr(x))


class NestBuilder:
    """Fluent builder; see module docstring."""

    def __init__(self, name: str = "program", params: Sequence[str] = ()):
        self._name = name
        self._params = tuple(params)
        self._arrays: list[ArrayDecl] = []
        # stack of open bodies: [-1] is the innermost open scope
        self._stack: list[list[Node]] = [[]]
        self._open_loops: list[tuple[str, LinExpr, LinExpr, int]] = []
        self._auto = 0

    # -- declarations ------------------------------------------------------

    def array(self, name: str, *dims) -> "NestBuilder":
        """Declare an array; each dim is ``hi`` or ``(lo, hi)``; bounds
        accept ints/strings/LinExprs."""
        fixed = []
        for d in dims:
            if isinstance(d, tuple):
                fixed.append((_affine(d[0]), _affine(d[1])))
            else:
                fixed.append((1, _affine(d)))
        self._arrays.append(ArrayDecl.make(name, *fixed))
        return self

    # -- structure ---------------------------------------------------------

    def loop(self, var: str, lower, upper, step: int = 1) -> "NestBuilder":
        """Open a loop; close it with :meth:`end`."""
        self._open_loops.append((var, _affine(lower), _affine(upper), step))
        self._stack.append([])
        return self

    def end(self) -> "NestBuilder":
        """Close the innermost open loop."""
        if not self._open_loops:
            raise IRError("end() without a matching loop()")
        var, lo, hi, step = self._open_loops.pop()
        body = self._stack.pop()
        if not body:
            raise IRError(f"loop {var} has an empty body")
        node = Loop(
            var,
            BoundSet.affine(lo, True),
            BoundSet.affine(hi, False),
            tuple(body),
            step,
        )
        self._stack[-1].append(node)
        return self

    def stmt(self, label_or_lhs: str, lhs_or_rhs=None, rhs=None) -> "NestBuilder":
        """Add a statement.

        Either ``stmt("S1", "A(I)", "A(I)+1")`` (explicit label) or
        ``stmt("A(I)", "A(I)+1")`` (auto label).
        """
        if rhs is None:
            lhs_src, rhs_src = label_or_lhs, lhs_or_rhs
            self._auto += 1
            label = f"S{self._auto}"
        else:
            label, lhs_src, rhs_src = label_or_lhs, lhs_or_rhs, rhs
        lhs = _expr(lhs_src)
        if not isinstance(lhs, (ArrayRef, VarRef)):
            raise IRError(f"statement lhs {lhs_src!r} must be a reference")
        self._stack[-1].append(Statement(label, lhs, _expr(rhs_src)))
        return self

    # -- finish ---------------------------------------------------------------

    def build(self) -> Program:
        if self._open_loops:
            raise IRError(
                f"{len(self._open_loops)} loop(s) still open; call end()"
            )
        return Program(
            tuple(self._stack[0]), self._params, tuple(self._arrays), self._name
        )


def nest(name: str = "program", params: Sequence[str] = ()) -> NestBuilder:
    """Start building a program."""
    return NestBuilder(name, params)
