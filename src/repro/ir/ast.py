"""Loop-nest IR: programs, loops, guards and atomic statements.

The AST mirrors the paper's view: internal nodes are DO loops, leaves
are atomic assignment statements, and the left-to-right order of a
node's children is sequential execution order.  Generated (transformed)
code additionally uses :class:`Guard` nodes for the point-wise
conditions that singular loops require, and loop bounds that are
max/min over ceil/floor-divided affine terms.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from repro.ir.expr import ArrayRef, Expr, VarRef, as_affine
from repro.polyhedra.affine import LinExpr
from repro.polyhedra.bounds import Bound
from repro.polyhedra.constraint import Constraint
from repro.util.errors import IRError

__all__ = [
    "Node", "Statement", "Loop", "Guard", "Program", "BoundSet", "HullBound",
    "simplify_hull", "ArrayDecl", "ExprCondition",
]


@dataclass(frozen=True)
class BoundSet:
    """A loop bound: max (lower) or min (upper) of affine/divided terms."""

    terms: tuple[Bound, ...]
    is_lower: bool

    @staticmethod
    def affine(expr: LinExpr | int, is_lower: bool) -> "BoundSet":
        if isinstance(expr, int):
            expr = LinExpr({}, expr)
        return BoundSet((Bound(expr, 1, is_lower),), is_lower)

    def __post_init__(self):
        if not self.terms:
            raise IRError("a loop bound needs at least one term")
        for t in self.terms:
            if t.is_lower != self.is_lower:
                raise IRError("mixed lower/upper terms in one BoundSet")

    def eval(self, env: Mapping[str, int]) -> int:
        vals = [t.eval(dict(env)) for t in self.terms]
        return max(vals) if self.is_lower else min(vals)

    def variables(self) -> frozenset[str]:
        out: set[str] = set()
        for t in self.terms:
            out |= t.expr.variables()
        return frozenset(out)

    def single_affine(self) -> LinExpr:
        """The bound as a plain affine expression, if it is one term with
        divisor 1; raises IRError otherwise."""
        if len(self.terms) == 1 and self.terms[0].div == 1:
            return self.terms[0].expr
        raise IRError(f"bound {self} is not a single affine expression")

    def __str__(self) -> str:
        inner = ", ".join(map(str, self.terms))
        if len(self.terms) == 1:
            return inner
        return f"{'max' if self.is_lower else 'min'}({inner})"


@dataclass(frozen=True)
class HullBound:
    """A shared-loop bound: the hull over several statements' bounds.

    Each *group* is one statement's bound at this loop level (max of
    terms for lower bounds, min for upper).  The hull of a union takes
    the loosest group: ``min`` over groups for a lower bound, ``max``
    for an upper bound.  Code generation uses this for loops shared by
    statements with different active ranges (§5.4/§5.5).
    """

    groups: tuple[BoundSet, ...]
    is_lower: bool

    def __post_init__(self):
        if not self.groups:
            raise IRError("a hull bound needs at least one group")
        for g in self.groups:
            if g.is_lower != self.is_lower:
                raise IRError("mixed lower/upper groups in one HullBound")

    def eval(self, env: Mapping[str, int]) -> int:
        vals = [g.eval(env) for g in self.groups]
        return min(vals) if self.is_lower else max(vals)

    def variables(self) -> frozenset[str]:
        out: set[str] = set()
        for g in self.groups:
            out |= g.variables()
        return frozenset(out)

    def single_affine(self) -> LinExpr:
        if len(self.groups) == 1:
            return self.groups[0].single_affine()
        raise IRError(f"hull bound {self} is not a single affine expression")

    def __str__(self) -> str:
        if len(self.groups) == 1:
            return str(self.groups[0])
        inner = ", ".join(map(str, self.groups))
        return f"{'min' if self.is_lower else 'max'}({inner})"


def simplify_hull(bound: "HullBound | BoundSet") -> "HullBound | BoundSet":
    """Collapse a hull with identical groups to a plain BoundSet."""
    if isinstance(bound, HullBound):
        unique = []
        for g in bound.groups:
            if g not in unique:
                unique.append(g)
        if len(unique) == 1:
            return unique[0]
        return HullBound(tuple(unique), bound.is_lower)
    return bound


class Node:
    """Base class for AST body nodes."""

    def statements(self) -> Iterator["Statement"]:
        raise NotImplementedError

    def substituted(self, mapping: Mapping[str, Expr]) -> "Node":
        raise NotImplementedError


@dataclass(frozen=True)
class Statement(Node):
    """An atomic assignment ``lhs = rhs`` with a unique label."""

    label: str
    lhs: ArrayRef | VarRef
    rhs: Expr

    def __post_init__(self):
        if not isinstance(self.lhs, (ArrayRef, VarRef)):
            raise IRError(f"statement lhs must be an array or scalar ref, got {self.lhs!r}")

    def statements(self) -> Iterator["Statement"]:
        yield self

    def substituted(self, mapping: Mapping[str, Expr]) -> "Statement":
        lhs = self.lhs.substitute_vars(mapping)
        if isinstance(self.lhs, VarRef) and not isinstance(lhs, (ArrayRef, VarRef)):
            raise IRError("substitution into a statement lhs must stay a reference")
        return Statement(self.label, lhs, self.rhs.substitute_vars(mapping))

    def reads(self) -> list[ArrayRef]:
        """Array references read by this statement (RHS plus LHS
        subscript expressions)."""
        refs = self.rhs.array_refs()
        if isinstance(self.lhs, ArrayRef):
            for s in self.lhs.subscripts:
                refs.extend(s.array_refs())
        return refs

    def writes(self) -> list[ArrayRef]:
        """Array references written by this statement."""
        return [self.lhs] if isinstance(self.lhs, ArrayRef) else []

    def __str__(self) -> str:
        return f"{self.label}: {self.lhs} = {self.rhs}"


@dataclass(frozen=True)
class Loop(Node):
    """``do var = lower, upper, step`` with a body of child nodes."""

    var: str
    lower: "BoundSet | HullBound"
    upper: "BoundSet | HullBound"
    body: tuple[Node, ...]
    step: int = 1

    def __post_init__(self):
        if self.step == 0:
            raise IRError("loop step cannot be zero")
        if self.lower.is_lower is not True or self.upper.is_lower is not False:
            raise IRError("loop bounds have wrong polarity")
        if not isinstance(self.body, tuple):
            object.__setattr__(self, "body", tuple(self.body))

    @staticmethod
    def make(var: str, lower, upper, body: Sequence[Node], step: int = 1) -> "Loop":
        """Convenience constructor accepting ints/LinExprs/BoundSets."""
        lo = lower if isinstance(lower, BoundSet) else BoundSet.affine(lower, True)
        hi = upper if isinstance(upper, BoundSet) else BoundSet.affine(upper, False)
        return Loop(var, lo, hi, tuple(body), step)

    def statements(self) -> Iterator[Statement]:
        for child in self.body:
            yield from child.statements()

    def substituted(self, mapping: Mapping[str, Expr]) -> "Loop":
        if self.var in mapping:
            raise IRError(f"cannot substitute bound loop variable {self.var}")

        def sub_bound(bound):
            def sub_set(bs: BoundSet) -> BoundSet:
                terms = []
                for t in bs.terms:
                    e = t.expr
                    for name, repl in mapping.items():
                        if e[name] != 0:
                            e = e.substitute(name, as_affine(repl))
                    terms.append(Bound(e, t.div, t.is_lower))
                return BoundSet(tuple(terms), bs.is_lower)

            if isinstance(bound, HullBound):
                return HullBound(tuple(sub_set(g) for g in bound.groups), bound.is_lower)
            return sub_set(bound)

        return Loop(self.var, sub_bound(self.lower), sub_bound(self.upper),
                    tuple(c.substituted(mapping) for c in self.body), self.step)

    def with_body(self, body: Sequence[Node]) -> "Loop":
        return Loop(self.var, self.lower, self.upper, tuple(body), self.step)

    def __str__(self) -> str:
        return f"do {self.var} = {self.lower}, {self.upper}" + (f", {self.step}" if self.step != 1 else "")


@dataclass(frozen=True)
class ExprCondition:
    """A guard condition over an integer expression tree: ``expr == 0``
    (kind ``'=='``) or ``expr >= 0`` (kind ``'>='``).

    Unlike :class:`~repro.polyhedra.constraint.Constraint`, the
    expression may contain exact integer divisions — this is how
    non-unimodular per-statement transformations express their lattice
    (divisibility) conditions, e.g. ``(I2 % 2) == 0``.
    """

    expr: Expr
    kind: str = "=="

    def __post_init__(self):
        if self.kind not in ("==", ">="):
            raise IRError(f"unknown condition kind {self.kind!r}")

    def variables(self) -> frozenset[str]:
        return self.expr.variables()

    def is_equality(self) -> bool:
        return self.kind == "=="

    def satisfied_by(self, env: Mapping[str, int]) -> bool:
        v = _eval_int_expr(self.expr, env)
        return v == 0 if self.kind == "==" else v >= 0

    def substitute_all(self, mapping: Mapping[str, Expr]) -> "ExprCondition":
        return ExprCondition(self.expr.substitute_vars(mapping), self.kind)

    def __str__(self) -> str:
        return f"{self.expr} {self.kind} 0"


def _eval_int_expr(e: Expr, env: Mapping[str, int]) -> int:
    """Exact integer evaluation of an array-free expression; ``/`` is
    exact division (raises if inexact — guards must test divisibility
    with ``%`` before dividing)."""
    from repro.ir.expr import BinOp, IntLit, UnaryOp, VarRef

    if isinstance(e, IntLit):
        return e.value
    if isinstance(e, VarRef):
        try:
            return int(env[e.name])
        except KeyError:
            raise IRError(f"unbound variable {e.name!r} in condition") from None
    if isinstance(e, UnaryOp):
        return -_eval_int_expr(e.operand, env)
    if isinstance(e, BinOp):
        l = _eval_int_expr(e.left, env)
        r = _eval_int_expr(e.right, env)
        if e.op == "+":
            return l + r
        if e.op == "-":
            return l - r
        if e.op == "*":
            return l * r
        if e.op == "%":
            return l % r
        if e.op == "/":
            q, rem = divmod(l, r)
            if rem:
                raise IRError(f"inexact division {l}/{r} in condition")
            return q
    raise IRError(f"cannot evaluate {e} as an integer condition")


@dataclass(frozen=True)
class Guard(Node):
    """``if (cond1 and cond2 ...) then body endif`` — used by generated
    code for singular-loop point conditions and lattice (divisibility)
    conditions.  Conditions are :class:`Constraint` (affine) or
    :class:`ExprCondition` (expression-tree) instances."""

    conditions: tuple["Constraint | ExprCondition", ...]
    body: tuple[Node, ...]

    def __post_init__(self):
        if not isinstance(self.body, tuple):
            object.__setattr__(self, "body", tuple(self.body))
        if not isinstance(self.conditions, tuple):
            object.__setattr__(self, "conditions", tuple(self.conditions))

    def statements(self) -> Iterator[Statement]:
        for child in self.body:
            yield from child.statements()

    def substituted(self, mapping: Mapping[str, Expr]) -> "Guard":
        conds: list[Constraint | ExprCondition] = []
        for c in self.conditions:
            if isinstance(c, ExprCondition):
                conds.append(c.substitute_all(mapping))
                continue
            new = c.expr
            for name, repl in mapping.items():
                new = new.substitute(name, as_affine(repl))
            conds.append(Constraint(new, c.kind))
        return Guard(tuple(conds), tuple(b.substituted(mapping) for b in self.body))

    def __str__(self) -> str:
        return "if (" + " and ".join(str(c) for c in self.conditions) + ") then"


@dataclass(frozen=True)
class ArrayDecl:
    """Array declaration with per-dimension index ranges ``lo:hi``."""

    name: str
    dims: tuple[tuple[LinExpr, LinExpr], ...]

    @staticmethod
    def make(name: str, *dims) -> "ArrayDecl":
        """Each dim is ``hi`` (meaning ``1:hi``) or a ``(lo, hi)`` pair;
        ints and LinExprs both accepted."""
        out = []
        for d in dims:
            if isinstance(d, tuple):
                lo, hi = d
            else:
                lo, hi = 1, d
            lo = LinExpr({}, lo) if isinstance(lo, int) else lo
            hi = LinExpr({}, hi) if isinstance(hi, int) else hi
            out.append((lo, hi))
        return ArrayDecl(name, tuple(out))

    @property
    def rank(self) -> int:
        return len(self.dims)

    def __str__(self) -> str:
        parts = []
        for lo, hi in self.dims:
            parts.append(str(hi) if lo == LinExpr({}, 1) else f"{lo}:{hi}")
        return f"{self.name}({', '.join(parts)})"


@dataclass(frozen=True)
class Program:
    """A whole loop nest: parameters, array declarations and a body."""

    body: tuple[Node, ...]
    params: tuple[str, ...] = ()
    arrays: tuple[ArrayDecl, ...] = ()
    name: str = "program"

    def __post_init__(self):
        for attr in ("body", "params", "arrays"):
            v = getattr(self, attr)
            if not isinstance(v, tuple):
                object.__setattr__(self, attr, tuple(v))
        self.validate()

    # -- queries ---------------------------------------------------------------

    def statements(self) -> list[Statement]:
        """All atomic statements in syntactic (depth-first) order — the
        paper's ⪯ₛ order."""
        out: list[Statement] = []
        for node in self.body:
            out.extend(node.statements())
        return out

    def statement(self, label: str) -> Statement:
        for s in self.statements():
            if s.label == label:
                return s
        raise IRError(f"no statement labeled {label!r}")

    def array(self, name: str) -> ArrayDecl:
        for a in self.arrays:
            if a.name == name:
                return a
        raise IRError(f"no array named {name!r}")

    def enclosing_loops(self, label: str) -> list[Loop]:
        """The loops surrounding the statement, outermost first."""
        path = self._find_path(label)
        return [n for n in path if isinstance(n, Loop)]

    def loop_vars(self, label: str) -> list[str]:
        return [l.var for l in self.enclosing_loops(label)]

    def common_loop_vars(self, label1: str, label2: str) -> list[str]:
        """Loop variables of the loops common to both statements,
        outside-in (paper Definition 2)."""
        p1 = [n for n in self._find_path(label1) if isinstance(n, Loop)]
        p2 = [n for n in self._find_path(label2) if isinstance(n, Loop)]
        out = []
        for a, b in zip(p1, p2):
            if a is b:
                out.append(a.var)
            else:
                break
        return out

    def syntactically_before(self, label1: str, label2: str) -> bool:
        """The paper's ⪯ₛ: label1 occurs no later than label2 in a
        depth-first AST walk (reflexive)."""
        labels = [s.label for s in self.statements()]
        return labels.index(label1) <= labels.index(label2)

    def all_loops(self) -> list[Loop]:
        out: list[Loop] = []

        def walk(node: Node):
            if isinstance(node, Loop):
                out.append(node)
            if isinstance(node, (Loop, Guard)):
                for c in node.body:
                    walk(c)

        for n in self.body:
            walk(n)
        return out

    def _find_path(self, label: str) -> list[Node]:
        """Nodes from a top-level entry down to the statement (inclusive)."""

        def walk(node: Node, path: list[Node]) -> list[Node] | None:
            path = path + [node]
            if isinstance(node, Statement):
                return path if node.label == label else None
            if isinstance(node, (Loop, Guard)):
                for c in node.body:
                    r = walk(c, path)
                    if r is not None:
                        return r
            return None

        for n in self.body:
            r = walk(n, [])
            if r is not None:
                return r
        raise IRError(f"no statement labeled {label!r}")

    # -- validation ---------------------------------------------------------------

    def validate(self) -> None:
        """Check label uniqueness and loop-variable scoping."""
        labels = [s.label for s in self.statements()]
        dupes = {l for l in labels if labels.count(l) > 1}
        if dupes:
            raise IRError(f"duplicate statement labels {sorted(dupes)}")

        def walk(node: Node, loop_vars: tuple[str, ...]):
            if isinstance(node, Loop):
                if node.var in loop_vars:
                    raise IRError(f"loop variable {node.var} shadows an outer loop")
                if node.var in self.params:
                    raise IRError(f"loop variable {node.var} shadows a parameter")
                for c in node.body:
                    walk(c, loop_vars + (node.var,))
            elif isinstance(node, Guard):
                for c in node.body:
                    walk(c, loop_vars)

        for n in self.body:
            walk(n, ())

    # -- derived programs -----------------------------------------------------------

    def with_body(self, body: Sequence[Node], name: str | None = None) -> "Program":
        return Program(tuple(body), self.params, self.arrays, name or self.name)

    def fresh_label(self, base: str = "S") -> str:
        used = {s.label for s in self.statements()}
        for i in itertools.count(1):
            cand = f"{base}{i}"
            if cand not in used:
                return cand
        raise AssertionError("unreachable")

    def __str__(self) -> str:
        from repro.ir.printer import program_to_str

        return program_to_str(self)
