"""Pretty-printer for the loop-nest IR.

Emits code in the paper's Fortran-flavoured pseudo-syntax::

    do I = 1, N
      S1: A(I) = sqrt(A(I))
      do J = I + 1, N
        S2: A(J) = (A(J) / A(I))
      enddo
    enddo

The printed form round-trips through :mod:`repro.ir.parser` for
programs whose bounds are plain affine expressions.
"""

from __future__ import annotations

from repro.ir.ast import Guard, Loop, Node, Program, Statement

__all__ = ["program_to_str", "node_to_str"]

_INDENT = "  "


def program_to_str(p: Program, *, header: bool = True) -> str:
    """Render a whole program, optionally with param/array declarations."""
    lines: list[str] = []
    if header:
        if p.params:
            lines.append("param " + ", ".join(p.params))
        for a in p.arrays:
            lines.append(f"real {a}")
    for node in p.body:
        _emit(node, 0, lines)
    return "\n".join(lines)


def node_to_str(node: Node) -> str:
    """Render a single subtree."""
    lines: list[str] = []
    _emit(node, 0, lines)
    return "\n".join(lines)


def _emit(node: Node, depth: int, lines: list[str]) -> None:
    pad = _INDENT * depth
    if isinstance(node, Statement):
        lines.append(f"{pad}{node.label}: {node.lhs} = {node.rhs}")
    elif isinstance(node, Loop):
        step = f", {node.step}" if node.step != 1 else ""
        lines.append(f"{pad}do {node.var} = {node.lower}, {node.upper}{step}")
        for c in node.body:
            _emit(c, depth + 1, lines)
        lines.append(f"{pad}enddo")
    elif isinstance(node, Guard):
        cond = " and ".join(_cond_str(c) for c in node.conditions)
        lines.append(f"{pad}if ({cond}) then")
        for c in node.body:
            _emit(c, depth + 1, lines)
        lines.append(f"{pad}endif")
    else:  # pragma: no cover - defensive
        raise TypeError(f"unknown node type {type(node).__name__}")


def _cond_str(c) -> str:
    # Render `expr >= 0` / `expr == 0` as `lhs >= rhs` with the constant
    # moved to the right for readability.  ExprConditions (divisibility
    # guards) print their expression tree verbatim.
    from repro.ir.ast import ExprCondition

    if isinstance(c, ExprCondition):
        return str(c)
    expr = c.expr
    const = expr.constant
    lhs = expr - const
    op = "==" if c.is_equality() else ">="
    return f"{lhs} {op} {-const}"
