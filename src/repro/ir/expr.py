"""Scalar expression trees for statement bodies.

Statements in the loop-nest IR are assignments whose right-hand sides
are arbitrary arithmetic expression trees (:class:`Expr`), while array
*subscripts* must additionally be affine in the loop variables and
parameters (checked by :func:`as_affine`) so dependence analysis can
reason about them exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.polyhedra.affine import LinExpr
from repro.util.errors import IRError

__all__ = [
    "Expr", "IntLit", "FloatLit", "VarRef", "ArrayRef", "BinOp", "UnaryOp",
    "Call", "as_affine", "affine_to_expr", "BUILTIN_FUNCTIONS",
]


class Expr:
    """Base class for scalar expressions."""

    def variables(self) -> frozenset[str]:
        """Free scalar variable names (loop vars, params, scalars)."""
        raise NotImplementedError

    def array_refs(self) -> list["ArrayRef"]:
        """All array references in the expression, in evaluation order."""
        raise NotImplementedError

    def substitute_vars(self, mapping: Mapping[str, "Expr"]) -> "Expr":
        """Replace variable references by expressions."""
        raise NotImplementedError

    # arithmetic sugar so kernels can be built programmatically
    def __add__(self, other):
        return BinOp("+", self, _coerce(other))

    def __radd__(self, other):
        return BinOp("+", _coerce(other), self)

    def __sub__(self, other):
        return BinOp("-", self, _coerce(other))

    def __rsub__(self, other):
        return BinOp("-", _coerce(other), self)

    def __mul__(self, other):
        return BinOp("*", self, _coerce(other))

    def __rmul__(self, other):
        return BinOp("*", _coerce(other), self)

    def __truediv__(self, other):
        return BinOp("/", self, _coerce(other))

    def __rtruediv__(self, other):
        return BinOp("/", _coerce(other), self)

    def __neg__(self):
        return UnaryOp("-", self)


def _coerce(x) -> Expr:
    if isinstance(x, Expr):
        return x
    if isinstance(x, bool):
        raise IRError("booleans are not IR scalars")
    if isinstance(x, int):
        return IntLit(x)
    if isinstance(x, float):
        return FloatLit(x)
    raise IRError(f"cannot use {type(x).__name__} as an IR expression")


@dataclass(frozen=True)
class IntLit(Expr):
    """Integer literal."""

    value: int

    def variables(self) -> frozenset[str]:
        return frozenset()

    def array_refs(self) -> list["ArrayRef"]:
        return []

    def substitute_vars(self, mapping) -> Expr:
        return self

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class FloatLit(Expr):
    """Floating-point literal."""

    value: float

    def variables(self) -> frozenset[str]:
        return frozenset()

    def array_refs(self) -> list["ArrayRef"]:
        return []

    def substitute_vars(self, mapping) -> Expr:
        return self

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class VarRef(Expr):
    """Reference to a scalar: loop variable, parameter or scalar array."""

    name: str

    def variables(self) -> frozenset[str]:
        return frozenset({self.name})

    def array_refs(self) -> list["ArrayRef"]:
        return []

    def substitute_vars(self, mapping) -> Expr:
        return mapping.get(self.name, self)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ArrayRef(Expr):
    """Reference ``array(sub1, sub2, ...)``; subscripts are Exprs that
    must be affine for dependence analysis to apply."""

    array: str
    subscripts: tuple[Expr, ...]

    def __init__(self, array: str, subscripts: Sequence[Expr | int]):
        object.__setattr__(self, "array", array)
        object.__setattr__(self, "subscripts", tuple(_coerce(s) for s in subscripts))

    def variables(self) -> frozenset[str]:
        out: set[str] = set()
        for s in self.subscripts:
            out |= s.variables()
        return frozenset(out)

    def array_refs(self) -> list["ArrayRef"]:
        inner = [r for s in self.subscripts for r in s.array_refs()]
        return inner + [self]

    def substitute_vars(self, mapping) -> "ArrayRef":
        return ArrayRef(self.array, [s.substitute_vars(mapping) for s in self.subscripts])

    def affine_subscripts(self) -> tuple[LinExpr, ...]:
        """Subscripts as LinExprs; raises IRError if any is non-affine."""
        return tuple(as_affine(s) for s in self.subscripts)

    def __str__(self) -> str:
        return f"{self.array}({', '.join(map(str, self.subscripts))})"


@dataclass(frozen=True)
class BinOp(Expr):
    """Binary arithmetic: ``+ - * / %``."""

    op: str
    left: Expr
    right: Expr

    OPS: tuple[str, ...] = field(default=("+", "-", "*", "/", "%"), repr=False, compare=False)

    def __post_init__(self):
        if self.op not in ("+", "-", "*", "/", "%"):
            raise IRError(f"unknown binary operator {self.op!r}")

    def variables(self) -> frozenset[str]:
        return self.left.variables() | self.right.variables()

    def array_refs(self) -> list["ArrayRef"]:
        return self.left.array_refs() + self.right.array_refs()

    def substitute_vars(self, mapping) -> Expr:
        return BinOp(self.op, self.left.substitute_vars(mapping), self.right.substitute_vars(mapping))

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryOp(Expr):
    """Unary arithmetic: ``-``."""

    op: str
    operand: Expr

    def __post_init__(self):
        if self.op != "-":
            raise IRError(f"unknown unary operator {self.op!r}")

    def variables(self) -> frozenset[str]:
        return self.operand.variables()

    def array_refs(self) -> list["ArrayRef"]:
        return self.operand.array_refs()

    def substitute_vars(self, mapping) -> Expr:
        return UnaryOp(self.op, self.operand.substitute_vars(mapping))

    def __str__(self) -> str:
        return f"(-{self.operand})"


#: Functions callable from kernels.  ``f`` is the paper's opaque RHS
#: function; it is made deterministic in its arguments so transformed
#: programs remain comparable bit-for-bit.
BUILTIN_FUNCTIONS: dict[str, Callable[..., float]] = {
    "sqrt": math.sqrt,
    "abs": abs,
    "min": min,
    "max": max,
    "mod": lambda a, b: a % b,
    "f": lambda *args: float(sum((i + 1) * 0.61803398875 * a for i, a in enumerate(args)) + 1.0),
    "g": lambda *args: float(sum((i + 2) * 0.41421356237 * a for i, a in enumerate(args)) + 2.0),
}


@dataclass(frozen=True)
class Call(Expr):
    """Intrinsic function call (sqrt, min, max, f, g, ...)."""

    func: str
    args: tuple[Expr, ...]

    def __init__(self, func: str, args: Sequence[Expr | int]):
        if func not in BUILTIN_FUNCTIONS:
            raise IRError(f"unknown function {func!r}; known: {sorted(BUILTIN_FUNCTIONS)}")
        object.__setattr__(self, "func", func)
        object.__setattr__(self, "args", tuple(_coerce(a) for a in args))

    def variables(self) -> frozenset[str]:
        out: set[str] = set()
        for a in self.args:
            out |= a.variables()
        return frozenset(out)

    def array_refs(self) -> list["ArrayRef"]:
        return [r for a in self.args for r in a.array_refs()]

    def substitute_vars(self, mapping) -> Expr:
        return Call(self.func, [a.substitute_vars(mapping) for a in self.args])

    def __str__(self) -> str:
        return f"{self.func}({', '.join(map(str, self.args))})"


def as_affine(e: Expr) -> LinExpr:
    """Convert an Expr to a LinExpr, raising :class:`IRError` if it is not
    affine with integer coefficients (e.g. contains array refs, division
    or products of variables)."""
    if isinstance(e, IntLit):
        return LinExpr({}, e.value)
    if isinstance(e, VarRef):
        return LinExpr({e.name: 1})
    if isinstance(e, UnaryOp):
        return -as_affine(e.operand)
    if isinstance(e, BinOp):
        if e.op == "+":
            return as_affine(e.left) + as_affine(e.right)
        if e.op == "-":
            return as_affine(e.left) - as_affine(e.right)
        if e.op == "*":
            l, r = as_affine(e.left), as_affine(e.right)
            if l.is_constant():
                return r * l.constant
            if r.is_constant():
                return l * r.constant
            raise IRError(f"non-affine product {e}")
        raise IRError(f"non-affine operator {e.op!r} in {e}")
    raise IRError(f"expression {e} is not affine")


def affine_to_expr(lin: LinExpr) -> Expr:
    """Convert a LinExpr back to an expression tree (for code emission)."""
    terms: list[Expr] = []
    for name, c in lin.coeffs.items():
        if c == 1:
            terms.append(VarRef(name))
        elif c == -1:
            terms.append(UnaryOp("-", VarRef(name)))
        else:
            terms.append(BinOp("*", IntLit(c), VarRef(name)))
    if lin.constant != 0 or not terms:
        terms.append(IntLit(lin.constant))
    out = terms[0]
    for t in terms[1:]:
        out = BinOp("+", out, t)
    return out
