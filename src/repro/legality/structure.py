"""Block-structure validation and transformed-AST recovery (paper §5.2).

A legal transformation matrix must carry each *edge* coordinate of the
source layout to an edge coordinate of the target layout via exact unit
rows, consistently with a per-node permutation of children — that is
the "block structure" of Figure 5, and recovering those permutations is
procedure ``NewAST`` of Figure 6.  Loop-label rows are unconstrained
here (skewing and alignment may reference any source coordinate); they
are handled by the per-statement machinery during code generation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.instance.layout import EdgeCoord, Layout, Path
from repro.ir.ast import Loop, Node, Program, Statement
from repro.linalg.intmat import IntMatrix
from repro.util.errors import CodegenError

__all__ = ["NewStructure", "recover_structure"]


@dataclass
class NewStructure:
    """Result of structure recovery.

    ``child_order[p]`` gives, for the node at *old* path ``p``, the old
    child indices in their new order.  ``skeleton`` is the transformed
    program with children permuted (loop bounds still the old ones —
    code generation replaces them).  ``new_layout`` is the layout of the
    skeleton; its coordinate indices equal the row indices of the
    transformation matrix.  ``old_to_new_path`` maps old node paths to
    new node paths.
    """

    child_order: dict[Path, list[int]] = field(default_factory=dict)
    skeleton: Program | None = None
    new_layout: Layout | None = None
    old_to_new_path: dict[Path, Path] = field(default_factory=dict)

    def new_statement_path(self, layout: Layout, label: str) -> Path:
        return self.old_to_new_path[layout.statement_path(label)]

    def syntactically_before(self, label1: str, label2: str) -> bool:
        """⪯ₛ in the *new* AST."""
        assert self.skeleton is not None
        return self.skeleton.syntactically_before(label1, label2)


def _block_range(layout: Layout, path: Path) -> tuple[int, int]:
    """The contiguous [start, end) coordinate range of the subtree at
    ``path`` (for the virtual root, the whole layout)."""
    if not path:
        return 0, layout.dimension
    idxs = [
        i
        for i, c in layout.iter_coords()
        if c.path[: len(path)] == path or (isinstance(c, EdgeCoord) and c.path == path)
    ]
    if not idxs:
        return 0, 0
    lo, hi = min(idxs), max(idxs) + 1
    assert idxs == list(range(lo, hi)), "subtree coordinates are not contiguous"
    return lo, hi


def recover_structure(layout: Layout, matrix: IntMatrix) -> NewStructure:
    """Validate the Figure-5 block structure of ``matrix`` and recover
    the transformed AST (Figure 6's ``NewAST``).

    Raises :class:`CodegenError` when the matrix does not have the
    required structure.
    """
    n = layout.dimension
    if matrix.shape != (n, n):
        raise CodegenError(f"matrix shape {matrix.shape} does not match layout dim {n}")
    program = layout.program
    result = NewStructure()

    def children_of(path: Path) -> tuple[Node, ...]:
        if not path:
            return program.body
        node = layout.node_at(path)
        assert isinstance(node, Loop)
        return node.body

    def subtree_size(path: Path) -> int:
        lo, hi = _block_range(layout, path)
        return hi - lo

    def recurse(old_path: Path, new_path: Path, new_start: int, new_end: int) -> Node | list[Node]:
        """Process the node at ``old_path`` whose new block occupies
        rows [new_start, new_end); returns the rebuilt node (or the
        top-level body list for the virtual root)."""
        result.old_to_new_path[old_path] = new_path
        node = layout.node_at(old_path) if old_path else None
        if isinstance(node, Statement):
            return node
        children = children_of(old_path)
        c = len(children)
        cursor = new_start
        if isinstance(node, Loop):
            cursor += 1  # the loop-label row; unconstrained here
        order: list[int]
        if c >= 2:
            edge_rows = list(range(cursor, cursor + c))
            cursor += c
            old_edge_cols = [layout.index(EdgeCoord(old_path, j)) for j in range(c)]
            # Decode the permutation: new edge row (for new child c-1-a)
            # must be the unit vector of exactly one old edge column.
            new_child_of: dict[int, int] = {}
            for a, r in enumerate(edge_rows):
                row = matrix[r]
                hits = [j for j, col in enumerate(old_edge_cols) if row[col] == 1]
                if len(hits) != 1 or any(
                    v != 0 for k, v in enumerate(row) if k != old_edge_cols[hits[0]]
                ):
                    raise CodegenError(
                        f"row {r} is not a unit edge row for node {old_path or 'root'}; "
                        "matrix lacks the Figure-5 block structure"
                    )
                # edge rows are listed right-to-left: relative a <-> new child c-1-a
                new_child_of[c - 1 - a] = hits[0]
            if sorted(new_child_of.values()) != list(range(c)):
                raise CodegenError(
                    f"edge rows of node {old_path or 'root'} do not form a permutation"
                )
            order = [new_child_of[k] for k in range(c)]
        else:
            order = list(range(c))
        result.child_order[old_path] = order

        # child blocks appear in reverse new order after the edges
        new_children: list[Node | None] = [None] * c
        sizes = [subtree_size(old_path + (j,)) for j in order]
        for k in reversed(range(c)):
            size = sizes[k]
            rebuilt = recurse(old_path + (order[k],), new_path + (k,), cursor, cursor + size)
            assert not isinstance(rebuilt, list)
            new_children[k] = rebuilt
            cursor += size
        if cursor != new_end:
            raise CodegenError(
                f"block of node {old_path or 'root'} has inconsistent size "
                f"(ended at {cursor}, expected {new_end})"
            )
        if isinstance(node, Loop):
            return node.with_body(tuple(new_children))
        return list(new_children)  # virtual root

    body = recurse((), (), 0, n)
    assert isinstance(body, list)
    result.skeleton = program.with_body(tuple(body), name=program.name + "_transformed")
    result.new_layout = Layout(result.skeleton, optimize_single_edges=layout.optimize_single_edges)
    if result.new_layout.dimension != n:  # pragma: no cover - structural invariant
        raise CodegenError("recovered skeleton has wrong layout dimension")
    return result
