"""The legality test for transformation matrices (paper Definition 6).

A matrix ``M`` is legal iff (i) it has the Figure-5 block structure
(checked by :mod:`repro.legality.structure`) and (ii) for every
dependence ``d`` from S1 to S2, the projection ``P`` of ``M·d`` onto the
loops common to S1 and S2 *in the new AST* satisfies ``P > 0``
lexicographically, or ``P = 0`` with S1 ⪯ₛ S2 in the new AST.  A
self-dependence with ``P = 0`` is *unsatisfied* — legal, but it must be
carried by the extra loops that augmentation adds (§5.4).

Because dependence entries are intervals, the lexicographic test is
three-valued: an entry like ``0+`` splits instances between "carried
here" and "falls through to the next level", which the scan handles by
continuing with the remaining levels (a sound over-approximation).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from typing import TYPE_CHECKING, Sequence

from repro.dependence.depvector import DependenceMatrix, DepVector
from repro.dependence.entry import DepEntry, zip_dot
from repro.instance.layout import Layout
from repro.legality.structure import NewStructure, recover_structure
from repro.linalg.intmat import IntMatrix
from repro.obs import counter, event, timed
from repro.util.errors import CodegenError, LegalityError

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir import Program
    from repro.symbolic import SymbolicOutcome

__all__ = [
    "LegalityReport", "DepStatus", "check_legality", "lex_status",
    "assert_legal", "check",
]


class DepStatus(enum.Enum):
    SATISFIED_BY_LOOPS = "satisfied-by-loops"
    SATISFIED_SYNTACTICALLY = "satisfied-syntactically"
    UNSATISFIED = "unsatisfied"  # legal self-dep; needs augmentation
    VIOLATED = "violated"


@dataclass
class LegalityReport:
    """Outcome of the Definition-6 test."""

    legal: bool
    structure: NewStructure | None
    statuses: list[tuple[DepVector, DepStatus]] = field(default_factory=list)
    #: structural tile/fuse prefix of the spec, when :func:`check` ran one
    structural: tuple[str, ...] = ()
    structural_legal: bool = True
    #: which oracle produced the final word: "theorem-2" or "symbolic"
    oracle: str = "theorem-2"
    #: fractal-oracle outcome when the symbolic fallback was consulted
    symbolic: "SymbolicOutcome | None" = None

    @property
    def symbolic_legal(self) -> bool:
        return self.symbolic is not None and self.symbolic.legal

    @property
    def accepted(self) -> bool:
        """Final verdict across oracles: Theorem-2 legal, or rescued by
        a symbolic-equivalence certificate."""
        return (self.legal and self.structural_legal) or self.symbolic_legal

    @property
    def violations(self) -> list[DepVector]:
        return [d for d, s in self.statuses if s is DepStatus.VIOLATED]

    def unsatisfied(self, label: str | None = None) -> list[DepVector]:
        out = [d for d, s in self.statuses if s is DepStatus.UNSATISFIED]
        if label is not None:
            out = [d for d in out if d.src == label]
        return out

    def __str__(self) -> str:
        head = "LEGAL" if self.legal else "ILLEGAL"
        lines = [head]
        for d, s in self.statuses:
            lines.append(f"  {s.value:24s} {d}")
        if self.symbolic is not None:
            if self.symbolic.legal:
                lines.append("symbolic oracle: SYMBOLIC-LEGAL")
                lines.append(f"  {self.symbolic.certificate.summary()}")
            else:
                lines.append(
                    f"symbolic oracle: {self.symbolic.verdict.upper()} "
                    f"({self.symbolic.reason})"
                )
        return "\n".join(lines)


def lex_status(entries: tuple[DepEntry, ...]) -> str:
    """Three-valued lexicographic sign of an interval vector.

    Returns ``"positive"`` (every instance lexicographically positive),
    ``"zero-or-positive"`` (no instance can be negative; some may be
    exactly zero), or ``"may-be-negative"``.
    """
    may_reach_zero = True
    for e in entries:
        if e.definitely_positive():
            return "positive" if may_reach_zero else "positive"
        if e.is_zero():
            continue
        if e.definitely_nonnegative():
            # some instances carried here; the rest fall through with 0
            continue
        return "may-be-negative"
    return "zero-or-positive"


@timed("legality.check", attr_fn=lambda layout, *a, **kw: {"program": layout.program.name})
def check_legality(
    layout: Layout,
    matrix: IntMatrix,
    deps: DependenceMatrix,
) -> LegalityReport:
    """Run the full Definition-6 legality test."""
    counter("legality.checks")
    try:
        structure = recover_structure(layout, matrix)
    except CodegenError as exc:
        counter("legality.structure_rejections")
        event(
            "legality", "reject",
            "matrix lacks the Figure-5 block structure",
            program=layout.program.name, detail=str(exc),
        )
        return LegalityReport(False, None)

    new_layout = structure.new_layout
    assert new_layout is not None
    report = LegalityReport(True, structure)

    for d in deps:
        counter("legality.projections_checked")
        md = tuple(zip_dot(row, d.entries) for row in matrix.rows())
        common = new_layout.common_loop_coords(d.src, d.dst)
        positions = [new_layout.index(c) for c in common]
        projected = tuple(md[i] for i in positions)
        sign = lex_status(projected)
        if sign == "positive":
            status = DepStatus.SATISFIED_BY_LOOPS
        elif sign == "zero-or-positive":
            if d.src == d.dst:
                status = DepStatus.UNSATISFIED
            elif structure.syntactically_before(d.src, d.dst) and d.src != d.dst:
                status = DepStatus.SATISFIED_SYNTACTICALLY
            else:
                status = DepStatus.VIOLATED
        else:
            status = DepStatus.VIOLATED
        if status is DepStatus.VIOLATED:
            counter("legality.violations")
            report.legal = False
            reason = (
                "transformed dependence projects lexicographically "
                f"{'negative' if sign == 'may-be-negative' else 'zero with no syntactic order'} "
                "onto the common loops (Theorem 2)"
            )
            event(
                "legality", "reject", reason,
                dep=str(d),
                projection="(" + ", ".join(str(e) for e in projected) + ")",
                sign=sign,
                src=d.src, dst=d.dst,
            )
        elif status is DepStatus.UNSATISFIED:
            counter("legality.unsatisfied")
            event(
                "legality", "info",
                "self-dependence unsatisfied by loops; needs augmentation (§5.4)",
                dep=str(d),
                projection="(" + ", ".join(str(e) for e in projected) + ")",
            )
        else:
            event(
                "legality", "accept", status.value,
                dep=str(d), sign=sign,
            )
        report.statuses.append((d, status))
    return report


def assert_legal(layout: Layout, matrix: IntMatrix, deps: DependenceMatrix) -> LegalityReport:
    """Like :func:`check_legality` but raises :class:`LegalityError` on
    an illegal transformation."""
    report = check_legality(layout, matrix, deps)
    if not report.legal:
        bad = "; ".join(str(d) for d in report.violations) or "block structure"
        raise LegalityError(f"transformation is illegal: {bad}")
    return report


def check(
    program: "Program",
    spec: str,
    *,
    oracle: str = "theorem-2",
    sizes: Sequence[int] | None = None,
    unsound: bool = False,
) -> LegalityReport:
    """Spec-level legality with optional symbolic fallback.

    Runs the Definition-6 projection test on ``spec``; with
    ``oracle="symbolic"``, a Theorem-2 (or structural-fusion) rejection
    is appealed to the fractal symbolic oracle (:mod:`repro.symbolic`),
    which may rescue the schedule with an equivalence
    :class:`~repro.symbolic.Certificate`.  ``unsound=True`` forwards the
    fuzzer's forced-unsound injection mode — never use it outside
    fuzzing/tests.
    """
    if oracle not in ("theorem-2", "symbolic"):
        raise LegalityError(f"unknown legality oracle {oracle!r}")
    from repro.transform.spec import parse_schedule

    schedule = parse_schedule(program, spec)
    report = check_legality(schedule.layout, schedule.matrix, schedule.deps)
    report.structural = tuple(schedule.structural) if schedule.is_structural else ()
    report.structural_legal = schedule.structural_legal
    if oracle == "symbolic" and not (report.legal and report.structural_legal):
        from repro.symbolic import prove_schedule

        outcome = prove_schedule(program, spec, sizes=sizes, unsound=unsound)
        report.oracle = "symbolic"
        report.symbolic = outcome
        if outcome.legal:
            counter("legality.symbolic_rescues")
            event(
                "legality", "symbolic-legal",
                "Theorem-2 rejection overturned by a symbolic-equivalence "
                "certificate",
                program=program.name, spec=spec,
                certificate=outcome.certificate.summary(),
                sizes=",".join(map(str, outcome.certificate.sizes)),
                depth=outcome.certificate.depth,
            )
        else:
            event(
                "legality", "info",
                f"symbolic oracle could not rescue the schedule "
                f"({outcome.verdict})",
                program=program.name, spec=spec, detail=outcome.reason,
            )
    return report
