"""The legality test for transformation matrices (paper Definition 6).

A matrix ``M`` is legal iff (i) it has the Figure-5 block structure
(checked by :mod:`repro.legality.structure`) and (ii) for every
dependence ``d`` from S1 to S2, the projection ``P`` of ``M·d`` onto the
loops common to S1 and S2 *in the new AST* satisfies ``P > 0``
lexicographically, or ``P = 0`` with S1 ⪯ₛ S2 in the new AST.  A
self-dependence with ``P = 0`` is *unsatisfied* — legal, but it must be
carried by the extra loops that augmentation adds (§5.4).

Because dependence entries are intervals, the lexicographic test is
three-valued: an entry like ``0+`` splits instances between "carried
here" and "falls through to the next level", which the scan handles by
continuing with the remaining levels (a sound over-approximation).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.dependence.depvector import DependenceMatrix, DepVector
from repro.dependence.entry import DepEntry, zip_dot
from repro.instance.layout import Layout
from repro.legality.structure import NewStructure, recover_structure
from repro.linalg.intmat import IntMatrix
from repro.obs import counter, event, timed
from repro.util.errors import CodegenError, LegalityError

__all__ = ["LegalityReport", "DepStatus", "check_legality", "lex_status", "assert_legal"]


class DepStatus(enum.Enum):
    SATISFIED_BY_LOOPS = "satisfied-by-loops"
    SATISFIED_SYNTACTICALLY = "satisfied-syntactically"
    UNSATISFIED = "unsatisfied"  # legal self-dep; needs augmentation
    VIOLATED = "violated"


@dataclass
class LegalityReport:
    """Outcome of the Definition-6 test."""

    legal: bool
    structure: NewStructure | None
    statuses: list[tuple[DepVector, DepStatus]] = field(default_factory=list)

    @property
    def violations(self) -> list[DepVector]:
        return [d for d, s in self.statuses if s is DepStatus.VIOLATED]

    def unsatisfied(self, label: str | None = None) -> list[DepVector]:
        out = [d for d, s in self.statuses if s is DepStatus.UNSATISFIED]
        if label is not None:
            out = [d for d in out if d.src == label]
        return out

    def __str__(self) -> str:
        head = "LEGAL" if self.legal else "ILLEGAL"
        lines = [head]
        for d, s in self.statuses:
            lines.append(f"  {s.value:24s} {d}")
        return "\n".join(lines)


def lex_status(entries: tuple[DepEntry, ...]) -> str:
    """Three-valued lexicographic sign of an interval vector.

    Returns ``"positive"`` (every instance lexicographically positive),
    ``"zero-or-positive"`` (no instance can be negative; some may be
    exactly zero), or ``"may-be-negative"``.
    """
    may_reach_zero = True
    for e in entries:
        if e.definitely_positive():
            return "positive" if may_reach_zero else "positive"
        if e.is_zero():
            continue
        if e.definitely_nonnegative():
            # some instances carried here; the rest fall through with 0
            continue
        return "may-be-negative"
    return "zero-or-positive"


@timed("legality.check", attr_fn=lambda layout, *a, **kw: {"program": layout.program.name})
def check_legality(
    layout: Layout,
    matrix: IntMatrix,
    deps: DependenceMatrix,
) -> LegalityReport:
    """Run the full Definition-6 legality test."""
    counter("legality.checks")
    try:
        structure = recover_structure(layout, matrix)
    except CodegenError as exc:
        counter("legality.structure_rejections")
        event(
            "legality", "reject",
            "matrix lacks the Figure-5 block structure",
            program=layout.program.name, detail=str(exc),
        )
        return LegalityReport(False, None)

    new_layout = structure.new_layout
    assert new_layout is not None
    report = LegalityReport(True, structure)

    for d in deps:
        counter("legality.projections_checked")
        md = tuple(zip_dot(row, d.entries) for row in matrix.rows())
        common = new_layout.common_loop_coords(d.src, d.dst)
        positions = [new_layout.index(c) for c in common]
        projected = tuple(md[i] for i in positions)
        sign = lex_status(projected)
        if sign == "positive":
            status = DepStatus.SATISFIED_BY_LOOPS
        elif sign == "zero-or-positive":
            if d.src == d.dst:
                status = DepStatus.UNSATISFIED
            elif structure.syntactically_before(d.src, d.dst) and d.src != d.dst:
                status = DepStatus.SATISFIED_SYNTACTICALLY
            else:
                status = DepStatus.VIOLATED
        else:
            status = DepStatus.VIOLATED
        if status is DepStatus.VIOLATED:
            counter("legality.violations")
            report.legal = False
            reason = (
                "transformed dependence projects lexicographically "
                f"{'negative' if sign == 'may-be-negative' else 'zero with no syntactic order'} "
                "onto the common loops (Theorem 2)"
            )
            event(
                "legality", "reject", reason,
                dep=str(d),
                projection="(" + ", ".join(str(e) for e in projected) + ")",
                sign=sign,
                src=d.src, dst=d.dst,
            )
        elif status is DepStatus.UNSATISFIED:
            counter("legality.unsatisfied")
            event(
                "legality", "info",
                "self-dependence unsatisfied by loops; needs augmentation (§5.4)",
                dep=str(d),
                projection="(" + ", ".join(str(e) for e in projected) + ")",
            )
        else:
            event(
                "legality", "accept", status.value,
                dep=str(d), sign=sign,
            )
        report.statuses.append((d, status))
    return report


def assert_legal(layout: Layout, matrix: IntMatrix, deps: DependenceMatrix) -> LegalityReport:
    """Like :func:`check_legality` but raises :class:`LegalityError` on
    an illegal transformation."""
    report = check_legality(layout, matrix, deps)
    if not report.legal:
        bad = "; ".join(str(d) for d in report.violations) or "block structure"
        raise LegalityError(f"transformation is illegal: {bad}")
    return report
