"""Legality testing (system S8, paper §5.1-5.3)."""

from repro.legality.check import (
    DepStatus, LegalityReport, assert_legal, check, check_legality, lex_status,
)
from repro.legality.structure import NewStructure, recover_structure

__all__ = [
    "check", "check_legality", "assert_legal", "LegalityReport", "DepStatus",
    "lex_status", "recover_structure", "NewStructure",
]
