"""Instance-vector coordinate layouts (paper §2).

The paper maps every dynamic statement instance of an imperfectly
nested loop to an **instance vector** via the labeled-AST encoding of
Equation (1): a depth-first walk that visits children right-to-left and
concatenates node labels (loop indices) and edge labels (0/1 path
markers).  A :class:`Layout` makes that encoding explicit — it is the
ordered list of *coordinates* (loop positions and edge positions) that
all instance vectors of a program share, and every matrix in the
framework is indexed against it.

Identity of AST nodes is by *path*: the tuple of child indices from the
(virtual) root, so structurally identical sibling subtrees (which arise
after loop distribution) stay distinct.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.ir.ast import Guard, Loop, Node, Program, Statement
from repro.util.errors import LayoutError

__all__ = ["Coord", "LoopCoord", "EdgeCoord", "Layout", "Path"]

Path = tuple[int, ...]


@dataclass(frozen=True)
class Coord:
    """Base class for one position of the instance-vector space."""

    path: Path


@dataclass(frozen=True)
class LoopCoord(Coord):
    """The label position of the loop node at ``path``."""

    var: str

    def __str__(self) -> str:
        return f"loop:{self.var}@{'.'.join(map(str, self.path)) or 'root'}"


@dataclass(frozen=True)
class EdgeCoord(Coord):
    """The label position of the edge from the node at ``path`` to its
    ``child``-th child (0-based).  Present only when the node has two or
    more children (the §2.2 single-edge optimization), unless the layout
    was built with ``optimize_single_edges=False``."""

    child: int

    def __str__(self) -> str:
        return f"edge:{'.'.join(map(str, self.path)) or 'root'}->{self.child}"


class Layout:
    """The instance-vector coordinate system of a program.

    ``layout.coords`` lists the coordinates in instance-vector order:
    for each node, its loop label first, then its edge labels for
    children m..1 (right to left), then the subtree coordinates of
    children m..1 (right to left) — exactly Equation (1).
    """

    def __init__(self, program: Program, *, optimize_single_edges: bool = True):
        self.program = program
        self.optimize_single_edges = optimize_single_edges
        self._coords: list[Coord] = []
        self._index: dict[Coord, int] = {}
        self._node_at: dict[Path, Node] = {}
        self._stmt_paths: dict[str, Path] = {}
        self._build(program.body, ())
        for i, c in enumerate(self._coords):
            self._index[c] = i

    # -- construction ---------------------------------------------------------

    def _build(self, children: Sequence[Node], path: Path) -> None:
        if path:
            node = self._node_at[path]
            if isinstance(node, Loop):
                self._coords.append(LoopCoord(path, node.var))
        # The virtual root is an artifact of our forest representation and
        # never labels a single outgoing edge, even un-optimized.
        if len(children) >= 2 or (not self.optimize_single_edges and children and path):
            for j in reversed(range(len(children))):
                self._coords.append(EdgeCoord(path, j))
        for j in reversed(range(len(children))):
            child = children[j]
            cpath = path + (j,)
            self._node_at[cpath] = child
            if isinstance(child, Statement):
                self._stmt_paths[child.label] = cpath
            elif isinstance(child, Loop):
                self._build(child.body, cpath)
            elif isinstance(child, Guard):
                raise LayoutError("layouts are defined for source programs without guards")
            else:  # pragma: no cover - defensive
                raise LayoutError(f"unknown node type {type(child).__name__}")

    # -- basic queries ------------------------------------------------------------

    @property
    def coords(self) -> tuple[Coord, ...]:
        return tuple(self._coords)

    @property
    def dimension(self) -> int:
        return len(self._coords)

    def index(self, coord: Coord) -> int:
        try:
            return self._index[coord]
        except KeyError:
            raise LayoutError(f"coordinate {coord} is not in this layout") from None

    def node_at(self, path: Path) -> Node:
        if not path:
            raise LayoutError("the virtual root has no node")
        try:
            return self._node_at[path]
        except KeyError:
            raise LayoutError(f"no node at path {path}") from None

    def statement_path(self, label: str) -> Path:
        try:
            return self._stmt_paths[label]
        except KeyError:
            raise LayoutError(f"no statement labeled {label!r}") from None

    def statement_labels(self) -> list[str]:
        return sorted(self._stmt_paths, key=lambda l: self._stmt_paths[l])

    def loop_coords(self) -> list[LoopCoord]:
        return [c for c in self._coords if isinstance(c, LoopCoord)]

    def edge_coords(self) -> list[EdgeCoord]:
        return [c for c in self._coords if isinstance(c, EdgeCoord)]

    def loop_coord_by_var(self, var: str) -> LoopCoord:
        """Lookup a loop coordinate by variable name.

        Raises :class:`LayoutError` if the name is ambiguous (possible
        after distribution duplicates a loop) or unknown.
        """
        matches = [c for c in self.loop_coords() if c.var == var]
        if not matches:
            raise LayoutError(f"no loop variable {var!r} in layout")
        if len(matches) > 1:
            raise LayoutError(f"loop variable {var!r} is ambiguous; use paths")
        return matches[0]

    def loop_index_by_var(self, var: str) -> int:
        return self.index(self.loop_coord_by_var(var))

    # -- statement-centric queries ---------------------------------------------------

    def surrounding_loop_coords(self, label: str) -> list[LoopCoord]:
        """Loop coordinates of the loops enclosing the statement,
        outermost first."""
        spath = self.statement_path(label)
        out = []
        for depth in range(1, len(spath)):
            prefix = spath[:depth]
            node = self._node_at[prefix]
            if isinstance(node, Loop):
                out.append(LoopCoord(prefix, node.var))
        return out

    def surrounding_loop_positions(self, label: str) -> list[int]:
        return [self.index(c) for c in self.surrounding_loop_coords(label)]

    def padded_positions(self, label: str) -> list[int]:
        """Indices of this statement's padded loop positions (Def. 4):
        loop coordinates whose loop does *not* surround the statement."""
        surrounding = set(self.surrounding_loop_positions(label))
        return [
            self.index(c)
            for c in self.loop_coords()
            if self.index(c) not in surrounding
        ]

    def common_loop_coords(self, label1: str, label2: str) -> list[LoopCoord]:
        """Loop coordinates common to both statements, outside-in."""
        c1 = self.surrounding_loop_coords(label1)
        c2 = set(self.surrounding_loop_coords(label2))
        return [c for c in c1 if c in c2]

    def edge_entry(self, coord: EdgeCoord, label: str) -> int:
        """0/1 edge label for this statement's root-to-leaf path."""
        spath = self.statement_path(label)
        edge_path = coord.path + (coord.child,)
        return 1 if spath[: len(edge_path)] == edge_path else 0

    def pad_source(self, coord: LoopCoord, label: str) -> LoopCoord | None:
        """For a padded position, the loop whose label fills it: the
        nearest labeled (i.e. surrounding-``label``) ancestor of the
        coordinate's node.  None when there is no labeled ancestor (the
        entry pads with 0)."""
        surrounding = {c.path: c for c in self.surrounding_loop_coords(label)}
        p = coord.path
        while p:
            p = p[:-1]
            if p in surrounding:
                return surrounding[p]
        return None

    def iter_coords(self) -> Iterator[tuple[int, Coord]]:
        return enumerate(self._coords)

    def describe(self) -> str:
        """Human-readable table of the coordinate system."""
        return "\n".join(f"{i:3d}  {c}" for i, c in self.iter_coords())

    def __len__(self) -> int:
        return self.dimension

    def __repr__(self) -> str:
        return f"Layout({self.program.name!r}, dim={self.dimension})"
