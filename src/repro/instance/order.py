"""Execution order on dynamic instances and its vector counterpart.

Definition 2 of the paper orders dynamic instances by (i) the values of
their *common* loops, outside-in, then (ii) syntactic order ⪯ₛ.
Theorem 1 states that ``L`` turns this into plain lexicographic order on
instance vectors; :func:`check_order_isomorphism` verifies that claim on
a full enumeration (used heavily in tests — it is the executable form of
the theorem).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.instance.layout import Layout
from repro.instance.vectors import DynamicInstance, instance_vector
from repro.ir.ast import Program
from repro.linalg.unimodular import lex_compare

__all__ = ["program_order", "vector_order", "check_order_isomorphism", "sort_by_execution"]


def program_order(program: Program, a: DynamicInstance, b: DynamicInstance) -> int:
    """Three-way Definition-2 comparison of two dynamic instances."""
    common = program.common_loop_vars(a.label, b.label)
    layout = Layout(program)
    env_a, env_b = a.env(layout), b.env(layout)
    pa = [env_a[v] for v in common]
    pb = [env_b[v] for v in common]
    c = lex_compare(pa, pb)
    if c != 0:
        return c
    if a.label == b.label:
        rest = lex_compare(a.iters, b.iters)
        return rest
    return -1 if program.syntactically_before(a.label, b.label) else 1


def vector_order(layout: Layout, a: DynamicInstance, b: DynamicInstance) -> int:
    """Three-way lexicographic comparison of the instance vectors."""
    return lex_compare(instance_vector(layout, a), instance_vector(layout, b))


def check_order_isomorphism(
    program: Program, instances: Iterable[DynamicInstance]
) -> list[tuple[DynamicInstance, DynamicInstance]]:
    """Return every pair on which Definition-2 order and vector order
    disagree (empty list = Theorem 1 holds on this enumeration)."""
    layout = Layout(program)
    insts = list(instances)
    vectors = [instance_vector(layout, d) for d in insts]
    bad: list[tuple[DynamicInstance, DynamicInstance]] = []
    for i, a in enumerate(insts):
        for j, b in enumerate(insts):
            if i == j:
                continue
            po = program_order(program, a, b)
            vo = lex_compare(vectors[i], vectors[j])
            if po != vo:
                bad.append((a, b))
    return bad


def sort_by_execution(layout: Layout, instances: Sequence[DynamicInstance]) -> list[DynamicInstance]:
    """Sort dynamic instances into execution order via their vectors."""
    return sorted(instances, key=lambda d: instance_vector(layout, d))


def injectivity_violations(layout: Layout, instances: Sequence[DynamicInstance]):
    """Pairs of distinct instances mapped to the same vector (Theorem 1
    says L is one-to-one, so this must be empty)."""
    seen: dict[tuple[int, ...], DynamicInstance] = {}
    bad = []
    for d in instances:
        v = instance_vector(layout, d)
        if v in seen and seen[v] != d:
            bad.append((seen[v], d))
        seen[v] = d
    return bad
