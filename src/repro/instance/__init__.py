"""Instance vectors and layouts (system S4, paper §2)."""

from repro.instance.layout import Coord, EdgeCoord, Layout, LoopCoord, Path
from repro.instance.order import (
    check_order_isomorphism, program_order, sort_by_execution, vector_order,
)
from repro.instance.vectors import (
    DynamicInstance, from_vector, identify_statement, instance_vector,
    symbolic_vector,
)

__all__ = [
    "Layout", "Coord", "LoopCoord", "EdgeCoord", "Path",
    "DynamicInstance", "instance_vector", "symbolic_vector", "from_vector",
    "identify_statement", "program_order", "vector_order",
    "check_order_isomorphism", "sort_by_execution",
]
