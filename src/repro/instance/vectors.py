"""The L and L⁻¹ maps between dynamic instances and instance vectors.

A *dynamic instance* is a statement label plus an assignment of its
surrounding loop variables (the partially labeled AST of §2.1).  ``L``
completes the labeling per procedure **M** — unlabeled edges get 0,
unlabeled loop nodes get their nearest labeled ancestor's value (the
"diagonal embedding"; 0 when no labeled ancestor exists) — and collects
the labels in layout order.  ``L⁻¹`` reads the surrounding-loop values
back out of a vector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.instance.layout import EdgeCoord, Layout, LoopCoord
from repro.polyhedra.affine import LinExpr, var
from repro.util.errors import LayoutError

__all__ = ["DynamicInstance", "instance_vector", "symbolic_vector", "from_vector", "identify_statement"]


@dataclass(frozen=True)
class DynamicInstance:
    """A statement execution: label + values of its surrounding loops."""

    label: str
    iters: tuple[int, ...]

    def env(self, layout: Layout) -> dict[str, int]:
        coords = layout.surrounding_loop_coords(self.label)
        if len(coords) != len(self.iters):
            raise LayoutError(
                f"{self.label} is nested in {len(coords)} loops, got {len(self.iters)} values"
            )
        return {c.var: v for c, v in zip(coords, self.iters)}


def symbolic_vector(layout: Layout, label: str) -> tuple[LinExpr, ...]:
    """The *general* instance vector of a statement, with loop variables
    left symbolic — e.g. ``[I, 0, 1, I]`` for S1 of simplified Cholesky."""
    surrounding = {c.path: c for c in layout.surrounding_loop_coords(label)}
    out: list[LinExpr] = []
    for coord in layout.coords:
        if isinstance(coord, LoopCoord):
            if coord.path in surrounding:
                out.append(var(coord.var))
            else:
                src = layout.pad_source(coord, label)
                out.append(var(src.var) if src is not None else LinExpr({}, 0))
        elif isinstance(coord, EdgeCoord):
            out.append(LinExpr({}, layout.edge_entry(coord, label)))
        else:  # pragma: no cover - defensive
            raise LayoutError(f"unknown coordinate {coord}")
    return tuple(out)


def instance_vector(layout: Layout, instance: DynamicInstance) -> tuple[int, ...]:
    """``L``: map a dynamic instance to its concrete instance vector."""
    env = instance.env(layout)
    return tuple(e.eval(env) for e in symbolic_vector(layout, instance.label))


def identify_statement(layout: Layout, vector: Sequence[int]) -> str:
    """Step 1 of ``L⁻¹`` (Def. 5): recover the statement from the edge
    entries of an instance vector."""
    if len(vector) != layout.dimension:
        raise LayoutError(
            f"vector length {len(vector)} does not match layout dimension {layout.dimension}"
        )
    for label in layout.statement_labels():
        if all(
            vector[layout.index(c)] == layout.edge_entry(c, label)
            for c in layout.edge_coords()
        ):
            return label
    raise LayoutError("vector's edge labels match no statement")


def from_vector(
    layout: Layout, vector: Sequence[int], label: str | None = None
) -> DynamicInstance:
    """``L⁻¹``: recover the dynamic instance from an instance vector.

    If ``label`` is given, the statement identification step is skipped
    and the surrounding-loop entries are read directly — this is the
    form used during code generation, where padded entries of a
    transformed vector are *not* meaningful (§4.1).
    """
    if label is None:
        label = identify_statement(layout, vector)
    iters = tuple(vector[i] for i in layout.surrounding_loop_positions(label))
    return DynamicInstance(label, iters)


def vector_env(layout: Layout, label: str, vector: Sequence[int]) -> dict[str, int]:
    """Surrounding-loop environment read from a vector (convenience)."""
    return from_vector(layout, vector, label).env(layout)
