"""Persistent, content-addressed tuning cache (``.repro_tune/``).

Every finished :func:`repro.tune.driver.tune` search is serialized as
one JSON file whose name is the SHA-256 of the *cache key*: the
program's canonical text (:func:`repro.ir.program_to_str` round-trips
source programs byte-exactly), the sorted parameter binding, and the
repro version.  Anything that could change the search outcome changes
the key, so staleness is handled by construction — editing the program,
re-running with other sizes, or upgrading repro all land on fresh keys,
and entries written by older versions are simply never looked up again.

Robustness guarantees (exercised by ``tests/tune/test_store.py``):

* **atomic writes** — entries are written to a temp file in the cache
  directory and ``os.replace``d into place, so a crashed or concurrent
  writer can never leave a half-written entry under a live key;
* **corruption tolerance** — unreadable or schema-mismatched entries
  are treated as misses (and unlinked, best-effort) instead of raising;
* **bounded size** — the directory is pruned to ``max_entries`` files,
  oldest-modified first, on every write.

The cache directory resolves, in priority order: explicit constructor
argument (the CLI's ``--cache-dir``), the ``REPRO_TUNE_DIR`` environment
variable, then ``./.repro_tune``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Mapping

from repro.ir.ast import Program
from repro.ir.printer import program_to_str
from repro.obs import counter

__all__ = ["TuneStore", "DEFAULT_DIR", "ENV_DIR", "STORE_SCHEMA"]

DEFAULT_DIR = ".repro_tune"
ENV_DIR = "REPRO_TUNE_DIR"

#: Bump when the entry layout changes incompatibly; mismatched entries
#: read as misses.
STORE_SCHEMA = 1

#: Default directory bound: one entry per (program, params) pair, so a
#: few hundred covers any realistic workload mix.
MAX_ENTRIES = 256


def _repro_version() -> str:
    from repro import __version__

    return __version__


def _canonical_text(program: Program | str) -> str:
    """Canonical program text for hashing.

    ``program_to_str`` is byte-stable for *parsed* programs, but ASTs
    built programmatically can print negative literals differently from
    their reparse (``V + -1`` vs ``V + (-1)``).  One parse→print round
    trip lands every representation of the same program on the parser's
    normal form, so equal programs always share a cache key.
    """
    from repro.ir.parser import parse_program

    text = program if isinstance(program, str) else program_to_str(program)
    try:
        return program_to_str(parse_program(text, "canonical"))
    except Exception:
        return text


class TuneStore:
    """Directory of tuning results, addressed by content hash."""

    def __init__(self, root: str | Path | None = None, *, max_entries: int = MAX_ENTRIES):
        if root is None:
            root = os.environ.get(ENV_DIR) or DEFAULT_DIR
        self.root = Path(root)
        self.max_entries = max_entries

    # -- keys -----------------------------------------------------------------

    @staticmethod
    def key_for(
        program: Program | str,
        params: Mapping[str, int],
        *,
        version: str | None = None,
    ) -> str:
        """SHA-256 cache key over (canonical program text, sorted param
        binding, repro version)."""
        text = _canonical_text(program)
        payload = json.dumps(
            {
                "schema": STORE_SCHEMA,
                "program": text,
                "params": sorted((k, int(v)) for k, v in params.items()),
                "version": version or _repro_version(),
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    # -- read -----------------------------------------------------------------

    def get(self, key: str) -> dict | None:
        """Load the entry for ``key``; corrupt or foreign files read as
        a miss (and are unlinked, best-effort) rather than raising."""
        path = self.path_for(key)
        try:
            raw = path.read_text()
        except OSError:
            return None
        try:
            entry = json.loads(raw)
            if not isinstance(entry, dict) or entry.get("schema") != STORE_SCHEMA:
                raise ValueError("schema mismatch")
        except (ValueError, TypeError):
            counter("tune.cache.corrupt")
            try:
                path.unlink()
            except OSError:
                pass
            return None
        return entry

    # -- write ----------------------------------------------------------------

    def put(self, key: str, entry: dict) -> Path:
        """Atomically persist ``entry`` under ``key`` and prune the
        directory back under ``max_entries`` (oldest-modified first)."""
        entry = dict(entry)
        entry["schema"] = STORE_SCHEMA
        entry["key"] = key
        path = self.path_for(key)
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(entry, f, indent=2, sort_keys=True)
                f.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        counter("tune.cache.writes")
        self._prune(keep=path)
        return path

    def _prune(self, keep: Path) -> None:
        try:
            entries = sorted(
                (p for p in self.root.glob("*.json")),
                key=lambda p: p.stat().st_mtime,
            )
        except OSError:
            return
        excess = len(entries) - self.max_entries
        for p in entries:
            if excess <= 0:
                break
            if p == keep:
                continue
            try:
                p.unlink()
                counter("tune.cache.evictions")
                excess -= 1
            except OSError:
                pass

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        n = 0
        for p in self.root.glob("*.json"):
            try:
                p.unlink()
                n += 1
            except OSError:
                pass
        return n

    def __len__(self) -> int:
        try:
            return sum(1 for _ in self.root.glob("*.json"))
        except OSError:
            return 0

    def __repr__(self) -> str:
        return f"TuneStore({str(self.root)!r}, entries={len(self)})"
