"""Candidate enumeration for the schedule autotuner.

The search space is assembled from the framework's own transformation
constructors, so every candidate is *expressible* by construction and
its legality is decidable by the Theorem-2 projection test before any
code is generated or executed:

* **loop orders** — for every loop coordinate, the partial
  transformation "scan this coordinate outermost" completed to a full
  matrix by :func:`repro.completion.complete_transformation` (the §6
  procedure; legal by construction, still audited);
* **interchanges / reversals / skews** — elementary §4.1 matrices over
  nested loop pairs, with skew factors seeded from the constants that
  actually appear in the dependence-matrix entries;
* **statement reorderings** — §4.2 child permutations of multi-child
  nodes;
* **distribution / jamming variants** — AST-level rewrites from
  :mod:`repro.transform.distribution`; each legal variant becomes a new
  search *context* (its own program, layout and dependence matrix) whose
  schedules are enumerated like the original's.

Candidates are deduplicated by canonical form: the pair (canonical
program text, matrix rows).  Two different derivations of the same
schedule — e.g. ``permute(I,J); permute(I,J)`` and the identity — keep
only the first representative.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import os

from repro.completion.complete import complete_transformation
from repro.dependence.analyze import analyze_dependences
from repro.dependence.depvector import DependenceMatrix
from repro.instance.layout import Layout, LoopCoord, Path
from repro.ir.ast import Loop, Node, Program
from repro.ir.printer import program_to_str
from repro.linalg.intmat import IntMatrix
from repro.obs import counter, event, span
from repro.transform.distribution import (
    _loop_at, distribute, distribution_legal, jam,
)
from repro.transform.matrices import (
    permutation, reversal, skew, statement_reorder,
)
from repro.transform.tiling import (
    TILE_LADDER, fuse, fuse_legal, fuse_site_offset, strip_mine,
)
from repro.util.errors import CompletionError, ReproError, TransformError

__all__ = [
    "Context", "Candidate", "make_context", "base_contexts",
    "tiled_contexts", "identity_candidate", "lead_candidate",
    "lead_candidates", "blocked_lead_candidates", "elementary_candidates",
    "enumerate_candidates", "compose_candidate", "dedupe",
    "skew_factors_from_deps", "loop_paths", "cap_candidates",
    "resolve_max_candidates", "exposes_wavefront", "wavefront_candidates",
]

#: Upper bound on |skew factor| accepted from dependence entries.
SKEW_FACTOR_BOUND = 2

#: Child-count cap for exhaustive statement reorderings (3! - 1 = 5
#: permutations; beyond that the space explodes factorially).
MAX_REORDER_CHILDREN = 3

#: Cap on distribution/jamming/fusion variant contexts per enumeration.
MAX_STRUCTURAL_VARIANTS = 4

#: Cap on strip-mined (tiled) variant contexts per enumeration — one
#: context per (loop, tile size) pair survives up to this bound.
MAX_TILED_VARIANTS = 8

#: Default overall candidate cap per enumeration level; overridable by
#: ``--max-candidates`` / the REPRO_TUNE_MAX environment variable.
#: Tiling multiplies the context count by the ladder, so an unbounded
#: enumeration could silently blow up tune wall-clock.
DEFAULT_MAX_CANDIDATES = 96

#: Environment override for the candidate cap.
MAX_CANDIDATES_ENV = "REPRO_TUNE_MAX"


def resolve_max_candidates(max_candidates: int | None = None) -> int:
    """The effective candidate cap: the explicit argument, else the
    ``REPRO_TUNE_MAX`` environment variable, else the default."""
    if max_candidates is not None:
        return max(1, int(max_candidates))
    env = os.environ.get(MAX_CANDIDATES_ENV, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return DEFAULT_MAX_CANDIDATES


def cap_candidates(candidates: list["Candidate"], cap: int, stage: str) -> list["Candidate"]:
    """Truncate an (ordered, deduplicated) candidate list to ``cap``,
    emitting the ``kind=tune, verdict=truncated`` decision event with the
    dropped count so the blowup is log-visible (``repro explain``)."""
    if len(candidates) <= cap:
        return candidates
    dropped = len(candidates) - cap
    counter("tune.candidates.truncated", dropped)
    event(
        "tune", "truncated",
        f"candidate cap reached at the {stage} stage; raise --max-candidates "
        f"or {MAX_CANDIDATES_ENV} to search the dropped tail",
        stage=stage, cap=cap, enumerated=len(candidates), dropped=dropped,
    )
    return candidates[:cap]


@dataclass(eq=False)
class Context:
    """One program the tuner searches schedules *of*: the original, or a
    semantically equivalent structural variant (distribution, jamming,
    fusion, strip-mining)."""

    program: Program
    layout: Layout
    deps: DependenceMatrix
    origin: tuple[str, ...] = ()  # structural steps that produced it
    tile: tuple[str, int] | None = None  # (tile loop var, size) for strip-mined variants

    @property
    def is_tiled(self) -> bool:
        return self.tile is not None


@dataclass(eq=False)
class Candidate:
    """A schedule: a square transformation matrix over one context."""

    context: Context
    matrix: IntMatrix
    steps: tuple[str, ...] = ()
    kind: str = "identity"
    lead: str | None = None  # set for completion-derived loop orders
    _text: str | None = field(default=None, repr=False)

    @property
    def description(self) -> str:
        parts = self.context.origin + self.steps
        return "; ".join(parts) if parts else "default order"

    def canonical_key(self) -> tuple:
        """Dedup identity: canonical program text × matrix rows."""
        if self._text is None:
            self._text = program_to_str(self.context.program)
        return (self._text, self.matrix.rows())

    def __repr__(self) -> str:
        return f"Candidate({self.description!r}, kind={self.kind})"


def make_context(
    program: Program,
    deps: DependenceMatrix | None = None,
    *,
    layout: Layout | None = None,
    origin: tuple[str, ...] = (),
    tile: tuple[str, int] | None = None,
) -> Context:
    layout = layout or Layout(program)
    if deps is None:
        deps = analyze_dependences(program, layout=layout)
    return Context(program, layout, deps, origin, tile)


def loop_paths(program: Program) -> list[Path]:
    """Paths of every loop node, preorder."""
    out: list[Path] = []

    def walk(children: Sequence[Node], path: Path) -> None:
        for j, child in enumerate(children):
            if isinstance(child, Loop):
                cpath = path + (j,)
                out.append(cpath)
                walk(child.body, cpath)

    walk(program.body, ())
    return out


# -- structural variants (distribution / jamming) ---------------------------


def base_contexts(
    program: Program,
    deps: DependenceMatrix | None = None,
    *,
    layout: Layout | None = None,
    max_variants: int = MAX_STRUCTURAL_VARIANTS,
) -> list[Context]:
    """The original context plus up to ``max_variants`` legal
    distribution/jamming rewrites of it.

    Distribution legality is the classic projection test
    (:func:`repro.transform.distribution.distribution_legal`).  Jamming
    is admitted through its inverse: the jammed program is kept only
    when *distributing it back* at the fusion point is legal, which
    proves the jammed and original programs equivalent.
    """
    root = make_context(program, deps, layout=layout)
    contexts = [root]
    with span("tune.space.contexts", program=program.name):
        for path in loop_paths(program):
            node = root.layout.node_at(path)
            assert isinstance(node, Loop)
            for split in range(1, len(node.body)):
                if len(contexts) - 1 >= max_variants:
                    break
                try:
                    if not distribution_legal(root.deps, path, split):
                        counter("tune.space.structural_rejected")
                        continue
                    variant = distribute(program, path, split)
                    ctx = make_context(
                        variant, origin=(f"distribute({_fmt_path(path)}, {split})",)
                    )
                except ReproError:
                    counter("tune.space.structural_rejected")
                    continue
                contexts.append(ctx)
                counter("tune.space.distributions")
        for path, split in _jam_sites(program):
            if len(contexts) - 1 >= max_variants:
                break
            try:
                jammed = jam(program, path)
                jdeps = analyze_dependences(jammed)
                if not distribution_legal(jdeps, path, split):
                    counter("tune.space.structural_rejected")
                    continue
                ctx = make_context(
                    jammed, jdeps, origin=(f"jam({_fmt_path(path)})",)
                )
            except ReproError:
                counter("tune.space.structural_rejected")
                continue
            contexts.append(ctx)
            counter("tune.space.jams")
        # fusion: distribution contexts run in reverse, generalized to
        # headers matching up to a constant offset (tiling.fuse); exact
        # jam sites were handled above, so skip them here
        jam_paths = {p for p, _ in _jam_sites(program)}
        for path in _fuse_sites(program):
            if path in jam_paths:
                continue
            if len(contexts) - 1 >= max_variants:
                break
            try:
                fused = fuse(program, path)
                fdeps = analyze_dependences(fused)
                if not fuse_legal(program, path, fused=fused, fused_deps=fdeps):
                    counter("tune.space.structural_rejected")
                    continue
                ctx = make_context(
                    fused, fdeps, origin=(f"fuse({_fmt_path(path)})",)
                )
            except ReproError:
                counter("tune.space.structural_rejected")
                continue
            contexts.append(ctx)
            counter("tune.space.fusions")
    return contexts


def _fuse_sites(program: Program) -> list[Path]:
    """Paths whose loop can fuse with its next sibling: adjacent
    unit-step loops whose bounds differ by one constant offset (the
    generalization of :func:`_jam_sites` that tolerates different loop
    variables and shifted ranges)."""
    sites: list[Path] = []

    def walk(children: Sequence[Node], path: Path) -> None:
        for j, child in enumerate(children):
            if not isinstance(child, Loop):
                continue
            cpath = path + (j,)
            nxt = children[j + 1] if j + 1 < len(children) else None
            if nxt is not None and fuse_site_offset(child, nxt) is not None:
                sites.append(cpath)
            walk(child.body, cpath)

    walk(program.body, ())
    return sites


def tiled_contexts(
    program: Program,
    *,
    tile_sizes: Sequence[int] = TILE_LADDER,
    max_variants: int = MAX_TILED_VARIANTS,
) -> list[Context]:
    """Strip-mined variant contexts: one per (loop, tile size) pair, in
    preorder loop order with the ladder innermost, capped at
    ``max_variants``.

    Strip-mining is always legal (an order-preserving bijection of the
    iteration space), so there is no admission test here — only loops
    the rewrite cannot express (non-unit step, already-divided bounds)
    are skipped.  The *blocked* orders of each variant go through the
    ordinary Theorem-2 projection test like any other schedule.
    """
    out: list[Context] = []
    with span("tune.space.tiled", program=program.name):
        for path in loop_paths(program):
            for size in tile_sizes:
                if len(out) >= max_variants:
                    return out
                try:
                    variant = strip_mine(program, path, size)
                except TransformError:
                    counter("tune.space.tiles_rejected")
                    break  # same loop fails for every size
                var = _loop_at(program, path).var
                try:
                    ctx = make_context(
                        variant,
                        origin=(f"tile({var},{size})",),
                        tile=(_loop_at(variant, path).var, size),
                    )
                except ReproError:
                    counter("tune.space.tiles_rejected")
                    continue
                out.append(ctx)
                counter("tune.space.tiles")
    return out


def _jam_sites(program: Program) -> list[tuple[Path, int]]:
    """(path, split) pairs where adjacent sibling loops share a header:
    jamming at ``path`` fuses it with its next sibling, and ``split``
    is where distribution would cut the fused body back apart."""
    sites: list[tuple[Path, int]] = []

    def walk(children: Sequence[Node], path: Path) -> None:
        for j, child in enumerate(children):
            if not isinstance(child, Loop):
                continue
            cpath = path + (j,)
            nxt = children[j + 1] if j + 1 < len(children) else None
            if (
                isinstance(nxt, Loop)
                and (child.var, child.lower, child.upper, child.step)
                == (nxt.var, nxt.lower, nxt.upper, nxt.step)
            ):
                sites.append((cpath, len(child.body)))
            walk(child.body, cpath)

    walk(program.body, ())
    return sites


def _fmt_path(path: Path) -> str:
    return ".".join(map(str, path)) or "root"


# -- per-context candidates -------------------------------------------------


def identity_candidate(ctx: Context) -> Candidate:
    return Candidate(ctx, IntMatrix.identity(ctx.layout.dimension))


def lead_candidate(ctx: Context, coord: LoopCoord) -> Candidate | None:
    """Complete "scan ``coord`` outermost" to a full legal matrix; None
    when no completion exists in the permutation fragment."""
    n = ctx.layout.dimension
    pos = ctx.layout.index(coord)
    partial = [[1 if j == pos else 0 for j in range(n)]]
    try:
        completed = complete_transformation(
            ctx.program, partial, ctx.deps, layout=ctx.layout
        )
    except (CompletionError, ReproError):
        counter("tune.space.completions_failed")
        return None
    return Candidate(
        ctx, completed.matrix, (f"lead({coord.var})",), "order", lead=coord.var
    )


def lead_candidates(ctx: Context) -> list[Candidate]:
    out = []
    for coord in ctx.layout.loop_coords():
        cand = lead_candidate(ctx, coord)
        if cand is not None:
            out.append(cand)
    return out


def blocked_lead_candidates(ctx: Context) -> list[Candidate]:
    """Blocked orders of a strip-mined context: complete the two-row
    partial "tile loop outermost, then coordinate X" for every other
    loop coordinate X.

    A single-row lead on the *tile* coordinate is usually completed with
    the point loop immediately inside it — recovering the original order
    plus tile overhead.  Pinning the second-outermost coordinate too is
    what actually produces blocked schedules (e.g. ``(IT, K, I, J)`` for
    a strip-mined ``(I, J, K)`` matmul-shaped nest); each completion
    still passes through the Theorem-2 audit in the driver.
    """
    if ctx.tile is None:
        return []
    tvar = ctx.tile[0]
    layout = ctx.layout
    n = layout.dimension
    coords = layout.loop_coords()
    tile_coord = next((c for c in coords if c.var == tvar), None)
    if tile_coord is None:
        return []
    tpos = layout.index(tile_coord)
    out: list[Candidate] = []
    for second in coords:
        if second is tile_coord:
            continue
        spos = layout.index(second)
        partial = [
            [1 if j == tpos else 0 for j in range(n)],
            [1 if j == spos else 0 for j in range(n)],
        ]
        try:
            completed = complete_transformation(
                ctx.program, partial, ctx.deps, layout=layout
            )
        except (CompletionError, ReproError):
            counter("tune.space.completions_failed")
            continue
        out.append(
            Candidate(
                ctx, completed.matrix,
                (f"lead({tvar},{second.var})",), "blocked", lead=tvar,
            )
        )
    return out


def skew_factors_from_deps(
    deps: DependenceMatrix, *, bound: int = SKEW_FACTOR_BOUND
) -> tuple[int, ...]:
    """Skew factors seeded from the finite constants of the dependence
    matrix: a dependence entry ``c`` at a loop position suggests ``±c``
    (a skew by ``-c`` is what straightens that component out)."""
    factors = {1, -1}
    for d in deps:
        for e in d.entries:
            for v in (e.lo, e.hi):
                if isinstance(v, int) and v != 0 and abs(v) <= bound:
                    factors.add(v)
                    factors.add(-v)
    return tuple(sorted(factors))


def _nested_pairs(layout: Layout) -> list[tuple[LoopCoord, LoopCoord]]:
    """(ancestor, descendant) loop-coordinate pairs — the pairs where
    interchange and skewing are structurally meaningful."""
    coords = layout.loop_coords()
    out = []
    for a in coords:
        for b in coords:
            if a is b:
                continue
            if b.path[: len(a.path)] == a.path and len(b.path) > len(a.path):
                out.append((a, b))
    return out


def elementary_candidates(
    ctx: Context,
    *,
    skew_factors: Iterable[int] | None = None,
    max_reorder_children: int = MAX_REORDER_CHILDREN,
) -> list[Candidate]:
    """Single-step §4.1/§4.2 candidates over one context: interchanges
    and skews of nested loop pairs, reversals, statement reorderings.
    Inexpressible constructions are skipped, not errors."""
    layout = ctx.layout
    out: list[Candidate] = []
    pairs = _nested_pairs(layout)
    if skew_factors is None:
        skew_factors = skew_factors_from_deps(ctx.deps)

    for a, b in pairs:
        try:
            t = permutation(layout, a.path, b.path)
        except ReproError:
            continue
        out.append(
            Candidate(ctx, t.matrix, (f"permute({a.var},{b.var})",), "permute")
        )

    for c in layout.loop_coords():
        try:
            t = reversal(layout, c.path)
        except ReproError:
            continue
        out.append(Candidate(ctx, t.matrix, (f"reverse({c.var})",), "reverse"))

    for a, b in pairs:
        for f in skew_factors:
            for tgt, src in ((a, b), (b, a)):
                try:
                    t = skew(layout, tgt.path, src.path, f)
                except ReproError:
                    continue
                out.append(
                    Candidate(
                        ctx, t.matrix,
                        (f"skew({tgt.var},{src.var},{f})",), "skew",
                    )
                )

    for parent in [(), *loop_paths(ctx.program)]:
        try:
            children = (
                ctx.program.body if not parent else ctx.layout.node_at(parent).body  # type: ignore[union-attr]
            )
        except ReproError:
            continue
        c = len(children)
        if c < 2 or c > max_reorder_children:
            continue
        for perm in itertools.permutations(range(c)):
            if list(perm) == list(range(c)):
                continue
            try:
                t, _ = statement_reorder(layout, parent, list(perm))
            except ReproError:
                continue
            out.append(
                Candidate(
                    ctx, t.matrix,
                    (f"reorder({_fmt_path(parent)}, {perm})",), "reorder",
                )
            )
    return out


def exposes_wavefront(layout: Layout, matrix, deps: DependenceMatrix) -> bool:
    """True when some loop of the transformed program is DOALL *and* the
    program has dependences — i.e. the schedule genuinely creates
    wavefront parallelism the ``source-par`` backend can dispatch, as
    opposed to parallelism that was already there (dependence-free
    programs are trivially parallel under any schedule)."""
    from repro.analysis.parallel import parallel_loops

    if not any(True for _ in deps):
        return False
    try:
        marks = parallel_loops(layout, matrix, deps)
    except ReproError:
        return False
    return any(m.is_parallel for m in marks)


def wavefront_candidates(ctx: Context) -> list[Candidate]:
    """Skew candidates retagged ``kind="wavefront"`` when they expose a
    DOALL loop on a program that has dependences — the skew-then-
    parallelize moves the ``source-par`` backend exists for.  Emitted
    *before* :func:`elementary_candidates` in enumeration order so
    :func:`dedupe` (which keeps first occurrences) retains the
    wavefront tag over the plain skew duplicate."""
    out: list[Candidate] = []
    for cand in elementary_candidates(ctx):
        if cand.kind != "skew":
            continue
        if exposes_wavefront(ctx.layout, cand.matrix, ctx.deps):
            out.append(Candidate(ctx, cand.matrix, cand.steps, "wavefront"))
    if out:
        counter("tune.space.wavefront_candidates", len(out))
    return out


def compose_candidate(base: Candidate, step: Candidate) -> Candidate:
    """Extend ``base`` by one elementary ``step`` of the same context
    (matrix product — ``step`` applies after ``base``)."""
    assert step.context is base.context
    return Candidate(
        base.context,
        step.matrix @ base.matrix,
        base.steps + step.steps,
        step.kind if base.kind == "identity" else f"{base.kind}+{step.kind}",
        lead=base.lead,
    )


def dedupe(candidates: Iterable[Candidate]) -> list[Candidate]:
    """Drop candidates whose canonical form (program text × matrix) was
    already seen, keeping first occurrences in order."""
    seen: set[tuple] = set()
    out: list[Candidate] = []
    for cand in candidates:
        key = cand.canonical_key()
        if key in seen:
            counter("tune.space.duplicates")
            continue
        seen.add(key)
        out.append(cand)
    return out


def enumerate_candidates(
    program: Program,
    deps: DependenceMatrix | None = None,
    *,
    layout: Layout | None = None,
    include_structural: bool = True,
    max_variants: int = MAX_STRUCTURAL_VARIANTS,
    tile_sizes: Sequence[int] | None = None,
    max_tiled_variants: int = MAX_TILED_VARIANTS,
    max_candidates: int | None = None,
    wavefront: bool = False,
) -> list[Candidate]:
    """The full level-1 candidate set: the default order, every
    completed loop order, every elementary transformation of the
    original program, loop orders of each legal structural
    (distribution/jamming/fusion) variant, and — when ``tile_sizes`` is
    given — identity, loop orders, and blocked two-row orders of every
    strip-mined variant.  With ``wavefront=True`` (the driver sets it
    for the ``source-par`` backend), skew candidates that expose a DOALL
    loop are additionally tagged ``kind="wavefront"`` so the driver can
    reserve measurement slots for them.  Deduplicated and capped at
    :func:`resolve_max_candidates`; legality is *not* checked here — the
    driver prunes with the Theorem-2 test before scoring or executing
    anything."""
    if include_structural:
        contexts = base_contexts(
            program, deps, layout=layout, max_variants=max_variants
        )
    else:
        contexts = [make_context(program, deps, layout=layout)]
    out: list[Candidate] = []
    for i, ctx in enumerate(contexts):
        out.append(identity_candidate(ctx))
        out.extend(lead_candidates(ctx))
        if i == 0:
            if wavefront:
                out.extend(wavefront_candidates(ctx))
            out.extend(elementary_candidates(ctx))
    if tile_sizes:
        for ctx in tiled_contexts(
            program, tile_sizes=tile_sizes, max_variants=max_tiled_variants
        ):
            out.append(identity_candidate(ctx))
            out.extend(lead_candidates(ctx))
            out.extend(blocked_lead_candidates(ctx))
    out = cap_candidates(
        dedupe(out), resolve_max_candidates(max_candidates), "enumerate"
    )
    counter("tune.space.enumerated", len(out))
    return out
