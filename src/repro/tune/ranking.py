"""Cost-rank vs measured-rank agreement: is the cost model predictive?

Acharya & Bondhugula ("Finding Permutations Quickly", PAPERS.md) make
the cost-model-vs-measurement comparison the centerpiece of their
evaluation; this module turns it into a number the repo can watch.  The
tune driver records, for every candidate that was both statically scored
and actually measured, its **cost rank** (descending score — rank 1 is
the model's favourite) and its **measured rank** (ascending wall-clock
seconds — rank 1 is the fastest), and summarizes their agreement with
the Kendall rank correlation coefficient (tau-b, tie-corrected):

* ``tau = +1`` — the model orders candidates exactly like the hardware;
* ``tau =  0`` — the model is no better than a coin flip;
* ``tau = -1`` — the model is anti-correlated (actively misleading).

The report is persisted into every tune cache entry so ``repro explain
--phase tune`` can reconstruct the comparison without re-searching, and
the CI tune-smoke job surfaces the tau in its job summary.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["kendall_tau", "RankedCandidate", "RankReport", "rank_report"]


def kendall_tau(xs: list[float], ys: list[float]) -> float | None:
    """Kendall's tau-b of two equal-length sequences (tie-corrected).

    Returns ``None`` when fewer than two pairs exist or either sequence
    is entirely tied (the correlation is undefined there, not zero).
    O(n^2) pair counting — candidate lists are tens of entries, never
    thousands.
    """
    n = len(xs)
    if n != len(ys):
        raise ValueError(f"length mismatch: {n} vs {len(ys)}")
    if n < 2:
        return None
    concordant = discordant = 0
    ties_x = ties_y = 0
    for i in range(n):
        for j in range(i + 1, n):
            dx = xs[i] - xs[j]
            dy = ys[i] - ys[j]
            if dx == 0 and dy == 0:
                ties_x += 1
                ties_y += 1
            elif dx == 0:
                ties_x += 1
            elif dy == 0:
                ties_y += 1
            elif (dx > 0) == (dy > 0):
                concordant += 1
            else:
                discordant += 1
    pairs = n * (n - 1) // 2
    denom_x = pairs - ties_x
    denom_y = pairs - ties_y
    if denom_x <= 0 or denom_y <= 0:
        return None
    return (concordant - discordant) / (denom_x * denom_y) ** 0.5


@dataclass(frozen=True)
class RankedCandidate:
    """One candidate that was both scored and measured."""

    description: str
    score: float
    seconds: float
    cost_rank: int       # 1 = model's favourite (highest score)
    measured_rank: int   # 1 = fastest measured

    def to_json(self) -> dict:
        return {
            "description": self.description,
            "score": self.score,
            "seconds": self.seconds,
            "cost_rank": self.cost_rank,
            "measured_rank": self.measured_rank,
        }


@dataclass(frozen=True)
class RankReport:
    """The cost-vs-measured ranking comparison of one tune run."""

    candidates: tuple[RankedCandidate, ...]
    tau: float | None

    def to_json(self) -> dict:
        return {
            "tau": self.tau,
            "candidates": [c.to_json() for c in self.candidates],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "RankReport":
        return cls(
            candidates=tuple(
                RankedCandidate(
                    description=c.get("description", "?"),
                    score=float(c.get("score", 0.0)),
                    seconds=float(c.get("seconds", 0.0)),
                    cost_rank=int(c.get("cost_rank", 0)),
                    measured_rank=int(c.get("measured_rank", 0)),
                )
                for c in payload.get("candidates", [])
            ),
            tau=payload.get("tau"),
        )


def _dense_ranks(values: list[float], *, reverse: bool) -> list[int]:
    """Competition ranks (1-based, ties share the smallest rank)."""
    order = sorted(values, reverse=reverse)
    return [1 + order.index(v) for v in values]


def rank_report(rows) -> RankReport:
    """Build the comparison from tune rows (anything with ``description``,
    ``score`` and ``seconds`` attributes or keys); rows missing either
    number are excluded — they were never both scored and measured."""
    usable = []
    for r in rows:
        get = (lambda k, rr=r: rr.get(k)) if isinstance(r, dict) else (
            lambda k, rr=r: getattr(rr, k, None)
        )
        score, seconds = get("score"), get("seconds")
        if isinstance(score, (int, float)) and isinstance(seconds, (int, float)):
            usable.append((str(get("description")), float(score), float(seconds)))
    if not usable:
        return RankReport(candidates=(), tau=None)
    scores = [u[1] for u in usable]
    seconds = [u[2] for u in usable]
    cost_ranks = _dense_ranks(scores, reverse=True)       # high score = rank 1
    measured_ranks = _dense_ranks(seconds, reverse=False)  # low seconds = rank 1
    cands = tuple(
        RankedCandidate(desc, s, sec, cr, mr)
        for (desc, s, sec), cr, mr in zip(usable, cost_ranks, measured_ranks)
    )
    # tau over the ranks themselves (ties preserved by dense ranking)
    tau = kendall_tau([float(c.cost_rank) for c in cands],
                      [float(c.measured_rank) for c in cands])
    return RankReport(candidates=cands, tau=tau)
