"""Guided schedule autotuner (docs/AUTOTUNING.md).

Searches the space of *legal* transformed schedules of a loop nest —
permutations via the completion procedure, skews seeded from the
dependence matrix, reversals, statement reorderings, and
distribution/jamming structural variants — ranks them with a static
locality + vectorizability cost model, measures the top survivors with
a real backend, and persists the winner in a content-addressed cache so
the search runs once per (program, params, version).

Layers::

    space.py   what to try      (candidate enumeration, deduped)
    cost.py    what looks good  (static model over legal candidates)
    driver.py  what wins        (beam search + measured ranking)
    store.py   remember it      (persistent .repro_tune/ cache)
"""

from repro.tune.cost import CostReport, model_params_for, score_candidate
from repro.tune.driver import (
    DEFAULT_BACKEND, TunedRow, TuneResult, apply_entry, load_tuned, tune,
)
from repro.tune.space import (
    Candidate, Context, base_contexts, compose_candidate, dedupe,
    elementary_candidates, enumerate_candidates, identity_candidate,
    lead_candidate, lead_candidates, make_context,
)
from repro.tune.store import TuneStore

__all__ = [
    "Candidate", "Context", "CostReport", "DEFAULT_BACKEND", "TuneResult",
    "TunedRow", "TuneStore", "apply_entry", "base_contexts",
    "compose_candidate", "dedupe", "elementary_candidates",
    "enumerate_candidates", "identity_candidate", "lead_candidate",
    "lead_candidates", "load_tuned", "make_context", "model_params_for",
    "score_candidate", "tune",
]
