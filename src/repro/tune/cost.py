"""Static cost model: rank *legal* schedules without timing them.

Scoring a candidate is cheap relative to measuring it — code is
generated once and interpreted at small *model* parameter sizes, never
at the user's real sizes — but it still captures the two effects the
measured backends reward:

* **locality** — the O(n log n) Fenwick reuse-distance profile
  (:func:`repro.analysis.locality.reuse_distances`) of the generated
  program's trace, summarized by :func:`locality_score` (the hit rate
  of an ideal LRU cache);
* **parallelism / vectorizability** — DOALL verdicts from
  :func:`repro.analysis.parallel.parallel_loops` on the candidate's
  matrix, and the number of innermost loops
  :func:`repro.backend.vectorize.plan_vector_loop` actually turns into
  NumPy slice assignments when the program is lowered with
  ``vectorize=True`` (counted by the lowering itself).

The combined score is dominated by locality, with vectorized and DOALL
loop fractions as tie-breakers; weights are module constants so the
benchmarks can ablate them.  ``score_candidate`` must only ever be
called on candidates that already passed the Theorem-2 legality test —
code generation re-asserts legality, so an illegal candidate raises
before a single statement instance runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.analysis.locality import locality_score, reuse_distances
from repro.analysis.parallel import parallel_loops
from repro.backend.lower import lower_program
from repro.codegen.generate import generate_code
from repro.codegen.simplify import simplify_program
from repro.interp.executor import execute
from repro.ir.ast import Program
from repro.obs import counter, event, span
from repro.tune.space import Candidate
from repro.util.errors import ReproError

__all__ = ["CostReport", "score_candidate", "model_params_for", "realize"]


def realize(candidate: Candidate) -> Program:
    """Generate + simplify the candidate's transformed program.

    Simplification (§5.5 standard optimizations) is not cosmetic here:
    codegen emits residual guards that are often implied by the
    enclosing loop bounds, and an un-pruned guard blocks the vectorizer.
    Scoring or measuring the raw codegen output would systematically
    penalize *every* transformed schedule against the guard-free
    original program.  ``generate_code`` re-asserts Theorem-2 legality,
    so this never executes an unchecked schedule.
    """
    ctx = candidate.context
    generated = generate_code(ctx.program, candidate.matrix, ctx.deps)
    return simplify_program(generated.program)

#: Default per-parameter size for the model execution; large enough for
#: the reuse profile to separate loop orders, small enough to score
#: dozens of candidates per second.  Calibrated together with
#: CAPACITY_LINES: the model working set must *exceed* the model cache,
#: or every loop order ties at a perfect hit rate.
MODEL_PARAM = 16

#: Ideal-LRU capacity (in cache lines) the locality score is taken at —
#: deliberately a fraction of the MODEL_PARAM working set so reuse
#: order, not footprint, decides the score.
CAPACITY_LINES = 16

#: Score weights: locality leads, vectorization and DOALL break ties.
W_LOCALITY = 1.0
W_VECTORIZED = 0.15
W_DOALL = 0.05


@dataclass(frozen=True)
class CostReport:
    """Features and combined score of one legal candidate."""

    score: float
    locality: float
    vectorized_loops: int
    fallback_loops: int
    doall_loops: int
    total_loops: int
    instances: int

    def features(self) -> dict:
        return {
            "score": self.score,
            "locality": self.locality,
            "vectorized_loops": self.vectorized_loops,
            "fallback_loops": self.fallback_loops,
            "doall_loops": self.doall_loops,
            "total_loops": self.total_loops,
            "instances": self.instances,
        }


def model_params_for(
    program_params: tuple[str, ...] | list[str],
    params: Mapping[str, int] | None = None,
    *,
    cap: int = MODEL_PARAM,
) -> dict[str, int]:
    """Model-execution sizes: the user's binding clamped to ``cap`` (the
    cost model only needs the reuse *shape*, not the real volume)."""
    params = dict(params or {})
    return {p: min(int(params.get(p, cap)), cap) for p in program_params}


def score_candidate(
    candidate: Candidate,
    params: Mapping[str, int] | None = None,
    *,
    capacity_lines: int = CAPACITY_LINES,
    realized: Program | None = None,
) -> CostReport:
    """Score a legality-checked candidate.  Raises :class:`ReproError`
    (never returns a junk score) when code generation or the model
    execution fails — the driver treats that as "candidate infeasible".

    ``realized`` lets the caller pass an already realized program so
    codegen is not repeated between scoring and measurement.
    """
    ctx = candidate.context
    with span("tune.score", candidate=candidate.description):
        program = realized if realized is not None else realize(candidate)
        mparams = model_params_for(ctx.program.params, params)
        store, trace = execute(program, mparams, trace=True)
        dists = reuse_distances(trace, store)
        locality = locality_score(dists, capacity_lines)

        marks = parallel_loops(ctx.layout, candidate.matrix, ctx.deps)
        total = max(1, len(marks))
        doall = sum(1 for m in marks if m.is_parallel)
        try:
            lowered = lower_program(program, vectorize=True)
            vectorized, fallback = lowered.vectorized_loops, lowered.fallback_loops
        except ReproError:
            # unlowerable programs still get a locality score; they will
            # lose the vectorization term and (rightly) rank lower
            counter("tune.score.lowering_failures")
            vectorized, fallback = 0, 0

        score = (
            W_LOCALITY * locality
            + W_VECTORIZED * (vectorized / total)
            + W_DOALL * (doall / total)
        )
    counter("tune.candidates.scored")
    event(
        "tune", "accept",
        "legal candidate statically scored by the cost model",
        candidate=candidate.description,
        score=f"{score:.6f}",
        locality=f"{locality:.4f}",
        vectorized_loops=vectorized,
        doall_loops=doall,
    )
    return CostReport(
        score=score,
        locality=locality,
        vectorized_loops=vectorized,
        fallback_loops=fallback,
        doall_loops=doall,
        total_loops=len(marks),
        instances=len(trace),
    )
