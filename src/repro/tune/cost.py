"""Static cost model: rank *legal* schedules without timing them.

Scoring a candidate is cheap relative to measuring it — code is
generated once and interpreted at small *model* parameter sizes, never
at the user's real sizes — but it still captures the two effects the
measured backends reward:

* **locality** — the O(n log n) Fenwick reuse-distance profile
  (:func:`repro.analysis.locality.reuse_distances`) of the generated
  program's trace, summarized by :func:`locality_score` (the hit rate
  of an ideal LRU cache);
* **parallelism / vectorizability** — DOALL verdicts from
  :func:`repro.analysis.parallel.parallel_loops` on the candidate's
  matrix, and the number of innermost loops
  :func:`repro.backend.vectorize.plan_vector_loop` actually turns into
  NumPy slice assignments when the program is lowered with
  ``vectorize=True`` (counted by the lowering itself).

* **tile footprint** — an *analytic* working-set estimate at the
  user's **real** parameter sizes (:func:`footprint_lines`): the reuse
  profile above runs at model sizes where every schedule's working set
  fits any real cache, so it cannot see why blocking pays at N=1024 but
  not N=256.  The footprint term can — it is the one term evaluated at
  real scale.

The combined score is dominated by locality, with vectorized and DOALL
loop fractions and the footprint term as tie-breakers; weights are
module constants so the benchmarks can ablate them.  ``score_candidate``
must only ever be called on candidates that already passed the
Theorem-2 legality test — code generation re-asserts legality, so an
illegal candidate raises before a single statement instance runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.analysis.locality import locality_score, reuse_distances
from repro.analysis.parallel import parallel_loops
from repro.backend.lower import lower_program
from repro.codegen.generate import generate_code
from repro.codegen.simplify import simplify_program
from repro.interp.executor import execute
from repro.ir.ast import Guard, Loop, Node, Program, Statement
from repro.ir.expr import ArrayRef
from repro.obs import counter, event, span
from repro.tune.space import Candidate
from repro.util.errors import ReproError

__all__ = [
    "CostReport", "score_candidate", "model_params_for", "realize",
    "footprint_lines",
]


def realize(candidate: Candidate, *, require_legal: bool = True) -> Program:
    """Generate + simplify the candidate's transformed program.

    Simplification (§5.5 standard optimizations) is not cosmetic here:
    codegen emits residual guards that are often implied by the
    enclosing loop bounds, and an un-pruned guard blocks the vectorizer.
    Scoring or measuring the raw codegen output would systematically
    penalize *every* transformed schedule against the guard-free
    original program.  ``generate_code`` re-asserts Theorem-2 legality,
    so this never executes an unchecked schedule —
    ``require_legal=False`` is reserved for candidates the fractal
    symbolic oracle has certified instead (docs/SYMBOLIC.md).
    """
    ctx = candidate.context
    generated = generate_code(
        ctx.program, candidate.matrix, ctx.deps, require_legal=require_legal
    )
    return simplify_program(generated.program)

#: Default per-parameter size for the model execution; large enough for
#: the reuse profile to separate loop orders, small enough to score
#: dozens of candidates per second.  Calibrated together with
#: CAPACITY_LINES: the model working set must *exceed* the model cache,
#: or every loop order ties at a perfect hit rate.
MODEL_PARAM = 16

#: Ideal-LRU capacity (in cache lines) the locality score is taken at —
#: deliberately a fraction of the MODEL_PARAM working set so reuse
#: order, not footprint, decides the score.
CAPACITY_LINES = 16

#: Model-size ceiling for strip-mined candidates: MODEL_PARAM would make
#: every tile loop a singleton (a 16-wide tile covers all of N=16), so
#: tiled contexts are modelled at two tiles' worth of iterations, capped
#: to keep the trace volume scorable (a tiled model trace at 32 is
#: already ~8x the untiled one).
TILED_MODEL_CAP = 32

#: Score weights: locality leads; vectorization, DOALL and the
#: real-size footprint term break ties.
W_LOCALITY = 1.0
W_VECTORIZED = 0.15
W_DOALL = 0.05
W_FOOTPRINT = 0.2

#: Cache capacity (64-byte lines) the footprint term scores against —
#: roughly an L1d of doubles.  A window footprint far above this means
#: the inner loops cycle data out of cache between reuses.
FOOTPRINT_CAP_LINES = 512

#: Doubles per cache line for the footprint estimate.
LINE_DOUBLES = 8

#: Real-size default when the caller binds no parameter value.
FOOTPRINT_PARAM_DEFAULT = 96


@dataclass(frozen=True)
class CostReport:
    """Features and combined score of one legal candidate."""

    score: float
    locality: float
    vectorized_loops: int
    fallback_loops: int
    doall_loops: int
    total_loops: int
    instances: int
    footprint_lines: float = -1.0  # -1 when the estimate was unavailable

    def features(self) -> dict:
        return {
            "score": self.score,
            "locality": self.locality,
            "vectorized_loops": self.vectorized_loops,
            "fallback_loops": self.fallback_loops,
            "doall_loops": self.doall_loops,
            "total_loops": self.total_loops,
            "instances": self.instances,
            "footprint_lines": self.footprint_lines,
        }


def footprint_lines(
    program: Program, params: Mapping[str, int]
) -> float | None:
    """Estimated working set, in cache lines, of the innermost two loop
    levels of the busiest nest, at the given (real) parameter sizes.

    For each innermost loop, the estimate takes the window of the
    deepest two loop levels and counts the distinct elements each array
    reference touches while the window runs (product of the window
    loops' trip counts the reference's subscripts depend on), with outer
    loop variables frozen at their midpoints.  References whose last
    subscript varies with the window scan lines contiguously and are
    charged ``elements / LINE_DOUBLES``; others are charged a full line
    per element.  The program-level figure is the worst window — the
    nest that evicts its own reuse first.  Returns ``None`` when some
    bound cannot be evaluated numerically.
    """

    def trip_count(loop: Loop, env: dict[str, int]) -> int:
        lo = loop.lower.eval(env)
        hi = loop.upper.eval(env)
        if loop.step > 0:
            return max(0, (hi - lo) // loop.step + 1)
        return max(0, (lo - hi) // -loop.step + 1)

    def window_lines(chain: list[tuple[Loop, int]], body: tuple[Node, ...]) -> float:
        window = chain[-2:]
        wvars = {loop.var for loop, _ in window}
        refs: dict[tuple, tuple[ArrayRef, int]] = {}
        elements = {loop.var: count for loop, count in window}

        def collect(nodes) -> None:
            for node in nodes:
                if isinstance(node, Statement):
                    seen = list(node.reads())
                    if isinstance(node.lhs, ArrayRef):
                        seen.append(node.lhs)
                    for r in seen:
                        key = (r.array, tuple(str(s) for s in r.subscripts))
                        if key in refs:
                            continue
                        n = 1
                        deps = frozenset()
                        for s in r.subscripts:
                            deps |= s.variables()
                        for v in wvars & deps:
                            n *= elements[v]
                        refs[key] = (r, n)
                elif isinstance(node, Guard):
                    collect(node.body)

        collect(body)
        total = 0.0
        for r, n in refs.values():
            last_vars = r.subscripts[-1].variables() if r.subscripts else frozenset()
            if last_vars & wvars:
                total += n / LINE_DOUBLES
            else:
                total += float(n)
        return total

    worst = 0.0

    def walk(nodes, env: dict[str, int], chain: list[tuple[Loop, int]]) -> None:
        nonlocal worst
        for node in nodes:
            if isinstance(node, Loop):
                count = trip_count(node, env)
                inner = dict(env)
                lo = node.lower.eval(env)
                hi = node.upper.eval(env)
                inner[node.var] = (lo + hi) // 2
                sub_loops = any(isinstance(c, Loop) for c in node.body) or any(
                    isinstance(c, Guard) and any(isinstance(g, Loop) for g in c.body)
                    for c in node.body
                )
                if not sub_loops and count > 0:
                    worst = max(
                        worst, window_lines(chain + [(node, count)], node.body)
                    )
                walk(node.body, inner, chain + [(node, count)])
            elif isinstance(node, Guard):
                walk(node.body, env, chain)

    try:
        walk(program.body, dict(params), [])
    except (ReproError, KeyError, ZeroDivisionError, OverflowError):
        return None
    return worst


def model_params_for(
    program_params: tuple[str, ...] | list[str],
    params: Mapping[str, int] | None = None,
    *,
    cap: int = MODEL_PARAM,
) -> dict[str, int]:
    """Model-execution sizes: the user's binding clamped to ``cap`` (the
    cost model only needs the reuse *shape*, not the real volume)."""
    params = dict(params or {})
    return {p: min(int(params.get(p, cap)), cap) for p in program_params}


def score_candidate(
    candidate: Candidate,
    params: Mapping[str, int] | None = None,
    *,
    capacity_lines: int = CAPACITY_LINES,
    realized: Program | None = None,
    require_legal: bool = True,
) -> CostReport:
    """Score a legality-checked candidate.  Raises :class:`ReproError`
    (never returns a junk score) when code generation or the model
    execution fails — the driver treats that as "candidate infeasible".

    ``realized`` lets the caller pass an already realized program so
    codegen is not repeated between scoring and measurement.
    ``require_legal=False`` is for symbolically-certified candidates
    (``tune --symbolic``) whose matrices fail the Theorem-2 gate.
    """
    ctx = candidate.context
    with span("tune.score", candidate=candidate.description):
        program = (realized if realized is not None
                   else realize(candidate, require_legal=require_legal))
        cap = MODEL_PARAM
        if ctx.tile is not None:
            cap = min(2 * ctx.tile[1], TILED_MODEL_CAP)
        mparams = model_params_for(ctx.program.params, params, cap=cap)
        store, trace = execute(program, mparams, trace=True)
        dists = reuse_distances(trace, store)
        locality = locality_score(dists, capacity_lines)

        real_params = {
            p: int((params or {}).get(p, FOOTPRINT_PARAM_DEFAULT))
            for p in ctx.program.params
        }
        footprint = footprint_lines(program, real_params)
        if footprint is None:
            fterm = 0.0
        else:
            fterm = FOOTPRINT_CAP_LINES / (FOOTPRINT_CAP_LINES + footprint)

        marks = parallel_loops(ctx.layout, candidate.matrix, ctx.deps)
        total = max(1, len(marks))
        doall = sum(1 for m in marks if m.is_parallel)
        try:
            lowered = lower_program(program, vectorize=True)
            vectorized, fallback = lowered.vectorized_loops, lowered.fallback_loops
        except ReproError:
            # unlowerable programs still get a locality score; they will
            # lose the vectorization term and (rightly) rank lower
            counter("tune.score.lowering_failures")
            vectorized, fallback = 0, 0

        score = (
            W_LOCALITY * locality
            + W_VECTORIZED * (vectorized / total)
            + W_DOALL * (doall / total)
            + W_FOOTPRINT * fterm
        )
    counter("tune.candidates.scored")
    event(
        "tune", "accept",
        "legal candidate statically scored by the cost model",
        candidate=candidate.description,
        score=f"{score:.6f}",
        locality=f"{locality:.4f}",
        vectorized_loops=vectorized,
        doall_loops=doall,
        footprint_lines=-1.0 if footprint is None else round(footprint, 1),
    )
    return CostReport(
        score=score,
        locality=locality,
        vectorized_loops=vectorized,
        fallback_loops=fallback,
        doall_loops=doall,
        total_loops=len(marks),
        instances=len(trace),
        footprint_lines=-1.0 if footprint is None else footprint,
    )
