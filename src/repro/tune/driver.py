"""The autotuning driver: beam search, measurement, cache round-trip.

The pipeline per ``tune()`` call::

    cache lookup ── hit ──────────────────────────────► TuneResult
         │ miss
         ▼
    enumerate (space.py) ─► legality filter (Theorem 2) ─► static score
         │                        │ illegal: pruned,          (cost.py)
         │                        ▼ never executed
         │                     discarded
         ▼
    beam extension × depth ─► top-K survivors ─► measure (median wall
         │                                       clock, backend/runtime)
         │                                       + reference cross-check
         ▼
    winner ─► persist (store.py) ─► TuneResult

Two invariants the tests pin:

* **nothing illegal ever executes** — every candidate is
  legality-checked *before* the cost model interprets it and before the
  measured backend runs it; ``TuneResult.executed`` is the audit trail
  (program text + matrix of everything that ran) so the property tests
  can re-verify each entry independently.  With ``symbolic=True`` the
  gate widens: a Theorem-2 rejection may instead carry a fractal-oracle
  certificate (``legality="symbolic"``, docs/SYMBOLIC.md) — certified,
  not unchecked;
* **the tuned schedule is never slower than the default order** — the
  default order is itself measured as a candidate, so the winner is at
  worst the program the user already had.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.backend.runtime import MIN_TIMING_REPS, run as backend_run, time_backend
from repro.codegen.generate import generate_code
from repro.codegen.simplify import simplify_program
from repro.dependence.analyze import analyze_dependences
from repro.interp.equivalence import outputs_close
from repro.interp.executor import ArrayStore, execute
from repro.ir.ast import Program
from repro.ir.parser import parse_program
from repro.ir.printer import program_to_str
from repro.legality.check import check_legality
from repro.linalg.intmat import IntMatrix
from repro.obs import counter, event, histogram, span, timed
from repro.tune.cost import CostReport, realize, score_candidate
from repro.tune.ranking import rank_report
from repro.tune.space import (
    Candidate, cap_candidates, compose_candidate, elementary_candidates,
    enumerate_candidates, resolve_max_candidates,
)
from repro.tune.store import TuneStore
from repro.util.errors import ReproError, TuneError
from repro.util.parallel_exec import map_in_threads, resolve_jobs

__all__ = [
    "TunedRow", "TuneResult", "tune", "apply_entry", "load_tuned",
    "DEFAULT_BACKEND",
]

#: Measured ranking happens on the fastest backend by default; the
#: winner is whatever wins *there*, wall-clock, not in the model.
DEFAULT_BACKEND = "source-vec"

#: Default real-size binding when the caller provides none.  Large
#: enough that loop-order effects clear measurement noise on the
#: lowered backends (at ~40 the bundled kernels' variants are within
#: jitter of each other).
DEFAULT_PARAM = 96

#: Interleaved measurement rounds per schedule (see the measurement
#: stage in :func:`tune`); each round contributes one median-of-
#: ``repeat`` sample per schedule.
MEASURE_ROUNDS = 3

#: A schedule whose first-round sample exceeds the round's fastest by
#: this factor is excluded from later rounds (its single sample stands):
#: at real sizes a bad order can cost 30x the good one, and re-timing it
#: twice more would dominate tune wall-clock without changing its rank.
SLOW_DROP_FACTOR = 8.0

#: Measured-seconds band treated as a tie: within it the winner is the
#: candidate the static model ranks highest, not the one that happened
#: to sample fastest.  Keeps the reported winner stable across runs on
#: schedules the machine cannot distinguish.
TIE_BAND = 1.03

#: Extra beam/measurement slots reserved for the best *blocked* (tiled
#: two-row) candidates when tiling is enabled.  The locality model runs
#: at model sizes where every working set fits cache, so blocked
#: schedules — whose payoff only exists at real sizes — would otherwise
#: never survive static ranking to be measured at all.
BLOCKED_SLOTS = 2

#: Extra beam/measurement slots reserved for the best *wavefront* (skew
#: that exposes a DOALL loop) candidates when tuning for the
#: ``source-par`` backend.  The static cost model knows nothing about
#: parallel execution, so skew-then-parallelize schedules — whose whole
#: payoff is the worker pool and the flat-slice fronts — would otherwise
#: never survive ranking to be measured.
WAVEFRONT_SLOTS = 2

#: Extra beam/measurement slots reserved for the best *rescued*
#: (Theorem-2-illegal, symbolically certified) candidates when
#: ``tune --symbolic`` is on.  Rescued schedules are typically
#: reassociated reductions whose static score ties the legal orders, so
#: without a reserved slot they would rarely survive ranking and the
#: rescue would never be measured (or cross-checked).
SYMBOLIC_SLOTS = 1

#: Parameter cap for the reference cross-check in ``cross_check="model"``
#: mode (full-size interpretation is infeasible past N≈128: the
#: reference interpreter visits every statement instance).
CROSS_CHECK_CAP = 64


@dataclass
class TunedRow:
    """One measured (or cache-reloaded) schedule."""

    description: str
    kind: str
    steps: tuple[str, ...]
    score: float | None
    seconds: float | None
    ok: bool | None          # outputs match the reference interpreter
    error: str = ""
    baseline: bool = False   # the untransformed default order
    legality: str = "theorem-2"   # "theorem-2" | "symbolic" (rescued)
    candidate: Candidate | None = field(default=None, repr=False, compare=False)

    @property
    def failed(self) -> bool:
        return bool(self.error) or self.ok is False

    def to_json(self, *, winner: bool = False) -> dict:
        return {
            "description": self.description,
            "kind": self.kind,
            "steps": list(self.steps),
            "score": self.score,
            "seconds": self.seconds,
            "ok": self.ok,
            "error": self.error,
            "baseline": self.baseline,
            "legality": self.legality,
            "winner": winner,
        }


@dataclass
class TuneResult:
    """Outcome of one ``tune()`` call (searched or cache-served)."""

    program: Program
    params: dict[str, int]
    backend: str
    rows: list[TunedRow]
    best: TunedRow | None
    baseline_seconds: float | None
    from_cache: bool
    cache_key: str
    cache_path: str | None = None
    enumerated: int = 0
    pruned: int = 0
    scored: int = 0
    executed: list[dict] = field(default_factory=list)
    entry: dict | None = None

    @property
    def speedup(self) -> float | None:
        """Measured default-order seconds over winner seconds."""
        if self.best is None or not self.best.seconds or not self.baseline_seconds:
            return None
        return self.baseline_seconds / self.best.seconds

    @property
    def ok(self) -> bool:
        """No error rows, no cross-check failures, and a winner exists."""
        return self.best is not None and not any(r.failed for r in self.rows)


def _assess(cand: Candidate, params: Mapping[str, int], audit: list[dict],
            symbolic: bool = False):
    """Legality-gate then statically score one candidate.

    Returns ``("scored", cand, cost)``, ``("rescued", cand, cost)`` for
    a Theorem-2-illegal candidate the fractal symbolic oracle certified
    (``symbolic=True`` only), ``("pruned", ...)`` for illegal candidates
    (never executed), or ``("infeasible", ...)`` when codegen or the
    model execution fails.
    """
    report = check_legality(cand.context.layout, cand.matrix, cand.context.deps)
    rescued = False
    if not report.legal and symbolic:
        rescued = _symbolic_rescue(cand)
    if not report.legal and not rescued:
        counter("tune.candidates.pruned")
        bad = report.violations
        event(
            "tune", "reject",
            "pruned by the Theorem-2 legality test; never executed",
            candidate=cand.description,
            pruned_by=("; ".join(str(d) for d in bad) or "block structure"),
        )
        return ("pruned", cand, None)
    try:
        audit.append(_audit_record(cand, "score"))
        cost = score_candidate(cand, params, require_legal=not rescued)
    except ReproError as exc:
        counter("tune.candidates.infeasible")
        event(
            "tune", "reject",
            "codegen or model execution failed; candidate infeasible",
            candidate=cand.description, detail=str(exc),
        )
        return ("infeasible", cand, None)
    return ("rescued" if rescued else "scored", cand, cost)


def _symbolic_rescue(cand: Candidate) -> bool:
    """Appeal a Theorem-2 rejection to the fractal symbolic oracle
    (``tune --symbolic``).  True only when the oracle *certifies* the
    candidate's generated code equivalent to its context program; every
    rescued candidate is additionally cross-checked against the
    reference interpreter at measurement time, so a wrong certificate
    still fails loudly before the winner persists."""
    from repro.symbolic import prove_equivalent
    from repro.util.errors import SymbolicError

    ctx = cand.context
    try:
        transformed = realize(cand, require_legal=False)
        outcome = prove_equivalent(
            ctx.program, transformed, spec=cand.description
        )
    except (SymbolicError, ReproError):
        return False
    if not outcome.legal:
        return False
    counter("tune.candidates.rescued")
    event(
        "tune", "accept",
        "Theorem-2-illegal but certified by the fractal symbolic oracle",
        candidate=cand.description,
        certificate=outcome.certificate.summary(),
    )
    return True


def _audit_record(cand: Candidate, stage: str) -> dict:
    return {
        "stage": stage,
        "description": cand.description,
        "program": program_to_str(cand.context.program),
        "matrix": [list(r) for r in cand.matrix.rows()],
        "steps": list(cand.context.origin + cand.steps),
    }


def _rank_key(item: tuple[Candidate, CostReport]):
    cand, cost = item
    return (-cost.score, cand.description)


def _is_blocked(cand: Candidate) -> bool:
    return cand.context.is_tiled and "blocked" in cand.kind


def _is_wavefront(cand: Candidate) -> bool:
    return "wavefront" in cand.kind


def _stratified(
    ranked: list[tuple[Candidate, CostReport]],
    width: int,
    blocked_slots: int,
    wavefront_slots: int = 0,
    symbolic_slots: int = 0,
    rescued_keys: frozenset | set = frozenset(),
) -> list[tuple[Candidate, CostReport]]:
    """The top ``width`` candidates, plus up to ``blocked_slots`` of the
    best blocked candidates when none made the cut on score alone, plus
    up to ``wavefront_slots`` of the best wavefront candidates likewise
    (both strata are cost-model blind spots: cache payoff and parallel
    payoff respectively), plus up to ``symbolic_slots`` of the best
    symbolically rescued candidates (whose payoff — a legal-looking
    schedule Theorem 2 cannot admit — the score cannot express at
    all)."""
    head = ranked[:width]
    if blocked_slots and not any(_is_blocked(c) for c, _ in head):
        head = head + [
            item for item in ranked[width:] if _is_blocked(item[0])
        ][:blocked_slots]
    if wavefront_slots and not any(_is_wavefront(c) for c, _ in head):
        taken = {id(item[0]) for item in head}
        head = head + [
            item for item in ranked
            if _is_wavefront(item[0]) and id(item[0]) not in taken
        ][:wavefront_slots]
    if symbolic_slots and not any(
        c.canonical_key() in rescued_keys for c, _ in head
    ):
        taken = {id(item[0]) for item in head}
        head = head + [
            item for item in ranked
            if item[0].canonical_key() in rescued_keys
            and id(item[0]) not in taken
        ][:symbolic_slots]
    return head


@timed("tune.tune", attr_fn=lambda program, *a, **kw: {"program": program.name})
def tune(
    program: Program,
    params: Mapping[str, int] | None = None,
    *,
    backend: str = DEFAULT_BACKEND,
    beam_width: int = 4,
    depth: int = 2,
    top_k: int = 3,
    repeat: int = MIN_TIMING_REPS,
    jobs: int | None = None,
    store: TuneStore | None = None,
    use_cache: bool = True,
    force: bool = False,
    include_structural: bool = True,
    tile_sizes: Sequence[int] | None = None,
    max_candidates: int | None = None,
    cross_check: str = "full",
    symbolic: bool = False,
) -> TuneResult:
    """Find the fastest legal schedule of ``program`` at ``params``.

    Beam search over the :mod:`repro.tune.space` candidates: level 1 is
    the full enumeration, deeper levels compose beam survivors with one
    more elementary transformation.  Candidates are pruned by the
    Theorem-2 legality test *before* any execution, ranked statically by
    the :mod:`repro.tune.cost` model, and the ``top_k`` survivors (plus
    the default order) are measured on ``backend`` with the shared
    median-of-``repeat`` timer and cross-checked against the reference
    interpreter.  Results persist in ``store`` (default:
    ``.repro_tune/``); a warm call with the same (program, params,
    version) key returns without searching.

    ``jobs`` fans the legality+scoring stage out over threads (``0`` =
    one per CPU); ranking stays deterministic.  ``force`` re-searches
    even on a cache hit (and overwrites the entry); ``use_cache=False``
    skips the store entirely.

    ``tile_sizes`` enables strip-mined variants (``--tile`` passes the
    default ladder); when set, the beam and the measured set reserve
    :data:`BLOCKED_SLOTS` for the best blocked candidates (see
    :func:`_stratified`).  ``max_candidates`` caps every enumeration
    level (default: ``REPRO_TUNE_MAX`` or 96), emitting a
    ``tune/truncated`` event when the cap bites.  ``cross_check`` is
    ``"full"`` (reference interpreter at the real sizes) or ``"model"``
    (reference at sizes capped to :data:`CROSS_CHECK_CAP` — required
    past N≈128, where full interpretation is infeasible; timing still
    happens at the real sizes).

    ``symbolic`` widens the search space: candidates the Theorem-2 test
    rejects are appealed to the fractal symbolic oracle
    (docs/SYMBOLIC.md), and certified ones — reassociated reductions,
    typically — re-enter the beam marked ``legality="symbolic"``.
    Nothing *uncertified* ever executes, and every rescued candidate is
    still cross-checked against the reference interpreter before it can
    win.
    """
    if cross_check not in ("full", "model"):
        raise TuneError(f"cross_check must be 'full' or 'model', got {cross_check!r}")
    params = dict(params) if params else {p: DEFAULT_PARAM for p in program.params}
    params = {k: int(v) for k, v in params.items()}
    key = TuneStore.key_for(program, params)
    store = store if store is not None else TuneStore()

    if use_cache and not force:
        entry = store.get(key)
        if entry is not None:
            counter("tune.cache.hit")
            return _result_from_entry(program, params, key, store, entry)
    counter("tune.cache.miss")

    audit: list[dict] = []
    cap = resolve_max_candidates(max_candidates)
    blocked_slots = BLOCKED_SLOTS if tile_sizes else 0
    wavefront_slots = WAVEFRONT_SLOTS if backend == "source-par" else 0
    symbolic_slots = SYMBOLIC_SLOTS if symbolic else 0
    with span("tune.search", program=program.name, backend=backend):
        candidates = enumerate_candidates(
            program,
            include_structural=include_structural,
            tile_sizes=tile_sizes,
            max_candidates=max_candidates,
            wavefront=bool(wavefront_slots),
        )
        enumerated = len(candidates)
        counter("tune.candidates.enumerated", enumerated)
        root_identity = candidates[0]  # identity of the original context

        outcomes = map_in_threads(
            lambda c: _assess(c, params, audit, symbolic), candidates,
            jobs=resolve_jobs(jobs)
        )
        pruned = sum(1 for s, *_ in outcomes if s == "pruned")
        pool: dict[tuple, tuple[Candidate, CostReport]] = {}
        rescued_keys: set[tuple] = set()
        for status, cand, cost in outcomes:
            if status in ("scored", "rescued"):
                pool[cand.canonical_key()] = (cand, cost)
                if status == "rescued":
                    rescued_keys.add(cand.canonical_key())

        beam = _stratified(
            sorted(pool.values(), key=_rank_key), beam_width, blocked_slots,
            wavefront_slots, symbolic_slots, rescued_keys,
        )
        elem_cache: dict[int, list[Candidate]] = {}
        for _level in range(1, max(1, depth)):
            extensions: list[Candidate] = []
            for cand, _cost in beam:
                ctx_id = id(cand.context)
                if ctx_id not in elem_cache:
                    elems = elementary_candidates(cand.context)
                    if cand.context.is_tiled:
                        # blocking is strip-mine + interchange; skews and
                        # reversals of a strip-mined nest only multiply
                        # the (already larger) space without moving the
                        # tile loop, so tiled contexts extend by loop
                        # interchange and statement reorder alone
                        elems = [
                            s for s in elems if s.kind in ("permute", "reorder")
                        ]
                    elem_cache[ctx_id] = elems
                for step in elem_cache[ctx_id]:
                    ext = compose_candidate(cand, step)
                    if ext.canonical_key() not in pool:
                        extensions.append(ext)
            # dedupe among the new extensions themselves
            fresh: dict[tuple, Candidate] = {}
            for ext in extensions:
                fresh.setdefault(ext.canonical_key(), ext)
            level_cands = cap_candidates(
                list(fresh.values()), cap, f"beam-level-{_level}"
            )
            outcomes = map_in_threads(
                lambda c: _assess(c, params, audit, symbolic),
                level_cands,
                jobs=resolve_jobs(jobs),
            )
            enumerated += len(level_cands)
            counter("tune.candidates.enumerated", len(level_cands))
            pruned += sum(1 for s, *_ in outcomes if s == "pruned")
            for status, cand, cost in outcomes:
                if status in ("scored", "rescued"):
                    pool[cand.canonical_key()] = (cand, cost)
                    if status == "rescued":
                        rescued_keys.add(cand.canonical_key())
            beam = _stratified(
                sorted(pool.values(), key=_rank_key), beam_width, blocked_slots,
                wavefront_slots, symbolic_slots, rescued_keys,
            )

        ranked = sorted(pool.values(), key=_rank_key)
        survivors = _stratified(ranked, max(1, top_k), blocked_slots,
                                wavefront_slots, symbolic_slots, rescued_keys)
        cut = {c.canonical_key() for c, _ in survivors}
        for rank, (cand, cost) in enumerate(ranked, 1):
            selected = cand.canonical_key() in cut
            event(
                "tune", "accept" if selected else "info",
                "survived beam search; selected for measurement"
                if selected
                else "scored but below the measurement cut",
                candidate=cand.description,
                score=f"{cost.score:.6f}",
                cost_rank=rank,
            )

    # -- measurement -------------------------------------------------------
    # Interleaved rounds: each round times every schedule once (rotating
    # the visit order), and a schedule's ranking time is the median of
    # its per-round medians.  Back-to-back sequential timing would let a
    # slow drift in machine load (thermal throttle, a neighbour process)
    # masquerade as a schedule difference; rotation cancels both drift
    # and position bias.
    identity_key = root_identity.canonical_key()
    identity_cost = pool.get(identity_key)
    sched: list[tuple[TunedRow, Program]] = []
    rows: list[TunedRow] = []
    with span("tune.measure", program=program.name, n=len(survivors) + 1):
        base = ArrayStore(program, params).snapshot()
        for arr in base.values():
            arr.setflags(write=False)
        if cross_check == "model":
            check_params = {k: min(v, CROSS_CHECK_CAP) for k, v in params.items()}
        else:
            check_params = params
        if check_params == params:
            check_base = base
        else:
            check_base = ArrayStore(program, check_params).snapshot()
            for arr in check_base.values():
                arr.setflags(write=False)
        ref_out = execute(program, check_params, arrays=check_base)[0].snapshot()

        audit.append(_audit_record(root_identity, "measure"))
        baseline_row = TunedRow(
            "default order", "identity", (),
            identity_cost[1].score if identity_cost else None,
            None, None, baseline=True, candidate=root_identity,
        )
        rows.append(baseline_row)
        sched.append((baseline_row, program))

        for cand, cost in survivors:
            if cand.canonical_key() == identity_key:
                continue  # already measured as the baseline
            is_rescued = cand.canonical_key() in rescued_keys
            row = TunedRow(
                cand.description, cand.kind, cand.context.origin + cand.steps,
                cost.score, None, None, candidate=cand,
                legality="symbolic" if is_rescued else "theorem-2",
            )
            rows.append(row)
            try:
                tuned_prog = realize(cand, require_legal=not is_rescued)
            except ReproError as exc:
                counter("tune.measure_errors")
                row.error = str(exc)
                continue
            audit.append(_audit_record(cand, "measure"))
            sched.append((row, tuned_prog))

        samples: dict[int, list[float]] = {id(r): [] for r, _ in sched}
        broken: set[int] = set()
        slow: set[int] = set()
        for rnd in range(MEASURE_ROUNDS):
            shift = rnd % len(sched)
            for row, prog_ in sched[shift:] + sched[:shift]:
                if id(row) in broken or id(row) in slow:
                    continue
                try:
                    with span("tune.measure.candidate", candidate=row.description):
                        secs = time_backend(
                            prog_, params, arrays=base,
                            backend=backend, repeat=repeat,
                        )
                    samples[id(row)].append(secs)
                    histogram("tune.measure_ns", secs * 1e9)
                except ReproError as exc:
                    counter("tune.measure_errors")
                    row.error = str(exc)
                    broken.add(id(row))
            if rnd == 0:
                # drop far-off-the-pace schedules from later rounds: one
                # sample already ranks them, and re-timing a 30x-slower
                # order twice more would dominate tune wall-clock
                timed_rows = [id(r) for r, _ in sched if samples[id(r)]]
                if timed_rows:
                    fastest = min(samples[i][0] for i in timed_rows)
                    for row, _prog in sched:
                        got = samples[id(row)]
                        if got and got[0] > SLOW_DROP_FACTOR * fastest:
                            slow.add(id(row))
                            counter("tune.measure.slow_dropped")
                            event(
                                "tune", "info",
                                "excluded from later timing rounds "
                                f"(>{SLOW_DROP_FACTOR:g}x the round's fastest); "
                                "its first-round sample stands",
                                candidate=row.description,
                                seconds=f"{got[0]:.6g}",
                            )

        for row, prog_ in sched:
            if id(row) in broken:
                continue
            got = samples[id(row)]
            row.seconds = statistics.median(got)
            if len(got) > 1:
                histogram("tune.measure_spread_ns", (max(got) - min(got)) * 1e9)
            event(
                "tune", "measure",
                f"median of {len(got)} interleaved rounds on {backend}",
                candidate=row.description,
                seconds=f"{row.seconds:.6g}",
                baseline=str(row.baseline).lower(),
            )
            try:
                out = backend_run(
                    prog_, check_params, arrays=check_base, backend=backend
                ).snapshot()
                row.ok = outputs_close(ref_out, out)
            except ReproError as exc:
                counter("tune.measure_errors")
                row.error = str(exc)
                continue
            if not row.ok:
                counter("tune.cross_check_failures")
            counter("tune.candidates.measured")

    baseline_seconds = baseline_row.seconds
    measurable = [r for r in rows if r.seconds is not None and r.ok]
    best = _pick_winner(measurable, baseline_seconds)

    result = TuneResult(
        program=program,
        params=params,
        backend=backend,
        rows=rows,
        best=best,
        baseline_seconds=baseline_seconds,
        from_cache=False,
        cache_key=key,
        enumerated=enumerated,
        pruned=pruned,
        scored=len(pool),
        executed=audit,
    )

    ranking = rank_report(rows)
    if ranking.candidates:
        event(
            "tune", "info",
            "cost-rank vs measured-rank agreement over the measured candidates",
            tau="n/a" if ranking.tau is None else f"{ranking.tau:+.3f}",
            measured=len(ranking.candidates),
        )

    if use_cache and best is not None:
        entry = _entry_from_result(result)
        path = store.put(key, entry)
        result.cache_path = str(path)
        result.entry = entry
    return result


def _pick_winner(
    measurable: list[TunedRow], baseline_seconds: float | None
) -> TunedRow | None:
    """The fastest measured row, with two refinements that keep the
    driver's invariants and its reported winner stable:

    * a row is only eligible when it is **no slower than the measured
      default order** — the winner is at worst the program the user
      already had;
    * rows within :data:`TIE_BAND` of the fastest are a statistical tie,
      resolved by the static cost score (then by seconds, then by
      description for determinism) rather than by which one happened to
      sample fastest this run.
    """
    if not measurable:
        return None
    eligible = [
        r for r in measurable
        if baseline_seconds is None or r.seconds <= baseline_seconds
    ]
    if not eligible:  # baseline itself failed cross-check / timing
        eligible = measurable
    fastest = min(r.seconds for r in eligible)
    band = [r for r in eligible if r.seconds <= fastest * TIE_BAND]
    return max(
        band,
        key=lambda r: (
            r.score if r.score is not None else float("-inf"),
            -r.seconds,
            r.description,
        ),
    )


# -- persistence glue -------------------------------------------------------


def _entry_from_result(result: TuneResult) -> dict:
    from repro import __version__

    best = result.best
    assert best is not None and best.candidate is not None
    winner_ctx = best.candidate.context
    return {
        "version": __version__,
        "program": result.program.name,
        "program_text": program_to_str(result.program),
        "params": dict(result.params),
        "backend": result.backend,
        "baseline_seconds": result.baseline_seconds,
        "enumerated": result.enumerated,
        "pruned": result.pruned,
        "scored": result.scored,
        "rows": [r.to_json(winner=(r is best)) for r in result.rows],
        "ranking": rank_report(result.rows).to_json(),
        "winner": {
            "description": best.description,
            "steps": list(best.steps),
            "seconds": best.seconds,
            "score": best.score,
            "baseline": best.baseline,
            "legality": best.legality,
            "context_program": program_to_str(winner_ctx.program),
            "matrix": [list(r) for r in best.candidate.matrix.rows()],
        },
        "created": time.time(),
    }


def _result_from_entry(
    program: Program,
    params: dict[str, int],
    key: str,
    store: TuneStore,
    entry: dict,
) -> TuneResult:
    rows: list[TunedRow] = []
    best = None
    for r in entry.get("rows", []):
        row = TunedRow(
            r.get("description", "?"), r.get("kind", ""),
            tuple(r.get("steps", ())), r.get("score"), r.get("seconds"),
            r.get("ok"), r.get("error", ""), bool(r.get("baseline")),
            r.get("legality", "theorem-2"),
        )
        rows.append(row)
        if r.get("winner"):
            best = row
    return TuneResult(
        program=program,
        params=params,
        backend=entry.get("backend", DEFAULT_BACKEND),
        rows=rows,
        best=best,
        baseline_seconds=entry.get("baseline_seconds"),
        from_cache=True,
        cache_key=key,
        cache_path=str(store.path_for(key)),
        enumerated=int(entry.get("enumerated", 0)),
        pruned=int(entry.get("pruned", 0)),
        scored=int(entry.get("scored", 0)),
        entry=entry,
    )


def load_tuned(
    program: Program,
    params: Mapping[str, int],
    store: TuneStore | None = None,
) -> dict | None:
    """The cached entry for (program, params, version), or None."""
    store = store if store is not None else TuneStore()
    entry = store.get(TuneStore.key_for(program, dict(params)))
    if entry is not None:
        counter("tune.cache.hit")
    return entry


def apply_entry(entry: dict):
    """Regenerate the tuned program from a cached entry.

    The entry stores the winner's *source* context (original or
    distributed program text) and transformation matrix; code is
    regenerated deterministically rather than trusting a serialized
    generated AST, so a corrupted or hand-edited entry can only fail
    loudly (parse/legality error), never run wrong code silently.
    """
    winner = entry.get("winner")
    if not winner:
        raise TuneError("cache entry has no winner")
    prog = parse_program(winner["context_program"], entry.get("program", "tuned"))
    matrix = IntMatrix([[int(x) for x in row] for row in winner["matrix"]])
    deps = analyze_dependences(prog)
    if winner.get("legality") == "symbolic":
        # a rescued winner fails the Theorem-2 gate by construction; the
        # fractal oracle must re-certify the regenerated code or this
        # entry is rejected — never trust a serialized "symbolic" label
        from repro.symbolic import prove_equivalent

        generated = generate_code(prog, matrix, deps, require_legal=False)
        tuned = simplify_program(generated.program)
        outcome = prove_equivalent(
            prog, tuned, spec=winner.get("description", "")
        )
        if not outcome.legal:
            raise TuneError(
                "cached symbolic winner failed re-certification: "
                f"{outcome.verdict}: {outcome.reason}"
            )
    else:
        generated = generate_code(prog, matrix, deps)
        tuned = simplify_program(generated.program)
    return tuned.with_body(tuned.body, name=(entry.get("program", "program") + "_tuned"))
