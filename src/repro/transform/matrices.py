"""Matrix constructors for loop transformations (paper §4).

Every transformation of an imperfectly nested loop is a square integer
matrix over the program's instance-vector :class:`~repro.instance.Layout`:

* **permutation** — swap two loop coordinates (§4.1),
* **skewing** — add a multiple of one loop coordinate to another (§4.1),
* **reversal** — negate a loop coordinate (§4.1),
* **scaling** — scale a loop coordinate (§4.1),
* **statement reordering** — permute the children of an AST node, which
  permutes edge coordinates and moves whole subtree blocks (§4.2),
* **statement alignment** — add a multiple of a statement's edge
  coordinate (which is 1 exactly on that statement's instances) to a
  loop coordinate, shifting that statement's iterations (§4.3).

Sequences compose by matrix product, exactly as for perfectly nested
loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.instance.layout import EdgeCoord, Layout, LoopCoord, Path
from repro.ir.ast import Loop, Node, Program, Statement
from repro.linalg.intmat import IntMatrix
from repro.util.errors import TransformError

__all__ = [
    "Transformation",
    "identity",
    "permutation",
    "skew",
    "reversal",
    "scaling",
    "alignment",
    "statement_reorder",
    "compose",
]


@dataclass(frozen=True)
class Transformation:
    """A transformation matrix tied to the source program's layout."""

    layout: Layout
    matrix: IntMatrix
    description: str = ""

    def __post_init__(self):
        n = self.layout.dimension
        if self.matrix.shape != (n, n):
            raise TransformError(
                f"matrix shape {self.matrix.shape} does not match layout dimension {n}"
            )

    def then(self, later: "Transformation") -> "Transformation":
        """Apply ``self`` first, then ``later`` (matrix product
        ``later.matrix @ self.matrix``)."""
        if later.layout.dimension != self.layout.dimension:
            raise TransformError("cannot compose transformations of different dimensions")
        desc = f"{self.description}; {later.description}".strip("; ")
        return Transformation(self.layout, later.matrix @ self.matrix, desc)

    def apply_to_symbolic(self, label: str):
        """Transformed symbolic instance vector of a statement (a tuple
        of LinExprs) — the §4.1 matrix-times-vector products."""
        from repro.instance.vectors import symbolic_vector
        from repro.polyhedra.affine import LinExpr

        vec = symbolic_vector(self.layout, label)
        out = []
        for row in self.matrix.rows():
            acc = LinExpr({}, 0)
            for c, e in zip(row, vec):
                if c:
                    acc = acc + e * c
            out.append(acc)
        return tuple(out)

    def __repr__(self) -> str:
        return f"Transformation({self.description or 'unnamed'}, dim={self.layout.dimension})"


def identity(layout: Layout) -> Transformation:
    return Transformation(layout, IntMatrix.identity(layout.dimension), "identity")


def _loop_index(layout: Layout, loop: str | Path) -> int:
    if isinstance(loop, tuple):
        node = layout.node_at(loop)
        if not isinstance(node, Loop):
            raise TransformError(f"node at {loop} is not a loop")
        return layout.index(LoopCoord(loop, node.var))
    return layout.loop_index_by_var(loop)


def permutation(layout: Layout, a: str | Path, b: str | Path) -> Transformation:
    """Interchange loops ``a`` and ``b`` (named by variable or path)."""
    ia, ib = _loop_index(layout, a), _loop_index(layout, b)
    perm = list(range(layout.dimension))
    perm[ia], perm[ib] = perm[ib], perm[ia]
    return Transformation(layout, IntMatrix.permutation(perm), f"permute({a},{b})")


def skew(layout: Layout, target: str | Path, source: str | Path, factor: int) -> Transformation:
    """Replace loop ``target`` by ``target + factor*source``."""
    it, is_ = _loop_index(layout, target), _loop_index(layout, source)
    if it == is_:
        raise TransformError("cannot skew a loop by itself")
    m = [[int(i == j) for j in range(layout.dimension)] for i in range(layout.dimension)]
    m[it][is_] = factor
    return Transformation(layout, IntMatrix(m), f"skew({target} += {factor}*{source})")


def reversal(layout: Layout, loop: str | Path) -> Transformation:
    """Negate loop ``loop``."""
    i = _loop_index(layout, loop)
    diag = [1] * layout.dimension
    diag[i] = -1
    return Transformation(layout, IntMatrix.diag(diag), f"reverse({loop})")


def scaling(layout: Layout, loop: str | Path, factor: int) -> Transformation:
    """Scale loop ``loop`` by a nonzero integer factor."""
    if factor == 0:
        raise TransformError("scale factor must be nonzero")
    i = _loop_index(layout, loop)
    diag = [1] * layout.dimension
    diag[i] = factor
    return Transformation(layout, IntMatrix.diag(diag), f"scale({loop}, {factor})")


def alignment(layout: Layout, label: str, loop: str | Path, offset: int) -> Transformation:
    """Shift statement ``label``'s iterations of loop ``loop`` by
    ``offset`` (§4.3).

    Realized by adding ``offset`` times the statement's innermost edge
    coordinate (whose entry is 1 exactly for instances of statements in
    that branch) to the loop coordinate.  Raises if the statement has no
    edge coordinate on its path (a perfectly nested statement cannot be
    aligned independently).
    """
    il = _loop_index(layout, loop)
    spath = layout.statement_path(label)
    edge = None
    for c in layout.edge_coords():
        edge_path = c.path + (c.child,)
        if spath[: len(edge_path)] == edge_path:
            if edge is None or len(c.path) > len(edge.path):
                edge = c
    if edge is None:
        raise TransformError(
            f"statement {label} has no edge coordinate; alignment is not expressible"
        )
    loop_coord = layout.coords[il]
    if not isinstance(loop_coord, LoopCoord) or not _is_ancestor(loop_coord.path, spath):
        raise TransformError(f"loop {loop} does not surround statement {label}")
    ie = layout.index(edge)
    m = [[int(i == j) for j in range(layout.dimension)] for i in range(layout.dimension)]
    m[il][ie] += offset
    return Transformation(layout, IntMatrix(m), f"align({label}, {loop}, {offset:+d})")


def _is_ancestor(prefix: Path, path: Path) -> bool:
    return path[: len(prefix)] == prefix


def statement_reorder(
    layout: Layout, parent: Path, new_order: Sequence[int]
) -> tuple[Transformation, Program]:
    """Reorder the children of the node at ``parent`` (``()`` = program
    top level) so that new child ``i`` is old child ``new_order[i]``.

    Returns the (permutation) transformation matrix and the reordered
    program.  Edge coordinates of the node are permuted and each child's
    whole coordinate block moves with it (§4.2 / Figure 5).
    """
    program = layout.program
    old_children = _children_at(program, parent)
    c = len(old_children)
    if sorted(new_order) != list(range(c)):
        raise TransformError(f"{new_order!r} is not a permutation of 0..{c-1}")
    new_children = tuple(old_children[j] for j in new_order)
    new_program = _replace_children(program, parent, new_children)
    new_layout = Layout(new_program, optimize_single_edges=layout.optimize_single_edges)
    if new_layout.dimension != layout.dimension:
        raise TransformError("reordering changed the layout dimension (internal error)")

    # Map each old coordinate to its new path.  Only paths passing
    # through `parent` change: old child j becomes new child
    # position(new_order, j).
    position_of_old = {old: new for new, old in enumerate(new_order)}

    def map_path(path: Path) -> Path:
        if len(path) > len(parent) and path[: len(parent)] == parent:
            j = path[len(parent)]
            return parent + (position_of_old[j],) + path[len(parent) + 1 :]
        return path

    n = layout.dimension
    rows = [[0] * n for _ in range(n)]
    for old_i, coord in layout.iter_coords():
        if isinstance(coord, LoopCoord):
            new_coord = LoopCoord(map_path(coord.path), coord.var)
        else:
            assert isinstance(coord, EdgeCoord)
            if coord.path == parent:
                new_coord = EdgeCoord(parent, position_of_old[coord.child])
            else:
                new_coord = EdgeCoord(map_path(coord.path), coord.child)
        new_i = new_layout.index(new_coord)
        rows[new_i][old_i] = 1
    t = Transformation(layout, IntMatrix(rows), f"reorder({parent}, {tuple(new_order)})")
    return t, new_program


def _children_at(program: Program, parent: Path) -> tuple[Node, ...]:
    if not parent:
        return program.body
    node = program.body[parent[0]]
    for j in parent[1:]:
        if not isinstance(node, Loop):
            raise TransformError(f"path {parent} does not name a loop")
        node = node.body[j]
    if isinstance(node, Statement):
        raise TransformError(f"node at {parent} is a statement, not a loop")
    assert isinstance(node, Loop)
    return node.body


def _replace_children(program: Program, parent: Path, new_children: tuple[Node, ...]) -> Program:
    def rebuild(node: Node, path_rest: Path) -> Node:
        assert isinstance(node, Loop)
        if not path_rest:
            return node.with_body(new_children)
        j = path_rest[0]
        body = list(node.body)
        body[j] = rebuild(body[j], path_rest[1:])
        return node.with_body(tuple(body))

    if not parent:
        return program.with_body(new_children)
    body = list(program.body)
    body[parent[0]] = rebuild(body[parent[0]], parent[1:])
    return program.with_body(tuple(body))


def compose(*transforms: Transformation) -> Transformation:
    """Compose transformations applied left-to-right."""
    if not transforms:
        raise TransformError("compose needs at least one transformation")
    out = transforms[0]
    for t in transforms[1:]:
        out = out.then(t)
    return out
