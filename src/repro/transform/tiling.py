"""Strip-mining (tiling) and offset loop fusion.

Both transformations leave the paper's *linear* fragment and are
therefore modelled, like §4.2 distribution/jamming, as structural
program rewrites with non-square bookkeeping matrices rather than as
square layout transformations:

* **tile** — strip-mines one loop into a ``(tile, point)`` pair::

      do I = lo, hi                do IT = 0, floord(hi - lo, B)
        body            ==>          do I = lo + B*IT, min(hi, lo + B*IT + B - 1)
                                       body

  The rewrite is *exact* affine arithmetic — no new loop steps, no
  parameters — so the expanded iteration space flows unchanged through
  dependence analysis (:func:`repro.dependence.analyze.statement_domain`
  lowers the divided/min bounds to conjunctions of linear constraints),
  Theorem-2 legality, and §5 code generation.  Strip-mining itself is
  always legal: ``I -> (floor((I - lo)/B), I)`` is an order-preserving
  bijection of the iteration space, so every dependence keeps its
  direction.  The *interchange* that turns a strip-mined nest into a
  blocked one is an ordinary square transformation of the new layout
  and goes through the standard projection test.

  The tile coordinate ``IT = floor((I - lo)/B)`` is a floor division —
  outside the linear-transformation fragment — which is exactly why
  tiling is a context rewrite and why :func:`tiling_matrix` is §4-style
  *bookkeeping* (which old coordinate each new coordinate derives from,
  the same role the §4.2 non-square matrices play for distribution),
  not an exact linear map.

* **fuse** — the inverse of distribution, generalized to headers that
  match up to a constant offset δ (per-statement §4.3 alignment folded
  into the rewrite)::

      do I = lo, hi        |  do J = lo + d, hi + d
        A-body             |    B-body(J)
                  ==>  do I = lo, hi
                         A-body
                         B-body(I + d)

  Fusion is legal iff *distributing the fused loop back* is legal
  (:func:`repro.transform.distribution.distribution_legal` on the fused
  program's dependences) — the same inverse argument the tuner already
  uses to admit jamming variants.
"""

from __future__ import annotations

from repro.dependence.analyze import analyze_dependences
from repro.dependence.depvector import DependenceMatrix
from repro.instance.layout import EdgeCoord, Layout, LoopCoord, Path
from repro.ir.ast import BoundSet, Loop, Node, Program
from repro.ir.expr import BinOp, Expr, IntLit, VarRef
from repro.linalg.intmat import IntMatrix
from repro.obs import counter, event
from repro.polyhedra.affine import LinExpr, var
from repro.polyhedra.bounds import Bound
from repro.transform.distribution import (
    _coord_matrix, _loop_at, _remap, _replace_at, distribution_legal,
)
from repro.util.errors import IRError, TransformError

__all__ = [
    "tile", "strip_mine", "fuse", "fuse_site_offset", "fuse_legal",
    "tiling_matrix", "loop_path_by_var", "tile_var_for",
]

#: Tile sizes the tuner enumerates (power-of-two ladder spanning the
#: L1-to-L2 range for double-precision panels; see docs/TILING.md).
TILE_LADDER = (16, 32, 64, 128)


def loop_path_by_var(program: Program, name: str) -> Path:
    """The path of the unique loop named ``name``; raises when the name
    is missing or names several (non-nested) loops."""
    matches: list[Path] = []

    def walk(children, path: Path) -> None:
        for j, child in enumerate(children):
            if isinstance(child, Loop):
                cpath = path + (j,)
                if child.var == name:
                    matches.append(cpath)
                walk(child.body, cpath)

    walk(program.body, ())
    if not matches:
        raise TransformError(f"no loop named {name!r}")
    if len(matches) > 1:
        raise TransformError(
            f"loop name {name!r} is ambiguous ({len(matches)} loops); "
            "tile/fuse need a unique loop variable"
        )
    return matches[0]


def tile_var_for(program: Program, name: str) -> str:
    """A fresh tile-loop variable derived from ``name`` (``IT``,
    ``IT2``, ...) that collides with no loop variable, parameter or
    array name."""
    used = {l.var for l in program.all_loops()}
    used |= set(program.params)
    used |= {a.name for a in program.arrays}
    base = f"{name}T"
    if base not in used:
        return base
    k = 2
    while f"{base}{k}" in used:
        k += 1
    return f"{base}{k}"


def strip_mine(program: Program, path: Path, size: int) -> Program:
    """Strip-mine the loop at ``path`` by ``size``: replace it with a
    ``(tile, point)`` loop pair covering the identical iteration set in
    the identical order.  Requires a unit-step loop with plain affine
    bounds (an already strip-mined loop's ``min``/``floord`` bounds
    cannot be strip-mined again)."""
    if size < 2:
        raise TransformError(f"tile size must be >= 2, got {size}")
    loop = _loop_at(program, path)
    if loop.step != 1:
        raise TransformError(
            f"tiling requires a unit-step loop (loop {loop.var} has step {loop.step})"
        )
    try:
        lo = loop.lower.single_affine()
        hi = loop.upper.single_affine()
    except IRError as exc:
        raise TransformError(
            f"tiling requires plain affine bounds on loop {loop.var}: {exc}"
        ) from exc

    tvar = tile_var_for(program, loop.var)
    start = lo + var(tvar) * size  # first iteration of tile tvar
    point = Loop(
        loop.var,
        BoundSet.affine(start, True),
        BoundSet(
            (Bound(hi, 1, False), Bound(start + LinExpr({}, size - 1), 1, False)),
            False,
        ),
        loop.body,
        1,
    )
    tile_loop = Loop(
        tvar,
        BoundSet.affine(0, True),
        BoundSet((Bound(hi - lo, size, False),), False),
        (point,),
        1,
    )
    out = _replace_at(program, path, [tile_loop])
    counter("transform.tiles")
    return out


#: ``tile`` is strip-mining; the interchange that moves the tile loop
#: outward is a separate (square, Theorem-2-checked) step.
tile = strip_mine


def tiling_matrix(program: Program, path: Path, size: int) -> tuple[IntMatrix, Program]:
    """The §4-style non-square bookkeeping matrix for a strip-mine, plus
    the new program.

    Rows are the new layout's coordinates; both the tile and the point
    loop coordinate derive from the old loop coordinate (the tile row is
    the floor-divided image — pseudo-linear, see the module docstring),
    mirroring how §4.2 distribution matrices replicate the distributed
    loop's coordinate into each copy.
    """
    old_layout = Layout(program)
    new_program = strip_mine(program, path, size)
    new_layout = Layout(new_program)
    loop = _loop_at(program, path)
    tvar = _loop_at(new_program, path).var
    point_path = path + (0,)

    def coord_map(nc):
        p = nc.path
        if p == path:
            # the tile loop itself: its only child is the point loop, so
            # only its LoopCoord exists at this path
            assert isinstance(nc, LoopCoord) and nc.var == tvar
            return LoopCoord(path, loop.var)
        if p == point_path:
            if isinstance(nc, LoopCoord):
                return LoopCoord(path, loop.var)
            return EdgeCoord(path, nc.child)
        if p[: len(point_path)] == point_path:
            return _remap(nc, path + p[len(point_path):])
        return nc

    return _coord_matrix(old_layout, new_layout, coord_map), new_program


# -- fusion ------------------------------------------------------------------


def fuse_site_offset(a: Node, b: Node) -> int | None:
    """The constant alignment offset δ such that loop ``b`` iterates
    ``a``'s range shifted by δ — or ``None`` when the pair is not
    fusable (not both unit-step loops with plain affine bounds whose
    lower *and* upper bounds differ by the same constant)."""
    if not (isinstance(a, Loop) and isinstance(b, Loop)):
        return None
    if a.step != 1 or b.step != 1:
        return None
    try:
        alo, ahi = a.lower.single_affine(), a.upper.single_affine()
        blo, bhi = b.lower.single_affine(), b.upper.single_affine()
    except IRError:
        return None
    dlo = blo - alo
    dhi = bhi - ahi
    if dlo.variables() or dhi.variables():
        return None
    delta = dlo.eval({})
    if dhi.eval({}) != delta:
        return None
    return delta


def _shift_expr(name: str, delta: int) -> Expr:
    if delta == 0:
        return VarRef(name)
    op = "+" if delta > 0 else "-"
    return BinOp(op, VarRef(name), IntLit(abs(delta)))


def fuse(program: Program, path: Path) -> Program:
    """Fuse the loop at ``path`` with its immediately following sibling.

    Generalizes :func:`repro.transform.distribution.jam` to headers that
    match up to a constant offset δ: the second loop's body is rewritten
    with its variable substituted by ``first.var + δ`` (per-statement
    alignment), then appended to the first loop's body.  Purely
    structural — legality is :func:`fuse_legal`.
    """
    parent, idx = path[:-1], path[-1]
    siblings = program.body if not parent else _loop_at(program, parent).body
    if idx + 1 >= len(siblings):
        raise TransformError("no following sibling loop to fuse with")
    a, b = siblings[idx], siblings[idx + 1]
    delta = fuse_site_offset(a, b)
    if delta is None:
        raise TransformError(
            "fuse requires adjacent unit-step loops whose bounds differ "
            "by one constant offset"
        )
    assert isinstance(a, Loop) and isinstance(b, Loop)
    if b.var != a.var:
        for inner in _inner_loops(b.body):
            if inner.var == a.var:
                raise TransformError(
                    f"cannot fuse: inner loop variable {a.var!r} of the second "
                    "loop would shadow the fused loop variable"
                )
    if b.var == a.var and delta == 0:
        moved = b.body
    else:
        mapping = {b.var: _shift_expr(a.var, delta)}
        moved = tuple(child.substituted(mapping) for child in b.body)
    fused = a.with_body(a.body + moved)
    from repro.transform.distribution import _drop_child

    without_b = _drop_child(program, parent, idx + 1)
    out = _replace_at(without_b, parent + (idx,), [fused])
    counter("transform.fusions")
    return out


def _inner_loops(children) -> list[Loop]:
    out: list[Loop] = []
    for c in children:
        if isinstance(c, Loop):
            out.append(c)
            out.extend(_inner_loops(c.body))
    return out


def fuse_legal(
    program: Program,
    path: Path,
    *,
    fused: Program | None = None,
    fused_deps: DependenceMatrix | None = None,
) -> bool:
    """Theorem-2 legality of fusing at ``path``, by the inverse-of-
    distribution argument: the fusion is legal iff distributing the
    fused loop back apart is legal on the *fused* program's dependence
    matrix.  Emits a ``legality`` accept/reject event either way.
    """
    a = _loop_at(program, path)
    split = len(a.body)
    if fused is None:
        fused = fuse(program, path)
    if fused_deps is None:
        fused_deps = analyze_dependences(fused)
    ok = distribution_legal(fused_deps, path, split)
    site = ".".join(map(str, path)) or "root"
    if ok:
        event(
            "legality", "accept",
            "fusion admitted: distributing the fused loop back is legal",
            site=site, loop=a.var, split=split,
        )
    else:
        counter("legality.fusion_rejections")
        event(
            "legality", "reject",
            "fusion would reverse a dependence between the fused bodies: "
            "the inverse distribution's projection onto the outer loops is "
            "not lexicographically positive (Theorem 2)",
            site=site, loop=a.var, split=split,
        )
    return ok
