"""Transformation algebra (system S7, paper §4)."""

from repro.transform.distribution import (
    distribute, distribution_legal, distribution_matrix, jam, jamming_matrix,
)
from repro.transform.matrices import (
    Transformation, alignment, compose, identity, permutation, reversal,
    scaling, skew, statement_reorder,
)
from repro.transform.spec import parse_spec, spec_ops

__all__ = [
    "Transformation", "identity", "permutation", "skew", "reversal",
    "scaling", "alignment", "statement_reorder", "compose",
    "distribute", "jam", "distribution_matrix", "jamming_matrix",
    "distribution_legal", "parse_spec", "spec_ops",
]
