"""Transformation algebra (system S7, paper §4)."""

from repro.transform.distribution import (
    distribute, distribution_legal, distribution_matrix, jam, jamming_matrix,
)
from repro.transform.matrices import (
    Transformation, alignment, compose, identity, permutation, reversal,
    scaling, skew, statement_reorder,
)
from repro.transform.spec import Schedule, parse_schedule, parse_spec, spec_ops
from repro.transform.tiling import (
    TILE_LADDER, fuse, fuse_legal, fuse_site_offset, loop_path_by_var,
    strip_mine, tile, tile_var_for, tiling_matrix,
)

__all__ = [
    "Transformation", "identity", "permutation", "skew", "reversal",
    "scaling", "alignment", "statement_reorder", "compose",
    "distribute", "jam", "distribution_matrix", "jamming_matrix",
    "distribution_legal", "parse_spec", "parse_schedule", "Schedule",
    "spec_ops", "tile", "strip_mine", "fuse", "fuse_legal",
    "fuse_site_offset", "tiling_matrix", "loop_path_by_var",
    "tile_var_for", "TILE_LADDER",
]
