"""Loop distribution and jamming (paper §4.2).

The paper models distribution and jamming with *non-square* matrices
(they replicate or merge coordinate positions) but excludes them from
its code-generation and completion procedures.  We follow suit: this
module provides

* the non-square matrices of §4.2 (for the E5 reproduction),
* direct AST-level ``distribute`` / ``jam`` program transformations,
* a dependence-based legality test: distribution of a loop between two
  statement groups is legal iff no dependence runs *backward* (from the
  later group to the earlier group) under that loop unless it is
  carried by an outer loop — the classic condition, evaluated on the
  instance-vector dependence matrix.
"""

from __future__ import annotations

from typing import Sequence

from repro.dependence.depvector import DependenceMatrix
from repro.instance.layout import EdgeCoord, Layout, LoopCoord, Path
from repro.ir.ast import Loop, Node, Program
from repro.linalg.intmat import IntMatrix
from repro.util.errors import TransformError

__all__ = [
    "distribute",
    "jam",
    "distribution_matrix",
    "jamming_matrix",
    "distribution_legal",
]


def _loop_at(program: Program, path: Path) -> Loop:
    node: Node = program.body[path[0]]
    for j in path[1:]:
        if not isinstance(node, Loop):
            raise TransformError(f"path {path} does not name a loop")
        node = node.body[j]
    if not isinstance(node, Loop):
        raise TransformError(f"node at {path} is not a loop")
    return node


def _replace_at(program: Program, path: Path, replacement: Sequence[Node]) -> Program:
    """Replace the node at ``path`` by one or more sibling nodes."""

    def rebuild(node: Node, rest: Path) -> list[Node]:
        if not rest:
            return list(replacement)
        assert isinstance(node, Loop)
        j = rest[0]
        body: list[Node] = []
        for k, child in enumerate(node.body):
            if k == j:
                body.extend(rebuild(child, rest[1:]))
            else:
                body.append(child)
        return [node.with_body(tuple(body))]

    top: list[Node] = []
    for k, child in enumerate(program.body):
        if k == path[0]:
            top.extend(rebuild(child, path[1:]))
        else:
            top.append(child)
    return program.with_body(tuple(top))


def distribute(program: Program, path: Path, split: int) -> Program:
    """Split the loop at ``path`` into two copies: the first keeps
    children ``[:split]``, the second children ``[split:]``."""
    loop = _loop_at(program, path)
    if not (0 < split < len(loop.body)):
        raise TransformError(f"split point {split} out of range for {len(loop.body)} children")
    first = loop.with_body(loop.body[:split])
    second = loop.with_body(loop.body[split:])
    return _replace_at(program, path, [first, second])


def jam(program: Program, path: Path) -> Program:
    """Fuse the loop at ``path`` with its immediately following sibling.

    Both loops must have the same variable, bounds and step.
    """
    parent = path[:-1]
    idx = path[-1]
    siblings = program.body if not parent else _loop_at(program, parent).body
    if idx + 1 >= len(siblings):
        raise TransformError("no following sibling loop to jam with")
    a, b = siblings[idx], siblings[idx + 1]
    if not (isinstance(a, Loop) and isinstance(b, Loop)):
        raise TransformError("jam requires two adjacent loops")
    if (a.var, a.lower, a.upper, a.step) != (b.var, b.lower, b.upper, b.step):
        raise TransformError("jam requires identical loop headers")
    fused = a.with_body(a.body + b.body)
    without_b = _drop_child(program, parent, idx + 1)
    return _replace_at(without_b, parent + (idx,), [fused])


def _drop_child(program: Program, parent: Path, idx: int) -> Program:
    if not parent:
        body = list(program.body)
        del body[idx]
        return program.with_body(tuple(body))

    def rebuild(node: Node, rest: Path) -> Node:
        assert isinstance(node, Loop)
        if not rest:
            body = list(node.body)
            del body[idx]
            return node.with_body(tuple(body))
        body = list(node.body)
        body[rest[0]] = rebuild(body[rest[0]], rest[1:])
        return node.with_body(tuple(body))

    top = list(program.body)
    top[parent[0]] = rebuild(top[parent[0]], parent[1:])
    return program.with_body(tuple(top))


def _coord_matrix(old: Layout, new: Layout, coord_map) -> IntMatrix:
    """Build the (new.dim x old.dim) 0/1 matrix from a coordinate map:
    ``coord_map(new_coord)`` returns one old coordinate or a list of
    old coordinates whose entries are summed (used for group edges)."""
    rows = [[0] * old.dimension for _ in range(new.dimension)]
    for i, nc in new.iter_coords():
        ocs = coord_map(nc)
        if not isinstance(ocs, list):
            ocs = [ocs]
        for oc in ocs:
            rows[i][old.index(oc)] = 1
    return IntMatrix(rows)


def _remap(coord, old_path: Path):
    if isinstance(coord, LoopCoord):
        return LoopCoord(old_path, coord.var)
    return EdgeCoord(old_path, coord.child)


def distribution_matrix(program: Program, path: Path, split: int) -> tuple[IntMatrix, Program]:
    """The non-square §4.2 matrix for a distribution, plus the new
    program.

    Rows correspond to the new layout's coordinates.  Both copies' loop
    coordinates replicate the old loop coordinate; an edge from the
    parent to a copy is the *sum* of the old loop's edges to the
    children in that copy's group (exactly one of which is 1 for any
    statement inside the group).
    """
    old_layout = Layout(program)
    new_program = distribute(program, path, split)
    new_layout = Layout(new_program)
    loop = _loop_at(program, path)
    nchildren = len(loop.body)
    parent, idx = path[:-1], path[-1]
    copy_paths = (parent + (idx,), parent + (idx + 1,))
    group_range = (range(0, split), range(split, nchildren))

    def coord_map(nc):
        p = nc.path
        for copy_i, cpath in enumerate(copy_paths):
            base = split * copy_i
            if p == cpath:
                if isinstance(nc, LoopCoord):
                    return LoopCoord(path, loop.var)
                return EdgeCoord(path, base + nc.child)
            if p[: len(cpath)] == cpath:
                rest = p[len(cpath):]
                return _remap(nc, path + (base + rest[0],) + rest[1:])
        if isinstance(nc, EdgeCoord) and p == parent:
            if nc.child < idx:
                return nc
            if nc.child in (idx, idx + 1):
                group = group_range[nc.child - idx]
                return [EdgeCoord(path, j) for j in group]
            return EdgeCoord(parent, nc.child - 1)
        if len(p) > len(parent) and p[: len(parent)] == parent and p[len(parent)] > idx + 1:
            return _remap(nc, parent + (p[len(parent)] - 1,) + p[len(parent) + 1 :])
        return nc

    return _coord_matrix(old_layout, new_layout, coord_map), new_program


def jamming_matrix(program: Program, path: Path) -> tuple[IntMatrix, Program]:
    """The non-square §4.2 matrix for jamming the loop at ``path`` with
    its following sibling, plus the new program.

    The fused loop coordinate selects the *second* copy's loop
    coordinate (matching the paper's example); instances from the first
    copy land on a padded entry and rely on augmentation.
    """
    old_layout = Layout(program)
    new_program = jam(program, path)
    new_layout = Layout(new_program)
    a = _loop_at(program, path)
    n_first = len(a.body)
    parent, idx = path[:-1], path[-1]
    path_b = parent + (idx + 1,)
    b_nchildren = len(_loop_at(program, path_b).body)

    def old_edge_to_child(copy_path: Path, child: int, copy_nchildren: int):
        """Old coordinate that is 1 exactly for statements under the
        copy's ``child``: the copy's own edge when it has several
        children, else the parent's edge to the copy itself."""
        if copy_nchildren >= 2:
            return EdgeCoord(copy_path, child)
        return EdgeCoord(parent, copy_path[-1])

    def coord_map(nc):
        p = nc.path
        if p == path:
            if isinstance(nc, LoopCoord):
                return LoopCoord(path_b, nc.var)
            if nc.child < n_first:
                return old_edge_to_child(path, nc.child, n_first)
            return old_edge_to_child(path_b, nc.child - n_first, b_nchildren)
        if p[: len(path)] == path:
            rest = p[len(path):]
            if rest[0] < n_first:
                return nc
            return _remap(nc, path_b + (rest[0] - n_first,) + rest[1:])
        if isinstance(nc, EdgeCoord) and p == parent:
            if nc.child < idx:
                return nc
            if nc.child == idx:
                return [EdgeCoord(parent, idx), EdgeCoord(parent, idx + 1)]
            return EdgeCoord(parent, nc.child + 1)
        if len(p) > len(parent) and p[: len(parent)] == parent and p[len(parent)] > idx:
            return _remap(nc, parent + (p[len(parent)] + 1,) + p[len(parent) + 1 :])
        return nc

    return _coord_matrix(old_layout, new_layout, coord_map), new_program


def distribution_legal(deps: DependenceMatrix, path: Path, split: int) -> bool:
    """Classic distribution legality on the instance-vector dependence
    matrix: every dependence from a statement of the second group to a
    statement of the first group must be carried by a loop *outside*
    the distributed loop (its projection onto the loops enclosing the
    distributed loop must be definitely lexicographically positive)."""
    layout = deps.layout
    loop_node = layout.node_at(path)
    if not isinstance(loop_node, Loop):
        raise TransformError(f"node at {path} is not a loop")

    def group(label: str) -> int | None:
        spath = layout.statement_path(label)
        if spath[: len(path)] != path or len(spath) <= len(path):
            return None
        return 0 if spath[len(path)] < split else 1

    outer_positions = [
        layout.index(c)
        for c in layout.loop_coords()
        if len(c.path) < len(path) and path[: len(c.path)] == c.path
    ]

    for d in deps:
        gs, gd = group(d.src), group(d.dst)
        if gs is None or gd is None:
            continue
        if gs == 1 and gd == 0:
            outer = d.project(outer_positions)
            if not _definitely_lex_positive(outer):
                return False
    return True


def _definitely_lex_positive(entries) -> bool:
    for e in entries:
        if e.definitely_positive():
            return True
        if not e.is_zero():
            return False
    return False
