"""Textual transformation specs: parse and render.

A spec is a semicolon-separated sequence of transformations::

    tile(I,16); fuse(J); permute(I,J); skew(I,J,-1); align(S1,I,1)

This is the CLI's surface syntax (``repro check FILE SPEC``) and the
serialization format the differential fuzzer (:mod:`repro.fuzz`) uses
for its corpus files — a spec names loops and statements symbolically,
so it survives the structural shrinking that a raw matrix (whose shape
is tied to the layout dimension) would not.

Two op classes with different machinery behind them:

* **linear ops** (``permute``/``skew``/``reverse``/``scale``/``align``)
  compose into one square matrix over the program's
  :class:`~repro.instance.Layout` — :func:`parse_spec`;
* **structural ops** (``tile``/``fuse``) rewrite the program itself
  (:mod:`repro.transform.tiling`) and therefore must come *first* in a
  spec: every structural op changes the layout the linear suffix is a
  matrix over.  :func:`parse_schedule` handles full specs, returning a
  :class:`Schedule` that carries the rewritten program, the composed
  linear matrix, and the instance-space pullback the equivalence
  oracles need.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.dependence.analyze import analyze_dependences
from repro.dependence.depvector import DependenceMatrix
from repro.instance.layout import Layout
from repro.ir.ast import Loop, Program
from repro.linalg.intmat import IntMatrix
from repro.transform.distribution import _loop_at
from repro.transform.matrices import (
    Transformation, alignment, compose, identity, permutation, reversal,
    scaling, skew,
)
from repro.transform.tiling import (
    fuse, fuse_legal, fuse_site_offset, loop_path_by_var, strip_mine,
)
from repro.util.errors import ReproError

__all__ = [
    "parse_spec", "parse_schedule", "Schedule", "spec_ops", "SPEC_GRAMMAR",
]

_SPEC_RE = re.compile(r"\s*([a-z_]+)\s*\(([^)]*)\)\s*")

SPEC_GRAMMAR = (
    "tile(loop,size) | fuse(loop) | "
    "permute(a,b) | skew(target,source,factor) | reverse(loop) | "
    "scale(loop,factor) | align(label,loop,offset)"
    "  — tile/fuse rewrite the program and must precede the rest"
)

#: Ops that rewrite the program (handled by parse_schedule, rejected by
#: parse_spec).
STRUCTURAL_OPS = ("tile", "fuse")


def spec_ops(spec: str) -> list[str]:
    """Split a spec into its elementary-operation substrings."""
    return [p.strip() for p in spec.split(";") if p.strip()]


def parse_spec(layout: Layout, spec: str) -> Transformation:
    """Parse a transformation spec string into a composed Transformation.

    Errors from the transform constructors (unknown loop variable or
    statement label, non-integer factor, ...) are wrapped into a
    :class:`ReproError` naming the offending spec part.
    """
    parts = spec_ops(spec)
    if not parts:
        raise ReproError("empty transformation spec")
    transforms = []
    for part in parts:
        m = _SPEC_RE.fullmatch(part)
        if not m:
            raise ReproError(f"cannot parse transformation {part.strip()!r}")
        name = m.group(1)
        args = [a.strip() for a in m.group(2).split(",") if a.strip()]
        try:
            if name in ("permute", "interchange") and len(args) == 2:
                transforms.append(permutation(layout, args[0], args[1]))
            elif name == "skew" and len(args) == 3:
                transforms.append(skew(layout, args[0], args[1], _spec_int(args[2])))
            elif name in ("reverse", "reversal") and len(args) == 1:
                transforms.append(reversal(layout, args[0]))
            elif name == "scale" and len(args) == 2:
                transforms.append(scaling(layout, args[0], _spec_int(args[1])))
            elif name == "align" and len(args) == 3:
                transforms.append(alignment(layout, args[0], args[1], _spec_int(args[2])))
            else:
                raise ReproError(f"unknown transformation {name!r} with {len(args)} args")
        except ReproError as exc:
            raise ReproError(f"in spec part {part.strip()!r}: {exc}") from exc
        except (KeyError, ValueError) as exc:
            raise ReproError(f"in spec part {part.strip()!r}: {exc}") from exc
    return compose(*transforms)


def _spec_int(token: str) -> int:
    try:
        return int(token)
    except ValueError:
        raise ReproError(f"expected an integer, got {token!r}") from None


@dataclass(frozen=True)
class Schedule:
    """A parsed full spec: structural rewrites plus a linear matrix.

    ``program``/``layout``/``deps`` describe the *rewritten* program the
    ``transformation`` matrix is over (identical to ``source`` when the
    spec had no structural prefix).  ``structural_legal`` is False when
    some ``fuse`` failed the inverse-distribution Theorem-2 test (the
    rewrite is still materialized so illegal-injection fuzzing can
    execute it and observe the divergence); ``tile`` is always legal.
    """

    source: Program
    program: Program
    layout: Layout
    deps: DependenceMatrix
    transformation: Transformation
    structural: tuple[str, ...] = ()
    structural_legal: bool = True
    _pullbacks: tuple = ()

    @property
    def matrix(self) -> IntMatrix:
        return self.transformation.matrix

    @property
    def is_structural(self) -> bool:
        return bool(self.structural)

    def pullback(self, label: str, values) -> tuple[int, ...]:
        """Map a statement instance's loop values from the rewritten
        program's iteration space back to ``source``'s (ordered by each
        program's ``loop_vars(label)``), undoing each structural op in
        reverse: a tile drops the tile-loop value, a fuse adds the
        alignment offset back to the fused coordinate of the statements
        it moved."""
        vals = list(values)
        for kind, info in reversed(self._pullbacks):
            if label not in info:
                continue
            if kind == "tile":
                vals.pop(info[label])
            else:
                pos, delta = info[label]
                vals[pos] += delta
        return tuple(vals)


def parse_schedule(program: Program, spec: str) -> Schedule:
    """Parse a full spec — structural ``tile``/``fuse`` prefix plus
    linear suffix — against ``program``.

    Structural ops apply left to right, each resolved against the
    program the previous ones produced; the linear suffix then composes
    over the final program's layout.  A ``tile``/``fuse`` *after* a
    linear op is an error (the linear matrix would be over a layout the
    rewrite invalidates).
    """
    parts = spec_ops(spec)
    if not parts:
        raise ReproError("empty transformation spec")
    current = program
    structural: list[str] = []
    pullbacks: list[tuple] = []
    legal = True
    split = 0
    for part in parts:
        m = _SPEC_RE.fullmatch(part)
        if not m:
            raise ReproError(f"cannot parse transformation {part.strip()!r}")
        name = m.group(1)
        if name not in STRUCTURAL_OPS:
            break
        args = [a.strip() for a in m.group(2).split(",") if a.strip()]
        try:
            if name == "tile":
                if len(args) != 2:
                    raise ReproError("tile takes (loop, size)")
                path = loop_path_by_var(current, args[0])
                labels = {s.label for s in _loop_at(current, path).statements()}
                new = strip_mine(current, path, _spec_int(args[1]))
                tvar = _loop_at(new, path).var
                pullbacks.append(
                    ("tile", {lbl: new.loop_vars(lbl).index(tvar) for lbl in labels})
                )
                current = new
            else:
                if len(args) != 1:
                    raise ReproError("fuse takes (loop)")
                path = loop_path_by_var(current, args[0])
                a = _loop_at(current, path)
                siblings = (
                    current.body if len(path) == 1
                    else _loop_at(current, path[:-1]).body
                )
                b = siblings[path[-1] + 1] if path[-1] + 1 < len(siblings) else None
                fused = fuse(current, path)  # raises when b is not fusable
                assert isinstance(b, Loop)
                delta = fuse_site_offset(a, b)
                assert delta is not None
                fdeps = analyze_dependences(fused)
                if not fuse_legal(current, path, fused=fused, fused_deps=fdeps):
                    legal = False
                pullbacks.append(
                    (
                        "fuse",
                        {
                            s.label: (fused.loop_vars(s.label).index(a.var), delta)
                            for s in b.statements()
                        },
                    )
                )
                current = fused
        except ReproError as exc:
            raise ReproError(f"in spec part {part.strip()!r}: {exc}") from exc
        structural.append(part.strip())
        split += 1
    rest = parts[split:]
    for part in rest:
        m = _SPEC_RE.fullmatch(part)
        if m and m.group(1) in STRUCTURAL_OPS:
            raise ReproError(
                f"structural op {part.strip()!r} must precede the linear "
                "transformations in a spec"
            )
    layout = Layout(current)
    deps = analyze_dependences(current)
    if rest:
        t = parse_spec(layout, "; ".join(rest))
    else:
        t = identity(layout)
    return Schedule(
        program, current, layout, deps, t,
        tuple(structural), legal, tuple(pullbacks),
    )
