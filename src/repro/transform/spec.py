"""Textual transformation specs: parse and render.

A spec is a semicolon-separated sequence of elementary transformations
over a program's :class:`~repro.instance.Layout`::

    permute(I,J); skew(I,J,-1); reverse(J); scale(I,2); align(S1,I,1)

This is the CLI's surface syntax (``repro check FILE SPEC``) and the
serialization format the differential fuzzer (:mod:`repro.fuzz`) uses
for its corpus files — a spec names loops and statements symbolically,
so it survives the structural shrinking that a raw matrix (whose shape
is tied to the layout dimension) would not.
"""

from __future__ import annotations

import re

from repro.instance.layout import Layout
from repro.transform.matrices import (
    Transformation, alignment, compose, permutation, reversal, scaling, skew,
)
from repro.util.errors import ReproError

__all__ = ["parse_spec", "spec_ops", "SPEC_GRAMMAR"]

_SPEC_RE = re.compile(r"\s*([a-z_]+)\s*\(([^)]*)\)\s*")

SPEC_GRAMMAR = (
    "permute(a,b) | skew(target,source,factor) | reverse(loop) | "
    "scale(loop,factor) | align(label,loop,offset)"
)


def spec_ops(spec: str) -> list[str]:
    """Split a spec into its elementary-operation substrings."""
    return [p.strip() for p in spec.split(";") if p.strip()]


def parse_spec(layout: Layout, spec: str) -> Transformation:
    """Parse a transformation spec string into a composed Transformation.

    Errors from the transform constructors (unknown loop variable or
    statement label, non-integer factor, ...) are wrapped into a
    :class:`ReproError` naming the offending spec part.
    """
    parts = spec_ops(spec)
    if not parts:
        raise ReproError("empty transformation spec")
    transforms = []
    for part in parts:
        m = _SPEC_RE.fullmatch(part)
        if not m:
            raise ReproError(f"cannot parse transformation {part.strip()!r}")
        name = m.group(1)
        args = [a.strip() for a in m.group(2).split(",") if a.strip()]
        try:
            if name in ("permute", "interchange") and len(args) == 2:
                transforms.append(permutation(layout, args[0], args[1]))
            elif name == "skew" and len(args) == 3:
                transforms.append(skew(layout, args[0], args[1], _spec_int(args[2])))
            elif name in ("reverse", "reversal") and len(args) == 1:
                transforms.append(reversal(layout, args[0]))
            elif name == "scale" and len(args) == 2:
                transforms.append(scaling(layout, args[0], _spec_int(args[1])))
            elif name == "align" and len(args) == 3:
                transforms.append(alignment(layout, args[0], args[1], _spec_int(args[2])))
            else:
                raise ReproError(f"unknown transformation {name!r} with {len(args)} args")
        except ReproError as exc:
            raise ReproError(f"in spec part {part.strip()!r}: {exc}") from exc
        except (KeyError, ValueError) as exc:
            raise ReproError(f"in spec part {part.strip()!r}: {exc}") from exc
    return compose(*transforms)


def _spec_int(token: str) -> int:
    try:
        return int(token)
    except ValueError:
        raise ReproError(f"expected an integer, got {token!r}") from None
