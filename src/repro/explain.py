"""``repro explain`` — decision provenance as a per-phase narrative.

Where ``repro report`` answers "what did the analysis conclude",
``explain`` answers "*why* did the pipeline accept or reject each
thing": which dependence vector and projection failed the Theorem-2
test, which loop was disqualified from vectorization by which access,
which enabling restructuring the completion procedure chose, and how
the autotuner's cost ranking compared to the measured ranking
(Kendall tau).

All phases except ``tune`` re-run the relevant pipeline stage under the
CLI's observability session and render the typed decision events it
emits (:mod:`repro.obs.events`) — ``wavefront`` explains, loop by loop,
why the ``source-par`` backend did or did not find a parallel band; the
``tune`` phase reads the persisted cache entry a prior ``repro tune``
wrote, so explaining a tuning run never re-searches or re-measures.
"""

from __future__ import annotations

import json
from contextvars import ContextVar

from repro import obs
from repro.instance import Layout
from repro.ir import program_to_str
from repro.tune.ranking import RankReport, rank_report
from repro.util.errors import ReproError

__all__ = ["cmd_explain", "explain_program", "PHASES", "render_tune_ranking"]

#: Phases ``--phase`` accepts, in pipeline order.
PHASES = ("legality", "symbolic", "complete", "vectorize", "wavefront", "tune")

#: Index into the session's event list where the current explain run
#: started.  The CLI installs a fresh session per command so this is 0
#: there; the long-lived service daemon shares one session across many
#: requests, and slicing from the marker keeps each explain's narrative
#: scoped to the events *it* emitted rather than the daemon's lifetime.
_EVENTS_START: ContextVar[int] = ContextVar("repro_explain_events_start", default=0)


def _phase_events(phase: str):
    sess = obs.current_session()
    start = _EVENTS_START.get()
    events = sess.events[start:] if sess else []
    return [ev for ev in events if ev.kind == phase]


# -- phase drivers: each runs one pipeline stage and returns a narrative ----


def _explain_legality(program, args) -> tuple[str, list]:
    from repro.dependence import analyze_dependences
    from repro.legality import check_legality
    from repro.transform.spec import parse_spec

    if not args.spec:
        raise ReproError(
            "explain --phase legality needs --spec (the transformation "
            'whose legality verdict you want explained, e.g. --spec "permute(I,J)")'
        )
    layout = Layout(program)
    deps = analyze_dependences(program, jobs=args.jobs)
    t = parse_spec(layout, args.spec)
    report = check_legality(layout, t.matrix, deps)
    events = _phase_events("legality")
    head = (
        f"spec: {args.spec}\n"
        f"verdict: {'LEGAL' if report.legal else 'ILLEGAL'} "
        f"({len(report.violations)} violated, "
        f"{len(report.unsatisfied())} unsatisfied of {len(report.statuses)} dependences)"
    )
    return head + "\n" + obs.render_events(events, kind="legality"), events


def _explain_symbolic(program, args) -> tuple[str, list]:
    from repro.legality import check

    if not args.spec:
        raise ReproError(
            "explain --phase symbolic needs --spec (the Theorem-2-rejected "
            'transformation to appeal, e.g. --spec "reverse(K)")'
        )
    report = check(program, args.spec, oracle="symbolic")
    if report.legal and report.structural_legal:
        head = (
            f"spec: {args.spec}\n"
            "verdict: LEGAL by Theorem 2 — the symbolic oracle was not "
            "consulted (it only hears appeals of projection-test rejections)"
        )
    elif report.symbolic_legal:
        cert = report.symbolic.certificate
        head = (
            f"spec: {args.spec}\n"
            "verdict: SYMBOLIC-LEGAL — rejected by the Theorem-2 projection "
            "test, certified equivalent by the fractal symbolic oracle\n"
            f"certificate: {cert.summary()}"
        )
    else:
        head = (
            f"spec: {args.spec}\n"
            f"verdict: {report.symbolic.verdict.upper()} — "
            f"{report.symbolic.reason}"
        )
    events = _phase_events("legality") + _phase_events("symbolic")
    body = obs.render_events(_phase_events("symbolic"), kind="symbolic")
    return head + "\n" + body, events


def _explain_complete(program, args) -> tuple[str, list]:
    from repro.completion.enabling import complete_with_restructuring
    from repro.util.errors import CompletionError

    if not args.lead:
        raise ReproError(
            "explain --phase complete needs --lead (the loop variable the "
            "completion should scan outermost, e.g. --lead K)"
        )
    try:
        enabled = complete_with_restructuring(program, args.lead)
        head = (
            f"lead: {args.lead}\n"
            f"verdict: completed"
            + (f" after restructuring [{' ; '.join(enabled.moves)}]"
               if enabled.restructured else " without restructuring")
        )
    except CompletionError as exc:
        head = f"lead: {args.lead}\nverdict: failed — {exc}"
    events = _phase_events("complete")
    return head + "\n" + obs.render_events(events, kind="complete"), events


def _explain_vectorize(program, args) -> tuple[str, list]:
    from repro.backend.lower import lower_program

    try:
        lowered = lower_program(program, vectorize=True)
        head = (
            f"verdict: {lowered.vectorized_loops} loop(s) vectorized, "
            f"{lowered.fallback_loops} innermost DOALL loop(s) stayed scalar"
        )
    except ReproError as exc:
        head = f"verdict: program cannot be lowered — {exc}"
    events = _phase_events("vectorize")
    return head + "\n" + obs.render_events(events, kind="vectorize"), events


def _explain_wavefront(program, args) -> tuple[str, list]:
    from repro.backend.lower import lower_program

    try:
        lowered = lower_program(program, vectorize=True, parallel=True)
        if lowered.wavefront_loops:
            head = (
                f"verdict: {lowered.wavefront_loops} wavefront loop(s) "
                f"dispatched over the worker pool "
                f"({lowered.vectorized_loops} further loop(s) vectorized "
                f"inside or outside the band)"
            )
        else:
            head = (
                "verdict: no wavefront band — source-par degrades to the "
                "serial source-vec emission (skew the nest to expose one; "
                "see docs/PARALLEL.md)"
            )
    except ReproError as exc:
        head = f"verdict: program cannot be lowered — {exc}"
    events = _phase_events("wavefront")
    return head + "\n" + obs.render_events(events, kind="wavefront"), events


def render_tune_ranking(entry: dict) -> str:
    """The cost-rank vs measured-rank table of a persisted tune entry."""
    report = (
        RankReport.from_json(entry["ranking"])
        if entry.get("ranking")
        else rank_report(entry.get("rows", []))  # entries from older runs
    )
    if not report.candidates:
        return "(no candidate was both scored and measured)"
    rows = [("candidate", "score", "cost rank", "measured rank", "seconds")]
    for c in sorted(report.candidates, key=lambda c: c.measured_rank):
        rows.append(
            (
                c.description,
                f"{c.score:.4f}",
                str(c.cost_rank),
                str(c.measured_rank),
                f"{c.seconds:.6f}",
            )
        )
    widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
    lines = [
        "  "
        + "  ".join(
            (f"{c:<{widths[0]}}" if i == 0 else f"{c:>{widths[i]}}")
            for i, c in enumerate(r)
        ).rstrip()
        for r in rows
    ]
    tau = (
        "undefined (fewer than two distinct ranks)"
        if report.tau is None
        else f"{report.tau:+.3f}"
    )
    lines.append(
        f"  Kendall tau (cost rank vs measured rank): {tau} "
        f"over {len(report.candidates)} measured candidate(s)"
    )
    return "\n".join(lines)


def _explain_tune(program, args) -> tuple[str, dict | None]:
    from repro.tune import TuneStore, load_tuned
    from repro.tune.driver import DEFAULT_PARAM

    params = args.params or {p: DEFAULT_PARAM for p in program.params}
    store = TuneStore(args.cache_dir) if args.cache_dir else TuneStore()
    entry = load_tuned(program, params, store=store)
    if entry is None:
        return (
            f"no cached tuning entry for {program.name!r} at params {params} "
            f"in {store.root} — run `repro tune` first (same --params)",
            None,
        )
    winner = entry.get("winner", {})
    head = (
        f"params: {entry.get('params')}  backend: {entry.get('backend')}\n"
        f"winner: {winner.get('description', '?')} "
        f"(measured {winner.get('seconds', float('nan')):.6f}s; "
        f"enumerated {entry.get('enumerated')}, pruned {entry.get('pruned')} "
        f"illegal before execution, scored {entry.get('scored')})"
    )
    return head + "\n" + render_tune_ranking(entry), entry


def cmd_explain(args) -> int:
    """Render decision provenance for one phase (or every runnable one)."""
    from repro.api import load_flexible, parse_params

    program = load_flexible(args.file)
    args.params = parse_params(args.param)
    return explain_program(program, args)


def explain_program(program, args) -> int:
    """Drive the explain phases for an already-loaded program.

    ``args`` needs: ``phase``, ``spec``, ``lead``, ``params`` (a dict),
    ``cache_dir``, ``json``, ``verbose`` and ``jobs`` — the CLI
    namespace or the service's :func:`repro.api.explain_op` shim.
    """
    sess = obs.current_session()
    token = _EVENTS_START.set(len(sess.events) if sess else 0)
    try:
        return _explain_program_inner(program, args)
    finally:
        _EVENTS_START.reset(token)


def _explain_program_inner(program, args) -> int:
    phases = [args.phase] if args.phase else [
        p
        for p in PHASES
        if (p not in ("legality", "symbolic") or args.spec)
        and (p != "complete" or args.lead)
    ]

    sections: list[tuple[str, str]] = []
    payload: dict = {"program": program.name, "phases": {}}
    for phase in phases:
        if phase == "tune":
            text, entry = _explain_tune(program, args)
            payload["phases"]["tune"] = {
                "entry": {
                    k: entry[k]
                    for k in ("params", "backend", "winner", "ranking")
                    if entry and k in entry
                }
                if entry
                else None,
            }
        else:
            fn = {
                "legality": _explain_legality,
                "symbolic": _explain_symbolic,
                "complete": _explain_complete,
                "vectorize": _explain_vectorize,
                "wavefront": _explain_wavefront,
            }[phase]
            text, events = fn(program, args)
            payload["phases"][phase] = {"events": [ev.to_dict() for ev in events]}
        sections.append((phase, text))

    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    print(f"=== explain: {program.name} ===")
    if args.verbose:
        print(program_to_str(program))
    for phase, text in sections:
        print(f"\n--- {phase} ---")
        print(text)
    return 0
