"""Classical perfect-nest baseline (system S11)."""

from repro.perfect.unimodular import (
    PerfectDeps, complete_perfect, is_legal_perfect, outermost_parallel_row,
    parallel_directions,
)

__all__ = [
    "PerfectDeps", "is_legal_perfect", "complete_perfect",
    "parallel_directions", "outermost_parallel_row",
]
