"""Classical unimodular framework for perfectly nested loops (system S11).

This is the prior art the paper extends: iteration vectors, dependence
matrices of distances/directions, legality ``T·d ≻ 0``, Li–Pingali
completion, and parallel-loop detection via the nullspace of the
dependence matrix.  On perfect nests the imperfect-nest framework must
coincide with this baseline (ablation A2 checks that).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dependence.entry import DepEntry, zip_dot
from repro.linalg.intmat import IntMatrix
from repro.linalg.unimodular import complete_to_unimodular
from repro.util.errors import CompletionError, LegalityError

__all__ = [
    "PerfectDeps",
    "is_legal_perfect",
    "complete_perfect",
    "parallel_directions",
    "outermost_parallel_row",
]


@dataclass
class PerfectDeps:
    """A classical dependence matrix: one interval column per dependence
    over the k loop dimensions."""

    depth: int
    columns: list[tuple[DepEntry, ...]]

    @staticmethod
    def parse(depth: int, cols: list[list]) -> "PerfectDeps":
        return PerfectDeps(depth, [tuple(DepEntry.parse(t) for t in c) for c in cols])

    def add(self, col) -> None:
        entries = tuple(DepEntry.parse(t) for t in col)
        if len(entries) != self.depth:
            raise LegalityError(f"dependence length {len(entries)} != depth {self.depth}")
        self.columns.append(entries)


def _lex_sign(entries: tuple[DepEntry, ...]) -> str:
    for e in entries:
        if e.definitely_positive():
            return "positive"
        if e.is_zero():
            continue
        if e.definitely_nonnegative():
            continue
        return "may-be-negative"
    return "zero-or-positive"


def is_legal_perfect(t: IntMatrix, deps: PerfectDeps) -> bool:
    """Classical legality: ``T·d`` lexicographically positive for every
    dependence (zero not allowed — perfect-nest deps must stay ordered)."""
    if t.shape != (deps.depth, deps.depth):
        raise LegalityError(f"matrix shape {t.shape} does not match depth {deps.depth}")
    for d in deps.columns:
        td = tuple(zip_dot(row, d) for row in t.rows())
        if _lex_sign(td) != "positive":
            return False
    return True


def complete_perfect(partial: IntMatrix, deps: PerfectDeps) -> IntMatrix:
    """Li–Pingali completion for perfect nests.

    Given ``partial`` (r independent rows, each mapping every dependence
    to a non-negative value), appends rows so the result is nonsingular
    and every dependence becomes lexicographically positive.  Rows are
    appended Figure-7 style: the unit vector of the first coordinate at
    which some still-unsatisfied dependence is nonzero.
    """
    k = deps.depth
    if partial.nrows and partial.ncols != k:
        raise CompletionError(f"partial row length {partial.ncols} != depth {k}")
    if partial.nrows and partial.rank() != partial.nrows:
        raise CompletionError("partial rows are linearly dependent")

    pending: list[list[DepEntry]] = []
    for d in deps.columns:
        status = _prefix_status(partial, d)
        if status == "violated":
            raise CompletionError(f"partial transformation already violates {tuple(map(str, d))}")
        if status == "pending":
            pending.append(list(d))

    current = partial
    while current.nrows < k:
        heights = [_first_nonzero(v) for v in pending]
        live = [h for h in heights if h is not None]
        if live:
            h = min(live)
            for v, hh in zip(pending, heights):
                if hh == h and v[h].may_be_negative():
                    raise CompletionError("dependence not carryable by unit rows; needs skewing")
            row = tuple(1 if i == h else 0 for i in range(k))
        else:
            row = None
        stacked = (IntMatrix([row]) if current.nrows == 0 else current.with_row(row)) if row is not None else None
        if stacked is not None and stacked.rank() > current.nrows:
            current = stacked
            remaining = []
            for v, hh in zip(pending, heights):
                if hh is None:
                    continue
                if hh == h:
                    if v[h].definitely_positive():
                        continue
                    v = list(v)
                    v[h] = DepEntry.const(0)
                    if _first_nonzero(v) is None:
                        continue
                remaining.append(v)
            pending = remaining
            continue
        # no pending work (or unit row dependent): top up to unimodular
        try:
            return complete_to_unimodular(current) if current.nrows else IntMatrix.identity(k)
        except Exception:
            # fall back to unit-row completion
            for i in range(k):
                unit = tuple(1 if j == i else 0 for j in range(k))
                cand = IntMatrix([unit]) if current.nrows == 0 else current.with_row(unit)
                if cand.rank() > current.nrows:
                    current = cand
                    break
            else:  # pragma: no cover
                raise CompletionError("cannot complete to full rank")
    if not is_legal_perfect(current, deps):
        raise CompletionError("completed matrix is not legal (needs a richer fragment)")
    return current


def _prefix_status(rows: IntMatrix, d: tuple[DepEntry, ...]) -> str:
    """Status of a dependence under a partial row prefix."""
    for row in rows.rows():
        e = zip_dot(row, d)
        if e.definitely_positive():
            return "satisfied"
        if e.may_be_negative():
            return "violated"
        if e.is_zero() or e.definitely_nonnegative():
            continue
    return "pending"


def _first_nonzero(v) -> int | None:
    for i, e in enumerate(v):
        if not e.is_zero():
            return i
    return None


def parallel_directions(deps: PerfectDeps) -> list[tuple[int, ...]]:
    """Integer rows orthogonal to every dependence — candidate DOALL
    directions (the paper's "vector in the null space of the columns of
    the dependence matrix").

    Direction (non-constant) entries force a zero coefficient at their
    position; constant columns contribute nullspace constraints.
    """
    k = deps.depth
    forced_zero = set()
    const_rows: list[list[int]] = []
    for d in deps.columns:
        row = []
        for i, e in enumerate(d):
            if e.is_constant():
                row.append(e.constant())
            else:
                forced_zero.add(i)
                row.append(0)
        const_rows.append(row)
    for i in sorted(forced_zero):
        unit = [0] * k
        unit[i] = 1
        const_rows.append(unit)
    if not const_rows:
        return [tuple(1 if j == i else 0 for j in range(k)) for i in range(k)]
    m = IntMatrix(const_rows)
    return m.nullspace_int()


def outermost_parallel_row(deps: PerfectDeps) -> tuple[int, ...] | None:
    """A row usable as a parallel outermost loop, or None."""
    candidates = parallel_directions(deps)
    return candidates[0] if candidates else None
