"""Shared pipeline-driving API: one code path for the CLI and the service.

Historically every ``repro`` subcommand in :mod:`repro.cli` drove the
pipeline itself — load a program, parse a spec, dispatch a backend,
format the output.  The transformation service (:mod:`repro.service`)
exposes the same operations over HTTP, and duplicating that driving
logic would guarantee drift between the two front ends.  This module is
the single implementation both call:

* loaders and parameter parsing (:func:`load_file`,
  :func:`load_flexible`, :func:`parse_params`);
* one ``*_op`` function per pipeline operation (analyze / check /
  transform / complete / run / tune / explain), each returning a small
  result dataclass;
* every result dataclass round-trips through a JSON-safe ``payload``
  (``to_payload`` / ``from_payload``) and renders its CLI text with
  ``render()`` — so a remote invocation deserializes the wire payload
  and prints through *exactly* the same rendering code as a local run,
  making warm service results byte-identical to cold CLI output.

Canonical program identity (:func:`canonical_text`, :func:`program_key`)
also lives here: the service shards its warm caches per program by this
key (docs/SERVICE.md).
"""

from __future__ import annotations

import hashlib
import io
import json
from contextlib import redirect_stdout
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from repro.ir import Program, parse_program, program_to_str
from repro.util.errors import LegalityError, ReproError

__all__ = [
    "load_file", "load_flexible", "parse_params", "resolve_run_params",
    "canonical_text", "program_key",
    "AnalyzeResult", "CheckResult", "TransformResult", "CompleteResult",
    "RunResult", "TuneOutcome", "ExplainResult",
    "analyze_op", "check_op", "transform_op", "complete_op", "run_op",
    "tune_op", "explain_op", "OPS",
]


# ---------------------------------------------------------------------------
# loading and parameters
# ---------------------------------------------------------------------------

def load_file(path: str) -> Program:
    """Parse the program at ``path``."""
    with open(path) as f:
        src = f.read()
    return parse_program(src, path)


def load_flexible(name: str) -> Program:
    """Resolve a program argument: a file path, a path missing its
    ``.loop`` extension, or a bundled kernel name (``repro.kernels``)."""
    import os

    for candidate in (name, name + ".loop"):
        if os.path.isfile(candidate):
            return load_file(candidate)
    base = os.path.basename(name)
    from repro import kernels

    factory = getattr(kernels, base, None)
    if callable(factory) and not base.startswith("_"):
        try:
            program = factory()
        except TypeError:
            program = None
        if isinstance(program, Program):
            return program
    raise ReproError(f"no such file or bundled kernel: {name!r}")


def parse_params(pairs: Sequence[str] | None) -> dict[str, int]:
    """``["N=8,M=4", "K=2"]`` → ``{"N": 8, "M": 4, "K": 2}``."""
    out: dict[str, int] = {}
    for p in pairs or []:
        for item in p.split(","):
            if not item:
                continue
            k, _, v = item.partition("=")
            out[k.strip()] = int(v)
    return out


def resolve_run_params(
    program: Program, pairs: Sequence[str] | None, default: int | None = None
) -> dict[str, int]:
    """Parsed ``-p`` pairs, defaulting every program parameter to
    ``default`` when no pair names it."""
    params = parse_params(pairs)
    if not params and default is not None:
        params = {p: default for p in program.params}
    return params


def canonical_text(program: Program | str) -> str:
    """Canonical program text: one parse→print round trip lands every
    representation of the same program on the parser's normal form, so
    equal programs always share identity (and a service cache shard)."""
    text = program if isinstance(program, str) else program_to_str(program)
    try:
        return program_to_str(parse_program(text, "canonical"))
    except Exception:
        return text


def program_key(program: Program | str) -> str:
    """SHA-256 of the canonical program text — the service's shard key."""
    return hashlib.sha256(canonical_text(program).encode()).hexdigest()


# ---------------------------------------------------------------------------
# result dataclasses (payload round trip + CLI rendering)
# ---------------------------------------------------------------------------

@dataclass
class AnalyzeResult:
    """Dependence analysis output (``repro deps``)."""

    matrix_text: str
    summary: str
    refined: bool = False

    def to_payload(self) -> dict:
        return {
            "matrix_text": self.matrix_text,
            "summary": self.summary,
            "refined": self.refined,
        }

    @classmethod
    def from_payload(cls, p: Mapping[str, Any]) -> "AnalyzeResult":
        return cls(p["matrix_text"], p["summary"], bool(p.get("refined", False)))

    def render(self) -> str:
        return f"{self.matrix_text}\n\n{self.summary}"


@dataclass
class CheckResult:
    """Legality verdict for a transformation spec (``repro check``).

    Exit codes are part of the scripting contract: ``0`` accepted
    (Theorem-2 legal, or rescued by a symbolic certificate), ``1``
    rejected verdict, while *raised* errors map to ``2`` (analysis/
    usage) or ``3`` (an illegal transformation rejected as an error,
    ``error_kind="LegalityError"``) in :func:`repro.cli.main`.
    """

    legal: bool
    report_text: str
    structural: tuple[str, ...] = ()
    structural_legal: bool = True
    oracle: str = "theorem-2"
    symbolic_verdict: str | None = None
    certificate: dict | None = None

    @property
    def accepted(self) -> bool:
        return (self.legal and self.structural_legal) or (
            self.symbolic_verdict == "symbolic-legal"
        )

    @property
    def exit_code(self) -> int:
        return 0 if self.accepted else 1

    def to_payload(self) -> dict:
        return {
            "legal": self.legal,
            "report_text": self.report_text,
            "structural": list(self.structural),
            "structural_legal": self.structural_legal,
            "oracle": self.oracle,
            "symbolic_verdict": self.symbolic_verdict,
            "certificate": self.certificate,
        }

    @classmethod
    def from_payload(cls, p: Mapping[str, Any]) -> "CheckResult":
        return cls(
            bool(p["legal"]), p["report_text"],
            tuple(p.get("structural", ())), bool(p.get("structural_legal", True)),
            p.get("oracle", "theorem-2"), p.get("symbolic_verdict"),
            p.get("certificate"),
        )

    def render(self) -> str:
        lines = []
        if self.structural:
            verdict = "legal" if self.structural_legal else "ILLEGAL"
            lines.append(
                f"structural prefix {'; '.join(self.structural)}: {verdict}"
            )
        lines.append(self.report_text)
        if self.symbolic_verdict == "symbolic-legal":
            lines.append(
                "verdict: SYMBOLIC-LEGAL — rejected by Theorem 2, certified "
                "equivalent by the fractal symbolic oracle"
            )
        return "\n".join(lines)


@dataclass
class TransformResult:
    """Generated program text for a legal spec (``repro transform``)."""

    text: str

    def to_payload(self) -> dict:
        return {"text": self.text}

    @classmethod
    def from_payload(cls, p: Mapping[str, Any]) -> "TransformResult":
        return cls(p["text"])

    def render(self) -> str:
        return self.text


@dataclass
class CompleteResult:
    """Completed partial transformation (``repro complete``)."""

    matrix_text: str
    program_text: str

    def to_payload(self) -> dict:
        return {"matrix_text": self.matrix_text, "program_text": self.program_text}

    @classmethod
    def from_payload(cls, p: Mapping[str, Any]) -> "CompleteResult":
        return cls(p["matrix_text"], p["program_text"])

    def render(self) -> str:
        return f"completed matrix:\n{self.matrix_text}\n\n{self.program_text}"


@dataclass
class RunResult:
    """Final array contents of an execution (``repro run``).

    Arrays travel the wire as nested lists; ``json`` round-trips finite
    doubles exactly, so a reconstructed array is bit-identical to the
    locally computed one.
    """

    arrays: dict[str, np.ndarray]
    trace_len: int | None = None
    tuned_banner: str = ""

    def to_payload(self) -> dict:
        return {
            "arrays": {k: v.tolist() for k, v in self.arrays.items()},
            "trace_len": self.trace_len,
            "tuned_banner": self.tuned_banner,
        }

    @classmethod
    def from_payload(cls, p: Mapping[str, Any]) -> "RunResult":
        return cls(
            {k: np.asarray(v, dtype=float) for k, v in p["arrays"].items()},
            p.get("trace_len"),
            p.get("tuned_banner", ""),
        )

    def render(self) -> str:
        out = io.StringIO()
        if self.tuned_banner:
            print(self.tuned_banner, file=out)
        for name, arr in self.arrays.items():
            print(f"{name} =", file=out)
            with np.printoptions(precision=4, suppress=True, linewidth=100):
                print(arr, file=out)
        if self.trace_len is not None:
            print(f"\n{self.trace_len} statement instances executed", file=out)
        return out.getvalue().rstrip("\n")


@dataclass
class TuneOutcome:
    """A finished autotuning search (``repro tune``), wire-friendly.

    Carries the same fields as the CLI's ``--json`` payload; the row
    dicts come from :meth:`repro.tune.driver.TunedRow.to_json` with the
    winner flagged, so rendering needs no object identity.
    """

    program: str
    params: dict[str, int]
    backend: str
    from_cache: bool
    cache_key: str
    cache_path: str | None
    enumerated: int
    pruned: int
    scored: int
    baseline_seconds: float | None
    speedup: float | None
    rows: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return any(r.get("winner") for r in self.rows) and not any(
            r.get("error") or r.get("ok") is False for r in self.rows
        )

    def to_payload(self) -> dict:
        return {
            "program": self.program,
            "params": self.params,
            "backend": self.backend,
            "from_cache": self.from_cache,
            "cache_key": self.cache_key,
            "cache_path": self.cache_path,
            "enumerated": self.enumerated,
            "pruned": self.pruned,
            "scored": self.scored,
            "baseline_seconds": self.baseline_seconds,
            "speedup": self.speedup,
            "rows": self.rows,
        }

    @classmethod
    def from_payload(cls, p: Mapping[str, Any]) -> "TuneOutcome":
        return cls(
            program=p["program"],
            params={k: int(v) for k, v in p["params"].items()},
            backend=p["backend"],
            from_cache=bool(p["from_cache"]),
            cache_key=p.get("cache_key", ""),
            cache_path=p.get("cache_path"),
            enumerated=int(p.get("enumerated", 0)),
            pruned=int(p.get("pruned", 0)),
            scored=int(p.get("scored", 0)),
            baseline_seconds=p.get("baseline_seconds"),
            speedup=p.get("speedup"),
            rows=list(p.get("rows", [])),
        )

    def render(self) -> str:
        out = io.StringIO()
        print(f"program {self.program}  params {self.params}  "
              f"backend {self.backend}", file=out)
        if self.from_cache:
            print(f"cache: HIT ({self.cache_path}) — search skipped", file=out)
        else:
            print(f"cache: MISS — enumerated {self.enumerated} candidates, "
                  f"pruned {self.pruned} illegal before execution, "
                  f"scored {self.scored}", file=out)
            if self.cache_path:
                print(f"cached winner -> {self.cache_path}", file=out)
        print(f"{'':2}{'schedule':<36} {'score':>8} {'seconds':>12} "
              f"{'vs default':>11}  ok", file=out)
        ordered = sorted(
            self.rows,
            key=lambda r: (r.get("seconds") is None, r.get("seconds") or 0.0),
        )
        for r in ordered:
            mark = "*" if r.get("winner") else " "
            desc = r["description"] + (
                " [symbolic]" if r.get("legality") == "symbolic" else ""
            )
            if r.get("error"):
                print(f"{mark} {desc:<36} {'-':>8} {'-':>12} "
                      f"{'-':>11}  error: {r['error']}", file=out)
                continue
            score = f"{r['score']:.4f}" if r.get("score") is not None else "-"
            vs = (f"{self.baseline_seconds / r['seconds']:.3f}x"
                  if self.baseline_seconds and r.get("seconds") else "-")
            ok = "-" if r.get("ok") is None else ("yes" if r["ok"] else "NO")
            print(f"{mark} {desc:<36} {score:>8} "
                  f"{r['seconds']:>12.6f} {vs:>11}  {ok}", file=out)
        winner = next((r for r in self.rows if r.get("winner")), None)
        if winner is not None:
            speed = (f"  ({self.speedup:.3f}x vs default order)"
                     if self.speedup else "")
            print(f"winner: {winner['description']}{speed}", file=out)
        else:
            print("winner: none (no candidate survived measurement)", file=out)
        return out.getvalue().rstrip("\n")


@dataclass
class ExplainResult:
    """Rendered decision provenance (``repro explain``)."""

    text: str
    exit_code: int = 0

    def to_payload(self) -> dict:
        return {"text": self.text, "exit_code": self.exit_code}

    @classmethod
    def from_payload(cls, p: Mapping[str, Any]) -> "ExplainResult":
        return cls(p["text"], int(p.get("exit_code", 0)))

    def render(self) -> str:
        return self.text


# ---------------------------------------------------------------------------
# operations
# ---------------------------------------------------------------------------

def analyze_op(
    program: Program,
    *,
    refine: bool = False,
    sample_param_texts: Sequence[str] | None = None,
    jobs: int | None = None,
) -> AnalyzeResult:
    """Dependence analysis, optionally value-based refined."""
    from repro.dependence import analyze_dependences, refine_dependences

    deps = analyze_dependences(program, jobs=jobs)
    if refine:
        samples = [
            parse_params([s]) or {"N": 6}
            for s in (sample_param_texts or ["N=6", "N=9"])
        ]
        deps = refine_dependences(program, deps, samples=samples)
    return AnalyzeResult(deps.to_str(), deps.summary(), refined=refine)


def check_op(
    program: Program, spec: str, *, oracle: str = "theorem-2"
) -> CheckResult:
    """Legality verdict for a transformation spec.  ``oracle="symbolic"``
    appeals Theorem-2 rejections to the fractal symbolic oracle."""
    from repro.legality import check as legality_check

    report = legality_check(program, spec, oracle=oracle)
    cert = (
        report.symbolic.certificate
        if report.symbolic is not None and report.symbolic.certificate
        else None
    )
    return CheckResult(
        legal=report.legal,
        report_text=str(report),
        structural=report.structural,
        structural_legal=report.structural_legal,
        oracle=report.oracle,
        symbolic_verdict=report.symbolic.verdict if report.symbolic else None,
        certificate=cert.to_payload() if cert else None,
    )


def transform_op(
    program: Program, spec: str, *, simplify: bool = False
) -> TransformResult:
    """Generated code for a legal transformation spec."""
    from repro.codegen import generate_code
    from repro.codegen.simplify import simplify_program
    from repro.polyhedra import System, ge, var
    from repro.transform.spec import parse_schedule

    schedule = parse_schedule(program, spec)
    if not schedule.structural_legal:
        raise LegalityError(
            f"structural prefix {'; '.join(schedule.structural)} fails the "
            "Theorem-2 fusion test"
        )
    g = generate_code(schedule.program, schedule.matrix, schedule.deps)
    out = g.program
    if simplify:
        assume = System([ge(var(p), 1) for p in program.params])
        out = simplify_program(out, assume)
    return TransformResult(program_to_str(out))


def complete_op(
    program: Program, lead: str, *, jobs: int | None = None
) -> CompleteResult:
    """Complete a partial transformation whose lead loop is ``lead``."""
    from repro.codegen import generate_code
    from repro.completion import complete_transformation
    from repro.dependence import analyze_dependences
    from repro.instance import Layout

    layout = Layout(program)
    deps = analyze_dependences(program, jobs=jobs)
    n = layout.dimension
    pos = layout.loop_index_by_var(lead)
    partial = [[1 if j == pos else 0 for j in range(n)]]
    result = complete_transformation(program, partial, deps, layout=layout)
    g = generate_code(program, result.matrix, deps)
    return CompleteResult(str(result.matrix), program_to_str(g.program))


def run_op(
    program: Program,
    params: Mapping[str, int],
    *,
    backend: str = "reference",
    par_jobs: int | None = None,
    trace: bool = False,
) -> RunResult:
    """Execute a program with any registered backend."""
    from repro.interp import execute

    if backend == "reference":
        store, tr = execute(program, dict(params), trace=trace)
        return RunResult(
            dict(store.arrays), trace_len=len(tr) if tr is not None else None
        )
    if trace:
        raise ReproError("--trace requires --backend reference")
    from repro.backend import run as backend_run

    store = backend_run(program, dict(params), backend=backend, par_jobs=par_jobs)
    return RunResult(dict(store.arrays))


def tune_op(
    program: Program,
    params: Mapping[str, int] | None = None,
    *,
    cache_dir: str | None = None,
    backend: str = "source-vec",
    beam_width: int = 4,
    depth: int = 2,
    top_k: int = 3,
    repeat: int = 3,
    jobs: int | None = None,
    use_cache: bool = True,
    force: bool = False,
    include_structural: bool = True,
    tile_sizes: Sequence[int] | None = None,
    max_candidates: int | None = None,
    cross_check: str = "full",
    symbolic: bool = False,
) -> TuneOutcome:
    """Autotune ``program`` and return a wire-friendly outcome."""
    from repro.tune import TuneStore, tune

    store = TuneStore(cache_dir) if cache_dir else TuneStore()
    result = tune(
        program,
        dict(params) if params else None,
        backend=backend,
        beam_width=beam_width,
        depth=depth,
        top_k=top_k,
        repeat=repeat,
        jobs=jobs,
        store=store,
        use_cache=use_cache,
        force=force,
        include_structural=include_structural,
        tile_sizes=tuple(tile_sizes) if tile_sizes else None,
        max_candidates=max_candidates,
        cross_check=cross_check,
        symbolic=symbolic,
    )
    return TuneOutcome(
        program=program.name,
        params=result.params,
        backend=result.backend,
        from_cache=result.from_cache,
        cache_key=result.cache_key,
        cache_path=result.cache_path,
        enumerated=result.enumerated,
        pruned=result.pruned,
        scored=result.scored,
        baseline_seconds=result.baseline_seconds,
        speedup=result.speedup,
        rows=[r.to_json(winner=(r is result.best)) for r in result.rows],
    )


def explain_op(
    program: Program,
    *,
    phase: str | None = None,
    spec: str | None = None,
    lead: str | None = None,
    params: Mapping[str, int] | None = None,
    cache_dir: str | None = None,
    as_json: bool = False,
    verbose: bool = False,
    jobs: int | None = None,
) -> ExplainResult:
    """Decision provenance, rendered exactly as ``repro explain`` prints
    it.  Requires an installed observability session for the
    event-replay phases (the CLI and the daemon both provide one)."""
    from types import SimpleNamespace

    from repro.explain import explain_program

    args = SimpleNamespace(
        phase=phase, spec=spec, lead=lead, params=dict(params or {}),
        cache_dir=cache_dir, json=as_json, verbose=verbose, jobs=jobs,
    )
    buf = io.StringIO()
    with redirect_stdout(buf):
        code = explain_program(program, args)
    return ExplainResult(buf.getvalue().rstrip("\n"), code)


#: Operation registry shared by the service dispatcher and the docs:
#: op name -> result class (the payload contract of a successful call).
OPS: dict[str, type] = {
    "analyze": AnalyzeResult,
    "check": CheckResult,
    "transform": TransformResult,
    "complete": CompleteResult,
    "run": RunResult,
    "tune": TuneOutcome,
    "explain": ExplainResult,
}


def _json_safe(value):
    """Round anything payload-ish through json (sanity helper for tests)."""
    return json.loads(json.dumps(value))
