"""E16 — the lowering backend's wall-clock claim: compiling a
transformed nest to straight-line Python source beats the tree-walking
interpreter by an order of magnitude, and rewriting DOALL innermost
loops as NumPy slice assignments buys another integer factor on top.

The assertions mirror the acceptance bar: ``source`` at least 5x over
``reference`` and ``source-vec`` at least 1.5x over ``source`` on at
least one kernel (checked on Cholesky, the densest nest).  A stencil
(Jacobi) exercises the other vectorization shape: shifted reads,
invariant outer time loop.
"""

from repro.backend import bench_backends, run
from repro.kernels import cholesky, jacobi_1d

#: Loose thresholds for the headline speedups — CI runners are noisy;
#: the measured numbers (BENCH_result.json) tell the real story.
SOURCE_MIN_SPEEDUP = 5.0
VEC_MIN_GAIN = 1.5


def _rows_by_backend(program, params, repeat=3):
    rows = bench_backends(program, params, repeat=repeat)
    return {r.backend: r for r in rows}


def test_e16_cholesky_backend_speedups(benchmark, chol):
    by = _rows_by_backend(chol, {"N": 60})
    benchmark(run, chol, {"N": 60}, backend="source-vec")
    print("\n[E16] Cholesky N=60 backend comparison:")
    for name, r in by.items():
        tag = f"{r.speedup:8.2f}x" if r.speedup else "baseline"
        print(f"  {name:10s} {r.seconds * 1e3:9.3f} ms  {tag}  ok={r.ok}")
    assert all(r.ok in (True, None) and not r.error for r in by.values())
    assert by["source"].speedup >= SOURCE_MIN_SPEEDUP
    assert by["source-vec"].speedup >= VEC_MIN_GAIN * by["source"].speedup


def test_e16_jacobi_stencil_vectorization(benchmark):
    p = jacobi_1d()
    params = {"N": 4000, "T": 30}
    by = _rows_by_backend(p, params, repeat=2)
    benchmark(run, p, params, backend="source-vec")
    print("\n[E16] Jacobi-1D N=4000 T=30 backend comparison:")
    for name, r in by.items():
        tag = f"{r.speedup:8.2f}x" if r.speedup else "baseline"
        print(f"  {name:10s} {r.seconds * 1e3:9.3f} ms  {tag}  ok={r.ok}")
    assert all(r.ok in (True, None) and not r.error for r in by.values())
    # a 1-D stencil is the vectorizer's best case: the whole inner loop
    # collapses to three shifted slice reads and one slice write
    assert by["source-vec"].speedup > by["source"].speedup


def test_e16_source_run_latency(benchmark, chol):
    """Lowering is cached: steady-state `run()` is pure execution."""
    run(chol, {"N": 40}, backend="source")  # populate the cache
    store = benchmark(run, chol, {"N": 40}, backend="source")
    assert store.arrays["A"].shape == (40, 40)
