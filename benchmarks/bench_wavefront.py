"""E19 — the wavefront backend's wall-clock claim: after ``skew(I,J,1)``
turns a 2-D Gauss-Seidel sweep's diagonal dependences into DOALL
hyperplane fronts, the ``source-par`` backend executes each front as one
flat strided slice (dispatched across the worker pool when fronts are
wide enough) and beats the scalar ``source`` emission while staying
bit-exact against the reference interpreter.

The assertions mirror the par-smoke acceptance bar: ``source-par`` at
least ``WAVEFRONT_MIN_SPEEDUP`` (1.2x) over ``source`` on the skewed
stencil, bit-exact everywhere.  Cholesky rides along as the
narrow-front counterexample — its triangular fronts shrink to nothing,
so only correctness is asserted there.  docs/PARALLEL.md has the
detection rule and the determinism argument.
"""

import os

from repro import obs
from repro.backend import bench_backends, run
from repro.codegen import generate_code
from repro.codegen.simplify import simplify_program
from repro.kernels import seidel_2d
from repro.transform.spec import parse_schedule

#: The compare.py gate floor, restated here so a local `pytest
#: benchmarks/bench_wavefront.py` fails the same way CI's par-smoke does.
WAVEFRONT_MIN_SPEEDUP = 1.2


def _skewed_seidel():
    """seidel_2d after skew(I,J,1): outer loop walks anti-diagonal
    fronts, inner loop is DOALL at every fixed front."""
    sched = parse_schedule(seidel_2d(), "skew(I, J, 1)")
    generated = generate_code(sched.program, sched.matrix, sched.deps)
    skewed = simplify_program(generated.program)
    return skewed.with_body(skewed.body, name="seidel_2d_skewed")


def _rows_by_backend(program, params, repeat=2):
    jobs = int(os.environ.get("REPRO_PAR_JOBS", "0")) or None
    rows = bench_backends(
        program, params,
        backends=("reference", "source", "source-par"),
        repeat=repeat, par_jobs=jobs,
    )
    return {r.backend: r for r in rows}


def test_e19_skewed_seidel_wavefront_speedup(benchmark):
    p = _skewed_seidel()
    params = {"N": 256}
    by = _rows_by_backend(p, params)
    benchmark(run, p, params, backend="source-par")
    print("\n[E19] skewed seidel_2d N=256 backend comparison:")
    for name, r in by.items():
        tag = f"{r.speedup:8.2f}x" if r.speedup else "baseline"
        print(f"  {name:10s} {r.seconds * 1e3:9.3f} ms  {tag}  ok={r.ok}")
    assert all(r.ok is True and not r.error for r in by.values())
    assert by["source-par"].speedup >= WAVEFRONT_MIN_SPEEDUP * by["source"].speedup


def test_e19_cholesky_narrow_fronts_stay_exact(benchmark, chol):
    """Triangular nests have shrinking fronts — no speedup promise, but
    dispatch must never change the answer."""
    params = {"N": 64}
    by = _rows_by_backend(chol, params)
    benchmark(run, chol, params, backend="source-par")
    print("\n[E19] cholesky N=64 backend comparison:")
    for name, r in by.items():
        tag = f"{r.speedup:8.2f}x" if r.speedup else "baseline"
        print(f"  {name:10s} {r.seconds * 1e3:9.3f} ms  {tag}  ok={r.ok}")
    assert all(r.ok is True and not r.error for r in by.values())


def test_e19_front_metrics_emitted():
    """One source-par run emits the backend.wavefront.* telemetry the
    par-smoke trace artifact and `repro explain --phase wavefront` read."""
    p = _skewed_seidel()
    mem = obs.MemorySink()
    with obs.session(mem) as sess:
        run(p, {"N": 64}, backend="source-par")
        counters = dict(sess.counters)
        widths = sess.histograms.get("backend.wavefront.front_width")
    assert counters.get("backend.wavefront.fronts", 0) > 0
    assert widths is not None and widths.p50 >= 1
