"""A2 — ablation: the imperfect-nest framework degenerates to the
classical unimodular framework on perfectly nested loops.
"""


from repro.dependence import analyze_dependences
from repro.instance import DynamicInstance, Layout, instance_vector
from repro.ir import parse_program
from repro.legality import check_legality
from repro.linalg import IntMatrix, random_unimodular
from repro.perfect import PerfectDeps, is_legal_perfect

PERFECT_SRC = (
    "param N\nreal A(-99:N+99,-99:N+99)\n"
    "do I = 1..N\n do J = 1..N\n  S1: A(I,J) = A(I-1,J) + A(I,J-1)\n enddo\nenddo"
)


def test_a2_vectors_degenerate(benchmark):
    p = parse_program(PERFECT_SRC)
    lay = Layout(p)

    def run():
        return instance_vector(lay, DynamicInstance("S1", (3, 4)))

    v = benchmark(run)
    print(f"\n[A2] instance vector of perfect nest: {v} (= iteration vector)")
    assert v == (3, 4)


def test_a2_dependences_degenerate(benchmark):
    p = parse_program(PERFECT_SRC)
    m = benchmark(analyze_dependences, p)
    cols = sorted(tuple(d.entry_strs()) for d in m)
    print(f"\n[A2] dependence columns: {cols} (classical distances (1,0),(0,1))")
    assert ("1", "0") in cols and ("0", "1") in cols


def test_a2_legality_agreement_random_matrices(benchmark):
    """Both frameworks give identical verdicts on 40 random unimodular
    candidates for the stencil nest."""
    p = parse_program(PERFECT_SRC)
    lay = Layout(p)
    deps = analyze_dependences(p)
    classical = PerfectDeps.parse(2, [list(d.entry_strs()) for d in deps])
    candidates = [random_unimodular(2, seed=s) for s in range(40)]

    def run():
        agree = 0
        verdicts = []
        for m in candidates:
            ours = check_legality(lay, m, deps).legal
            theirs = is_legal_perfect(m, classical)
            verdicts.append((ours, theirs))
            agree += ours == theirs
        return agree, verdicts

    agree, verdicts = benchmark(run)
    print(f"\n[A2] verdict agreement: {agree}/{len(candidates)}")
    legal_count = sum(1 for o, _ in verdicts if o)
    print(f"[A2] legal candidates found: {legal_count}")
    assert agree == len(candidates)


def test_a2_overhead_of_generality(benchmark):
    """Cost of the instance-vector machinery relative to a plain 2x2
    matrix-vector check: time our Definition-6 test on the perfect nest
    (the classical test is a handful of integer ops)."""
    p = parse_program(PERFECT_SRC)
    lay = Layout(p)
    deps = analyze_dependences(p)
    skew_swap = IntMatrix([[0, 1], [1, 0]]) @ IntMatrix([[1, 0], [1, 1]])

    r = benchmark(check_legality, lay, skew_swap, deps)
    assert r.legal
