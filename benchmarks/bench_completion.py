"""E9 — the completion procedure on Cholesky (paper §6): a single
partial row yields left-looking Cholesky, verified end to end.
"""

import numpy as np

from repro.codegen import generate_code
from repro.completion import complete_transformation
from repro.instance import Layout
from repro.interp import ArrayStore, execute
from repro.ir import program_to_str
from repro.legality import check_legality


def test_e9_complete_left_looking(benchmark, chol, chol_layout, chol_deps):
    partial = [[0, 0, 0, 0, 0, 1, 0]]  # new outer = old L coordinate

    res = benchmark(
        complete_transformation, chol, partial, chol_deps, layout=chol_layout
    )
    print("\n[E9] completed matrix (paper §6's C, our coordinate convention):")
    print(res.matrix)
    print(f"[E9] child reordering at the K loop: {res.child_order[(0,)]}"
          " (update subtree first = left-looking)")
    assert res.child_order[(0,)][0] == 2
    assert check_legality(chol_layout, res.matrix, chol_deps).legal


def test_e9_generated_left_looking_code(benchmark, chol, chol_layout, chol_deps):
    res = complete_transformation(
        chol, [[0, 0, 0, 0, 0, 1, 0]], chol_deps, layout=chol_layout
    )

    g = benchmark(generate_code, chol, res.matrix, chol_deps)
    print("\n[E9] generated left-looking Cholesky (paper §6 final code):")
    print(program_to_str(g.program, header=False))
    assert [s.label for s in g.program.statements()][0] == "S3"

    base = ArrayStore(chol, {"N": 8}).snapshot()
    store, _ = execute(g.program, {"N": 8}, arrays=base)
    ref = np.linalg.cholesky(base["A"])
    assert np.allclose(np.tril(store.arrays["A"]), ref, rtol=1e-8)


def test_e9_lead_partition(benchmark, chol, chol_layout, chol_deps):
    """Which coordinates can lead the transformed nest: K and L only
    (the right-looking and left-looking families)."""
    from repro.util.errors import CompletionError

    n = chol_layout.dimension

    def sweep():
        legal = []
        for pos, name in ((0, "K"), (4, "J"), (5, "L"), (6, "I")):
            partial = [[1 if j == pos else 0 for j in range(n)]]
            try:
                res = complete_transformation(chol, partial, chol_deps, layout=chol_layout)
            except CompletionError:
                continue
            if check_legality(chol_layout, res.matrix, chol_deps).legal:
                legal.append(name)
        return legal

    legal = benchmark(sweep)
    print(f"\n[E9] lead coordinates with legal completions: {legal} (expected ['K','L'])")
    assert legal == ["K", "L"]


def test_e9_completion_scaling(benchmark):
    """Completion wall time versus nest size (E12's efficiency claim)."""
    from repro.dependence import analyze_dependences
    from repro.kernels import lu_factorization

    lu = lu_factorization()
    lay = Layout(lu)
    deps = analyze_dependences(lu)
    res = benchmark(complete_transformation, lu, [], deps, layout=lay)
    assert res.matrix.shape == (lay.dimension, lay.dimension)
