"""A1 — ablation: the omega-lite feasibility stack.

Compares (a) rational Fourier–Motzkin (real shadow) alone, (b) FM with
exactness tracking + dark shadow (our default), and (c) the concrete
trace oracle, on the dependence questions the paper's examples pose.
"""


from repro.dependence import analyze_dependences
from repro.interp import execute, ground_truth_dependences
from repro.polyhedra import Feasibility, System, eq, ge, le, var


def _cholesky_question_systems():
    """The §3 affine systems: does S1-written A(I_w) reach S2's reads?"""
    Iw, Ir, Jr, N = var("Iw"), var("Ir"), var("Jr"), var("N")
    bounds = [ge(Iw, 1), le(Iw, N), ge(Ir, 1), le(Ir, N), ge(Jr, Ir + 1), le(Jr, N)]
    feasible_sys = System(bounds + [le(Iw, Ir), eq(Ir, Iw)])            # read A(I)
    infeasible_sys = System(bounds + [le(Iw, Ir), eq(Iw, Jr)])          # read A(J)
    return feasible_sys, infeasible_sys


def test_a1_real_shadow_feasibility(benchmark):
    feasible_sys, infeasible_sys = _cholesky_question_systems()

    def run():
        f1, _ = feasible_sys.project_onto(())
        f2, _ = infeasible_sys.project_onto(())
        return (not f1.is_trivially_false(), not f2.is_trivially_false())

    ok1, ok2 = benchmark(run)
    print(f"\n[A1] real shadow: feasible-case={ok1}, infeasible-case={ok2}")
    assert ok1 is True and ok2 is False


def test_a1_full_feasibility_stack(benchmark):
    feasible_sys, infeasible_sys = _cholesky_question_systems()

    def run():
        return feasible_sys.feasible(), infeasible_sys.feasible()

    v1, v2 = benchmark(run)
    print(f"\n[A1] omega-lite verdicts: {v1.value}, {v2.value}")
    assert v1 is Feasibility.FEASIBLE
    assert v2 is Feasibility.INFEASIBLE


def test_a1_trace_oracle_agreement(benchmark, simp_chol):
    """Concrete N=8 run: every symbolic dependence direction is realized
    or at least not contradicted by the ground truth."""
    m = analyze_dependences(simp_chol)

    def oracle():
        _, t = execute(simp_chol, {"N": 8}, trace=True)
        return ground_truth_dependences(t), t

    gt, t = benchmark(oracle)
    # each observed conflict must be covered by some symbolic column
    from repro.instance import DynamicInstance, Layout, instance_vector

    lay = Layout(simp_chol)
    covered = 0
    for a, b in gt:
        ra, rb = t.records[a], t.records[b]
        va = instance_vector(lay, _inst(lay, ra))
        vb = instance_vector(lay, _inst(lay, rb))
        diff = tuple(y - x for x, y in zip(va, vb))
        if any(
            d.src == ra.label and d.dst == rb.label
            and all(e.contains(x) for e, x in zip(d.entries, diff))
            for d in m
        ):
            covered += 1
    print(f"\n[A1] trace dependences covered by symbolic analysis: {covered}/{len(gt)}")
    assert covered == len(gt)


def _inst(lay, rec):
    from repro.instance import DynamicInstance

    order = [c.var for c in lay.surrounding_loop_coords(rec.label)]
    return DynamicInstance(rec.label, tuple(rec.env[v] for v in order))


def test_a1_fm_elimination_throughput(benchmark):
    """Raw FM throughput on a chain of triangular systems."""
    N = var("N")
    vs = [var(f"x{i}") for i in range(8)]
    cs = [ge(vs[0], 1), le(vs[0], N)]
    for a, b in zip(vs, vs[1:]):
        cs += [ge(b, a + 1), le(b, N)]
    s = System(cs)

    def run():
        out, exact = s.project_onto(("N",))
        return exact

    exact = benchmark(run)
    assert exact


def test_a1_classic_tests_vs_exact(benchmark):
    """Precision/speed of the classical GCD+Banerjee screen against the
    omega-lite oracle on a grid of subscript pairs."""
    from repro.dependence.classic import SubscriptPair, banerjee_test, exact_test, gcd_test

    bounds = {"i": (1, 10), "j": (1, 10)}
    cases = [
        SubscriptPair({"i": ai}, a0, {"j": bj}, b0, bounds)
        for ai in (-2, 1, 2, 3)
        for bj in (1, 2)
        for a0 in (0, 1)
        for b0 in (-5, 0, 3, 40)
    ]

    def run():
        agree = fast_dep = exact_dep = 0
        for p in cases:
            fast = gcd_test(p) and banerjee_test(p)
            precise = exact_test(p)
            fast_dep += fast
            exact_dep += precise
            # conservativeness: precise => fast
            assert fast or not precise
            agree += fast == precise
        return agree, fast_dep, exact_dep

    agree, fast_dep, exact_dep = benchmark(run)
    print(f"\n[A1c] classic-vs-exact on {len(cases)} subscript pairs: "
          f"agree={agree}, classic-dependent={fast_dep}, exact-dependent={exact_dep}")
    assert agree >= exact_dep  # never misses a real dependence
