"""E12 — parallelism detection and framework efficiency (paper §1/§7):
finding a parallel loop is a nullspace/row scan, not a search.
"""


from repro.analysis import outer_parallel_unit_rows, parallel_loops
from repro.dependence import analyze_dependences
from repro.instance import Layout
from repro.legality import check_legality
from repro.linalg import IntMatrix
from repro.perfect import PerfectDeps, outermost_parallel_row


def test_e12_parallel_loops_cholesky(benchmark, chol, chol_layout, chol_deps):
    marks = benchmark(parallel_loops, chol_layout, IntMatrix.identity(7), chol_deps)
    print("\n[E12] DOALL verdicts for right-looking Cholesky loops:")
    for m in marks:
        print(f"  {m.var:2s} parallel={m.is_parallel}  carried={list(m.carried)}")
    by_var = {m.var: m for m in marks}
    assert not by_var["K"].is_parallel
    assert by_var["I"].is_parallel and by_var["J"].is_parallel and by_var["L"].is_parallel


def test_e12_nullspace_parallel_direction(benchmark):
    """Perfect-nest claim: a parallel outer loop is a nullspace vector
    of the dependence matrix."""
    deps = PerfectDeps.parse(3, [[1, 1, 0], [1, 0, 1]])

    row = benchmark(outermost_parallel_row, deps)
    print(f"\n[E12] parallel direction for deps (1,1,0),(1,0,1): {row}")
    assert row is not None
    for col in deps.columns:
        assert sum(r * e.constant() for r, e in zip(row, col)) == 0


def test_e12_unit_row_scan_imperfect(benchmark):
    from repro.ir import parse_program

    p = parse_program(
        "param N\nreal A(0:N+1,0:N+1)\n"
        "do I = 1..N\n"
        "  do J = 1..N\n   S1: A(I,J) = A(I,J-1)\n  enddo\n"
        "  S2: A(I,1) = A(I,N) * 0.5\n"
        "enddo"
    )
    lay = Layout(p)
    deps = analyze_dependences(p)
    rows = benchmark(outer_parallel_unit_rows, lay, deps)
    print(f"\n[E12] outer-parallel unit rows: {[c.var for c in rows]} (expected ['I'])")
    assert [c.var for c in rows] == ["I"]


def test_e12_full_framework_latency(benchmark, chol, chol_deps, chol_layout):
    """Analysis + legality + parallelism for one candidate — the cost of
    evaluating one point of the search space the paper argues is cheap."""
    from repro.legality import check_legality
    from repro.transform import permutation

    def evaluate():
        t = permutation(chol_layout, "J", "L")
        r = check_legality(chol_layout, t.matrix, chol_deps)
        marks = parallel_loops(chol_layout, t.matrix, chol_deps)
        return r.legal, sum(m.is_parallel for m in marks)

    legal, n_par = benchmark(evaluate)
    assert legal and n_par >= 2


def test_e14_transformation_search(benchmark, chol):
    """Extension: the complete 'find a desirable transformation'
    pipeline — enumerate leads, complete, generate, rank by cache
    misses.  The left-looking variant wins beyond cache capacity."""
    from repro.analysis import search_loop_orders
    from repro.interp import CacheConfig

    def run():
        return search_loop_orders(
            chol, {"N": 44}, verify=False,
            cache=CacheConfig(size_bytes=4 * 1024, line_bytes=64, ways=2),
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n[E14] loop-order search on Cholesky (N=44):")
    for r in results:
        print(f"  {r}")
    assert results[0].lead_var == "L"


def test_e15_reuse_distance_engine(benchmark, chol):
    """Guard for the O(n log n) Fenwick reuse-distance engine: correct
    against the textbook O(n²) LRU stack on a modest trace, benchmarked
    on a long one (compare.py's wall-clock gate catches regressions —
    the old ``stack.index`` scan was ~50x slower at this trace length)."""
    import numpy as np

    from repro.analysis.locality import reuse_distances
    from repro.interp import execute
    from repro.interp.cache import trace_addresses

    def naive(trace, store, line_bytes=64):
        lines = (trace_addresses(trace, store) // line_bytes).tolist()
        stack, seen = [], set()
        out = np.empty(len(lines), dtype=np.int64)
        for i, ln in enumerate(lines):
            if ln in seen:
                idx = stack.index(ln)
                out[i] = len(stack) - 1 - idx
                stack.pop(idx)
            else:
                out[i] = -1
                seen.add(ln)
            stack.append(ln)
        return out

    small_store, small_trace = execute(chol, {"N": 12}, trace=True)
    assert np.array_equal(
        reuse_distances(small_trace, small_store), naive(small_trace, small_store)
    )

    store, trace = execute(chol, {"N": 40}, trace=True)
    distances = benchmark(reuse_distances, trace, store)
    print(f"\n[E15] reuse distances over {len(distances)} accesses "
          f"(cold fraction {float((distances < 0).mean()):.3f})")
    assert len(distances) > 40_000


def test_e12_wavefront_parallelization(benchmark):
    """§7's point in action on Gauss–Seidel: no loop is parallel as
    written; after a legal skew the inner loop is DOALL — found by
    matrix reasoning alone and verified by execution."""
    from repro.codegen import generate_code
    from repro.interp import check_equivalence
    from repro.kernels import gauss_seidel_1d
    from repro.transform import compose, permutation, skew

    p = gauss_seidel_1d()
    lay = Layout(p)
    deps = analyze_dependences(p)

    def run():
        before = parallel_loops(lay, IntMatrix.identity(lay.dimension), deps)
        # time-skew then interchange: new outer = I + 2S (the wavefront),
        # new inner = S (independent points on each wavefront)
        t = compose(skew(lay, "I", "S", 2), permutation(lay, "S", "I"))
        r = check_legality(lay, t.matrix, deps)
        after = parallel_loops(lay, t.matrix, deps)
        return before, r.legal, after, t

    before, legal, after, t = benchmark(run)
    print("\n[E12w] Gauss-Seidel as written:",
          {m.var: m.is_parallel for m in before})
    print(f"[E12w] skew+interchange legal: {legal}")
    print("[E12w] after the wavefront transform:",
          {m.var: m.is_parallel for m in after})
    assert legal
    assert not any(m.is_parallel for m in before)
    # after the transform, the *inner* loop (the old S coordinate,
    # scanning points of one wavefront) carries nothing
    inner = after[-1]
    assert inner.is_parallel

    g = generate_code(p, t.matrix, deps)
    rep = check_equivalence(p, g.program, {"N": 8, "T": 4}, env_map=g.env_map())
    assert rep["ok"]
