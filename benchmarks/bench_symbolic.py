"""E21 — the fractal symbolic oracle (docs/SYMBOLIC.md): consultation
latency on the rescue zoo, and the cost split between the three
verdicts.  The oracle only ever runs after a Theorem-2 rejection, so
its per-consultation wall clock is the price of every appeal — the
``symbolic.check_ns`` histogram in production, timed directly here.
"""

from repro.kernels import cholesky, syrk, trsv
from repro.legality import check
from repro.symbolic import prove_schedule, verify_certificate


def test_e21_syrk_reverse_certified(benchmark):
    """The flagship rescue: reversing syrk's accumulation loop."""
    program = syrk()
    out = benchmark(prove_schedule, program, "reverse(K)")
    assert out.verdict == "symbolic-legal"
    cert = out.certificate
    print(f"\n[E21] syrk reverse(K): {cert.summary()}")
    assert verify_certificate(program, cert)


def test_e21_syrk_blocked_reverse_certified(benchmark):
    """Blocking then reversing the reduction — two rejections deep."""
    out = benchmark(prove_schedule, syrk(), "tile(K,2); reverse(KT)")
    assert out.verdict == "symbolic-legal"


def test_e21_trsv_reverse_certified(benchmark):
    out = benchmark(prove_schedule, trsv(), "reverse(J)")
    assert out.verdict == "symbolic-legal"


def test_e21_cholesky_reverse_mismatch(benchmark):
    """The honest rejection: a recurrence reversal has a concrete
    diverging cell, found without ever sampling data."""
    out = benchmark(prove_schedule, cholesky(), "reverse(K)")
    assert out.verdict == "mismatch"
    assert out.diff


def test_e21_full_appeal_path(benchmark):
    """Theorem-2 rejection + symbolic appeal, as `check --symbolic`
    runs it — the end-to-end latency a rescued `repro check` pays."""
    program = syrk()

    def appeal():
        return check(program, "reverse(K)", oracle="symbolic")

    report = benchmark(appeal)
    assert not report.legal and report.accepted
