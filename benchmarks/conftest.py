"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's artifacts (figures,
matrices, code listings) or quantified claims, times the pipeline piece
that produces it, and asserts the paper's qualitative *shape* (who
wins, what is legal, which columns appear).  See EXPERIMENTS.md for the
experiment index and the paper-vs-measured record.
"""

from __future__ import annotations

import pytest

from repro.dependence import analyze_dependences
from repro.instance import Layout
from repro.kernels import augmentation_example, cholesky, simplified_cholesky


def pytest_sessionfinish(session, exitstatus):
    """Dump per-benchmark timings plus one canonical pipeline pass's obs
    counters to BENCH_result.json (see benchmarks/emit.py)."""
    if getattr(session.config, "workerinput", None) is not None:
        return  # xdist worker; only the controller writes
    try:
        from benchmarks.emit import write_bench_result

        write_bench_result(session.config)
    except Exception as exc:  # never fail the suite over reporting
        print(f"\n[benchmarks] BENCH_result.json not written: {exc}")


@pytest.fixture(scope="session")
def simp_chol():
    return simplified_cholesky()


@pytest.fixture(scope="session")
def simp_chol_layout(simp_chol):
    return Layout(simp_chol)


@pytest.fixture(scope="session")
def simp_chol_deps(simp_chol):
    return analyze_dependences(simp_chol)


@pytest.fixture(scope="session")
def chol():
    return cholesky()


@pytest.fixture(scope="session")
def chol_layout(chol):
    return Layout(chol)


@pytest.fixture(scope="session")
def chol_deps(chol):
    return analyze_dependences(chol)


@pytest.fixture(scope="session")
def aug():
    return augmentation_example()
