"""E20 — the transformation service's wall-clock claim: a persistent
daemon whose shard map, result caches, and engine memos stay warm
serves an analyze/transform request orders of magnitude faster than a
cold ``repro`` CLI subprocess that pays interpreter start-up, parse,
and a from-scratch dependence analysis on every call — while staying
byte-identical to the cold path on every response.

The assertions mirror the service-smoke acceptance bar: the warm
daemon at least ``SERVICE_MIN_SPEEDUP`` (5x) over the cold CLI on
cholesky/trmm/seidel, byte-exact renders, and a clean sustained-load
pass under 8 concurrent clients.  docs/SERVICE.md has the protocol and
the caching semantics; benchmarks/emit.py collects the gated table
(``REPRO_BENCH_SERVICE=1``) that compare.py and the history ledger
consume.
"""

import os
import statistics
import subprocess
import sys
import threading
import time

import pytest

from repro import api
from repro.ir import program_to_str
from repro.kernels import cholesky, seidel_2d, trmm

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_SERVICE", "0") != "1",
    reason="service benchmark is opt-in: set REPRO_BENCH_SERVICE=1 "
    "(it forks cold CLI subprocesses)",
)

#: The compare.py gate floor, restated here so a local `pytest
#: benchmarks/bench_service.py` fails the same way CI's service-smoke does.
SERVICE_MIN_SPEEDUP = 5.0

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(scope="module")
def service():
    """One warm daemon for the whole module, plus on-disk kernel files
    for the cold CLI side."""
    import tempfile

    from repro.service.client import ServiceClient
    from repro.service.server import ServiceServer

    with tempfile.TemporaryDirectory() as tmp:
        files = {}
        for factory in (cholesky, trmm, seidel_2d):
            program = factory()
            path = os.path.join(tmp, f"{program.name}.loop")
            with open(path, "w") as f:
                f.write(program_to_str(program))
            files[program.name] = path
        server = ServiceServer(port=0, tune_dir=os.path.join(tmp, "tune"))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        client = ServiceClient(server.url, timeout=120.0)
        client.wait_ready(timeout=15.0)
        try:
            yield server, client, files
        finally:
            server.request_shutdown()
            thread.join(10)
            server.close()


def _cold_seconds(argv, repeat=3):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    times = []
    for _ in range(repeat):
        t0 = time.perf_counter()
        proc = subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            capture_output=True, text=True, env=env, cwd=REPO,
        )
        times.append(time.perf_counter() - t0)
        assert proc.returncode == 0, proc.stderr
    return statistics.median(times)


def _warm_seconds(request, repeat=20):
    request()  # prime
    times = []
    for _ in range(repeat):
        t0 = time.perf_counter()
        request()
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def test_e20_warm_daemon_beats_cold_cli(service, benchmark):
    _, client, files = service
    print("\n[E20] warm daemon vs cold CLI (analyze):")
    speedups = {}
    for factory in (cholesky, trmm, seidel_2d):
        program = factory()
        src = program_to_str(program)
        cold_s = _cold_seconds(["deps", files[program.name]])
        warm_s = _warm_seconds(lambda src=src: client.analyze(src))
        speedups[program.name] = cold_s / warm_s
        print(
            f"  {program.name:12s} cold {cold_s * 1e3:8.1f} ms  "
            f"warm {warm_s * 1e3:8.3f} ms  {cold_s / warm_s:8.1f}x"
        )
    benchmark(client.analyze, program_to_str(cholesky()))
    for name, speedup in speedups.items():
        assert speedup >= SERVICE_MIN_SPEEDUP, (
            f"{name}: warm path only {speedup:.1f}x faster than the cold "
            f"CLI (floor {SERVICE_MIN_SPEEDUP}x)"
        )


def test_e20_warm_results_stay_byte_identical(service):
    _, client, _ = service
    for factory in (cholesky, trmm, seidel_2d):
        program = factory()
        local = api.analyze_op(program).render()
        remote = api.AnalyzeResult.from_payload(
            client.analyze(program_to_str(program))
        ).render()
        assert remote == local, program.name
    # the served copies really are warm: a repeat request is a cache hit
    resp = client.request_full("analyze", program=program_to_str(cholesky()))
    assert resp.ok and resp.cached


def test_e20_throughput_under_concurrent_clients(service):
    _, client, _ = service
    n_clients, per_client = 8, 25
    sources = [program_to_str(f()) for f in (cholesky, trmm, seidel_2d)]
    for src in sources:
        client.analyze(src)  # prime every shard
    errors = []
    lock = threading.Lock()

    def hammer():
        for i in range(per_client):
            try:
                client.analyze(sources[i % len(sources)])
            except Exception as exc:  # noqa: BLE001 - collected below
                with lock:
                    errors.append(str(exc))

    threads = [threading.Thread(target=hammer) for _ in range(n_clients)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join(120)
    elapsed = time.perf_counter() - t0
    total = n_clients * per_client
    print(
        f"\n[E20] {total} requests from {n_clients} clients in "
        f"{elapsed:.2f}s -> {total / elapsed:.0f} req/s"
    )
    assert not errors, errors[:3]
    assert total / elapsed > 0
    m = client.metrics()
    assert m["counters"].get("service.errors", 0) == 0
