"""E7 — code generation for the §5.4 skewing example: legality,
augmentation, bounds, guards, simplification, and the semantic oracle.
"""


from repro.codegen import generate_code
from repro.codegen.simplify import peel_iteration, simplify_program
from repro.instance import Layout
from repro.interp import check_equivalence
from repro.ir import program_to_str
from repro.polyhedra import System, ge, var
from repro.transform import skew

ASSUME = System([ge(var("N"), 1)])


def test_e7_generate_skewed_code(benchmark, aug):
    lay = Layout(aug)
    matrix = skew(lay, "I", "J", -1).matrix

    g = benchmark(generate_code, aug, matrix)
    print("\n[E7] generated code for the §5.4 skewing example:")
    print(program_to_str(g.program, header=False))
    print("[E7] paper: do I = 1-N..0 { do J = 1-I..min(N,N-I): S2 };"
          " if (I == 0) { do I2 = 1..N: S1 }")
    plan1 = g.plan("S1")
    assert plan1.extra_names  # the paper's I2 loop
    assert g.plan("S2").nonsingular.tolist() == [[1, -1], [0, 1]]


def test_e7_simplified_matches_paper(benchmark, aug):
    lay = Layout(aug)
    g = generate_code(aug, skew(lay, "I", "J", -1).matrix)

    def simplify_and_peel():
        simp = simplify_program(g.program, ASSUME)
        return simplify_program(peel_iteration(simp, (0,), "upper"), ASSUME)

    final = benchmark(simplify_and_peel)
    text = program_to_str(final, header=False)
    print("\n[E7] simplified final code (paper §5.5 form):")
    print(text)
    assert "do I = -N + 1, -1" in text
    assert "A(J, J) = f(J, J)" in text
    assert "do I2 = 1, N" in text


def test_e7_equivalence_oracle(benchmark, aug):
    lay = Layout(aug)
    g = generate_code(aug, skew(lay, "I", "J", -1).matrix)

    rep = benchmark(
        check_equivalence, aug, g.program, {"N": 16}, env_map=g.env_map()
    )
    print(f"\n[E7] oracle on N=16: {rep['instances']} instances, ok={rep['ok']}")
    assert rep["ok"]


def test_e7_codegen_scales_with_size(benchmark, chol):
    """Full-pipeline wall time on the 7-dimensional Cholesky space."""
    from repro.dependence import analyze_dependences
    from repro.transform import permutation

    lay = Layout(chol)
    deps = analyze_dependences(chol)
    matrix = permutation(lay, "J", "L").matrix
    g = benchmark(generate_code, chol, matrix, deps)
    assert g.program.statements()
