"""Machine-readable benchmark results: ``BENCH_result.json``.

After every benchmark session (``pytest benchmarks/``), the conftest
hook calls :func:`write_bench_result` to dump

* per-benchmark wall-clock stats harvested from pytest-benchmark, and
* the observability counters of one canonical pipeline pass (parse →
  dependence analysis → legality → completion → codegen → execute →
  cache simulation on the paper's kernels), collected with a fresh
  :class:`repro.obs` session *outside* any timed region so the timings
  stay clean,

seeding the perf trajectory that future optimisation PRs diff against.
Each run overwrites the file; trajectory history lives in version
control.
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path

__all__ = [
    "collect_pipeline_counters", "collect_backend_speedups",
    "collect_tune_results", "collect_scaling_results",
    "collect_wavefront_results", "collect_service_results",
    "collect_symbolic_results", "collect_benchmark_stats",
    "write_bench_result",
]

RESULT_NAME = "BENCH_result.json"

#: N ladder of the blocking/fusion scaling curves (E18); CI runs the
#: first two points, REPRO_BENCH_FULL=1 adds the third (its untuned
#: baselines alone run for minutes).
SCALING_SIZES = (256, 512)
SCALING_FULL_SIZES = (256, 512, 1024)


def collect_pipeline_counters() -> dict:
    """Run the canonical pipeline pass under a fresh obs session and
    return its counters/gauges.  Independent of the benchmark timings."""
    from repro import obs
    from repro.codegen import generate_code
    from repro.completion import complete_transformation
    from repro.dependence import analyze_dependences
    from repro.instance import Layout
    from repro.interp import simulate_cache, trace_addresses
    from repro.interp.executor import execute
    from repro.kernels import cholesky, simplified_cholesky
    from repro.legality import check_legality
    from repro.transform import reversal

    mem = obs.MemorySink()
    with obs.session(mem) as sess:
        for program in (simplified_cholesky(), cholesky()):
            layout = Layout(program)
            deps = analyze_dependences(program, layout=layout)
            completed = complete_transformation(program, deps=deps, layout=layout)
            generated = generate_code(program, completed.matrix, deps)
            t = reversal(layout, layout.loop_coords()[-1].var)
            check_legality(layout, t.matrix, deps)
            store, trace = execute(generated.program, {"N": 8}, trace=True)
            simulate_cache(trace_addresses(trace, store))
        counters = dict(sess.counters)
        gauges = dict(sess.gauges)
        span_ns = {
            sp.name: sp.duration_ns
            for root in mem.roots
            for sp, _ in root.walk()
        }
    return {"counters": counters, "gauges": gauges, "span_last_ns": span_ns}


def collect_backend_speedups() -> list[dict]:
    """The execution-backend comparison table (E16): wall clock and
    speedup-vs-reference for every backend on a dense factorization and
    a stencil.  ``compare.py`` gates on the ``source`` rows staying at
    least as fast as the reference interpreter."""
    from repro.backend import bench_backends
    from repro.kernels import cholesky, jacobi_1d

    rows = []
    for program, params in (
        (cholesky(), {"N": 40}),
        (jacobi_1d(), {"N": 1000, "T": 10}),
    ):
        for r in bench_backends(program, params, repeat=2):
            rows.append({
                "kernel": program.name,
                "params": dict(params),
                "backend": r.backend,
                "seconds": None if r.error else r.seconds,
                "speedup": r.speedup,
                "ok": r.ok,
                "error": r.error,
            })
    return rows


def collect_tune_results() -> list[dict]:
    """The autotuner comparison table (E17): one small guided search per
    kernel, recording the winner against the always-measured untuned
    default.  ``compare.py`` gates on the tuned schedule never losing to
    the default (the baseline is in the measured set, so speedup < 1
    means the driver stopped ranking it).  Runs cache-less so the
    emitted numbers are always a fresh search."""
    import tempfile

    from repro.kernels import cholesky, simplified_cholesky
    from repro.tune import TuneStore, tune

    rows = []
    with tempfile.TemporaryDirectory() as tmp:
        for program, params in (
            (cholesky(), {"N": 40}),
            (simplified_cholesky(), {"N": 40}),
        ):
            try:
                res = tune(
                    program, params, store=TuneStore(tmp),
                    backend="source-vec", beam_width=2, depth=1, top_k=2,
                    repeat=3, use_cache=False,
                )
            except Exception as exc:
                rows.append({
                    "kernel": program.name, "params": dict(params),
                    "backend": "source-vec", "winner": None,
                    "baseline_seconds": None, "best_seconds": None,
                    "speedup": None, "ok": False, "error": str(exc),
                })
                continue
            rows.append({
                "kernel": program.name,
                "params": dict(params),
                "backend": res.backend,
                "winner": res.best.description if res.best else None,
                "baseline_seconds": res.baseline_seconds,
                "best_seconds": res.best.seconds if res.best else None,
                "speedup": res.speedup,
                "enumerated": res.enumerated,
                "pruned": res.pruned,
                "scored": res.scored,
                "ok": res.ok,
                "error": "",
            })
    return rows


def collect_scaling_results() -> list[dict]:
    """The tiling/fusion scaling curves (E18): tuned-vs-untuned seconds
    at growing N for the two kernels where loop order (and at the top
    size, blocking) decides the constant factor.  ``compare.py`` gates
    each point on the tuned winner beating the untuned default order by
    at least :data:`benchmarks.compare.SCALING_MIN_SPEEDUP`.

    Opt-in via ``REPRO_BENCH_SCALING=1`` — every point measures its
    real-size untuned baseline, so this section costs minutes, not
    seconds (CI sets it only for the real benchmark pass).
    ``REPRO_BENCH_FULL=1`` extends the ladder to N=1024 and additionally
    requires the trmm winner there to be a *tiled* schedule — the one
    regime on this suite where blocking beats every untiled order
    (docs/TILING.md has the honest analysis of where it does not, and
    of why the full-mode pass is an hour-scale job)."""
    import os
    import tempfile

    if os.environ.get("REPRO_BENCH_SCALING", "0") != "1":
        return []
    from repro.kernels import cholesky_variant, trmm
    from repro.transform.tiling import TILE_LADDER
    from repro.tune import TuneStore, tune

    full = os.environ.get("REPRO_BENCH_FULL", "0") == "1"
    sizes = SCALING_FULL_SIZES if full else SCALING_SIZES
    rows = []
    with tempfile.TemporaryDirectory() as tmp:
        for program in (cholesky_variant("jik"), trmm()):
            for n in sizes:
                try:
                    res = tune(
                        program, {"N": n}, store=TuneStore(tmp),
                        backend="source-vec", tile_sizes=TILE_LADDER,
                        cross_check="model", repeat=1, use_cache=False,
                    )
                except Exception as exc:
                    rows.append({
                        "kernel": program.name, "n": n,
                        "untuned_seconds": None, "tuned_seconds": None,
                        "speedup": None, "winner": None,
                        "winner_tiled": None, "require_tiled": False,
                        "ok": False, "error": str(exc),
                    })
                    continue
                winner_tiled = bool(
                    res.best is not None
                    and res.best.candidate is not None
                    and res.best.candidate.context.is_tiled
                )
                rows.append({
                    "kernel": program.name,
                    "n": n,
                    "untuned_seconds": res.baseline_seconds,
                    "tuned_seconds": res.best.seconds if res.best else None,
                    "speedup": res.speedup,
                    "winner": res.best.description if res.best else None,
                    "winner_tiled": winner_tiled,
                    "require_tiled": full and program.name == "trmm" and n == 1024,
                    "ok": res.ok,
                    "error": "",
                })
    return rows


def collect_wavefront_results() -> list[dict]:
    """The wavefront parallel comparison (E19): ``source-par`` versus the
    scalar ``source`` backend on a skewed 2-D Gauss-Seidel stencil (the
    canonical wavefront workload — ``skew(I,J,1)`` turns its diagonal
    dependence pattern into DOALL fronts) and on cholesky (narrow
    triangular fronts; reported for the table but not gated, since
    dispatch overhead legitimately eats the win there).  ``compare.py``
    gates the stencil rows on bit-exact outputs and on source-par
    clearing :data:`benchmarks.compare.WAVEFRONT_MIN_SPEEDUP`.

    Opt-in via ``REPRO_BENCH_WAVEFRONT=1`` (the CI par-smoke job, which
    skips the minutes-long E18 scaling tune) or ``REPRO_BENCH_SCALING=1``
    (full local runs get it alongside the scaling curves).
    """
    import os

    if (os.environ.get("REPRO_BENCH_WAVEFRONT", "0") != "1"
            and os.environ.get("REPRO_BENCH_SCALING", "0") != "1"):
        return []
    import numpy as np

    from repro import obs
    from repro.backend import run, time_backend
    from repro.codegen import generate_code
    from repro.codegen.simplify import simplify_program
    from repro.kernels import cholesky, seidel_2d
    from repro.transform.spec import parse_schedule

    sched = parse_schedule(seidel_2d(), "skew(I, J, 1)")
    generated = generate_code(sched.program, sched.matrix, sched.deps)
    skewed = simplify_program(generated.program)
    skewed = skewed.with_body(skewed.body, name="seidel_2d_skewed")

    rows = []
    for program, n, gated in (
        (skewed, 256, True),
        (cholesky(), 64, False),
    ):
        params = {"N": n}
        try:
            expected = run(program, params, backend="reference")
            # Harvest front shape from one correctness run so the
            # counters are per-run, not accumulated over timing reps.
            mem = obs.MemorySink()
            with obs.session(mem) as sess:
                got = run(program, params, backend="source-par")
                fronts = sess.counters.get("backend.wavefront.fronts", 0)
                hist = sess.histograms.get("backend.wavefront.front_width")
            ok = all(
                np.array_equal(expected.arrays[k], got.arrays[k])
                for k in expected.arrays
            )
            source_s = time_backend(program, params, backend="source", repeat=3)
            par_s = time_backend(program, params, backend="source-par", repeat=3)
            rows.append({
                "kernel": program.name,
                "n": n,
                "source_seconds": source_s,
                "par_seconds": par_s,
                "speedup": source_s / par_s if par_s else None,
                "fronts": fronts,
                "front_width_p50": hist.p50 if hist else None,
                "front_width_p99": hist.p99 if hist else None,
                "gate": gated,
                "ok": ok,
                "error": "",
            })
        except Exception as exc:
            rows.append({
                "kernel": program.name, "n": n,
                "source_seconds": None, "par_seconds": None,
                "speedup": None, "fronts": None,
                "front_width_p50": None, "front_width_p99": None,
                "gate": gated, "ok": False, "error": str(exc),
            })
    return rows


#: E20 measurement shape: warm latencies are per-request medians over
#: this many requests against a primed daemon; cold latencies are
#: medians over this many full CLI subprocess invocations.
SERVICE_WARM_REPEAT = 20
SERVICE_COLD_REPEAT = 3
SERVICE_CLIENTS = 8
SERVICE_CLIENT_REQUESTS = 25


def collect_service_results() -> list[dict]:
    """The transformation-service comparison (E20): per-request latency
    of a *warm* daemon (shard map and result caches primed, engine
    memos hot) against *cold* one-shot CLI subprocesses that pay
    interpreter start-up, parse, and a from-scratch analysis every
    time, plus sustained request throughput under
    :data:`SERVICE_CLIENTS` concurrent clients.  ``compare.py`` gates
    the latency rows on the warm path clearing
    :data:`benchmarks.compare.SERVICE_MIN_SPEEDUP` (5x).

    Opt-in via ``REPRO_BENCH_SERVICE=1`` (the CI service-smoke job) —
    the cold side forks real subprocesses, so this section costs tens
    of seconds.
    """
    import os

    if os.environ.get("REPRO_BENCH_SERVICE", "0") != "1":
        return []
    import statistics
    import subprocess
    import tempfile
    import threading
    import time

    from repro.ir import program_to_str
    from repro.kernels import cholesky, seidel_2d, trmm
    from repro.service.client import ServiceClient
    from repro.service.server import ServiceServer

    repo = Path(__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = str(repo / "src")

    def cold_seconds(argv: list[str]) -> float:
        times = []
        for _ in range(SERVICE_COLD_REPEAT):
            t0 = time.perf_counter()
            proc = subprocess.run(
                [sys.executable, "-m", "repro", *argv],
                capture_output=True, text=True, env=env, cwd=str(repo),
            )
            times.append(time.perf_counter() - t0)
            if proc.returncode != 0:
                raise RuntimeError(
                    f"cold CLI failed: {proc.stderr.strip()[:200]}"
                )
        return statistics.median(times)

    def warm_seconds(request) -> float:
        request()  # prime the shard + result caches
        times = []
        for _ in range(SERVICE_WARM_REPEAT):
            t0 = time.perf_counter()
            request()
            times.append(time.perf_counter() - t0)
        return statistics.median(times)

    rows: list[dict] = []
    with tempfile.TemporaryDirectory() as tmp:
        server = ServiceServer(port=0, tune_dir=os.path.join(tmp, "tune"))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        client = ServiceClient(server.url, timeout=120.0)
        client.wait_ready(timeout=15.0)
        try:
            sources: dict[str, str] = {}
            workload: list[tuple[str, str, list[str], object]] = []
            for factory in (cholesky, trmm, seidel_2d):
                program = factory()
                src = program_to_str(program)
                sources[program.name] = src
                path = os.path.join(tmp, f"{program.name}.loop")
                Path(path).write_text(src)
                workload.append((
                    program.name, "analyze", ["deps", path],
                    lambda src=src: client.analyze(src),
                ))
            chol_path = os.path.join(tmp, "cholesky.loop")
            workload.append((
                "cholesky", "transform",
                ["transform", chol_path, "skew(I,K,1)"],
                lambda: client.transform(sources["cholesky"], "skew(I,K,1)"),
            ))

            for kernel, op, argv, request in workload:
                try:
                    cold_s = cold_seconds(argv)
                    warm_s = warm_seconds(request)
                    rows.append({
                        "kernel": kernel, "op": op,
                        "cold_seconds": cold_s, "warm_seconds": warm_s,
                        "speedup": cold_s / warm_s if warm_s else None,
                        "gate": True, "ok": True, "error": "",
                    })
                except Exception as exc:
                    rows.append({
                        "kernel": kernel, "op": op,
                        "cold_seconds": None, "warm_seconds": None,
                        "speedup": None, "gate": True, "ok": False,
                        "error": str(exc),
                    })

            # sustained throughput: every client hammers the full warm
            # mix, so the number reflects lock contention and the HTTP
            # layer, not analysis cost
            try:
                errors: list[str] = []
                lock = threading.Lock()

                def hammer():
                    for i in range(SERVICE_CLIENT_REQUESTS):
                        _, _, _, request = workload[i % len(workload)]
                        try:
                            request()
                        except Exception as exc:
                            with lock:
                                errors.append(str(exc))

                threads = [
                    threading.Thread(target=hammer)
                    for _ in range(SERVICE_CLIENTS)
                ]
                t0 = time.perf_counter()
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
                elapsed = time.perf_counter() - t0
                total = SERVICE_CLIENTS * SERVICE_CLIENT_REQUESTS
                rows.append({
                    "kernel": "mixed", "op": "throughput",
                    "rps": total / elapsed if elapsed else None,
                    "requests": total, "clients": SERVICE_CLIENTS,
                    "gate": False, "ok": not errors,
                    "error": "; ".join(errors[:3]),
                })
            except Exception as exc:
                rows.append({
                    "kernel": "mixed", "op": "throughput", "rps": None,
                    "requests": 0, "clients": SERVICE_CLIENTS,
                    "gate": False, "ok": False, "error": str(exc),
                })
        finally:
            server.request_shutdown()
            thread.join(10)
            server.close()
    return rows


#: E21 rescue zoo: (kernel factory name, spec, expected verdict).  The
#: mismatch row keeps the oracle honest — a broken normalizer that
#: certifies everything shows up here before it shows up in the fuzzer.
SYMBOLIC_ZOO = (
    ("syrk", "reverse(K)", "symbolic-legal"),
    ("syrk", "tile(K,2); reverse(KT)", "symbolic-legal"),
    ("trsv", "reverse(J)", "symbolic-legal"),
    ("cholesky", "reverse(K)", "mismatch"),
)
SYMBOLIC_REPEAT = 3


def collect_symbolic_results() -> list[dict]:
    """The fractal-oracle consultation table (E21): per-appeal latency
    and verdict for the rescue zoo, plus the oracle's own counters from
    one instrumented pass.  ``compare.py`` gates every row on the
    verdict matching the committed expectation and on certified rows
    carrying a certificate that re-verifies — cheap enough (milliseconds
    per consultation) to run unconditionally, like the backend table."""
    import statistics
    import time

    from repro import obs
    from repro.kernels import cholesky, syrk, trsv
    from repro.symbolic import prove_schedule, verify_certificate

    factories = {"syrk": syrk, "trsv": trsv, "cholesky": cholesky}
    rows = []
    for kernel, spec, expected in SYMBOLIC_ZOO:
        program = factories[kernel]()
        try:
            with obs.session() as sess:
                times = []
                for _ in range(SYMBOLIC_REPEAT):
                    t0 = time.perf_counter()
                    out = prove_schedule(program, spec)
                    times.append(time.perf_counter() - t0)
                attempts = sess.counters.get("symbolic.attempts", 0)
            verified = None
            if out.certificate is not None:
                verified = verify_certificate(program, out.certificate)
            rows.append({
                "kernel": kernel,
                "spec": spec,
                "verdict": out.verdict,
                "expected": expected,
                "check_seconds": statistics.median(times),
                "sizes": list(out.certificate.sizes) if out.certificate else None,
                "attempts": attempts,
                "verified": verified,
                "ok": out.verdict == expected and verified is not False,
                "error": "",
            })
        except Exception as exc:
            rows.append({
                "kernel": kernel, "spec": spec, "verdict": None,
                "expected": expected, "check_seconds": None, "sizes": None,
                "attempts": None, "verified": None, "ok": False,
                "error": str(exc),
            })
    return rows


def collect_benchmark_stats(config) -> list[dict]:
    """Per-benchmark timing stats from pytest-benchmark, if it ran."""
    bsession = getattr(config, "_benchmarksession", None)
    if bsession is None:
        return []
    out = []
    for bench in getattr(bsession, "benchmarks", []):
        stats = getattr(bench, "stats", None)
        if stats is None:
            continue
        try:
            record = {
                "name": bench.name,
                "group": bench.group,
                "rounds": stats.rounds,
                "mean_s": stats.mean,
                "min_s": stats.min,
                "max_s": stats.max,
                "stddev_s": stats.stddev,
            }
        except (AttributeError, ZeroDivisionError):
            continue
        out.append(record)
    return out


def write_bench_result(config, path: str | Path | None = None) -> Path:
    """Assemble and write ``BENCH_result.json`` next to the repo root."""
    from repro import __version__

    target = Path(path) if path is not None else Path(__file__).resolve().parent.parent / RESULT_NAME
    payload = {
        "schema": 1,
        "repro_version": __version__,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "benchmarks": collect_benchmark_stats(config),
        "pipeline": collect_pipeline_counters(),
        "backend": collect_backend_speedups(),
        "tune": collect_tune_results(),
        "scaling": collect_scaling_results(),
        "wavefront": collect_wavefront_results(),
        "service": collect_service_results(),
        "symbolic": collect_symbolic_results(),
    }
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    try:
        try:
            from benchmarks.history import append_snapshot
        except ImportError:
            sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
            from benchmarks.history import append_snapshot

        history_path, _ = append_snapshot(payload)
        print(f"appended snapshot row to {history_path}")
    except Exception as exc:  # the ledger must never block result emission
        print(f"warning: could not append to bench history: {exc}", file=sys.stderr)
    return target
