"""E4/E5/E6/E13 — transformation matrices (paper §4) and distribution
legality (§1 claim).
"""


from repro.linalg import IntMatrix
from repro.transform import (
    alignment, distribution_legal, distribution_matrix, jamming_matrix,
    permutation, skew, statement_reorder,
)


def test_e4_permutation_and_skew(benchmark, simp_chol_layout):
    def build():
        return (
            permutation(simp_chol_layout, "I", "J").matrix,
            skew(simp_chol_layout, "I", "J", -1).matrix,
        )

    perm, sk = benchmark(build)
    print("\n[E4] interchange matrix (paper §4.1):")
    print(perm)
    print("[E4] skew matrix (paper §4.1):")
    print(sk)
    assert perm == IntMatrix([[0, 0, 0, 1], [0, 1, 0, 0], [0, 0, 1, 0], [1, 0, 0, 0]])
    assert sk == IntMatrix([[1, 0, 0, -1], [0, 1, 0, 0], [0, 0, 1, 0], [0, 0, 0, 1]])


def test_e5_reorder_distribution_jamming(benchmark, simp_chol, simp_chol_layout):
    def build():
        tr, _ = statement_reorder(simp_chol_layout, (0,), [1, 0])
        dm, distributed = distribution_matrix(simp_chol, (0,), 1)
        jm, _ = jamming_matrix(distributed, (0,))
        return tr.matrix, dm, jm

    tr, dm, jm = benchmark(build)
    print("\n[E5] statement reordering matrix (paper §4.2):")
    print(tr)
    print("[E5] distribution matrix (paper's display swaps rows 4/5):")
    print(dm)
    print("[E5] jamming matrix (exact paper match):")
    print(jm)
    assert tr == IntMatrix([[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]])
    assert jm == IntMatrix(
        [[0, 0, 1, 0, 0], [1, 0, 0, 0, 0], [0, 1, 0, 0, 0], [0, 0, 0, 1, 0]]
    )
    assert dm.shape == (5, 4)


def test_e6_alignment(benchmark, simp_chol_layout):
    t = benchmark(alignment, simp_chol_layout, "S1", "I", 1)
    s1 = [str(e) for e in t.apply_to_symbolic("S1")]
    s2 = [str(e) for e in t.apply_to_symbolic("S2")]
    print(f"\n[E6] aligned S1 vector: {s1}  (paper: I+1, 0, 1, I)")
    print(f"[E6] S2 vector unchanged: {s2}")
    assert s1 == ["I + 1", "0", "1", "I"]
    assert s2 == ["I", "1", "0", "J"]


def test_e13_distribution_illegal_on_factorizations(benchmark, simp_chol_deps, chol_deps):
    from repro.dependence import analyze_dependences
    from repro.kernels import lu_factorization

    lu_deps = analyze_dependences(lu_factorization())

    def verdicts():
        return {
            "simplified_cholesky": distribution_legal(simp_chol_deps, (0,), 1),
            "cholesky@1": distribution_legal(chol_deps, (0,), 1),
            "cholesky@2": distribution_legal(chol_deps, (0,), 2),
            "lu": distribution_legal(lu_deps, (0,), 1),
        }

    v = benchmark(verdicts)
    print("\n[E13] distribution legality (paper §1: illegal in all factorization codes):")
    for k, val in v.items():
        print(f"  {k:22s} legal={val}")
    assert not any(v.values())


def test_e13_distribution_legal_on_streaming(benchmark):
    from repro.dependence import analyze_dependences
    from repro.ir import parse_program

    p = parse_program(
        "param N\nreal A(N), B(N)\n"
        "do I = 1..N\n S1: A(I) = f(I)\n S2: B(I) = A(I) * 2\nenddo"
    )
    deps = analyze_dependences(p)
    legal = benchmark(distribution_legal, deps, (0,), 1)
    print(f"\n[E13] forward-only loop distribution legal={legal} (expected True)")
    assert legal


def test_e13_maximal_distribution(benchmark, simp_chol, chol):
    """Extension of E13: Allen-Kennedy maximal distribution leaves the
    factorization codes intact and fully splits a pipeline."""
    from repro.analysis import maximal_distribution
    from repro.ir import parse_program

    pipeline = parse_program(
        "param N\nreal A(0:N+1), B(0:N+1), C(0:N+1)\n"
        "do I = 1..N\n"
        "  S1: A(I) = f(I)\n"
        "  S2: B(I) = A(I) * 2\n"
        "  S3: C(I) = B(I) + A(I)\n"
        "enddo"
    )

    def run():
        return (
            maximal_distribution(simp_chol),
            maximal_distribution(chol),
            maximal_distribution(pipeline),
        )

    sc, c, pl = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n[E13m] simplified Cholesky loops after maximal distribution:",
          len(sc.body), "(unchanged)")
    print("[E13m] Cholesky loops:", len(c.body), "(unchanged)")
    print("[E13m] pipeline loops:", len(pl.body), "(fully split)")
    assert len(sc.body) == 1 and len(c.body) == 1
    assert len(pl.body) == 3
