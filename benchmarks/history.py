"""The bench history ledger: ``BENCH_history.jsonl``.

``BENCH_result.json`` is a point-in-time snapshot that each benchmark
session overwrites; the *ledger* is append-only.  Every
:func:`benchmarks.emit.write_bench_result` call also appends one
git-SHA-stamped row here, so the repo accumulates a performance
trajectory that survives result overwrites — and ``compare.py --trend``
can gate a fresh run against the **rolling median** of prior snapshots
instead of a single (possibly lucky) committed baseline.

Row schema (one JSON object per line)::

    {
      "schema": 1,
      "sha": "<git HEAD sha or 'unknown'>",
      "created": <unix seconds>,
      "version": "<repro __version__>",
      "python": "3.12.x",
      "metrics": {
        "backend:<kernel>/<backend>:seconds": 0.0123,
        "backend:<kernel>/<backend>:speedup": 4.56,
        "tune:<kernel>:baseline_seconds": ...,
        "tune:<kernel>:best_seconds": ...,
        "tune:<kernel>:speedup": ...,
        "scaling:<kernel>@<n>:tuned_seconds": ...,
        "scaling:<kernel>@<n>:untuned_seconds": ...,
        "scaling:<kernel>@<n>:speedup": ...,
        "wavefront:<kernel>@<n>:source_seconds": ...,
        "wavefront:<kernel>@<n>:par_seconds": ...,
        "wavefront:<kernel>@<n>:speedup": ...,
        "service:<kernel>/<op>:cold_seconds": ...,
        "service:<kernel>/<op>:warm_seconds": ...,
        "service:<kernel>/<op>:speedup": ...,
        "service:throughput:rps": ...,
        "symbolic:<kernel>/<spec>:check_seconds": ...
      }
    }

Only the backend (E16), tune (E17), scaling (E18), wavefront (E19),
service (E20) and symbolic-oracle (E21) tables feed the ledger — they are
the medians-of-medians the repo actually optimises for; pytest-benchmark
means and one-shot span timings stay in ``BENCH_result.json`` under the
existing 2x factor gate.

Trend direction is inferred from the metric name: ``:seconds`` metrics
regress *upward*, ``:speedup`` metrics regress *downward*.  A metric
with fewer than :data:`MIN_PRIOR` prior rows never fails the trend gate
(a fresh ledger must be able to bootstrap).
"""

from __future__ import annotations

import json
import statistics
import subprocess
import sys
import time
from pathlib import Path

__all__ = [
    "HISTORY_NAME", "git_sha", "metrics_from_result", "snapshot_row",
    "append_snapshot", "load_history", "trend_failures",
    "DEFAULT_TOLERANCE", "DEFAULT_WINDOW", "MIN_PRIOR",
]

HISTORY_NAME = "BENCH_history.jsonl"

#: A fresh metric may drift this fraction past the rolling median of its
#: prior snapshots before the trend gate fails (deliberately looser than
#: jitter, tighter than the 2x point-to-point factor gate).
DEFAULT_TOLERANCE = 0.25

#: Rolling-median window: only the most recent N prior rows count, so an
#: ancient (different machine, different algorithm) era ages out.
DEFAULT_WINDOW = 8

#: Below this many prior snapshots a metric is reported but never gated.
MIN_PRIOR = 2


def _repo_root() -> Path:
    return Path(__file__).resolve().parent.parent


def git_sha(cwd: Path | None = None) -> str:
    """HEAD's sha, or ``"unknown"`` outside a usable git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd or _repo_root()),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def metrics_from_result(payload: dict) -> dict[str, float]:
    """Flatten a BENCH_result payload into the ledger's trend metrics."""
    metrics: dict[str, float] = {}
    for row in payload.get("backend", []):
        name = f"backend:{row.get('kernel')}/{row.get('backend')}"
        if isinstance(row.get("seconds"), (int, float)):
            metrics[f"{name}:seconds"] = float(row["seconds"])
        if isinstance(row.get("speedup"), (int, float)):
            metrics[f"{name}:speedup"] = float(row["speedup"])
    for row in payload.get("tune", []):
        name = f"tune:{row.get('kernel')}"
        for key in ("baseline_seconds", "best_seconds", "speedup"):
            if isinstance(row.get(key), (int, float)):
                metrics[f"{name}:{key}"] = float(row[key])
    for row in payload.get("scaling", []):
        name = f"scaling:{row.get('kernel')}@{row.get('n')}"
        for key in ("untuned_seconds", "tuned_seconds", "speedup"):
            if isinstance(row.get(key), (int, float)):
                metrics[f"{name}:{key}"] = float(row[key])
    for row in payload.get("wavefront", []):
        name = f"wavefront:{row.get('kernel')}@{row.get('n')}"
        for key in ("source_seconds", "par_seconds", "speedup"):
            if isinstance(row.get(key), (int, float)):
                metrics[f"{name}:{key}"] = float(row[key])
    for row in payload.get("service", []):
        if row.get("op") == "throughput":
            # "rps" deliberately avoids the "seconds" suffix: higher is
            # better, so the trend gate treats a drop as the regression
            if isinstance(row.get("rps"), (int, float)):
                metrics["service:throughput:rps"] = float(row["rps"])
            continue
        name = f"service:{row.get('kernel')}/{row.get('op')}"
        for key in ("cold_seconds", "warm_seconds", "speedup"):
            if isinstance(row.get(key), (int, float)):
                metrics[f"{name}:{key}"] = float(row[key])
    for row in payload.get("symbolic", []):
        name = f"symbolic:{row.get('kernel')}/{row.get('spec')}"
        if isinstance(row.get("check_seconds"), (int, float)):
            metrics[f"{name}:check_seconds"] = float(row["check_seconds"])
    return metrics


def snapshot_row(
    payload: dict, *, sha: str | None = None, created: float | None = None
) -> dict:
    """One ledger row for a BENCH_result payload."""
    return {
        "schema": 1,
        "sha": sha if sha is not None else git_sha(),
        "created": created if created is not None else time.time(),
        "version": payload.get("repro_version", "?"),
        "python": payload.get("python", sys.version.split()[0]),
        "metrics": metrics_from_result(payload),
    }


def append_snapshot(
    payload: dict,
    path: str | Path | None = None,
    *,
    sha: str | None = None,
) -> tuple[Path, dict]:
    """Append one snapshot row for ``payload``; returns (path, row)."""
    target = Path(path) if path is not None else _repo_root() / HISTORY_NAME
    row = snapshot_row(payload, sha=sha)
    with target.open("a") as f:
        f.write(json.dumps(row, sort_keys=True) + "\n")
    return target, row


def load_history(path: str | Path) -> list[dict]:
    """All well-formed rows of a ledger file, in file order.  Malformed
    lines are skipped (the ledger is append-only across merges and a
    single mangled line must not take the gate down)."""
    p = Path(path)
    if not p.exists():
        return []
    rows = []
    for line in p.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(row, dict) and isinstance(row.get("metrics"), dict):
            rows.append(row)
    return rows


def _higher_is_worse(metric: str) -> bool:
    return metric.endswith("seconds")


def trend_failures(
    fresh: dict,
    prior_rows: list[dict],
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    window: int = DEFAULT_WINDOW,
    min_prior: int = MIN_PRIOR,
) -> tuple[list[str], list[str]]:
    """Gate ``fresh`` (a snapshot row or bare metrics dict) against the
    rolling median of prior snapshot rows.

    Returns ``(failures, report_lines)``: failures is empty when every
    metric is within ``tolerance`` of its rolling median (or has too few
    priors to judge); report_lines describe every examined metric either
    way, for the CI log.
    """
    metrics = fresh.get("metrics", fresh)
    failures: list[str] = []
    report: list[str] = []
    for name in sorted(metrics):
        value = metrics[name]
        if not isinstance(value, (int, float)):
            continue
        prior = [
            row["metrics"][name]
            for row in prior_rows
            if isinstance(row.get("metrics", {}).get(name), (int, float))
        ][-window:]
        if len(prior) < min_prior:
            report.append(
                f"  [  bootstrap] {name}: {value:.6g} "
                f"({len(prior)} prior snapshot(s), gate needs {min_prior})"
            )
            continue
        med = statistics.median(prior)
        if med == 0:
            report.append(f"  [    skipped] {name}: rolling median is 0")
            continue
        if _higher_is_worse(name):
            bad = value > med * (1 + tolerance)
            direction = "above"
        else:
            bad = value < med * (1 - tolerance)
            direction = "below"
        ratio = value / med
        line = (
            f"{name}: {value:.6g} vs rolling median {med:.6g} "
            f"over {len(prior)} snapshot(s) ({ratio:.2f}x)"
        )
        if bad:
            failures.append(
                f"{line} — more than {tolerance:.0%} {direction} the trend"
            )
            report.append(f"  [TREND  FAIL] {line}")
        else:
            report.append(f"  [         ok] {line}")
    return failures, report
