"""E1/E2 — instance vectors (paper §2, Figures 1-3).

Regenerates the paper's displayed instance vectors and verifies the
Theorem-1 order isomorphism on a full enumeration, timing the L map.
"""


from repro.instance import (
    DynamicInstance, Layout, check_order_isomorphism, instance_vector,
    symbolic_vector,
)
from repro.interp import execute
from repro.kernels import running_example


def test_e1_paper_vectors(benchmark, simp_chol_layout):
    """Figure 2 / §3: the displayed general instance vectors."""

    def build():
        return (
            [str(e) for e in symbolic_vector(simp_chol_layout, "S1")],
            [str(e) for e in symbolic_vector(simp_chol_layout, "S2")],
        )

    s1, s2 = benchmark(build)
    print(f"\n[E1] S1 instance vector: {s1}   (paper: ['I','0','1','I'])")
    print(f"[E1] S2 instance vector: {s2}   (paper: ['I','1','0','J'])")
    assert s1 == ["I", "0", "1", "I"]
    assert s2 == ["I", "1", "0", "J"]


def test_e1_theorem1_order_isomorphism(benchmark):
    """Theorem 1 on the §2 running example: execution order equals
    lexicographic order on instance vectors."""
    p = running_example()
    lay = Layout(p)
    _, trace = execute(p, {"N": 6}, trace=True)
    insts = []
    for rec in trace.records:
        order = [c.var for c in lay.surrounding_loop_coords(rec.label)]
        insts.append(DynamicInstance(rec.label, tuple(rec.env[v] for v in order)))

    violations = benchmark(check_order_isomorphism, p, insts)
    print(f"\n[E1] instances checked: {len(insts)}, order violations: {len(violations)}")
    assert violations == []


def test_e2_single_edge_optimization(benchmark):
    """Figure 3: optimized instance vectors equal iteration vectors."""
    from repro.ir import parse_program

    p = parse_program(
        "param N\nreal A(N)\ndo I = 1..N\n do J = I+1..N\n  S1: A(J) = A(J)/A(I)\n enddo\nenddo"
    )
    lay_opt = Layout(p)
    lay_raw = Layout(p, optimize_single_edges=False)

    def vectors():
        return (
            instance_vector(lay_opt, DynamicInstance("S1", (2, 5))),
            instance_vector(lay_raw, DynamicInstance("S1", (2, 5))),
        )

    opt, raw = benchmark(vectors)
    print(f"\n[E2] optimized vector:   {opt}  (= iteration vector)")
    print(f"[E2] unoptimized vector: {raw}  (edge labels interleaved)")
    assert opt == (2, 5)
    assert raw == (2, 1, 5, 1)


def test_e1_l_map_throughput(benchmark, chol_layout):
    """Throughput of the L map over the Cholesky instance space."""
    instances = [
        DynamicInstance("S3", (k, j, l))
        for k in range(1, 15)
        for j in range(k + 1, 15)
        for l in range(k + 1, j + 1)
    ]

    def run():
        return [instance_vector(chol_layout, d) for d in instances]

    vecs = benchmark(run)
    assert len(vecs) == len(instances)
