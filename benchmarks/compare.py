"""Benchmark regression gate: diff a fresh ``BENCH_result.json`` against
the committed baseline and fail on wall-clock regressions.

CI copies the committed ``BENCH_result.json`` aside before running the
benchmark suite (which overwrites it in place), then invokes::

    python benchmarks/compare.py baseline.json BENCH_result.json

Exit status is 1 when any comparable metric regressed by more than
``--factor`` (default 2x, deliberately loose: CI runners are noisy and
the gate exists to catch order-of-magnitude mistakes, not jitter).

Two metric families are compared:

* per-benchmark ``mean_s`` from pytest-benchmark, and
* ``pipeline.span_last_ns`` — the single-shot span timings of the
  canonical pipeline pass (parse -> deps -> legality -> completion ->
  codegen -> execute -> cache sim).

Metrics present on only one side are reported but never fail the gate
(benchmarks come and go across PRs).  Timings below ``--min-ns`` are
skipped: a 40us span doubling to 80us is scheduler noise, not a
regression.

A third, absolute gate reads the fresh result's ``backend`` table (the
E16 execution-backend comparison, see benchmarks/bench_backend.py):
every ``source``/``source-vec`` row must be output-equivalent to the
reference interpreter (``ok``) and at least as fast (speedup >= 1).
This one needs no baseline — a lowered kernel slower than the tree
walker it replaces is wrong on any machine.

A fourth gate reads the fresh ``tune`` table (the E17 autotuner
comparison, see benchmarks/bench_tune.py): the tuned schedule must
never be slower than the untuned default order.  The tuner always
measures the baseline alongside the survivors and returns the overall
minimum, so speedup >= 1 by construction; the gate allows 5% slack
(``TUNE_MIN_SPEEDUP``) purely for timer granularity and exists to
catch a driver that stopped ranking the baseline.

A fifth gate reads the fresh ``scaling`` table (the E18 tiling/fusion
scaling curves, see benchmarks/emit.py): at every measured N the tuned
winner must beat the *untuned default order* by at least
``SCALING_MIN_SPEEDUP`` (1.2x), and any row flagged ``require_tiled``
(the trmm N=1024 point of a full local run) must have a tiled winner.
The section is opt-in at collection time (``REPRO_BENCH_SCALING=1``),
so a result without it passes this gate vacuously.

A sixth gate reads the fresh ``wavefront`` table (the E19 parallel
wavefront comparison, see benchmarks/bench_wavefront.py): on the skewed
stencil rows flagged ``gate``, the ``source-par`` backend must beat the
scalar ``source`` backend by at least ``WAVEFRONT_MIN_SPEEDUP`` (1.2x)
with bit-exact outputs.  Like the scaling section it is opt-in at
collection time (``REPRO_BENCH_WAVEFRONT=1`` or
``REPRO_BENCH_SCALING=1``), so a result without it passes vacuously.

A seventh gate reads the fresh ``service`` table (the E20
transformation-service comparison, see benchmarks/bench_service.py and
benchmarks/emit.py): every latency row must show the warm daemon path
serving at least ``SERVICE_MIN_SPEEDUP`` (5x) faster than a cold CLI
subprocess, and the concurrent-client throughput row must have
completed without request errors.  Opt-in at collection time
(``REPRO_BENCH_SERVICE=1``, the CI service-smoke job), so a result
without it passes vacuously.

An eighth gate reads the fresh ``symbolic`` table (the E21
fractal-oracle consultation zoo, see benchmarks/bench_symbolic.py and
benchmarks/emit.py): every consultation's verdict must match its
committed expectation (the certified rescues stay certified, the
cholesky recurrence stays a mismatch), and every emitted certificate
must re-verify.  Consultations are milliseconds, so the section is
collected unconditionally; its ``check_seconds`` feed the trend ledger.

A ninth, opt-in gate (``--trend BENCH_history.jsonl``) checks the fresh
run's backend/tune metrics against the *rolling median* of prior ledger
snapshots (see benchmarks/history.py): any metric more than 25% worse
than its trend fails.  Point-to-point factor gates miss slow drift — a
1.4x creep over five PRs never trips a 2x gate; the rolling median
catches it.  Because emitting a result appends its own row to the
ledger, the gate excludes a trailing row matching the fresh run before
computing the trend.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "Comparison", "compare_results", "backend_gate", "backend_table",
    "tune_gate", "tune_table", "scaling_gate", "scaling_table",
    "wavefront_gate", "wavefront_table", "service_gate", "service_table",
    "symbolic_gate", "symbolic_table", "trend_gate", "main",
]

DEFAULT_FACTOR = 2.0
DEFAULT_MIN_NS = 1_000_000  # ignore sub-millisecond timings entirely
TUNE_MIN_SPEEDUP = 0.95  # tuned-vs-default floor; slack for timer noise only
SCALING_MIN_SPEEDUP = 1.2  # E18 floor: tuning must actually win, not tie
WAVEFRONT_MIN_SPEEDUP = 1.2  # E19 floor: source-par must beat scalar source
SERVICE_MIN_SPEEDUP = 5.0  # E20 floor: warm daemon vs cold CLI subprocess


@dataclass(frozen=True)
class Comparison:
    """One metric compared across baseline and fresh runs."""

    metric: str
    baseline_ns: float
    fresh_ns: float

    @property
    def ratio(self) -> float:
        return self.fresh_ns / self.baseline_ns if self.baseline_ns else float("inf")

    def regressed(self, factor: float, min_ns: float) -> bool:
        if max(self.baseline_ns, self.fresh_ns) < min_ns:
            return False
        return self.ratio > factor

    def describe(self) -> str:
        return (
            f"{self.metric}: {self.baseline_ns / 1e6:.3f} ms -> "
            f"{self.fresh_ns / 1e6:.3f} ms ({self.ratio:.2f}x)"
        )


def _metrics(result: dict) -> dict[str, float]:
    """Flatten one BENCH_result payload into {metric: nanoseconds}."""
    out: dict[str, float] = {}
    for bench in result.get("benchmarks", []):
        name, mean_s = bench.get("name"), bench.get("mean_s")
        if name and isinstance(mean_s, (int, float)) and mean_s > 0:
            out[f"bench:{name}"] = mean_s * 1e9
    spans = result.get("pipeline", {}).get("span_last_ns", {})
    for name, ns in spans.items():
        if isinstance(ns, (int, float)) and ns > 0:
            out[f"pipeline:{name}"] = float(ns)
    return out


def compare_results(
    baseline: dict,
    fresh: dict,
    *,
    factor: float = DEFAULT_FACTOR,
    min_ns: float = DEFAULT_MIN_NS,
) -> tuple[list[Comparison], list[Comparison], list[str]]:
    """Return (regressions, compared, uncomparable-metric names)."""
    base, new = _metrics(baseline), _metrics(fresh)
    compared = [
        Comparison(metric, base[metric], new[metric])
        for metric in sorted(base.keys() & new.keys())
    ]
    regressions = [c for c in compared if c.regressed(factor, min_ns)]
    uncomparable = sorted(base.keys() ^ new.keys())
    return regressions, compared, uncomparable


def backend_gate(fresh: dict) -> list[str]:
    """Absolute checks on the E16 backend table; returns failures."""
    failures = []
    for row in fresh.get("backend", []):
        name = f"{row.get('kernel')}/{row.get('backend')}"
        if row.get("backend") == "reference":
            # Baseline rows carry ok=true explicitly; anything else is
            # an error row the gate must not silently skip.
            if row.get("error"):
                failures.append(f"{name}: baseline error: {row['error']}")
            elif row.get("ok") is not True:
                failures.append(f"{name}: baseline row not marked ok")
            continue
        if row.get("backend") not in ("source", "source-vec", "source-par"):
            continue
        if row.get("error"):
            failures.append(f"{name}: backend error: {row['error']}")
        elif row.get("ok") is not True:
            failures.append(f"{name}: outputs differ from reference")
        elif not (isinstance(row.get("speedup"), (int, float)) and row["speedup"] >= 1.0):
            failures.append(
                f"{name}: lowered code slower than the reference "
                f"interpreter ({row.get('speedup')}x)"
            )
    return failures


def backend_table(fresh: dict) -> str:
    """The E16 table as a GitHub-flavoured markdown summary."""
    rows = fresh.get("backend", [])
    if not rows:
        return ""
    lines = [
        "| kernel | backend | seconds | speedup | ok |",
        "|---|---|---:|---:|---|",
    ]
    for r in rows:
        secs = f"{r['seconds']:.6f}" if isinstance(r.get("seconds"), (int, float)) else "-"
        speed = f"{r['speedup']:.2f}x" if isinstance(r.get("speedup"), (int, float)) else "-"
        ok = {True: "yes", False: "NO", None: "-"}[r.get("ok")]
        lines.append(
            f"| {r.get('kernel')} | {r.get('backend')} | {secs} | {speed} | {ok} |"
        )
    return "\n".join(lines)


def tune_gate(fresh: dict) -> list[str]:
    """Absolute checks on the E17 autotuner table; returns failures."""
    failures = []
    for row in fresh.get("tune", []):
        name = f"{row.get('kernel')}@{row.get('params')}"
        if row.get("error"):
            failures.append(f"{name}: tuner error: {row['error']}")
        elif row.get("ok") is not True:
            failures.append(f"{name}: tuning run had failed rows")
        elif not (
            isinstance(row.get("speedup"), (int, float))
            and row["speedup"] >= TUNE_MIN_SPEEDUP
        ):
            failures.append(
                f"{name}: tuned schedule slower than the untuned default "
                f"order ({row.get('speedup')}x, floor {TUNE_MIN_SPEEDUP})"
            )
    return failures


def tune_table(fresh: dict) -> str:
    """The E17 table as a GitHub-flavoured markdown summary."""
    rows = fresh.get("tune", [])
    if not rows:
        return ""
    lines = [
        "| kernel | winner | default s | tuned s | speedup | pruned | ok |",
        "|---|---|---:|---:|---:|---:|---|",
    ]
    for r in rows:
        base = f"{r['baseline_seconds']:.6f}" if isinstance(
            r.get("baseline_seconds"), (int, float)) else "-"
        best = f"{r['best_seconds']:.6f}" if isinstance(
            r.get("best_seconds"), (int, float)) else "-"
        speed = f"{r['speedup']:.3f}x" if isinstance(
            r.get("speedup"), (int, float)) else "-"
        ok = {True: "yes", False: "NO", None: "-"}[r.get("ok")]
        lines.append(
            f"| {r.get('kernel')} | {r.get('winner') or '-'} | {base} "
            f"| {best} | {speed} | {r.get('pruned', '-')} | {ok} |"
        )
    return "\n".join(lines)


def scaling_gate(fresh: dict) -> list[str]:
    """Absolute checks on the E18 scaling table; returns failures."""
    failures = []
    for row in fresh.get("scaling", []):
        name = f"{row.get('kernel')}@N={row.get('n')}"
        if row.get("error"):
            failures.append(f"{name}: scaling tune error: {row['error']}")
            continue
        if row.get("ok") is not True:
            failures.append(f"{name}: scaling tune run had failed rows")
        elif not (
            isinstance(row.get("speedup"), (int, float))
            and row["speedup"] >= SCALING_MIN_SPEEDUP
        ):
            failures.append(
                f"{name}: tuned winner only {row.get('speedup')}x vs the "
                f"untuned default order (floor {SCALING_MIN_SPEEDUP})"
            )
        if row.get("require_tiled") and row.get("winner_tiled") is not True:
            failures.append(
                f"{name}: winner {row.get('winner')!r} is not a tiled "
                "schedule (this point requires blocking to win)"
            )
    return failures


def scaling_table(fresh: dict) -> str:
    """The E18 table as a GitHub-flavoured markdown summary."""
    rows = fresh.get("scaling", [])
    if not rows:
        return ""
    lines = [
        "| kernel | N | untuned s | tuned s | speedup | winner | tiled |",
        "|---|---:|---:|---:|---:|---|---|",
    ]
    for r in rows:
        untuned = f"{r['untuned_seconds']:.4f}" if isinstance(
            r.get("untuned_seconds"), (int, float)) else "-"
        tuned = f"{r['tuned_seconds']:.4f}" if isinstance(
            r.get("tuned_seconds"), (int, float)) else "-"
        speed = f"{r['speedup']:.2f}x" if isinstance(
            r.get("speedup"), (int, float)) else "-"
        tiled = {True: "yes", False: "no", None: "-"}[r.get("winner_tiled")]
        lines.append(
            f"| {r.get('kernel')} | {r.get('n')} | {untuned} | {tuned} "
            f"| {speed} | {r.get('winner') or '-'} | {tiled} |"
        )
    return "\n".join(lines)


def wavefront_gate(fresh: dict) -> list[str]:
    """Absolute checks on the E19 wavefront table; returns failures.

    Every row must be bit-exact (``ok``); rows flagged ``gate`` must
    additionally clear ``WAVEFRONT_MIN_SPEEDUP`` over the scalar
    ``source`` backend.  Ungated rows (e.g. cholesky, whose fronts are
    too narrow to amortise dispatch) appear in the table only.
    """
    failures = []
    for row in fresh.get("wavefront", []):
        name = f"{row.get('kernel')}@N={row.get('n')}"
        if row.get("error"):
            failures.append(f"{name}: wavefront bench error: {row['error']}")
            continue
        if row.get("ok") is not True:
            failures.append(f"{name}: source-par output differs from reference")
        elif row.get("gate") and not (
            isinstance(row.get("speedup"), (int, float))
            and row["speedup"] >= WAVEFRONT_MIN_SPEEDUP
        ):
            failures.append(
                f"{name}: source-par only {row.get('speedup')}x vs the "
                f"scalar source backend (floor {WAVEFRONT_MIN_SPEEDUP})"
            )
    return failures


def wavefront_table(fresh: dict) -> str:
    """The E19 table as a GitHub-flavoured markdown summary."""
    rows = fresh.get("wavefront", [])
    if not rows:
        return ""
    lines = [
        "| kernel | N | source s | source-par s | speedup | fronts "
        "| width p50/p99 | gated | ok |",
        "|---|---:|---:|---:|---:|---:|---:|---|---|",
    ]
    for r in rows:
        src = f"{r['source_seconds']:.4f}" if isinstance(
            r.get("source_seconds"), (int, float)) else "-"
        par = f"{r['par_seconds']:.4f}" if isinstance(
            r.get("par_seconds"), (int, float)) else "-"
        speed = f"{r['speedup']:.2f}x" if isinstance(
            r.get("speedup"), (int, float)) else "-"
        width = "-"
        if r.get("front_width_p50") is not None:
            width = f"{r['front_width_p50']:.0f}/{r.get('front_width_p99', 0):.0f}"
        gated = "yes" if r.get("gate") else "no"
        ok = {True: "yes", False: "NO", None: "-"}[r.get("ok")]
        lines.append(
            f"| {r.get('kernel')} | {r.get('n')} | {src} | {par} | {speed} "
            f"| {r.get('fronts', '-')} | {width} | {gated} | {ok} |"
        )
    return "\n".join(lines)


def service_gate(fresh: dict) -> list[str]:
    """Absolute checks on the E20 service table; returns failures.

    Latency rows (flagged ``gate``) must show the warm daemon at least
    ``SERVICE_MIN_SPEEDUP`` faster than the cold CLI subprocess; the
    throughput row must have completed without request errors.
    """
    failures = []
    for row in fresh.get("service", []):
        name = f"{row.get('kernel')}/{row.get('op')}"
        if row.get("error"):
            failures.append(f"{name}: service bench error: {row['error']}")
            continue
        if row.get("ok") is not True:
            failures.append(f"{name}: service bench row not ok")
        elif row.get("op") == "throughput":
            if not (isinstance(row.get("rps"), (int, float)) and row["rps"] > 0):
                failures.append(f"{name}: no throughput measured")
        elif row.get("gate") and not (
            isinstance(row.get("speedup"), (int, float))
            and row["speedup"] >= SERVICE_MIN_SPEEDUP
        ):
            failures.append(
                f"{name}: warm daemon only {row.get('speedup')}x vs the "
                f"cold CLI (floor {SERVICE_MIN_SPEEDUP})"
            )
    return failures


def service_table(fresh: dict) -> str:
    """The E20 table as a GitHub-flavoured markdown summary."""
    rows = fresh.get("service", [])
    if not rows:
        return ""
    lines = [
        "| kernel | op | cold s | warm s | speedup | req/s | ok |",
        "|---|---|---:|---:|---:|---:|---|",
    ]
    for r in rows:
        cold = f"{r['cold_seconds']:.4f}" if isinstance(
            r.get("cold_seconds"), (int, float)) else "-"
        warm = f"{r['warm_seconds']:.6f}" if isinstance(
            r.get("warm_seconds"), (int, float)) else "-"
        speed = f"{r['speedup']:.1f}x" if isinstance(
            r.get("speedup"), (int, float)) else "-"
        rps = f"{r['rps']:.0f}" if isinstance(
            r.get("rps"), (int, float)) else "-"
        ok = {True: "yes", False: "NO", None: "-"}[r.get("ok")]
        lines.append(
            f"| {r.get('kernel')} | {r.get('op')} | {cold} | {warm} "
            f"| {speed} | {rps} | {ok} |"
        )
    return "\n".join(lines)


def symbolic_gate(fresh: dict) -> list[str]:
    """Absolute checks on the E21 symbolic-oracle table; returns
    failures.  Every consultation must reach its committed verdict, and
    a row that produced a certificate must have re-verified it — a
    certificate that cannot be checked is worse than a rejection."""
    failures = []
    for row in fresh.get("symbolic", []):
        name = f"{row.get('kernel')}/{row.get('spec')}"
        if row.get("error"):
            failures.append(f"{name}: oracle error: {row['error']}")
            continue
        if row.get("verdict") != row.get("expected"):
            failures.append(
                f"{name}: verdict {row.get('verdict')!r}, expected "
                f"{row.get('expected')!r}"
            )
        elif row.get("verified") is False:
            failures.append(f"{name}: emitted certificate failed re-verification")
        elif row.get("ok") is not True:
            failures.append(f"{name}: row not marked ok")
    return failures


def symbolic_table(fresh: dict) -> str:
    """The E21 table as a GitHub-flavoured markdown summary."""
    rows = fresh.get("symbolic", [])
    if not rows:
        return ""
    lines = [
        "| kernel | spec | verdict | check ms | sizes | verified | ok |",
        "|---|---|---|---:|---|---|---|",
    ]
    for r in rows:
        ms = f"{r['check_seconds'] * 1e3:.2f}" if isinstance(
            r.get("check_seconds"), (int, float)) else "-"
        sizes = ",".join(str(s) for s in r["sizes"]) if r.get("sizes") else "-"
        verified = {True: "yes", False: "NO", None: "-"}[r.get("verified")]
        ok = {True: "yes", False: "NO", None: "-"}[r.get("ok")]
        lines.append(
            f"| {r.get('kernel')} | {r.get('spec')} | {r.get('verdict')} "
            f"| {ms} | {sizes} | {verified} | {ok} |"
        )
    return "\n".join(lines)


def trend_gate(
    fresh: dict,
    history_path: Path,
    *,
    tolerance: float | None = None,
) -> tuple[list[str], list[str]]:
    """The rolling-median trend gate; returns (failures, report lines).

    The fresh payload's trend metrics are compared against prior ledger
    rows.  Emission appends the fresh run's own row to the ledger first,
    so a trailing row whose metrics equal the fresh run's is excluded
    from "prior".
    """
    try:
        from benchmarks.history import (
            DEFAULT_TOLERANCE, load_history, metrics_from_result, trend_failures,
        )
    except ImportError:  # invoked as `python benchmarks/compare.py`
        sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
        from benchmarks.history import (
            DEFAULT_TOLERANCE, load_history, metrics_from_result, trend_failures,
        )

    fresh_metrics = metrics_from_result(fresh)
    rows = load_history(history_path)
    if rows and rows[-1].get("metrics") == fresh_metrics:
        rows = rows[:-1]
    return trend_failures(
        {"metrics": fresh_metrics},
        rows,
        tolerance=DEFAULT_TOLERANCE if tolerance is None else tolerance,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="compare.py", description="benchmark regression gate"
    )
    parser.add_argument("baseline", type=Path, help="committed BENCH_result.json")
    parser.add_argument("fresh", type=Path, help="freshly generated BENCH_result.json")
    parser.add_argument(
        "--factor",
        type=float,
        default=DEFAULT_FACTOR,
        help=f"fail when fresh/baseline exceeds this (default {DEFAULT_FACTOR})",
    )
    parser.add_argument(
        "--min-ns",
        type=float,
        default=DEFAULT_MIN_NS,
        help="ignore metrics where both sides are below this many ns "
        f"(default {int(DEFAULT_MIN_NS)})",
    )
    parser.add_argument(
        "--summary",
        type=Path,
        default=None,
        help="append the E16 backend speedup table (markdown) to this "
        "file — CI points it at $GITHUB_STEP_SUMMARY",
    )
    parser.add_argument(
        "--trend",
        type=Path,
        default=None,
        metavar="LEDGER",
        help="also gate the fresh backend/tune metrics against the "
        "rolling median of this BENCH_history.jsonl ledger "
        "(see benchmarks/history.py)",
    )
    parser.add_argument(
        "--trend-tolerance",
        type=float,
        default=None,
        metavar="FRAC",
        help="trend-gate tolerance as a fraction (default 0.25 = 25%%)",
    )
    args = parser.parse_args(argv)

    try:
        baseline = json.loads(args.baseline.read_text())
        fresh = json.loads(args.fresh.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"compare.py: cannot load results: {exc}", file=sys.stderr)
        return 2

    regressions, compared, uncomparable = compare_results(
        baseline, fresh, factor=args.factor, min_ns=args.min_ns
    )

    print(f"compared {len(compared)} metrics (threshold {args.factor:.1f}x)")
    for comp in compared:
        marker = "REGRESSION" if comp in regressions else "ok"
        print(f"  [{marker:>10}] {comp.describe()}")
    if uncomparable:
        print(f"skipped {len(uncomparable)} metrics present on one side only:")
        for name in uncomparable:
            print(f"  [   skipped] {name}")

    backend_failures = backend_gate(fresh)
    table = backend_table(fresh)
    if table:
        print("\nexecution-backend comparison (E16):")
        print(table)
    for failure in backend_failures:
        print(f"  [BACKEND FAIL] {failure}")

    tune_failures = tune_gate(fresh)
    ttable = tune_table(fresh)
    if ttable:
        print("\nguided autotuner comparison (E17):")
        print(ttable)
    for failure in tune_failures:
        print(f"  [TUNE FAIL] {failure}")

    scaling_failures = scaling_gate(fresh)
    stable = scaling_table(fresh)
    if stable:
        print("\ntiling/fusion scaling curves (E18):")
        print(stable)
    for failure in scaling_failures:
        print(f"  [SCALING FAIL] {failure}")

    wavefront_failures = wavefront_gate(fresh)
    wtable = wavefront_table(fresh)
    if wtable:
        print("\nwavefront parallel comparison (E19):")
        print(wtable)
    for failure in wavefront_failures:
        print(f"  [WAVEFRONT FAIL] {failure}")

    service_failures = service_gate(fresh)
    svtable = service_table(fresh)
    if svtable:
        print("\ntransformation service warm vs cold (E20):")
        print(svtable)
    for failure in service_failures:
        print(f"  [SERVICE FAIL] {failure}")

    symbolic_failures = symbolic_gate(fresh)
    sytable = symbolic_table(fresh)
    if sytable:
        print("\nfractal symbolic oracle consultations (E21):")
        print(sytable)
    for failure in symbolic_failures:
        print(f"  [SYMBOLIC FAIL] {failure}")

    trend_fails: list[str] = []
    if args.trend is not None:
        trend_fails, trend_report = trend_gate(
            fresh, args.trend, tolerance=args.trend_tolerance
        )
        print(f"\ntrend gate against {args.trend}:")
        for line in trend_report:
            print(line)
        if not trend_report:
            print("  (no trend metrics in the fresh result)")

    if args.summary is not None and table:
        with args.summary.open("a") as f:
            f.write("### Execution-backend speedups (E16)\n\n" + table + "\n")
    if args.summary is not None and ttable:
        with args.summary.open("a") as f:
            f.write("\n### Guided autotuner vs default order (E17)\n\n" + ttable + "\n")
    if args.summary is not None and stable:
        with args.summary.open("a") as f:
            f.write("\n### Tiling/fusion scaling curves (E18)\n\n" + stable + "\n")
    if args.summary is not None and wtable:
        with args.summary.open("a") as f:
            f.write("\n### Wavefront source-par vs source (E19)\n\n" + wtable + "\n")
    if args.summary is not None and svtable:
        with args.summary.open("a") as f:
            f.write(
                "\n### Transformation service warm vs cold (E20)\n\n"
                + svtable + "\n"
            )
    if args.summary is not None and sytable:
        with args.summary.open("a") as f:
            f.write(
                "\n### Fractal symbolic oracle consultations (E21)\n\n"
                + sytable + "\n"
            )

    if (regressions or backend_failures or tune_failures or scaling_failures
            or wavefront_failures or service_failures or symbolic_failures
            or trend_fails):
        print(
            f"FAIL: {len(regressions)} metric(s) regressed beyond "
            f"{args.factor:.1f}x, {len(backend_failures)} backend gate "
            f"failure(s), {len(tune_failures)} tune gate failure(s), "
            f"{len(scaling_failures)} scaling gate failure(s), "
            f"{len(wavefront_failures)} wavefront gate failure(s), "
            f"{len(service_failures)} service gate failure(s), "
            f"{len(symbolic_failures)} symbolic gate failure(s), "
            f"{len(trend_fails)} trend gate failure(s)",
            file=sys.stderr,
        )
        return 1
    print("benchmark gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
