"""E3/E8 — dependence matrices (paper §3 and §6).

Regenerates the dependence matrices the paper displays for simplified
Cholesky (4x3) and full Cholesky (7x4) and records paper-vs-measured.
"""


from repro.dependence import analyze_dependences
from repro.kernels import augmentation_example, lu_factorization


def test_e3_simplified_cholesky_matrix(benchmark, simp_chol):
    m = benchmark(analyze_dependences, simp_chol)
    cols = sorted(tuple(d.entry_strs()) for d in m)
    print("\n[E3] measured dependence columns of simplified Cholesky:")
    print(m.to_str())
    print("[E3] paper columns: [0,1,-1,+]  [1,-1,1,0]  [0,0,0,1]")
    # paper col 1 exact; col 2 with memory-based '+' in place of 1
    assert ("0", "1", "-1", "+") in cols
    assert ("+", "-1", "1", "0") in cols


def test_e3_section54_matrix_exact(benchmark):
    aug = augmentation_example()
    m = benchmark(analyze_dependences, aug)
    cols = sorted(tuple(d.entry_strs()) for d in m)
    print("\n[E3b] measured §5.4 dependence matrix:")
    print(m.to_str())
    print("[E3b] paper: D = [[1,1],[0,-1],[0,1],[1,-1]] — exact match expected")
    assert cols == [("1", "-1", "1", "-1"), ("1", "0", "0", "1")]


def test_e8_cholesky_matrix(benchmark, chol):
    m = benchmark(analyze_dependences, chol)
    cols = {tuple(d.entry_strs()) for d in m}
    print("\n[E8] measured Cholesky dependence matrix (§6):")
    print(m.to_str())
    print("[E8] paper columns: [0,0,1,-1,0,0,+] [0,1,-1,0,+,+,-] [+,0,0,0,0,0,+] [1,-1,0,1,0,0,1]")
    assert ("0", "0", "1", "-1", "0", "0", "+") in cols
    assert ("0", "1", "-1", "0", "+", "+", "-") in cols
    assert ("+", "0", "0", "0", "0", "0", "+") in cols
    # fourth column: direction matches, distance widened by memory-based analysis
    s3_to_s1 = m.between("S3", "S1")
    assert s3_to_s1 and s3_to_s1[0].entries[0].definitely_positive()


def test_e3_value_based_refinement(benchmark, simp_chol):
    """Dynamic value-based refinement recovers the paper's exact
    column [1,-1,1,0] (last-writer flow distance)."""
    from repro.dependence import DepKind, refine_dependences

    static = analyze_dependences(simp_chol)
    refined = benchmark(refine_dependences, simp_chol, static)
    print("\n[E3r] refined (value-based) matrix:")
    print(refined.summary())
    cols = {(d.kind, tuple(d.entry_strs())) for d in refined}
    assert (DepKind.FLOW, ("1", "-1", "1", "0")) in cols


def test_e8_value_based_refinement(benchmark, chol):
    """The paper's fourth §6 column [1,-1,0,1,0,0,1], exactly."""
    from repro.dependence import refine_dependences

    static = analyze_dependences(chol)
    refined = benchmark.pedantic(
        lambda: refine_dependences(chol, static, samples=({"N": 6}, {"N": 8})),
        rounds=1, iterations=1,
    )
    cols = {tuple(d.entry_strs()) for d in refined}
    print("\n[E8r] refined Cholesky matrix:")
    print(refined.summary())
    assert ("1", "-1", "0", "1", "0", "0", "1") in cols


def test_e8_analysis_scales_with_program(benchmark):
    """Dependence analysis wall time on the largest kernel (LU)."""
    lu = lu_factorization()
    m = benchmark(analyze_dependences, lu)
    assert len(m) >= 4
