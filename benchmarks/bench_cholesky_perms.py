"""E10/E11 — the six Cholesky permutations (paper §1).

E10: all six orders compute the same factor (and are legal programs).
E11: they differ materially in memory performance — regenerated as a
cache-miss table per variant under a small set-associative cache, plus
machine-independent locality scores.
"""

import numpy as np
import pytest

from repro.analysis import locality_score, reuse_distances
from repro.interp import ArrayStore, CacheConfig, execute, simulate_cache, trace_addresses
from repro.kernels import CHOLESKY_VARIANTS, cholesky_variant

N = 40
CFG = CacheConfig(size_bytes=4 * 1024, line_bytes=64, ways=2)


@pytest.fixture(scope="module")
def spd():
    return ArrayStore(cholesky_variant("kji"), {"N": N}).snapshot()


def test_e10_all_variants_same_factor(benchmark, spd):
    def run_all():
        out = {}
        for v in CHOLESKY_VARIANTS:
            store, _ = execute(cholesky_variant(v), {"N": N}, arrays=spd)
            out[v] = np.tril(store.arrays["A"])
        return out

    results = benchmark(run_all)
    ref = np.linalg.cholesky(spd["A"])
    print(f"\n[E10] max |L - numpy| per variant (N={N}):")
    for v, r in sorted(results.items()):
        err = np.abs(r - ref).max()
        print(f"  {v}: {err:.3e}")
        assert np.allclose(r, ref, rtol=1e-8), v


@pytest.mark.parametrize("variant", CHOLESKY_VARIANTS)
def test_e11_cache_misses_per_variant(benchmark, variant, spd):
    def run():
        store, t = execute(cholesky_variant(variant), {"N": N}, arrays=spd, trace=True)
        return simulate_cache(trace_addresses(t, store), CFG)

    stats = benchmark(run)
    print(f"\n[E11] {variant}: {stats}")
    assert stats.accesses > 0


def test_e11_performance_shape(benchmark, spd):
    """The paper's qualitative claim: same result, different performance.
    Regenerates the per-variant miss table and checks the spread."""

    def table():
        out = []
        for v in CHOLESKY_VARIANTS:
            store, t = execute(cholesky_variant(v), {"N": N}, arrays=spd, trace=True)
            stats = simulate_cache(trace_addresses(t, store), CFG)
            score = locality_score(
                reuse_distances(t, store),
                capacity_lines=CFG.size_bytes // CFG.line_bytes,
            )
            out.append((v, stats.accesses, stats.misses, stats.miss_rate, score))
        return out

    rows = benchmark.pedantic(table, rounds=1, iterations=1)

    print(f"\n[E11] Cholesky variants under {CFG.size_bytes}B/{CFG.ways}-way cache, N={N}:")
    print(f"  {'order':6s} {'accesses':>9s} {'misses':>8s} {'miss%':>7s} {'locality':>9s}")
    for v, acc, miss, rate, score in rows:
        print(f"  {v:6s} {acc:9d} {miss:8d} {rate:7.2%} {score:9.3f}")

    rates = {v: rate for v, _, _, rate, _ in rows}
    assert max(rates.values()) > 1.2 * min(rates.values()), rates
    # left-looking variants keep the active column resident and win —
    # the same reason LAPACK favours left-looking blocked Cholesky
    assert min(rates, key=rates.get) in ("jki", "jik")
