"""E-ENG — the memoizing polyhedral query engine and the --jobs fan-out.

Measures what the engine PR claims: warm-cache dependence analysis on
the paper's Cholesky kernel is at least 2× faster than the cold
baseline, the parallel fan-out is bit-identical to serial analysis, and
the canonical report-style pipeline pass reuses ≥ 30% of its
Fourier–Motzkin queries from cache.  These entries extend the
BENCH_result.json trajectory started by the observability PR.
"""

import time


from repro import obs
from repro.analysis import search_loop_orders
from repro.dependence import analyze_dependences
from repro.kernels import simplified_cholesky
from repro.polyhedra import engine


def _cold_analysis_seconds(program, rounds: int = 3) -> float:
    """Best-of-N cold wall time: cache cleared before every round."""
    best = float("inf")
    for _ in range(rounds):
        engine.cache_clear()
        t0 = time.perf_counter()
        analyze_dependences(program)
        best = min(best, time.perf_counter() - t0)
    return best


def test_eng_cold_analysis_cholesky(benchmark, chol):
    """Cold baseline: every round starts from an empty query cache."""
    result = benchmark.pedantic(
        lambda: analyze_dependences(chol),
        setup=engine.cache_clear,
        rounds=10,
        iterations=1,
    )
    assert len(result) >= 4


def test_eng_warm_analysis_cholesky_2x(benchmark, chol):
    """Warm-cache analysis must be ≥ 2× the cold baseline (the PR's
    headline claim; both measured in this same process)."""
    cold = _cold_analysis_seconds(chol)
    analyze_dependences(chol)  # prime
    result = benchmark(analyze_dependences, chol)
    assert len(result) >= 4
    stats = getattr(benchmark, "stats", None)
    if stats is None:  # --benchmark-disable smoke mode: no timings recorded
        return
    warm = stats.stats.min
    assert warm * 2 <= cold, f"warm {warm:.6f}s not 2x faster than cold {cold:.6f}s"


def test_eng_uncached_oracle_agreement(benchmark, chol):
    """The cache-disabled oracle produces the identical matrix (and is
    the 'no engine' ablation timing for the trajectory)."""
    cached = analyze_dependences(chol)
    with engine.cache_disabled():
        oracle = benchmark.pedantic(
            lambda: analyze_dependences(chol), rounds=5, iterations=1
        )
    assert oracle.to_str() == cached.to_str()


def test_eng_parallel_bit_identical(benchmark, chol):
    """--jobs dependence analysis: bit-identical output, timed with two
    process workers (cache warmup per worker included — honest cost)."""
    serial = analyze_dependences(chol)
    parallel = benchmark.pedantic(
        lambda: analyze_dependences(chol, jobs=2), rounds=3, iterations=1
    )
    assert parallel.to_str() == serial.to_str()
    assert parallel.summary() == serial.summary()


def test_eng_search_threaded_identical(benchmark, chol):
    """Threaded loop-order search shares deps + engine cache and ranks
    variants identically to the serial search."""
    serial = search_loop_orders(chol, {"N": 10}, verify=False)
    threaded = benchmark.pedantic(
        lambda: search_loop_orders(chol, {"N": 10}, verify=False, jobs=2),
        rounds=3,
        iterations=1,
    )
    assert [(r.lead_var, r.misses, r.accesses) for r in threaded] == [
        (r.lead_var, r.misses, r.accesses) for r in serial
    ]


def test_eng_report_pipeline_hit_rate(benchmark):
    """The canonical pipeline pass (deps → search, as `report` runs it)
    must reuse ≥ 30% of its FM queries from the engine cache."""

    def pipeline():
        engine.cache_clear()
        mem = obs.MemorySink()
        with obs.session(mem) as sess:
            program = simplified_cholesky()
            deps = analyze_dependences(program)
            search_loop_orders(program, {"N": 8}, verify=False)
            assert len(deps) > 0
            return dict(sess.counters)

    counters = benchmark.pedantic(pipeline, rounds=3, iterations=1)
    hits = counters.get("fm.cache_hits", 0)
    misses = counters.get("fm.cache_misses", 0)
    assert hits + misses > 0, "engine was never consulted"
    rate = hits / (hits + misses)
    print(f"\n[E-ENG] fm cache hit rate over report-style pass: {rate:.1%}")
    assert rate >= 0.3, f"hit rate {rate:.1%} below the 30% acceptance bar"


def test_eng_feasibility_warm_throughput(benchmark, chol_deps):
    """Microbenchmark: repeated legality-style feasibility queries are
    nearly free once memoized (chol_deps fixture pre-warms the cache)."""
    from repro.polyhedra import System, ge, le, var

    systems = [
        System([ge(var("i"), 0), le(var("i"), var("N")), ge(var("N"), k)])
        for k in range(1, 9)
    ]
    for s in systems:
        s.feasible()  # prime

    def query_all():
        for s in systems:
            s.feasible()

    benchmark(query_all)
    stats = engine.cache_stats()
    assert stats.hits > 0
