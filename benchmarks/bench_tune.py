"""E17 — the guided autotuner's two claims: the winner it returns is
never slower than the untuned default order (the baseline is always in
the measured set, so this holds by construction — the gate catches a
driver that stops including it), and a warm rerun is served from the
persistent cache without re-searching or re-measuring anything.

The cache-speedup assertion is deliberately loose (>= 5x) — a cold tune
measures every survivor with interleaved repetitions while a warm one
is a single JSON read, so the real ratio is orders of magnitude — but
CI runners are noisy and the gate exists to catch a cache that silently
stopped short-circuiting the search, not to pin a number.
"""

import time

import pytest

from repro import obs
from repro.kernels import cholesky, simplified_cholesky
from repro.tune import TuneStore, tune

#: Small search so the benchmark session stays quick; the tuner's
#: quality claims live in tests/tune, this file times the machinery.
FAST = dict(backend="source-vec", beam_width=2, depth=1, top_k=2, repeat=3)
PARAMS = {"N": 40}

CACHE_MIN_SPEEDUP = 5.0


def test_e17_tuned_cholesky_not_slower(tmp_path, chol):
    res = tune(chol, PARAMS, store=TuneStore(tmp_path / "cache"), **FAST)
    assert res.ok
    print(f"\n[E17] Cholesky N={PARAMS['N']} tuned schedule ranking:")
    for row in sorted(res.rows, key=lambda r: r.seconds or float("inf")):
        mark = "*" if row is res.best else " "
        print(f"  {mark} {row.description:28s} {row.seconds * 1e3:9.3f} ms")
    # the default order is always measured alongside the survivors, so
    # the returned winner can never lose to it
    assert res.best.seconds <= res.baseline_seconds
    assert res.speedup >= 1.0


def test_e17_warm_rerun_skips_search(tmp_path, chol, benchmark):
    store = TuneStore(tmp_path / "cache")
    t0 = time.perf_counter()
    cold = tune(chol, PARAMS, store=store, **FAST)
    cold_s = time.perf_counter() - t0
    assert not cold.from_cache

    with obs.session() as sess:
        t0 = time.perf_counter()
        warm = tune(chol, PARAMS, store=store, **FAST)
        warm_s = time.perf_counter() - t0
        assert warm.from_cache
        assert sess.counters.get("tune.cache.hit") == 1
        # a hit must skip the search entirely: nothing scored, nothing run
        assert "tune.candidates.scored" not in sess.counters
        assert "tune.candidates.measured" not in sess.counters

    assert warm.best.description == cold.best.description
    print(f"\n[E17] cold tune {cold_s * 1e3:.1f} ms, warm {warm_s * 1e3:.1f} ms "
          f"({cold_s / warm_s:.0f}x)")
    assert cold_s >= CACHE_MIN_SPEEDUP * warm_s

    benchmark(tune, chol, PARAMS, store=store, **FAST)


def test_e17_every_execution_was_legality_checked(tmp_path):
    """The audit contract at benchmark scale: re-verify that each program
    the tuner executed carried a Theorem-2-legal matrix."""
    from repro.dependence import analyze_dependences
    from repro.instance import Layout
    from repro.ir import parse_program
    from repro.legality.check import check_legality
    from repro.linalg import IntMatrix

    res = tune(simplified_cholesky(), {"N": 16},
               store=TuneStore(tmp_path / "cache"), **FAST)
    assert res.executed
    for record in res.executed:
        prog = parse_program(record["program"], "audit")
        matrix = IntMatrix([[int(x) for x in row] for row in record["matrix"]])
        assert check_legality(Layout(prog), matrix, analyze_dependences(prog)).legal


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
