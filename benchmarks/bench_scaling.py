"""Scaling benchmarks for the framework's moving parts (supports the
§7 efficiency argument): dependence analysis vs. nest size, legality
vs. dimension, interpreter and cache-simulator throughput, FM
elimination vs. variable count.
"""

import pytest

from repro.dependence import analyze_dependences
from repro.instance import Layout
from repro.interp import CacheConfig, execute, simulate_cache
from repro.kernels import random_program
from repro.legality import check_legality
from repro.linalg import IntMatrix
from repro.polyhedra import System, ge, le, var


@pytest.mark.parametrize("seed", [3, 11, 19])
def test_scaling_dependence_analysis_random(benchmark, seed):
    p = random_program(seed, max_depth=3, max_children=3)
    m = benchmark(analyze_dependences, p)
    lay = Layout(p)
    print(f"\n[scaling] seed={seed}: dim={lay.dimension}, deps={len(m)}")


@pytest.mark.parametrize("depth", [2, 4, 6, 8])
def test_scaling_fm_projection(benchmark, depth):
    """Triangular chains of increasing depth through full projection."""
    vs = [var(f"x{i}") for i in range(depth)]
    N = var("N")
    cs = [ge(vs[0], 1), le(vs[0], N)]
    for a, b in zip(vs, vs[1:]):
        cs += [ge(b, a + 1), le(b, N)]
    s = System(cs)

    out = benchmark(lambda: s.project_onto(("N",)))
    assert not out[0].is_trivially_false()


@pytest.mark.parametrize("n", [8, 16, 32])
def test_scaling_interpreter(benchmark, n):
    """Interpreter throughput on Cholesky (O(n^3) instances)."""
    from repro.kernels import cholesky

    p = cholesky()

    def run():
        _, t = execute(p, {"N": n}, trace=True)
        return len(t)

    count = benchmark.pedantic(run, rounds=2, iterations=1)
    print(f"\n[scaling] N={n}: {count} instances")


def test_scaling_cache_simulator(benchmark):
    """Simulator throughput on a 100k-access trace."""
    import numpy as np

    rng = np.random.default_rng(7)
    addrs = (rng.integers(0, 1 << 20, size=100_000) * 8).astype(np.int64)
    stats = benchmark.pedantic(
        lambda: simulate_cache(addrs, CacheConfig()), rounds=2, iterations=1
    )
    assert stats.accesses == 100_000


def test_scaling_legality_dimension(benchmark, chol, chol_layout, chol_deps):
    """Definition-6 test cost on the 7-dimensional Cholesky space."""
    m = IntMatrix.identity(chol_layout.dimension)
    r = benchmark(check_legality, chol_layout, m, chol_deps)
    assert r.legal


def test_scaling_compiled_vs_reference(benchmark):
    """The closure-compiled executor versus the reference interpreter
    on Cholesky N=32 (same results, measured speedup)."""
    import numpy as np

    from repro.interp import ArrayStore, execute_compiled
    from repro.kernels import cholesky

    p = cholesky()
    base = ArrayStore(p, {"N": 32}).snapshot()

    fast = benchmark.pedantic(
        lambda: execute_compiled(p, {"N": 32}, arrays=base), rounds=3, iterations=1
    )
    ref, _ = execute(p, {"N": 32}, arrays=base)
    assert np.array_equal(ref.arrays["A"], fast.arrays["A"])
