"""The paper's motivating study (§1): the six loop orders of Cholesky
factorization compute the same factor but perform very differently.

Runs every variant through the interpreter on the same SPD matrix,
checks the factors agree with numpy, and compares cache behaviour
under a small set-associative cache — regenerating experiment E11.

Run:  python examples/cholesky_permutations.py [N]
"""

import sys

import numpy as np

from repro.analysis import locality_score, reuse_distances
from repro.interp import ArrayStore, CacheConfig, execute, simulate_cache, trace_addresses
from repro.kernels import CHOLESKY_VARIANTS, cholesky_variant


def main(n: int = 40) -> None:
    cfg = CacheConfig(size_bytes=4 * 1024, line_bytes=64, ways=2)
    base = ArrayStore(cholesky_variant("kji"), {"N": n}).snapshot()
    ref = np.linalg.cholesky(base["A"])

    print(f"Cholesky loop-order study, N={n}, cache={cfg.size_bytes}B {cfg.ways}-way")
    print(f"{'order':>6s} {'max|err|':>12s} {'accesses':>9s} {'misses':>8s} "
          f"{'miss%':>7s} {'locality':>9s}")
    for variant in CHOLESKY_VARIANTS:
        store, trace = execute(cholesky_variant(variant), {"N": n}, arrays=base, trace=True)
        err = np.abs(np.tril(store.arrays["A"]) - ref).max()
        stats = simulate_cache(trace_addresses(trace, store), cfg)
        score = locality_score(
            reuse_distances(trace, store), capacity_lines=cfg.size_bytes // cfg.line_bytes
        )
        print(f"{variant:>6s} {err:12.3e} {stats.accesses:9d} {stats.misses:8d} "
              f"{stats.miss_rate:7.2%} {score:9.3f}")

    print("\nAll variants compute the same factor (err ~ 1e-15); the miss")
    print("rates differ by several x — the paper's motivation for being able")
    print("to permute imperfectly nested loops in the first place.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 40)
