"""The paper's §6 headline: derive left-looking Cholesky from
right-looking Cholesky with the completion procedure.

We give the completion a single row — "the new outermost loop scans the
old L coordinate" — and it finds the child reordering and remaining
rows automatically; code generation then emits left-looking Cholesky,
which we validate against numpy.

Run:  python examples/left_looking_cholesky.py
"""

import numpy as np

from repro import (
    Layout, analyze_dependences, complete_transformation, generate_code,
    program_to_str,
)
from repro.interp import ArrayStore, execute
from repro.kernels import cholesky


def main() -> None:
    program = cholesky()
    print("right-looking Cholesky (the paper's §6 source):")
    print(program_to_str(program))

    layout = Layout(program)
    print("\ninstance-vector layout (7 coordinates):")
    print(layout.describe())

    deps = analyze_dependences(program)
    print(f"\n{len(deps)} dependences:")
    print(deps.summary())

    # partial transformation: lead with the old L coordinate (index 5)
    partial = [[0, 0, 0, 0, 0, 1, 0]]
    result = complete_transformation(program, partial, deps, layout=layout)
    print("\ncompleted transformation matrix:")
    print(result.matrix)
    print(f"child order at the K loop: {result.child_order[(0,)]}")

    generated = generate_code(program, result.matrix, deps)
    print("\ngenerated left-looking Cholesky:")
    print(program_to_str(generated.program, header=False))

    base = ArrayStore(program, {"N": 10}).snapshot()
    store, _ = execute(generated.program, {"N": 10}, arrays=base)
    ref = np.linalg.cholesky(base["A"])
    err = np.abs(np.tril(store.arrays["A"]) - ref).max()
    print(f"\nmax |L - numpy.cholesky| on N=10: {err:.3e}")


if __name__ == "__main__":
    main()
