"""The paper's §5.4 worked example, end to end.

Skewing the outer loop of an imperfect nest collapses statement S1's
iteration space to a single outer iteration; code generation must add
an extra loop (augmentation) and a guard, and the §5.5 "standard
optimizations" then peel the boundary iteration into clean code.

Run:  python examples/skew_and_augment.py
"""

from repro import (
    Layout, analyze_dependences, check_legality, generate_code, parse_program,
    peel_iteration, program_to_str, simplify_program, skew,
)
from repro.interp import ArrayStore, execute, outputs_close
from repro.legality import recover_structure
from repro.codegen import per_statement_transformation
from repro.polyhedra import System, ge, var

SRC = """
param N
real A(0:N+1,0:N+1), B(0:N)
do I = 1..N
  S1: B(I) = B(I-1) + A(I-1,I+1)
  do J = I..N
    S2: A(I,J) = f(I,J)
  enddo
enddo
"""


def main() -> None:
    program = parse_program(SRC, "aug_example")
    layout = Layout(program)
    deps = analyze_dependences(program)
    print("dependence matrix (paper: [[1,1],[0,-1],[0,1],[1,-1]]):")
    print(deps.to_str())

    t = skew(layout, "I", "J", -1)
    print("\ntransformation matrix (skew outer by -inner):")
    print(t.matrix)

    report = check_legality(layout, t.matrix, deps)
    print(f"\nlegal: {report.legal}")
    for d in report.unsatisfied():
        print(f"unsatisfied self-dependence (needs augmentation): {d}")

    structure = recover_structure(layout, t.matrix)
    for label in ("S1", "S2"):
        ps = per_statement_transformation(layout, t.matrix, structure, label)
        print(f"per-statement transformation M_{label}: {ps.linear.tolist()}")

    generated = generate_code(program, t.matrix, deps)
    print("\ngenerated code (paper's pre-simplification form):")
    print(program_to_str(generated.program, header=False))

    assume = System([ge(var("N"), 1)])
    simplified = simplify_program(generated.program, assume)
    final = simplify_program(peel_iteration(simplified, (0,), "upper"), assume)
    print("\nafter simplification + peeling (paper's final §5.5 code):")
    print(program_to_str(final, header=False))

    # prove both forms compute the same values
    init = ArrayStore(program, {"N": 12}).snapshot()
    s0, _ = execute(program, {"N": 12}, arrays=init)
    s1, _ = execute(final, {"N": 12}, arrays=init)
    print(f"\noutputs identical on N=12: {outputs_close(s0.snapshot(), s1.snapshot())}")


if __name__ == "__main__":
    main()
