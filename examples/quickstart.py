"""Quickstart: parse an imperfect loop nest, analyze it, transform it.

Run:  python examples/quickstart.py
"""

from repro import (
    Layout, analyze_dependences, check_legality, generate_code, parse_program,
    program_to_str, reversal, skew, symbolic_vector,
)
from repro.interp import check_equivalence

SRC = """
param N
real A(N)
do I = 1..N
  S1: A(I) = sqrt(A(I))
  do J = I+1..N
    S2: A(J) = A(J) / A(I)
  enddo
enddo
"""


def main() -> None:
    # 1. parse the mini loop language into IR
    program = parse_program(SRC, "simplified_cholesky")
    print("source program:")
    print(program_to_str(program))

    # 2. the instance-vector coordinate system (paper §2)
    layout = Layout(program)
    print("\ninstance-vector layout:")
    print(layout.describe())
    for label in ("S1", "S2"):
        vec = [str(e) for e in symbolic_vector(layout, label)]
        print(f"  {label}: {vec}")

    # 3. dependence analysis (paper §3)
    deps = analyze_dependences(program)
    print("\ndependence matrix (one column per dependence):")
    print(deps.to_str())
    print(deps.summary())

    # 4. try transformations (paper §4/§5)
    for t in (reversal(layout, "J"), skew(layout, "J", "I", 1)):
        report = check_legality(layout, t.matrix, deps)
        print(f"\n{t.description}: {'LEGAL' if report.legal else 'ILLEGAL'}")
        if report.legal:
            generated = generate_code(program, t.matrix, deps)
            print(program_to_str(generated.program, header=False))
            # 5. prove it on real data with the interpreter
            rep = check_equivalence(
                program, generated.program, {"N": 10}, env_map=generated.env_map()
            )
            print(f"semantic equivalence on N=10: {rep['ok']} "
                  f"({rep['instances']} dynamic instances)")


if __name__ == "__main__":
    main()
