"""Finding a *desirable* transformation automatically (paper §1/§7).

The framework's payoff: enumerate candidate lead loops, complete each
partial transformation to a full legal matrix, generate code, and rank
the variants with the cache model.  On Cholesky this discovers that the
left-looking variant (which the §6 completion derives) wins once the
matrix exceeds the cache.

Then the same search, generalized: `repro tune` (docs/AUTOTUNING.md)
widens the space beyond lead loops — skews, reversals, reorderings,
distribution/jamming variants, compositions — prunes illegality before
any execution, ranks with a static cost model, measures the survivors
on a compiled backend, and caches the winner for `repro run --tuned`.

Also demonstrates the §7 future-work extension: completion that applies
*enabling* loop distributions/fusions when the plain procedure cannot
realize the requested loop order.

Run:  python examples/loop_order_search.py [N]
"""

import sys

from repro import parse_program, program_to_str
from repro.analysis import search_loop_orders
from repro.codegen import generate_code
from repro.completion import complete_with_restructuring
from repro.interp import CacheConfig
from repro.kernels import cholesky


def main(n: int = 44) -> None:
    cache = CacheConfig(size_bytes=4 * 1024, line_bytes=64, ways=2)
    print(f"searching loop orders of right-looking Cholesky, N={n}, "
          f"cache={cache.size_bytes}B {cache.ways}-way\n")
    results = search_loop_orders(cholesky(), {"N": n}, cache=cache, verify=False)
    for r in results:
        print(f"  {r}")
    best = results[0]
    print(f"\nwinner: lead={best.lead_var} — "
          f"{'left' if best.lead_var == 'L' else 'right'}-looking Cholesky\n")
    print(program_to_str(best.program, header=False))

    # --- the guided autotuner over the full candidate space -------------
    print("\n--- repro tune: measured search over all legal schedules ---")
    from repro.tune import TuneStore, tune

    res = tune(cholesky(), {"N": n}, store=TuneStore(".repro_tune"),
               beam_width=2, depth=1, top_k=2)
    tag = "cache HIT, search skipped" if res.from_cache else (
        f"{res.enumerated} candidates, {res.pruned} pruned illegal, "
        f"{res.scored} scored")
    print(f"({tag})")
    for row in sorted(res.rows, key=lambda r: r.seconds or float("inf")):
        mark = "*" if row is res.best else " "
        print(f"  {mark} {row.description:30s} {row.seconds * 1e3:9.3f} ms")
    print(f"winner: {res.best.description} "
          f"({res.speedup:.3f}x vs default order)")
    print("replay it with: python -m repro run examples/cholesky.loop "
          f"--tuned -p N={n}")

    # --- §7 future work: distribution-enabled completion ----------------
    print("\n--- enabling restructurings ---")
    p = parse_program(
        """
        param N
        real A(0:N+1), B(0:N+1)
        do I = 1..N
          S1: A(I) = f(I)
          do J = 1..N
            S2: B(J) = B(J) + A(I)*0.001
          enddo
        enddo
        """,
        "producer_consumer",
    )
    print("source:")
    print(program_to_str(p, header=False))
    ec = complete_with_restructuring(p, "J", max_moves=2)
    print(f"\nmaking J outermost required: {list(ec.moves)}")
    g = generate_code(ec.program, ec.result.matrix)
    print(program_to_str(g.program, header=False))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 44)
