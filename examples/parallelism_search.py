"""Searching for parallelism with the linear framework (paper §1/§7).

For perfectly nested loops, a parallel outer loop is a vector in the
nullspace of the dependence matrix; for imperfect nests the same scan
runs over instance-vector coordinates, and per-loop DOALL verdicts fall
out of the transformed projections.

Run:  python examples/parallelism_search.py
"""

from repro import Layout, analyze_dependences, parse_program
from repro.analysis import outer_parallel_unit_rows, parallel_loops
from repro.linalg import IntMatrix
from repro.kernels import cholesky
from repro.perfect import PerfectDeps, outermost_parallel_row

STENCIL = """
param N
real A(0:N+1,0:N+1)
do T = 1..N
  do I = 1..N
    S1: A(T,I) = A(T-1,I) * 0.5 + A(T-1,I) * 0.5
  enddo
enddo
"""


def main() -> None:
    # --- perfect nest: nullspace search -------------------------------
    deps = PerfectDeps.parse(2, [[1, 0]])
    row = outermost_parallel_row(deps)
    print(f"perfect nest with dependence (1,0): parallel direction = {row}")

    # --- imperfect nest: per-loop DOALL verdicts -----------------------
    program = cholesky()
    layout = Layout(program)
    dm = analyze_dependences(program)
    print("\nright-looking Cholesky DOALL verdicts (identity transformation):")
    for mark in parallel_loops(layout, IntMatrix.identity(layout.dimension), dm):
        tag = "DOALL" if mark.is_parallel else f"carries {list(mark.carried)}"
        print(f"  loop {mark.var:2s}: {tag}")

    # --- unit-row outer parallelism ------------------------------------
    stencil = parse_program(STENCIL, "stencil")
    slay = Layout(stencil)
    sdeps = analyze_dependences(stencil)
    rows = outer_parallel_unit_rows(slay, sdeps)
    print(f"\nstencil: loops usable as a parallel outermost loop: "
          f"{[c.var for c in rows]}")


if __name__ == "__main__":
    main()
