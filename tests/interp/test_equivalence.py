"""Equivalence oracles and the trace-based dependence ground truth."""

import numpy as np

from repro.interp import (
    check_equivalence, execute, ground_truth_dependences, outputs_close,
    same_instances,
)
from repro.interp.equivalence import instance_keys
from repro.ir import parse_program


SRC = "param N\nreal A(0:N)\ndo I = 1..N\n S1: A(I) = A(I-1)\nenddo"


class TestGroundTruth:
    def test_flow_chain(self):
        p = parse_program(SRC)
        _, t = execute(p, {"N": 4}, trace=True)
        deps = ground_truth_dependences(t)
        assert deps == [(0, 1), (1, 2), (2, 3)]

    def test_anti_and_output(self):
        p = parse_program(
            "param N\nreal A(0:N+1)\n"
            "do I = 1..N\n S1: A(I) = A(I+1)\nenddo\n"
            "do J = 1..N\n S2: A(J) = 0.0\nenddo"
        )
        _, t = execute(p, {"N": 3}, trace=True)
        deps = ground_truth_dependences(t)
        # anti: read A(I+1) then write A(I+1) at next I; output: S1 then S2
        assert (0, 1) in deps
        assert any(b >= 3 for _, b in deps)  # cross-loop output deps

    def test_no_deps_when_independent(self):
        p = parse_program("param N\nreal A(N)\ndo I = 1..N\n S1: A(I) = 1.0\nenddo")
        _, t = execute(p, {"N": 4}, trace=True)
        assert ground_truth_dependences(t) == []


class TestOracles:
    def test_same_program_equivalent(self):
        p = parse_program(SRC)
        rep = check_equivalence(p, p, {"N": 5})
        assert rep["ok"]

    def test_reversed_recurrence_not_equivalent(self):
        p = parse_program(SRC)
        q = parse_program(
            "param N\nreal A(0:N)\ndo I = N..1, -1\n S1: A(I) = A(I-1)\nenddo"
        )
        rep = check_equivalence(p, q, {"N": 5})
        assert rep["same_instances"]
        assert rep["dependence_violations"]
        assert not rep["ok"]

    def test_different_instances_detected(self):
        p = parse_program(SRC)
        q = parse_program(
            "param N\nreal A(0:N)\ndo I = 1..N-1\n S1: A(I) = A(I-1)\nenddo"
        )
        rep = check_equivalence(p, q, {"N": 5})
        assert not rep["same_instances"]

    def test_reversal_of_independent_loop_ok(self):
        p = parse_program("param N\nreal A(N)\ndo I = 1..N\n S1: A(I) = f(I)\nenddo")
        q = parse_program("param N\nreal A(N)\ndo I = N..1, -1\n S1: A(I) = f(I)\nenddo")
        rep = check_equivalence(p, q, {"N": 6})
        assert rep["ok"]

    def test_outputs_close_shape_mismatch(self):
        assert not outputs_close({"A": np.zeros(3)}, {"B": np.zeros(3)})

    def test_env_map_translates_names(self):
        p = parse_program("param N\nreal A(N)\ndo I = 1..N\n S1: A(I) = f(I)\nenddo")
        q = parse_program("param N\nreal A(N)\ndo T = 1..N\n S1: A(T) = f(T)\nenddo")
        rep = check_equivalence(
            p, q, {"N": 4}, env_map=lambda label, env: (env["T"],)
        )
        assert rep["ok"]

    def test_instance_keys_default(self):
        p = parse_program(SRC)
        _, t = execute(p, {"N": 3}, trace=True)
        keys = instance_keys(p, t)
        assert keys == [("S1", (1,)), ("S1", (2,)), ("S1", (3,))]
