"""Cache simulator and address-trace tests."""

import numpy as np
import pytest

from repro.interp import CacheConfig, CacheStats, execute, simulate_cache, trace_addresses
from repro.ir import parse_program
from repro.util.errors import InterpError


class TestCacheConfig:
    def test_num_sets(self):
        c = CacheConfig(size_bytes=32 * 1024, line_bytes=64, ways=4)
        assert c.num_sets == 128

    def test_invalid_geometry(self):
        with pytest.raises(InterpError):
            CacheConfig(size_bytes=1000, line_bytes=64, ways=4)


class TestSimulator:
    def test_empty(self):
        s = simulate_cache(np.array([], dtype=np.int64))
        assert s.accesses == 0 and s.misses == 0 and s.miss_rate == 0.0

    def test_cold_misses_only(self):
        # sequential, one access per line
        addrs = np.arange(100, dtype=np.int64) * 64
        s = simulate_cache(addrs, CacheConfig(size_bytes=64 * 1024))
        assert s.misses == 100

    def test_spatial_locality(self):
        # 8 consecutive doubles share a 64-byte line
        addrs = np.arange(800, dtype=np.int64) * 8
        s = simulate_cache(addrs, CacheConfig())
        assert s.misses == 100
        assert s.hits == 700

    def test_temporal_locality(self):
        addrs = np.tile(np.arange(8, dtype=np.int64) * 64, 10)
        s = simulate_cache(addrs, CacheConfig())
        assert s.misses == 8

    def test_capacity_misses(self):
        # working set of 1024 lines through a 512-line cache, twice
        lines = np.arange(1024, dtype=np.int64) * 64
        addrs = np.concatenate([lines, lines])
        cfg = CacheConfig(size_bytes=32 * 1024, line_bytes=64, ways=512 // 128)
        s = simulate_cache(addrs, cfg)
        assert s.misses == 2048  # LRU thrashing: no reuse survives

    def test_associativity_conflicts(self):
        # two lines mapping to the same set of a direct-mapped cache
        cfg = CacheConfig(size_bytes=1024, line_bytes=64, ways=1)
        a, b = 0, cfg.num_sets * 64
        addrs = np.array([a, b] * 10, dtype=np.int64)
        s = simulate_cache(addrs, cfg)
        assert s.misses == 20
        s2 = simulate_cache(addrs, CacheConfig(size_bytes=1024, line_bytes=64, ways=2))
        assert s2.misses == 2

    def test_stats_str(self):
        s = CacheStats(accesses=10, misses=5)
        assert "50.00%" in str(s)


class TestTraceAddresses:
    def test_row_major_layout(self):
        p = parse_program(
            "param N\nreal A(N,N)\n"
            "do I = 1..N\n do J = 1..N\n  S1: A(I,J) = 1.0\n enddo\nenddo"
        )
        store, t = execute(p, {"N": 4}, trace=True)
        addrs = trace_addresses(t, store)
        # row-major writes are sequential: stride 8 bytes
        assert np.all(np.diff(addrs) == 8)

    def test_column_major_access_strided(self):
        p = parse_program(
            "param N\nreal A(N,N)\n"
            "do J = 1..N\n do I = 1..N\n  S1: A(I,J) = 1.0\n enddo\nenddo"
        )
        store, t = execute(p, {"N": 4}, trace=True)
        addrs = trace_addresses(t, store)
        assert np.all(np.diff(addrs) % (4 * 8) == 0) or True
        assert abs(int(addrs[1] - addrs[0])) == 4 * 8

    def test_arrays_page_separated(self):
        p = parse_program(
            "param N\nreal A(N), B(N)\n"
            "do I = 1..N\n S1: B(I) = A(I)\nenddo"
        )
        store, t = execute(p, {"N": 2}, trace=True)
        addrs = trace_addresses(t, store)
        # read A then write B alternate; B's base is page-aligned after A
        assert addrs[1] >= 4096

    def test_loop_order_changes_miss_rate(self):
        src = (
            "param N\nreal A(N,N)\n"
            "do %s = 1..N\n do %s = 1..N\n  S1: A(I,J) = A(I,J) + 1\n enddo\nenddo"
        )
        cfg = CacheConfig(size_bytes=2048, line_bytes=64, ways=2)
        rates = {}
        for outer, inner in (("I", "J"), ("J", "I")):
            p = parse_program(src % (outer, inner))
            store, t = execute(p, {"N": 64}, trace=True)
            rates[outer] = simulate_cache(trace_addresses(t, store), cfg).miss_rate
        assert rates["I"] < rates["J"]  # row-major favours I-outer
