"""Unit tests for the loop-nest interpreter."""

import numpy as np
import pytest

from repro.interp import ArrayStore, execute
from repro.ir import Guard, parse_program
from repro.polyhedra import eq, var
from repro.util.errors import InterpError


class TestExecution:
    def test_simple_fill(self):
        p = parse_program("param N\nreal A(N)\ndo I = 1..N\n S1: A(I) = 2.0\nenddo")
        store, _ = execute(p, {"N": 4})
        assert np.all(store.arrays["A"] == 2.0)

    def test_triangular_counts(self):
        p = parse_program(
            "param N\nreal A(N,N)\ndo I = 1..N\n do J = I..N\n  S1: A(I,J) = 1.0\n enddo\nenddo"
        )
        store, trace = execute(p, {"N": 5}, trace=True)
        assert len(trace) == 15
        assert store.arrays["A"].sum() == pytest.approx(
            15 + np.tril(np.ones((5, 5)), -1).sum() * 0  # upper triangle set
            + _init_lower_sum(p, 5)
        )

    def test_recurrence(self):
        p = parse_program(
            "param N\nreal A(0:N)\ndo I = 1..N\n S1: A(I) = A(I-1) + 1\nenddo"
        )
        init = {"A": np.zeros(6)}
        store, _ = execute(p, {"N": 5}, arrays=init)
        assert list(store.arrays["A"]) == [0, 1, 2, 3, 4, 5]

    def test_negative_step(self):
        p = parse_program(
            "param N\nreal A(0:N+1)\ndo I = N..1, -1\n S1: A(I) = A(I+1) + 1\nenddo"
        )
        init = {"A": np.zeros(7)}
        store, _ = execute(p, {"N": 5}, arrays=init)
        assert list(store.arrays["A"][1:6]) == [5, 4, 3, 2, 1]

    def test_zero_trip_loop(self):
        p = parse_program("param N\nreal A(N)\ndo I = 2..1\n S1: A(I) = 9.0\nenddo")
        store, trace = execute(p, {"N": 3}, trace=True)
        assert len(trace) == 0

    def test_guard_execution(self):
        p = parse_program("param N\nreal A(N)\ndo I = 1..N\n S1: A(I) = 1.0\nenddo")
        loop = p.body[0]
        guarded = loop.with_body((Guard((eq(var("I"), 2),), loop.body),))
        p2 = p.with_body((guarded,))
        store, trace = execute(p2, {"N": 5}, arrays={"A": np.zeros(5)}, trace=True)
        assert len(trace) == 1
        assert store.arrays["A"][1] == 1.0  # A(2), 1-based

    def test_scalar_accumulation(self):
        p = parse_program("param N\nreal A(N)\ndo I = 1..N\n acc = acc + 1\nenddo")
        # scalars default-initialize on first read? no: unbound -> error
        with pytest.raises(InterpError):
            execute(p, {"N": 3})

    def test_scalar_write_then_read(self):
        p = parse_program(
            "param N\nreal A(N)\n"
            "x = 2.0\ndo I = 1..N\n S2: A(I) = x\nenddo"
        )
        store, _ = execute(p, {"N": 3})
        assert np.all(store.arrays["A"] == 2.0)


def _init_lower_sum(p, n):
    base = ArrayStore(p, {"N": n}).arrays["A"]
    mask = np.tril(np.ones((n, n)), -1).astype(bool)
    return base[mask].sum()


class TestArrayStore:
    def test_offset_indexing(self):
        p = parse_program("param N\nreal B(0:N)\nB(0) = 7.0")
        store, _ = execute(p, {"N": 3})
        assert store.arrays["B"][0] == 7.0

    def test_out_of_range(self):
        p = parse_program("param N\nreal A(N)\nA(0) = 1.0")
        with pytest.raises(InterpError):
            execute(p, {"N": 3})

    def test_undeclared_array(self):
        p = parse_program("param N\nreal A(N)\ndo I = 1..N\n S1: Z(I) = 1.0\nenddo")
        with pytest.raises(InterpError):
            execute(p, {"N": 2})

    def test_rank_mismatch(self):
        p = parse_program("param N\nreal A(N,N)\nA(1) = 1.0")
        with pytest.raises(InterpError):
            execute(p, {"N": 2})

    def test_shape_mismatch_on_initial(self):
        p = parse_program("param N\nreal A(N)\nA(1) = 1.0")
        with pytest.raises(InterpError):
            execute(p, {"N": 3}, arrays={"A": np.zeros(5)})

    def test_default_init_deterministic(self):
        p = parse_program("param N\nreal A(N,N)\nA(1,1) = 0.0")
        a1 = ArrayStore(p, {"N": 4}).arrays["A"]
        a2 = ArrayStore(p, {"N": 4}).arrays["A"]
        assert np.array_equal(a1, a2)

    def test_spd_initialization(self):
        p = parse_program("param N\nreal A(N,N)\nA(1,1) = 0.0")
        a = ArrayStore(p, {"N": 6}).arrays["A"]
        assert np.allclose(a, a.T)
        assert np.all(np.linalg.eigvalsh(a) > 0)


class TestTracing:
    def test_records_env_and_accesses(self):
        p = parse_program(
            "param N\nreal A(0:N)\ndo I = 1..N\n S1: A(I) = A(I-1)\nenddo"
        )
        _, trace = execute(p, {"N": 3}, trace=True)
        r = trace.records[1]
        assert r.label == "S1" and r.env == {"I": 2}
        assert r.reads == [("A", (1,))]
        assert r.writes == [("A", (2,))]

    def test_instance_budget(self):
        p = parse_program("param N\nreal A(N)\ndo I = 1..N\n S1: A(I) = 1.0\nenddo")
        with pytest.raises(InterpError):
            execute(p, {"N": 100}, max_instances=10)

    def test_accesses_flat(self):
        p = parse_program(
            "param N\nreal A(0:N)\ndo I = 1..N\n S1: A(I) = A(I-1)\nenddo"
        )
        _, trace = execute(p, {"N": 2}, trace=True)
        acc = trace.accesses()
        assert acc == [
            ("A", (0,), False), ("A", (1,), True),
            ("A", (1,), False), ("A", (2,), True),
        ]
